// Figure 4(a): "Accuracy tradeoffs at 8 bits per element" — fraction of a
// 100-element difference found by an approximate reconciliation tree, as
// the 8-bit/element budget shifts between the leaf and internal Bloom
// filters, for correction levels 0..5.
//
// Expected shape (paper): accuracy is 0 at 0 leaf bits (leaf filter
// saturated), rises to an interior optimum, and drops again as the internal
// filter starves; higher correction levels lift the whole curve.
#include <cstdio>
#include <vector>

#include "art/art_summary.hpp"
#include "art/reconciliation_tree.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;

std::vector<std::uint64_t> random_keys(std::size_t n, util::Xoshiro256& rng) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng());
  return keys;
}

}  // namespace

int main() {
  constexpr std::size_t kSetSize = 10000;
  constexpr std::size_t kDifferences = 100;
  constexpr double kTotalBits = 8.0;
  constexpr int kTrials = 5;

  std::printf(
      "\n=== Figure 4(a): ART accuracy vs leaf-filter bits (total %.0f "
      "bits/element, n=%zu, d=%zu) ===\n",
      kTotalBits, kSetSize, kDifferences);
  std::printf("%10s", "leaf_bits");
  for (int correction = 0; correction <= 5; ++correction) {
    std::printf("      corr=%d", correction);
  }
  std::printf("\n");

  for (double leaf_bits = 0.0; leaf_bits <= kTotalBits + 1e-9;
       leaf_bits += 0.5) {
    const double internal_bits = kTotalBits - leaf_bits;
    std::printf("%10.1f", leaf_bits);
    for (int correction = 0; correction <= 5; ++correction) {
      double found = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        util::Xoshiro256 rng(1000 + trial);
        auto remote_keys = random_keys(kSetSize, rng);
        auto local_keys = remote_keys;
        const auto extra = random_keys(kDifferences, rng);
        local_keys.insert(local_keys.end(), extra.begin(), extra.end());

        const art::ReconciliationTree remote(remote_keys);
        const art::ReconciliationTree local(local_keys);
        const auto summary =
            art::ArtSummary::build(remote, leaf_bits, internal_bits);
        found += static_cast<double>(
            art::find_local_differences(local, summary, correction).size());
      }
      std::printf("%12.4f", found / (kTrials * kDifferences));
    }
    std::printf("\n");
  }
  return 0;
}

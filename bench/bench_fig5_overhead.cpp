// Figure 5: "Overhead of peer-to-peer transfers following various methods
// for reconciliation." One partial sender serves one receiver; overhead is
// transmissions per needed symbol, plotted against working-set correlation
// for the five strategies, in the compact (1.1n) and stretched (1.5n)
// scenarios.
//
// Expected shape (paper): in the compact scenario Random blows up with
// correlation (coupon collection over a nearly fully needed set), Recode/BF
// stays lowest and flat, oblivious Recode degrades at high correlation and
// Recode/MW at about half its rate. In the stretched scenario Random is
// much better (O(1) per useful symbol) while the oblivious recoders suffer
// for recoding over too large a domain.
#include "bench_common.hpp"

namespace {

void run_scenario(const char* name, double stretch, double max_correlation) {
  using namespace icd;
  using namespace icd::bench;

  overlay::SimConfig config;
  config.n = 1000;
  constexpr std::size_t kTrials = 3;

  print_header(std::string("Figure 5: overhead vs correlation — ") + name);
  print_strategy_columns();
  for (const double target_corr : correlation_sweep(max_correlation)) {
    double realized = target_corr;
    std::vector<double> values;
    for (const auto strategy : overlay::kAllStrategies) {
      const double overhead = average_over_trials(
          kTrials, 12345, [&](std::uint64_t seed) {
            util::Xoshiro256 rng(seed);
            const auto scenario = overlay::make_pair_scenario(
                config.n, stretch, target_corr, rng);
            realized = scenario.correlation;
            overlay::SimConfig c = config;
            c.seed = seed ^ 0x5afe;
            return overlay::run_pair_transfer(scenario, strategy, c)
                .overhead();
          });
      values.push_back(overhead);
    }
    std::printf("%11.3f", realized);
    for (const double v : values) std::printf("%12.3f", v);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  run_scenario("compact (1.1n distinct symbols)", icd::overlay::kCompactStretch,
               0.45);
  run_scenario("stretched (1.5n distinct symbols)",
               icd::overlay::kStretchedStretch, 0.25);
  return 0;
}

// Wire and endpoint overhead measurements:
//   1. frame encode/decode throughput for data and control messages
//      (in-place view codec vs owning decode),
//   2. endpoint-session symbol rate versus the direct-call path (the cost
//      of running the protocol through typed frames over a transport),
//   3. steady-state allocations per symbol on the endpoint send path and
//      the transport buffer-pool hit rate,
//   4. bytes-on-wire per strategy for a standard partial-transfer session.
//
// Emits BENCH_wire.json (flat key -> number) so future PRs can track the
// perf trajectory. --smoke shrinks iteration counts for CI.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/endpoint.hpp"
#include "core/origin.hpp"
#include "core/peer.hpp"
#include "core/session.hpp"
#include "util/random.hpp"
#include "wire/message.hpp"
#include "wire/transport.hpp"

// --- Counting allocator ----------------------------------------------------
// Global operator new/delete replacement for this binary: every heap
// allocation bumps a counter, so the bench can report exact
// allocations-per-symbol figures instead of inferring them from throughput.

namespace {
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = ((size ? size : 1) + alignment - 1) /
                              alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  icd::util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

void bench_frame_throughput(icd::bench::JsonReport& report, bool smoke) {
  icd::bench::print_header("frame encode/decode throughput");

  constexpr std::size_t kPayload = 1024;
  const std::size_t rounds = smoke ? 200 : 50000;
  icd::wire::EncodedSymbolMessage symbol;
  symbol.symbol.id = 0x1234567890ULL;
  symbol.symbol.payload.assign(kPayload, 0xab);
  const icd::codec::EncodedSymbolView view(symbol.symbol);

  // In-place encode into one recycled buffer: the transport fast path.
  icd::util::ByteWriter writer;
  auto start = Clock::now();
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < rounds; ++i) {
    icd::util::ByteWriter into(writer.take());
    icd::wire::encode_frame_into(into, view);
    bytes += into.size();
    writer = std::move(into);
  }
  const double encode_s = seconds_since(start);

  const auto frame = icd::wire::encode_frame(symbol);

  // Owning decode (control path).
  start = Clock::now();
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < rounds; ++i) {
    decoded += std::get<icd::wire::EncodedSymbolMessage>(
                   icd::wire::decode_frame(frame))
                   .symbol.payload.size();
  }
  const double decode_s = seconds_since(start);

  // In-place view decode (symbol receive path).
  std::vector<std::uint64_t> scratch;
  start = Clock::now();
  std::size_t viewed = 0;
  for (std::size_t i = 0; i < rounds; ++i) {
    viewed += icd::wire::decode_symbol_frame(frame, scratch)
                  ->encoded->payload.size();
  }
  const double view_s = seconds_since(start);

  const double encode_gbps = static_cast<double>(bytes) / encode_s / 1e9;
  const double decode_gbps = static_cast<double>(decoded) / decode_s / 1e9;
  const double view_gbps = static_cast<double>(viewed) / view_s / 1e9;
  std::printf("symbol frames (1 KB payload): encode %7.2f GB/s, "
              "decode %7.2f GB/s, view-decode %7.2f GB/s\n",
              encode_gbps, decode_gbps, view_gbps);
  report.add("frame_encode_gbps", encode_gbps);
  report.add("frame_decode_gbps", decode_gbps);
  report.add("frame_view_decode_gbps", view_gbps);

  icd::sketch::MinwiseSketch sketch(std::uint64_t{1} << 40, 128);
  for (std::uint64_t i = 0; i < 1000; ++i) sketch.update(i * 9176);
  const icd::wire::SketchMessage sketch_message{sketch};
  const std::size_t control_rounds = smoke ? 100 : 20000;
  start = Clock::now();
  bytes = 0;
  for (std::size_t i = 0; i < control_rounds; ++i) {
    bytes += icd::wire::encode_frame(sketch_message).size();
  }
  const double control_s = seconds_since(start);
  const double control_mbps = static_cast<double>(bytes) / control_s / 1e6;
  std::printf("sketch frames (128 minima):   encode %7.1f MB/s "
              "(%zu bytes/frame)\n",
              control_mbps, icd::wire::encode_frame(sketch_message).size());
  report.add("sketch_encode_mbps", control_mbps);
}

/// The direct-call baseline: what InformedSession did before the endpoint
/// redesign — symbols handed straight from one Peer to the other with no
/// serialization at all.
std::size_t direct_transfer(icd::core::Peer& sender,
                            icd::core::Peer& receiver, std::size_t target,
                            std::size_t max_transmissions,
                            std::uint64_t seed) {
  icd::util::Xoshiro256 rng(seed);
  const auto dist = icd::codec::DegreeDistribution::robust_soliton(
                        std::max<std::size_t>(sender.symbol_count(), 2))
                        .truncated(icd::codec::kDefaultRecodeDegreeLimit);
  icd::codec::RecodedSymbol scratch;
  std::size_t sent = 0;
  while (receiver.symbol_count() < target && !receiver.has_content() &&
         sent < max_transmissions) {
    sender.recode_into(scratch, dist.sample(rng), rng);
    receiver.receive_recoded(scratch);
    ++sent;
  }
  return sent;
}

void bench_endpoint_overhead(icd::bench::JsonReport& report, bool smoke) {
  icd::bench::print_header(
      "endpoint session vs direct calls (Recode, 250-block file)");

  constexpr std::size_t kBlocks = 250;
  constexpr std::size_t kBlockSize = 256;
  const auto content = random_content(kBlocks * kBlockSize, 99);
  const auto dist = icd::codec::DegreeDistribution::robust_soliton(kBlocks);
  const std::size_t max_transmissions = smoke ? 400 : 4000;

  for (const bool use_endpoints : {false, true}) {
    icd::core::OriginServer origin(content, kBlockSize, dist, 777);
    icd::core::Peer sender("sender", origin.parameters(), dist);
    icd::core::Peer receiver("receiver", origin.parameters(), dist);
    for (int i = 0; i < 300; ++i) sender.receive_encoded(origin.next());
    for (int i = 0; i < 100; ++i) receiver.receive_encoded(origin.next());

    const auto start = Clock::now();
    std::size_t sent = 0;
    if (use_endpoints) {
      icd::core::SessionOptions options;
      options.strategy = icd::overlay::Strategy::kRecode;
      icd::core::InformedSession session(sender, receiver, options);
      session.run(/*target_symbols=*/2 * kBlocks, max_transmissions);
      sent = session.stats().symbols_sent;
    } else {
      sent = direct_transfer(sender, receiver, 2 * kBlocks, max_transmissions,
                             0x5eed);
    }
    const double elapsed = seconds_since(start);
    const double rate = static_cast<double>(sent) / elapsed;
    std::printf("%-18s %6zu symbols in %7.3f ms  (%8.0f symbols/s)  "
                "decoded=%s\n",
                use_endpoints ? "endpoints (pipe)" : "direct calls", sent,
                elapsed * 1e3, rate, receiver.has_content() ? "yes" : "no");
    report.add(use_endpoints ? "endpoint_symbols_per_sec"
                             : "direct_symbols_per_sec",
               rate);
  }
}

void bench_send_path_allocations(icd::bench::JsonReport& report, bool smoke) {
  icd::bench::print_header(
      "steady-state allocations per symbol (endpoint send path, Recode)");

  constexpr std::size_t kBlocks = 250;
  constexpr std::size_t kBlockSize = 256;
  const auto content = random_content(kBlocks * kBlockSize, 31);
  const auto dist = icd::codec::DegreeDistribution::robust_soliton(kBlocks);
  icd::core::OriginServer origin(content, kBlockSize, dist, 777);
  icd::core::Peer sender_peer("sender", origin.parameters(), dist);
  icd::core::Peer receiver_peer("receiver", origin.parameters(), dist);
  for (int i = 0; i < 300; ++i) sender_peer.receive_encoded(origin.next());
  for (int i = 0; i < 100; ++i) receiver_peer.receive_encoded(origin.next());

  icd::wire::Pipe pipe(icd::core::kSessionPipeMtu);
  icd::core::SessionOptions options;
  options.strategy = icd::overlay::Strategy::kRecode;
  icd::core::SenderEndpoint sender(sender_peer, options, pipe.a());
  icd::core::ReceiverEndpoint receiver(receiver_peer, options, pipe.b());
  receiver.start();
  for (int i = 0; i < 16 && !receiver.transfer_started(); ++i) {
    sender.tick();
    receiver.tick();
  }

  // Warmup: grow every scratch vector / pool buffer / queue slot to its
  // steady-state capacity.
  const std::size_t warmup = smoke ? 50 : 400;
  const std::size_t measured = smoke ? 50 : 1000;
  for (std::size_t i = 0; i < warmup; ++i) {
    sender.send_symbol();
    receiver.tick();
  }

  std::size_t send_allocs = 0;
  for (std::size_t i = 0; i < measured; ++i) {
    const std::size_t before =
        g_allocations.load(std::memory_order_relaxed);
    sender.send_symbol();
    send_allocs += g_allocations.load(std::memory_order_relaxed) - before;
    receiver.tick();  // receive side: not part of the send-path figure
  }
  const double per_symbol =
      static_cast<double>(send_allocs) / static_cast<double>(measured);
  const auto& pool = pipe.a().pool().stats();
  std::printf("send path: %.3f allocations/symbol over %zu symbols "
              "(pool hit rate %.1f%%, %zu acquires)\n",
              per_symbol, measured, 100.0 * pool.hit_rate(), pool.acquires);
  report.add("allocs_per_symbol_send", per_symbol);
  report.add("pool_hit_rate", pool.hit_rate());
}

void bench_bytes_on_wire(icd::bench::JsonReport& report, bool smoke) {
  icd::bench::print_header(
      "bytes on wire per strategy (280/150 partial peers, 250 blocks)");
  std::printf("%12s %9s %9s %12s %9s %9s\n", "strategy", "ctrl B",
              "ctrl pkt", "data B", "symbols", "useful");

  constexpr std::size_t kBlocks = 250;
  constexpr std::size_t kBlockSize = 256;
  const auto content = random_content(kBlocks * kBlockSize, 7);
  const auto dist = icd::codec::DegreeDistribution::robust_soliton(kBlocks);

  for (const auto strategy : icd::overlay::kAllStrategies) {
    icd::core::OriginServer origin(content, kBlockSize, dist, 777);
    icd::core::Peer sender("sender", origin.parameters(), dist);
    icd::core::Peer receiver("receiver", origin.parameters(), dist);
    for (int i = 0; i < 280; ++i) sender.receive_encoded(origin.next());
    for (int i = 0; i < 150; ++i) receiver.receive_encoded(origin.next());

    icd::core::SessionOptions options;
    options.strategy = strategy;
    // The receiver needs ~350 more symbols for the 500 target; request with
    // the usual 25% decoding-overhead allowance.
    options.requested_symbols = 440;
    icd::core::InformedSession session(sender, receiver, options);
    session.run(/*target_symbols=*/500,
                /*max_transmissions=*/smoke ? 400 : 4000);

    const auto& stats = session.stats();
    const auto& tx = session.sender_transport().stats();
    const auto& rx = session.receiver_transport().stats();
    const std::string name(icd::overlay::strategy_name(strategy));
    std::printf("%12s %9zu %9zu %12zu %9zu %9zu\n", name.c_str(),
                stats.control_bytes, stats.control_packets,
                tx.data_bytes_sent + rx.data_bytes_sent, stats.symbols_sent,
                stats.symbols_useful);
    report.add(name + ".control_bytes", stats.control_bytes);
    report.add(name + ".control_packets", stats.control_packets);
    report.add(name + ".data_bytes",
               tx.data_bytes_sent + rx.data_bytes_sent);
    report.add(name + ".symbols_sent", stats.symbols_sent);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = icd::bench::smoke_mode(argc, argv);
  icd::bench::JsonReport report;
  report.add_string("bench", "wire");
  report.add_string("mode", smoke ? "smoke" : "full");
  bench_frame_throughput(report, smoke);
  bench_endpoint_overhead(report, smoke);
  bench_send_path_allocations(report, smoke);
  bench_bytes_on_wire(report, smoke);
  report.write("BENCH_wire.json");
  return 0;
}

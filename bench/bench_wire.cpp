// Wire and endpoint overhead measurements:
//   1. frame encode/decode throughput for data and control messages,
//   2. endpoint-session symbol rate versus the direct-call path (the cost
//      of running the protocol through typed frames over a transport),
//   3. bytes-on-wire per strategy for a standard partial-transfer session.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/endpoint.hpp"
#include "core/origin.hpp"
#include "core/peer.hpp"
#include "core/session.hpp"
#include "util/random.hpp"
#include "wire/message.hpp"
#include "wire/transport.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  icd::util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

void bench_frame_throughput() {
  icd::bench::print_header("frame encode/decode throughput");

  constexpr std::size_t kPayload = 1024;
  constexpr std::size_t kRounds = 50000;
  icd::wire::EncodedSymbolMessage symbol;
  symbol.symbol.id = 0x1234567890ULL;
  symbol.symbol.payload.assign(kPayload, 0xab);

  auto start = Clock::now();
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < kRounds; ++i) {
    bytes += icd::wire::encode_frame(symbol).size();
  }
  const double encode_s = seconds_since(start);

  const auto frame = icd::wire::encode_frame(symbol);
  start = Clock::now();
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < kRounds; ++i) {
    decoded += std::get<icd::wire::EncodedSymbolMessage>(
                   icd::wire::decode_frame(frame))
                   .symbol.payload.size();
  }
  const double decode_s = seconds_since(start);

  std::printf("symbol frames (1 KB payload): encode %7.1f MB/s, "
              "decode %7.1f MB/s\n",
              static_cast<double>(bytes) / encode_s / 1e6,
              static_cast<double>(decoded) / decode_s / 1e6);

  icd::sketch::MinwiseSketch sketch(std::uint64_t{1} << 40, 128);
  for (std::uint64_t i = 0; i < 1000; ++i) sketch.update(i * 9176);
  const icd::wire::SketchMessage sketch_message{sketch};
  constexpr std::size_t kControlRounds = 20000;
  start = Clock::now();
  bytes = 0;
  for (std::size_t i = 0; i < kControlRounds; ++i) {
    bytes += icd::wire::encode_frame(sketch_message).size();
  }
  const double control_s = seconds_since(start);
  std::printf("sketch frames (128 minima):   encode %7.1f MB/s "
              "(%zu bytes/frame)\n",
              static_cast<double>(bytes) / control_s / 1e6,
              icd::wire::encode_frame(sketch_message).size());
}

/// The direct-call baseline: what InformedSession did before the endpoint
/// redesign — symbols handed straight from one Peer to the other with no
/// serialization at all.
std::size_t direct_transfer(icd::core::Peer& sender,
                            icd::core::Peer& receiver, std::size_t target,
                            std::size_t max_transmissions,
                            std::uint64_t seed) {
  icd::util::Xoshiro256 rng(seed);
  const auto dist = icd::codec::DegreeDistribution::robust_soliton(
                        std::max<std::size_t>(sender.symbol_count(), 2))
                        .truncated(icd::codec::kDefaultRecodeDegreeLimit);
  std::size_t sent = 0;
  while (receiver.symbol_count() < target && !receiver.has_content() &&
         sent < max_transmissions) {
    receiver.receive_recoded(sender.recode(dist.sample(rng), rng));
    ++sent;
  }
  return sent;
}

void bench_endpoint_overhead() {
  icd::bench::print_header(
      "endpoint session vs direct calls (Recode, 250-block file)");

  constexpr std::size_t kBlocks = 250;
  constexpr std::size_t kBlockSize = 256;
  const auto content = random_content(kBlocks * kBlockSize, 99);
  const auto dist = icd::codec::DegreeDistribution::robust_soliton(kBlocks);

  for (const bool use_endpoints : {false, true}) {
    icd::core::OriginServer origin(content, kBlockSize, dist, 777);
    icd::core::Peer sender("sender", origin.parameters(), dist);
    icd::core::Peer receiver("receiver", origin.parameters(), dist);
    for (int i = 0; i < 300; ++i) sender.receive_encoded(origin.next());
    for (int i = 0; i < 100; ++i) receiver.receive_encoded(origin.next());

    const auto start = Clock::now();
    std::size_t sent = 0;
    if (use_endpoints) {
      icd::core::SessionOptions options;
      options.strategy = icd::overlay::Strategy::kRecode;
      icd::core::InformedSession session(sender, receiver, options);
      session.run(/*target_symbols=*/2 * kBlocks, /*max_transmissions=*/4000);
      sent = session.stats().symbols_sent;
    } else {
      sent = direct_transfer(sender, receiver, 2 * kBlocks, 4000, 0x5eed);
    }
    const double elapsed = seconds_since(start);
    std::printf("%-18s %6zu symbols in %7.3f ms  (%8.0f symbols/s)  "
                "decoded=%s\n",
                use_endpoints ? "endpoints (pipe)" : "direct calls", sent,
                elapsed * 1e3, static_cast<double>(sent) / elapsed,
                receiver.has_content() ? "yes" : "no");
  }
}

void bench_bytes_on_wire() {
  icd::bench::print_header(
      "bytes on wire per strategy (280/150 partial peers, 250 blocks)");
  std::printf("%12s %9s %9s %12s %9s %9s\n", "strategy", "ctrl B",
              "ctrl pkt", "data B", "symbols", "useful");

  constexpr std::size_t kBlocks = 250;
  constexpr std::size_t kBlockSize = 256;
  const auto content = random_content(kBlocks * kBlockSize, 7);
  const auto dist = icd::codec::DegreeDistribution::robust_soliton(kBlocks);

  for (const auto strategy : icd::overlay::kAllStrategies) {
    icd::core::OriginServer origin(content, kBlockSize, dist, 777);
    icd::core::Peer sender("sender", origin.parameters(), dist);
    icd::core::Peer receiver("receiver", origin.parameters(), dist);
    for (int i = 0; i < 280; ++i) sender.receive_encoded(origin.next());
    for (int i = 0; i < 150; ++i) receiver.receive_encoded(origin.next());

    icd::core::SessionOptions options;
    options.strategy = strategy;
    // The receiver needs ~350 more symbols for the 500 target; request with
    // the usual 25% decoding-overhead allowance.
    options.requested_symbols = 440;
    icd::core::InformedSession session(sender, receiver, options);
    session.run(/*target_symbols=*/500, /*max_transmissions=*/4000);

    const auto& stats = session.stats();
    const auto& tx = session.sender_transport().stats();
    const auto& rx = session.receiver_transport().stats();
    std::printf("%12s %9zu %9zu %12zu %9zu %9zu\n",
                std::string(icd::overlay::strategy_name(strategy)).c_str(),
                stats.control_bytes, stats.control_packets,
                tx.data_bytes_sent + rx.data_bytes_sent, stats.symbols_sent,
                stats.symbols_useful);
  }
}

}  // namespace

int main() {
  bench_frame_throughput();
  bench_endpoint_overhead();
  bench_bytes_on_wire();
  return 0;
}

// Figure 6: "Speedup in the rate of transfer of a receiver downloading from
// a full sender and a partial sender concurrently." Both senders transmit
// one symbol per round; speedup is relative to downloading from the full
// sender alone (which needs exactly `needed` rounds).
//
// Expected shape (paper): BF strategies approach 2x and stay there; random
// selection also does well (the full sender keeps the system out of the
// compact regime); the oblivious recoders (plain and minwise) lag, since
// they recode over too large a domain.
#include "bench_common.hpp"

namespace {

/// --shards N: SimConfig::shards for the transfer engine (a pair transfer
/// degenerates to the serial path; the knob rides along for parity with
/// fig7/8).
std::size_t g_shards = 1;

void run_scenario(const char* name, double stretch, double max_correlation) {
  using namespace icd;
  using namespace icd::bench;

  overlay::SimConfig config;
  config.n = 1000;
  constexpr std::size_t kTrials = 3;

  print_header(std::string("Figure 6: speedup with full + partial sender — ") +
               name);
  print_strategy_columns();
  for (const double target_corr : correlation_sweep(max_correlation)) {
    double realized = target_corr;
    std::vector<double> values;
    for (const auto strategy : overlay::kAllStrategies) {
      const double speedup = average_over_trials(
          kTrials, 777, [&](std::uint64_t seed) {
            util::Xoshiro256 rng(seed);
            const auto scenario = overlay::make_pair_scenario(
                config.n, stretch, target_corr, rng);
            realized = scenario.correlation;
            overlay::SimConfig c = config;
            c.seed = seed ^ 0xf00d;
            c.shards = g_shards;
            return overlay::run_pair_with_full_sender(scenario, strategy, c)
                .speedup();
          });
      values.push_back(speedup);
    }
    std::printf("%11.3f", realized);
    for (const double v : values) std::printf("%12.3f", v);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_shards = icd::bench::shards_arg(argc, argv);
  run_scenario("compact (1.1n distinct symbols)", icd::overlay::kCompactStretch,
               0.45);
  run_scenario("stretched (1.5n distinct symbols)",
               icd::overlay::kStretchedStretch, 0.25);
  return 0;
}

// E9 (Section 6.1 coding parameters): decoding overhead and degree
// statistics of the sparse parity-check codec, plus encode/decode
// micro-benchmarks.
//
// Paper: "The degree distribution used had an average degree of 11 for the
// encoded symbols and average decoding overhead of 6.8%" at l = 23,968
// blocks (32 MB in 1400-byte blocks).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "codec/block_source.hpp"
#include "codec/decoder.hpp"
#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/inactivation.hpp"
#include "codec/recoder.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;

void print_overhead_table() {
  std::printf("\n=== Section 6.1: codec degree and decoding overhead ===\n");
  std::printf("%10s %12s %14s %12s\n", "blocks", "avg degree",
              "overhead (avg)", "paper");
  for (const std::size_t blocks : {500u, 1000u, 2000u, 5000u, 10000u, 23968u}) {
    const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
    double overhead = 0;
    const int trials = blocks > 5000 ? 2 : 5;
    for (int t = 0; t < trials; ++t) {
      overhead += codec::measure_decode_overhead(
          static_cast<std::uint32_t>(blocks), 4, dist,
          0xc0dec + 7919 * static_cast<std::uint64_t>(t));
    }
    overhead /= trials;
    std::printf("%10zu %12.2f %13.1f%% %12s\n", blocks, dist.mean(),
                100.0 * (overhead - 1.0),
                blocks == 23968u ? "deg 11, 6.8%" : "");
  }
  std::printf("\n");
}

void print_inactivation_table() {
  std::printf("=== Extension: peeling vs inactivation decoding overhead "
              "===\n");
  std::printf("%10s %14s %16s\n", "blocks", "peeling", "inactivation");
  for (const std::size_t blocks : {500u, 1000u, 2000u}) {
    const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
    double peel = 0, inact = 0;
    constexpr int kTrials = 3;
    for (int t = 0; t < kTrials; ++t) {
      peel += codec::measure_decode_overhead(
          static_cast<std::uint32_t>(blocks), 4, dist, 0xabc + t);
      inact += codec::measure_inactivation_overhead(
          static_cast<std::uint32_t>(blocks), 4, dist, 0xabc + t);
    }
    std::printf("%10zu %13.1f%% %15.2f%%\n", blocks,
                100.0 * (peel / kTrials - 1.0),
                100.0 * (inact / kTrials - 1.0));
  }
  std::printf("\n");
}

codec::BlockSource make_source(std::size_t blocks, std::size_t block_size) {
  util::Xoshiro256 rng(1);
  std::vector<std::uint8_t> content(blocks * block_size);
  for (auto& b : content) b = static_cast<std::uint8_t>(rng());
  return codec::BlockSource(content, block_size);
}

void BM_Encode(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const auto source = make_source(blocks, 1400);
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
  codec::Encoder encoder(source, dist, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.next());
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_Encode)->Arg(1000)->Arg(10000);

void BM_DecodeFullFile(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const auto source = make_source(blocks, 64);
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
  codec::Encoder encoder(source, dist, 8);
  // Pre-generate enough symbols outside the timed loop.
  std::vector<codec::EncodedSymbol> symbols;
  for (std::size_t i = 0; i < 2 * blocks; ++i) symbols.push_back(encoder.next());
  for (auto _ : state) {
    codec::Decoder decoder(encoder.parameters(), dist);
    std::size_t i = 0;
    while (!decoder.complete() && i < symbols.size()) {
      decoder.add_symbol(symbols[i++]);
    }
    benchmark::DoNotOptimize(decoder.recovered_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(blocks));
}
BENCHMARK(BM_DecodeFullFile)->Arg(1000)->Arg(5000);

void BM_RecodeGenerate(benchmark::State& state) {
  const auto source = make_source(1000, 64);
  const auto dist = codec::DegreeDistribution::robust_soliton(1000);
  codec::Encoder encoder(source, dist, 9);
  std::vector<codec::EncodedSymbol> held;
  for (int i = 0; i < 600; ++i) held.push_back(encoder.next());
  codec::Recoder recoder(held);
  const auto recode_dist = dist.truncated(50);
  util::Xoshiro256 rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recoder.generate(recode_dist.sample(rng), rng));
  }
}
BENCHMARK(BM_RecodeGenerate);

}  // namespace

int main(int argc, char** argv) {
  print_overhead_table();
  print_inactivation_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

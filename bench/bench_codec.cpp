// E9 (Section 6.1 coding parameters): decoding overhead and degree
// statistics of the sparse parity-check codec, plus encode/decode and XOR
// micro-benchmarks.
//
// Paper: "The degree distribution used had an average degree of 11 for the
// encoded symbols and average decoding overhead of 6.8%" at l = 23,968
// blocks (32 MB in 1400-byte blocks).
//
// Emits BENCH_codec.json (flat key -> number) so future PRs can track the
// perf trajectory. --smoke shrinks the tables and skips the Google
// Benchmark loops so CI can exercise the binary cheaply.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "codec/block_source.hpp"
#include "codec/decoder.hpp"
#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/inactivation.hpp"
#include "codec/peeling.hpp"
#include "codec/recoder.hpp"
#include "codec/solver_reference.hpp"
#include "sketch/minwise.hpp"
#include "util/permutation.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Byte-at-a-time reference for the word-wise xor_bytes kernel; kept here
/// (and in the parity tests) as the semantic ground truth.
void xor_bytes_scalar(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void print_xor_throughput(bench::JsonReport& report, bool smoke) {
  std::printf("=== XOR kernel: word-wise vs byte-wise (1400-byte "
              "payloads) ===\n");
  constexpr std::size_t kSize = 1400;  // the paper's block size
  const std::size_t rounds = smoke ? 2000 : 2000000;
  std::vector<std::uint8_t> dst(kSize, 0x5a);
  std::vector<std::uint8_t> src(kSize, 0xa5);

  auto start = Clock::now();
  for (std::size_t i = 0; i < rounds; ++i) {
    codec::xor_bytes(dst.data(), src.data(), kSize);
    benchmark::DoNotOptimize(dst.data());
  }
  const double word_s = seconds_since(start);

  start = Clock::now();
  for (std::size_t i = 0; i < rounds; ++i) {
    xor_bytes_scalar(dst.data(), src.data(), kSize);
    benchmark::DoNotOptimize(dst.data());
  }
  const double scalar_s = seconds_since(start);

  const double bytes = static_cast<double>(rounds) * kSize;
  const double word_gbps = bytes / word_s / 1e9;
  const double scalar_gbps = bytes / scalar_s / 1e9;
  std::printf("word-wise %7.2f GB/s, byte-wise %7.2f GB/s (%.2fx)\n\n",
              word_gbps, scalar_gbps, word_gbps / scalar_gbps);
  report.add("xor_wordwise_gbps", word_gbps);
  report.add("xor_scalar_gbps", scalar_gbps);
}

void print_overhead_table(bench::JsonReport& report, bool smoke) {
  std::printf("\n=== Section 6.1: codec degree and decoding overhead ===\n");
  std::printf("%10s %12s %14s %12s\n", "blocks", "avg degree",
              "overhead (avg)", "paper");
  std::vector<std::size_t> sweep = {500u, 1000u, 2000u, 5000u, 10000u,
                                    23968u};
  if (smoke) sweep = {500u};
  for (const std::size_t blocks : sweep) {
    const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
    double overhead = 0;
    const int trials = smoke ? 1 : (blocks > 5000 ? 2 : 5);
    for (int t = 0; t < trials; ++t) {
      overhead += codec::measure_decode_overhead(
          static_cast<std::uint32_t>(blocks), 4, dist,
          0xc0dec + 7919 * static_cast<std::uint64_t>(t));
    }
    overhead /= trials;
    std::printf("%10zu %12.2f %13.1f%% %12s\n", blocks, dist.mean(),
                100.0 * (overhead - 1.0),
                blocks == 23968u ? "deg 11, 6.8%" : "");
    report.add("decode_overhead_" + std::to_string(blocks), overhead - 1.0);
  }
  std::printf("\n");
}

void print_inactivation_table(bool smoke) {
  std::printf("=== Extension: peeling vs inactivation decoding overhead "
              "===\n");
  std::printf("%10s %14s %16s\n", "blocks", "peeling", "inactivation");
  std::vector<std::size_t> sweep = {500u, 1000u, 2000u};
  if (smoke) sweep = {500u};
  for (const std::size_t blocks : sweep) {
    const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
    double peel = 0, inact = 0;
    const int trials = smoke ? 1 : 3;
    for (int t = 0; t < trials; ++t) {
      peel += codec::measure_decode_overhead(
          static_cast<std::uint32_t>(blocks), 4, dist, 0xabc + t);
      inact += codec::measure_inactivation_overhead(
          static_cast<std::uint32_t>(blocks), 4, dist, 0xabc + t);
    }
    std::printf("%10zu %13.1f%% %15.2f%%\n", blocks,
                100.0 * (peel / trials - 1.0),
                100.0 * (inact / trials - 1.0));
  }
  std::printf("\n");
}

codec::BlockSource make_source(std::size_t blocks, std::size_t block_size) {
  util::Xoshiro256 rng(1);
  std::vector<std::uint8_t> content(blocks * block_size);
  for (auto& b : content) b = static_cast<std::uint8_t>(rng());
  return codec::BlockSource(content, block_size);
}

/// Timed by hand (not Google Benchmark) so the figure lands in the JSON
/// report: full-file decode rate, the XOR-bound consumer of the word-wise
/// kernel.
void print_decode_rate(bench::JsonReport& report, bool smoke) {
  const std::size_t blocks = 2000;
  const std::size_t block_size = smoke ? 16 : 256;
  const auto source = make_source(blocks, block_size);
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
  codec::Encoder encoder(source, dist, 8);
  std::vector<codec::EncodedSymbol> symbols;
  for (std::size_t i = 0; i < 2 * blocks; ++i) {
    symbols.push_back(encoder.next());
  }
  const int reps = smoke ? 1 : 5;
  const auto start = Clock::now();
  std::size_t consumed = 0;
  for (int r = 0; r < reps; ++r) {
    codec::Decoder decoder(encoder.parameters(), dist);
    std::size_t i = 0;
    while (!decoder.complete() && i < symbols.size()) {
      decoder.add_symbol(symbols[i].id, symbols[i].payload);
      ++i;
    }
    consumed += i;
  }
  const double elapsed = seconds_since(start);
  const double mbps = static_cast<double>(consumed) *
                      static_cast<double>(block_size) / elapsed / 1e6;
  std::printf("=== full-file decode (%zu blocks x %zu B): %.1f MB/s of "
              "symbol payload ===\n\n",
              blocks, block_size, mbps);
  report.add("decode_payload_mbps", mbps);
}

/// Handshake receive path: every summary bundle that arrives is decoded
/// with MinwiseSketch::deserialize, which constructs a sketch over the
/// agreed universe. The permutation family behind that sketch is immutable
/// and fully determined by (universe, count, seed), so decode cost should
/// be the minima copy — not a per-packet family rebuild (next_prime search
/// plus 128 modular inversions). This lane times both and reports the
/// speedup the shared_permutation_family cache buys; CI gates on it.
void print_sketch_decode(bench::JsonReport& report, bool smoke) {
  constexpr std::uint64_t kUniverse = 1u << 20;
  constexpr std::size_t kPermutations =
      sketch::MinwiseSketch::kDefaultPermutations;
  constexpr std::uint64_t kSeed = sketch::MinwiseSketch::kSharedSeed;
  sketch::MinwiseSketch sketch(kUniverse, kPermutations, kSeed);
  util::Xoshiro256 rng(42);
  for (int i = 0; i < 400; ++i) sketch.update(rng.next_below(kUniverse));
  const auto wire = sketch.serialize();

  const std::size_t decodes = smoke ? 200 : 5000;
  // Warm the cache so the timed loop measures the steady state every
  // handshake after the first sees.
  (void)sketch::MinwiseSketch::deserialize(wire);
  auto start = Clock::now();
  for (std::size_t i = 0; i < decodes; ++i) {
    const auto decoded = sketch::MinwiseSketch::deserialize(wire);
    benchmark::DoNotOptimize(decoded.minima().data());
  }
  const double cached_s = seconds_since(start);

  // The pre-cache cost: what each decode used to pay on top, rebuilding the
  // identical family from scratch.
  const std::size_t rebuilds = smoke ? 50 : 500;
  start = Clock::now();
  for (std::size_t i = 0; i < rebuilds; ++i) {
    const auto family =
        util::make_permutation_family(kUniverse, kPermutations, kSeed);
    benchmark::DoNotOptimize(family.data());
  }
  const double rebuild_s = seconds_since(start);

  const double cached_us = cached_s / decodes * 1e6;
  const double rebuild_us = rebuild_s / rebuilds * 1e6;
  const double speedup = (rebuild_us + cached_us) / cached_us;
  std::printf("=== handshake sketch decode: %.2f us cached vs %.2f us with "
              "per-packet family rebuild (%.1fx) ===\n\n",
              cached_us, rebuild_us + cached_us, speedup);
  report.add("sketch_decode_cached_us", cached_us);
  report.add("sketch_family_rebuild_us", rebuild_us);
  report.add("sketch_decode_cache_speedup", speedup);
}

/// Peeling data plane: feed identical pre-derived equation streams through
/// the flat-arena PeelingDecoder and the list-based reference, reporting
/// substitution throughput (incidences/s — the O(1) unit of the
/// counter/accumulator core) and the speedup. CI gates the throughput
/// floor.
void print_substitution_throughput(bench::JsonReport& report, bool smoke) {
  const std::size_t blocks = smoke ? 2000 : 20000;
  constexpr std::size_t kBlockSize = 8;  // keep XOR cost off the lane
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
  const auto source = make_source(blocks, kBlockSize);
  codec::Encoder encoder(source, dist, 21);
  std::vector<codec::EncodedSymbol> symbols;
  std::vector<std::vector<std::uint32_t>> neighbors;
  for (std::size_t i = 0; i < 2 * blocks; ++i) {
    symbols.push_back(encoder.next());
    neighbors.push_back(
        codec::symbol_neighbors(encoder.parameters(), dist, symbols.back().id));
  }

  auto start = Clock::now();
  codec::PeelingDecoder<std::uint32_t> solver;
  std::size_t consumed = 0;
  while (solver.known_count() < blocks && consumed < symbols.size()) {
    solver.add_equation(
        std::span<const std::uint32_t>(neighbors[consumed]),
        std::span<const std::uint8_t>(symbols[consumed].payload));
    ++consumed;
  }
  const double solver_s = seconds_since(start);
  const double incidences =
      static_cast<double>(solver.stats().substitutions);

  start = Clock::now();
  codec::ReferencePeelingDecoder<std::uint32_t> reference;
  std::size_t ref_consumed = 0;
  while (reference.known_count() < blocks && ref_consumed < symbols.size()) {
    reference.add_equation(
        std::span<const std::uint32_t>(neighbors[ref_consumed]),
        std::span<const std::uint8_t>(symbols[ref_consumed].payload));
    ++ref_consumed;
  }
  const double reference_s = seconds_since(start);

  const double per_s = incidences / solver_s;
  std::printf("=== peeling substitution (%zu blocks): %.1f M incidences/s "
              "flat-arena vs %.1f M list-based (%.2fx) ===\n\n",
              blocks, per_s / 1e6, incidences / reference_s / 1e6,
              reference_s / solver_s);
  report.add("substitution_incidences_per_s", per_s);
  report.add("substitution_speedup_vs_reference", reference_s / solver_s);
}

/// Inactivation solve phase at a forced residual of u unknowns: constant
/// degree 3 never peels from cold (every recovery comes out of the GF(2)
/// elimination), and try_solve runs after every arrival past l — the
/// endpoint-driven pattern. Only the try_solve calls are timed, isolating
/// incremental elimination-state maintenance vs the reference's
/// from-scratch rebuild. CI gates solve_incremental_speedup.
void print_solve_lanes(bench::JsonReport& report, bool smoke) {
  std::printf("=== inactivation solve phase: incremental vs scratch "
              "elimination (constant degree 3) ===\n");
  std::printf("%8s %16s %14s %10s\n", "u", "incremental ms", "scratch ms",
              "speedup");
  std::vector<std::size_t> sweep = {64u, 256u, 1024u};
  if (smoke) sweep = {64u};
  double gated_speedup = 0;
  for (const std::size_t u : sweep) {
    const int trials = u >= 1024 ? 1 : 3;
    double incremental_s = 0, scratch_s = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const auto dist = codec::DegreeDistribution::constant(3);
      util::Xoshiro256 rng(0x501 + 131 * static_cast<std::uint64_t>(trial));
      std::vector<std::uint8_t> content(u * 8);
      for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
      const codec::BlockSource source(content, 8);
      codec::Encoder encoder(source, dist,
                             0xE11 + static_cast<std::uint64_t>(trial));
      codec::InactivationDecoder incremental(encoder.parameters(), dist);
      codec::ReferenceInactivationDecoder scratch(encoder.parameters(), dist);
      const std::size_t max_symbols = 40 * u + 1000;
      while (!incremental.complete() &&
             incremental.received_count() < max_symbols) {
        const auto symbol = encoder.next();
        incremental.add_symbol(symbol);
        scratch.add_symbol(symbol);
        if (incremental.received_count() < u) continue;
        auto start = Clock::now();
        incremental.try_solve();
        incremental_s += seconds_since(start);
        start = Clock::now();
        scratch.try_solve();
        scratch_s += seconds_since(start);
      }
      if (!incremental.complete() || !scratch.complete()) {
        std::fprintf(stderr, "solve lane u=%zu trial %d did not converge\n",
                     u, trial);
        std::exit(1);
      }
    }
    const double speedup = scratch_s / incremental_s;
    std::printf("%8zu %16.3f %14.3f %9.1fx\n", u,
                incremental_s * 1e3 / trials, scratch_s * 1e3 / trials,
                speedup);
    report.add("solve_incremental_ms_u" + std::to_string(u),
               incremental_s * 1e3 / trials);
    report.add("solve_scratch_ms_u" + std::to_string(u),
               scratch_s * 1e3 / trials);
    report.add("solve_speedup_u" + std::to_string(u), speedup);
    if (u == sweep.front()) gated_speedup = speedup;
  }
  // The CI-gated lane: measured at the u every mode sweeps.
  report.add("solve_incremental_speedup", gated_speedup);
  std::printf("\n");
}

void BM_Encode(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const auto source = make_source(blocks, 1400);
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
  codec::Encoder encoder(source, dist, 7);
  codec::EncodedSymbol symbol;
  std::uint64_t id = 0;
  for (auto _ : state) {
    encoder.encode_into(symbol, id++);
    benchmark::DoNotOptimize(symbol.payload.data());
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_Encode)->Arg(1000)->Arg(10000);

void BM_DecodeFullFile(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const auto source = make_source(blocks, 64);
  const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
  codec::Encoder encoder(source, dist, 8);
  // Pre-generate enough symbols outside the timed loop.
  std::vector<codec::EncodedSymbol> symbols;
  for (std::size_t i = 0; i < 2 * blocks; ++i) symbols.push_back(encoder.next());
  for (auto _ : state) {
    codec::Decoder decoder(encoder.parameters(), dist);
    std::size_t i = 0;
    while (!decoder.complete() && i < symbols.size()) {
      decoder.add_symbol(symbols[i++]);
    }
    benchmark::DoNotOptimize(decoder.recovered_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(blocks));
}
BENCHMARK(BM_DecodeFullFile)->Arg(1000)->Arg(5000);

void BM_RecodeGenerate(benchmark::State& state) {
  const auto source = make_source(1000, 64);
  const auto dist = codec::DegreeDistribution::robust_soliton(1000);
  codec::Encoder encoder(source, dist, 9);
  std::vector<codec::EncodedSymbol> held;
  for (int i = 0; i < 600; ++i) held.push_back(encoder.next());
  codec::Recoder recoder(held);
  const auto recode_dist = dist.truncated(50);
  util::Xoshiro256 rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recoder.generate(recode_dist.sample(rng), rng));
  }
}
BENCHMARK(BM_RecodeGenerate);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = icd::bench::smoke_mode(argc, argv);
  // Strip --smoke before Google Benchmark sees the args.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) != "--smoke") args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());

  icd::bench::JsonReport report;
  report.add_string("bench", "codec");
  report.add_string("mode", smoke ? "smoke" : "full");
  print_xor_throughput(report, smoke);
  print_overhead_table(report, smoke);
  print_inactivation_table(smoke);
  print_decode_rate(report, smoke);
  print_sketch_decode(report, smoke);
  print_substitution_throughput(report, smoke);
  print_solve_lanes(report, smoke);
  report.write("BENCH_codec.json");

  if (!smoke) {
    benchmark::Initialize(&bench_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}

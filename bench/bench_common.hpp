#pragma once

// Shared helpers for the experiment harnesses. Each bench binary prints the
// rows/series of one table or figure from the paper, in a fixed-width
// format suitable for eyeballing against the original plots, and the perf
// benches additionally emit a machine-readable BENCH_*.json so successive
// PRs can track the throughput/allocation trajectory.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "overlay/scenario.hpp"
#include "overlay/sim_config.hpp"
#include "overlay/strategy.hpp"
#include "overlay/transfer.hpp"
#include "util/random.hpp"

namespace icd::bench {

/// Correlation sweep points used by Figures 5-8 (the paper plots x up to
/// the feasibility limit of each scenario; infeasible points clamp and the
/// realized correlation is printed).
inline std::vector<double> correlation_sweep(double max, double step = 0.05) {
  std::vector<double> points;
  for (double c = 0.0; c <= max + 1e-9; c += step) points.push_back(c);
  return points;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_strategy_columns() {
  std::printf("%11s", "corr");
  for (const auto strategy : overlay::kAllStrategies) {
    std::printf("%12s", std::string(overlay::strategy_name(strategy)).c_str());
  }
  std::printf("\n");
}

/// Averages `trials` runs of `run(seed)` (each returning a metric).
template <typename Fn>
double average_over_trials(std::size_t trials, std::uint64_t base_seed,
                           Fn&& run) {
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    total += run(base_seed + 1000003 * t);
  }
  return total / static_cast<double>(trials);
}

/// True when the binary was invoked with --smoke (tiny iteration counts so
/// CI can exercise the bench binaries without paying full measurement
/// time). Numbers produced under smoke are build-health checks, not
/// benchmarks.
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

/// Parses --shards N — the SimConfig::shards worker-pool knob shared by
/// the delivery engine and the Section 6 harnesses. 1 (the bit-for-bit
/// single-threaded path) when absent or unparsable.
inline std::size_t shards_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") != 0) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "--shards needs a value; using 1\n");
      return 1;
    }
    // strtoul wraps negatives to huge values and stops at the first
    // non-digit; reject both rather than letting ShardPool try to spawn
    // 2^64 threads or silently dropping trailing garbage.
    char* end = nullptr;
    const unsigned long value = std::strtoul(argv[i + 1], &end, 10);
    if (end == argv[i + 1] || *end != '\0' || value == 0 || value > 256) {
      std::fprintf(stderr, "--shards %s not in [1, 256]; using 1\n",
                   argv[i + 1]);
      return 1;
    }
    return static_cast<std::size_t>(value);
  }
  return 1;
}

/// Flat key -> number report written as one JSON object. Keys are emitted
/// in insertion order; values print with enough precision to diff runs.
class JsonReport {
 public:
  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    entries_.emplace_back(key, buf);
  }
  void add(const std::string& key, std::size_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void add_string(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");
  }

  /// Writes {"k": v, ...} to `path`; returns false (and warns) on failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", entries_[i].first.c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace icd::bench

#pragma once

// Shared helpers for the experiment harnesses. Each bench binary prints the
// rows/series of one table or figure from the paper, in a fixed-width
// format suitable for eyeballing against the original plots.

#include <cstdio>
#include <string>
#include <vector>

#include "overlay/scenario.hpp"
#include "overlay/sim_config.hpp"
#include "overlay/strategy.hpp"
#include "overlay/transfer.hpp"
#include "util/random.hpp"

namespace icd::bench {

/// Correlation sweep points used by Figures 5-8 (the paper plots x up to
/// the feasibility limit of each scenario; infeasible points clamp and the
/// realized correlation is printed).
inline std::vector<double> correlation_sweep(double max, double step = 0.05) {
  std::vector<double> points;
  for (double c = 0.0; c <= max + 1e-9; c += step) points.push_back(c);
  return points;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_strategy_columns() {
  std::printf("%11s", "corr");
  for (const auto strategy : overlay::kAllStrategies) {
    std::printf("%12s", std::string(overlay::strategy_name(strategy)).c_str());
  }
  std::printf("\n");
}

/// Averages `trials` runs of `run(seed)` (each returning a metric).
template <typename Fn>
double average_over_trials(std::size_t trials, std::uint64_t base_seed,
                           Fn&& run) {
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    total += run(base_seed + 1000003 * t);
  }
  return total / static_cast<double>(trials);
}

}  // namespace icd::bench

// E1 (Section 5.2 figures): Bloom filter false-positive operating points and
// micro-benchmarks of the filter operations.
//
// Paper: "using just four bits per element and three hash functions yields a
// false positive probability of 14.7%; using eight bits per element and five
// hash functions yields a false positive probability of 2.2%."
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "filter/bloom.hpp"
#include "filter/compressed_bloom.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng();
  return keys;
}

void print_fp_table() {
  constexpr std::size_t n = 10000;
  struct Row {
    double bits;
    std::size_t hashes;
    double paper;
  };
  const Row rows[] = {{4.0, 3, 0.147}, {8.0, 5, 0.022}};

  std::printf("\n=== Section 5.2: Bloom filter false-positive rates (n=%zu) "
              "===\n",
              n);
  std::printf("%12s %8s %10s %10s %10s\n", "bits/elt", "hashes", "formula",
              "measured", "paper");
  for (const auto& row : rows) {
    const auto m = static_cast<std::size_t>(row.bits * n);
    filter::BloomFilter filter(m, row.hashes);
    filter.insert_all(random_keys(n, 1));
    util::Xoshiro256 rng(2);
    std::size_t fp = 0;
    constexpr std::size_t kProbes = 200000;
    for (std::size_t i = 0; i < kProbes; ++i) {
      if (filter.contains(rng())) ++fp;
    }
    std::printf("%12.0f %8zu %10.4f %10.4f %10.3f\n", row.bits, row.hashes,
                filter::BloomFilter::fp_rate(m, n, row.hashes),
                static_cast<double>(fp) / kProbes, row.paper);
  }

  std::printf("\n=== Extension: classical vs compressed Bloom filter at "
              "equal wire budget ===\n");
  std::printf("%12s %14s %14s %14s\n", "wire bits/n", "classical fp",
              "compressed fp", "RAM bits/n");
  for (const double budget : {4.0, 8.0, 12.0}) {
    auto classical = filter::BloomFilter::with_bits_per_element(n, budget);
    auto compressed = filter::CompressedBloomFilter::design(n, budget);
    const auto keys = random_keys(n, 11);
    classical.insert_all(keys);
    compressed.insert_all(keys);
    util::Xoshiro256 rng(12);
    std::size_t cfp = 0, zfp = 0;
    constexpr std::size_t kProbes2 = 100000;
    for (std::size_t i = 0; i < kProbes2; ++i) {
      const auto probe = rng();
      cfp += classical.contains(probe);
      zfp += compressed.contains(probe);
    }
    std::printf("%12.0f %14.4f %14.4f %14.1f\n", budget,
                static_cast<double>(cfp) / kProbes2,
                static_cast<double>(zfp) / kProbes2,
                static_cast<double>(compressed.memory_bits()) / n);
  }
  std::printf("\n");
}

void BM_BloomInsert(benchmark::State& state) {
  const auto keys = random_keys(10000, 3);
  for (auto _ : state) {
    auto filter = filter::BloomFilter::with_bits_per_element(keys.size(), 8.0);
    filter.insert_all(keys);
    benchmark::DoNotOptimize(filter);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  const auto keys = random_keys(10000, 4);
  auto filter = filter::BloomFilter::with_bits_per_element(keys.size(), 8.0);
  filter.insert_all(keys);
  const auto probes = random_keys(10000, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.contains(probes[i++ % probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery);

void BM_BloomSerialize(benchmark::State& state) {
  const auto keys = random_keys(10000, 6);
  auto filter = filter::BloomFilter::with_bits_per_element(keys.size(), 8.0);
  filter.insert_all(keys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.serialize());
  }
}
BENCHMARK(BM_BloomSerialize);

}  // namespace

int main(int argc, char** argv) {
  print_fp_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Figure 7: "Relative transfer rates using two partial senders, compared
// with a single full sender." Symbols are either shared by all peers or
// unique to one; each peer starts with the same number of symbols.
//
// Expected shape (paper): partial senders are additive but below the 2x of
// two full senders; informed strategies run closer to additive; rates fall
// as the shared fraction (correlation) grows.
#include "bench_common.hpp"

namespace {

/// --shards N: produce each round's sender symbols on a worker pool.
std::size_t g_shards = 1;

void run_scenario(const char* name, double stretch, double max_correlation,
                  std::size_t senders) {
  using namespace icd;
  using namespace icd::bench;

  overlay::SimConfig config;
  config.n = 1000;
  constexpr std::size_t kTrials = 5;

  print_header(std::string("Figure 7: relative rate, two partial senders — ") +
               name);
  print_strategy_columns();
  for (const double target_corr : correlation_sweep(max_correlation)) {
    double realized = target_corr;
    std::vector<double> values;
    for (const auto strategy : overlay::kAllStrategies) {
      const double rate = average_over_trials(
          kTrials, 4242, [&](std::uint64_t seed) {
            util::Xoshiro256 rng(seed);
            const auto scenario = overlay::make_multi_scenario(
                config.n, stretch, target_corr, senders, rng);
            realized = scenario.correlation;
            overlay::SimConfig c = config;
            c.seed = seed ^ 0xbeef;
            c.shards = g_shards;
            return overlay::run_multi_transfer(scenario, strategy, c)
                .speedup();
          });
      values.push_back(rate);
    }
    std::printf("%11.3f", realized);
    for (const double v : values) std::printf("%12.3f", v);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_shards = icd::bench::shards_arg(argc, argv);
  run_scenario("compact (1.1n distinct symbols)", icd::overlay::kCompactStretch,
               0.30, 2);
  run_scenario("stretched (1.5n distinct symbols)",
               icd::overlay::kStretchedStretch, 0.25, 2);
  return 0;
}

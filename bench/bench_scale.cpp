// Scale curve for the delivery engines: swarm sizes 1k / 10k / 100k through
// the sharded engine with sampled admission and the incremental planning
// queue. Emits BENCH_scale.json.
//
// Per swarm size the harness reports:
//   * peers_per_sec_per_core — admitted peers divided by wall-clock seconds
//     and by worker shards (the headline "how big a swarm fits a box"
//     figure);
//   * peer_ticks_per_sec_per_core — peer-ticks of simulation work per
//     second per shard (throughput independent of completion time);
//   * queue_ops_per_tick — incremental planning-queue operations per
//     executed tick (the rebuild-per-tick regression guard: ops stay
//     near the number of *changed* keys, not the swarm size);
//   * bytes_per_peer — the engine's memory audit at the end of the run
//     (decoders + endpoints + links over admitted peers).
//
// Two claims are gated in CI (which runs --smoke: the 1k point only):
//   * scale_determinism — two identical 1k runs produce byte-identical
//     completion trajectories and link totals;
//   * scale_1k_completed — the 1k swarm runs to full completion.
// The 10k point completes too; the 100k point is tick-bounded (partial
// progress is expected — the curve is about throughput, not completion).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/delivery.hpp"
#include "core/sharded_delivery.hpp"

namespace {

using namespace icd;

std::vector<std::uint8_t> make_content(std::size_t bytes) {
  std::vector<std::uint8_t> content(bytes);
  util::Xoshiro256 rng(0x5ca1e ^ 0x5eed);
  for (auto& b : content) b = static_cast<std::uint8_t>(rng());
  return content;
}

/// Small content, timed links, sampled admission: the per-peer work is
/// deliberately light so the harness measures engine overhead (planning,
/// placement, link servicing), not codec throughput.
core::DeliveryOptions scale_options() {
  core::DeliveryOptions options;
  options.block_size = 256;
  options.session_seed = 97;
  options.refresh_interval = 40;
  options.admission_sample = 4;
  options.link.delay_ticks = 1;
  return options;
}

struct ScalePoint {
  std::size_t peers = 0;
  std::size_t ticks = 0;
  std::size_t completed = 0;
  bool all_complete = false;
  double seconds = 0.0;
  double queue_ops_per_tick = 0.0;
  double bytes_per_peer = 0.0;
  std::vector<std::size_t> completion_ticks;
  std::uint64_t data_bytes = 0;
  std::uint64_t control_bytes = 0;
};

ScalePoint run_swarm(const std::vector<std::uint8_t>& content,
                     std::size_t peers, std::size_t shards,
                     std::size_t max_ticks) {
  core::ShardedDelivery service(content, scale_options(),
                                core::ShardOptions{shards});
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("p" + std::to_string(p), p % 8 == 0);
  }
  const auto start = std::chrono::steady_clock::now();
  service.run(max_ticks);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ScalePoint point;
  point.peers = peers;
  point.ticks = service.ticks();
  point.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  point.completion_ticks.reserve(peers);
  for (std::size_t p = 0; p < peers; ++p) {
    point.completed += service.peer_complete(p) ? 1 : 0;
    point.completion_ticks.push_back(service.peer_completion_tick(p));
  }
  point.all_complete = point.completed == peers;
  if (point.ticks > 0) {
    point.queue_ops_per_tick =
        static_cast<double>(service.planner_stats().ops()) /
        static_cast<double>(point.ticks);
  }
  point.bytes_per_peer = service.memory_audit().bytes_per_peer();
  const auto totals = service.link_totals();
  point.data_bytes = totals.data_bytes;
  point.control_bytes = totals.control_bytes;
  return point;
}

void report_point(bench::JsonReport& report, const std::string& tag,
                  const ScalePoint& point, std::size_t shards) {
  const double denom =
      point.seconds > 0.0 ? point.seconds * static_cast<double>(shards) : 1.0;
  const double peers_per_sec_per_core =
      static_cast<double>(point.peers) / denom;
  const double peer_ticks_per_sec_per_core =
      static_cast<double>(point.peers) * static_cast<double>(point.ticks) /
      denom;
  std::printf("%8zu peers: %7.2fs %4zu ticks  %10.0f peers/s/core  "
              "%12.0f peer-ticks/s/core  %7.1f q-ops/tick  %8.0f B/peer  "
              "completed %zu/%zu\n",
              point.peers, point.seconds, point.ticks, peers_per_sec_per_core,
              peer_ticks_per_sec_per_core, point.queue_ops_per_tick,
              point.bytes_per_peer, point.completed, point.peers);
  report.add("scale_" + tag + "_peers", point.peers);
  report.add("scale_" + tag + "_ticks", point.ticks);
  report.add("scale_" + tag + "_seconds", point.seconds);
  report.add("scale_" + tag + "_peers_per_sec_per_core",
             peers_per_sec_per_core);
  report.add("scale_" + tag + "_peer_ticks_per_sec_per_core",
             peer_ticks_per_sec_per_core);
  report.add("scale_" + tag + "_queue_ops_per_tick",
             point.queue_ops_per_tick);
  report.add("scale_" + tag + "_bytes_per_peer", point.bytes_per_peer);
  report.add("scale_" + tag + "_completed",
             point.all_complete ? std::size_t{1} : std::size_t{0});
  report.add("scale_" + tag + "_completed_peers", point.completed);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const std::size_t shards = bench::shards_arg(argc, argv);
  const auto content = make_content(1024);
  bench::JsonReport report;
  bench::print_header("delivery engine scale curve");
  report.add("scale_shards", shards);

  // Determinism gate: the 1k point twice, byte-for-byte.
  const ScalePoint first = run_swarm(content, 1000, shards, 20000);
  const ScalePoint second = run_swarm(content, 1000, shards, 20000);
  const bool deterministic =
      first.completion_ticks == second.completion_ticks &&
      first.data_bytes == second.data_bytes &&
      first.control_bytes == second.control_bytes &&
      first.ticks == second.ticks;
  report_point(report, "1k", first, shards);
  std::printf("1k determinism (trajectory + link totals): %s\n",
              deterministic ? "EXACT" : "MISMATCH");
  report.add("scale_determinism",
             deterministic ? std::size_t{1} : std::size_t{0});

  if (!smoke) {
    const ScalePoint mid = run_swarm(content, 10000, shards, 20000);
    report_point(report, "10k", mid, shards);
    // Tick-bounded: throughput sample, completion not expected.
    const ScalePoint top = run_swarm(content, 100000, shards, 200);
    report_point(report, "100k", top, shards);
  }

  report.write("BENCH_scale.json");
  return deterministic && first.all_complete ? 0 : 1;
}

// Table 4(b): "Accuracy of approximate reconciliation trees" — fraction of
// differences found for 2/4/6/8 bits per element and correction levels
// 0..5, "using the optimal distribution of bits between leaves and interior
// nodes" (here: best over a grid of leaf/internal splits).
//
// Paper's reference values:
//   correction   2       4       6       8     (bits/element)
//        0     0.0000  0.0087  0.0997  0.2540
//        5     0.2677  0.6165  0.8239  0.9234
#include <cstdio>
#include <vector>

#include "art/art_summary.hpp"
#include "art/reconciliation_tree.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;

std::vector<std::uint64_t> random_keys(std::size_t n, util::Xoshiro256& rng) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng());
  return keys;
}

double accuracy_at(double leaf_bits, double internal_bits, int correction,
                   std::size_t set_size, std::size_t differences,
                   int trials) {
  double found = 0;
  for (int trial = 0; trial < trials; ++trial) {
    util::Xoshiro256 rng(5000 + trial);
    auto remote_keys = random_keys(set_size, rng);
    auto local_keys = remote_keys;
    const auto extra = random_keys(differences, rng);
    local_keys.insert(local_keys.end(), extra.begin(), extra.end());
    const art::ReconciliationTree remote(remote_keys);
    const art::ReconciliationTree local(local_keys);
    const auto summary =
        art::ArtSummary::build(remote, leaf_bits, internal_bits);
    found += static_cast<double>(
        art::find_local_differences(local, summary, correction).size());
  }
  return found / (trials * static_cast<double>(differences));
}

}  // namespace

int main() {
  constexpr std::size_t kSetSize = 10000;
  constexpr std::size_t kDifferences = 100;
  constexpr int kTrials = 3;
  const std::vector<double> budgets{2.0, 4.0, 6.0, 8.0};

  std::printf(
      "\n=== Table 4(b): ART accuracy, optimal leaf/internal split (n=%zu, "
      "d=%zu) ===\n",
      kSetSize, kDifferences);
  std::printf("%10s", "correction");
  for (const double b : budgets) std::printf("   bits=%4.0f", b);
  std::printf("\n");

  for (int correction = 0; correction <= 5; ++correction) {
    std::printf("%10d", correction);
    for (const double budget : budgets) {
      // "Optimal distribution of bits": search the split grid.
      double best = 0.0;
      for (double leaf_share = 0.25; leaf_share <= 0.875 + 1e-9;
           leaf_share += 0.125) {
        const double acc =
            accuracy_at(budget * leaf_share, budget * (1.0 - leaf_share),
                        correction, kSetSize, kDifferences, kTrials);
        if (acc > best) best = acc;
      }
      std::printf("%12.4f", best);
    }
    std::printf("\n");
  }
  std::printf("\npaper      bits=2: 0.0000..0.2677   bits=8: 0.2540..0.9234 "
              "(correction 0..5)\n");
  return 0;
}

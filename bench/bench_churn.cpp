// Fault-tolerant delivery under churn: one fault schedule (crash + restart,
// stall window, flash-crowd join, link blackout) over timed Gilbert-Elliott
// burst-loss links, run through every engine/driver combination. Emits
// BENCH_churn.json.
//
// Three claims are measured and gated:
//   * fault_determinism — with faults enabled, legacy lockstep, legacy
//     event-loop and shards=1 trajectories are identical, and the shards=2
//     jump reproduces its own lockstep run exactly (the engine equality
//     contracts survive churn; multi-shard is a different but internally
//     deterministic trajectory);
//   * all_survivors_completed — every peer that is up at the end of the
//     schedule finishes its download (churn never strands the swarm);
//   * max_stall_ticks — after a sender crashes mid-transfer, its receivers
//     flag the silence within the liveness timeout plus scheduling slack
//     (bounded failure detection, not an indefinite hang).
// Also reported (untracked): the Recode-vs-Random completion gap under
// burst loss — recoded symbols keep their usefulness when losses arrive in
// bursts, the paper's robustness argument for recoding.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/delivery.hpp"
#include "core/fault_plan.hpp"
#include "core/sharded_delivery.hpp"

namespace {

using namespace icd;

std::vector<std::uint8_t> make_content(std::size_t bytes) {
  std::vector<std::uint8_t> content(bytes);
  util::Xoshiro256 rng(0xc412 ^ 0x5eed);
  for (auto& b : content) b = static_cast<std::uint8_t>(rng());
  return content;
}

/// Timed links with Gilbert-Elliott burst loss — the substrate every churn
/// run shares.
core::DeliveryOptions churn_options() {
  core::DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 71;
  options.refresh_interval = 50;
  options.flow_control = true;
  options.handshake_retry_ticks = 24;
  options.link.mtu = 600;
  options.link.delay_ticks = 2;
  options.link.jitter_ticks = 1;
  options.link.rate_bytes_per_tick = 1200.0;
  options.link.ge_loss_good = 0.01;
  options.link.ge_loss_bad = 0.5;
  options.link.ge_p_good_bad = 0.02;
  options.link.ge_p_bad_good = 0.2;
  options.liveness_timeout_ticks = 30;
  options.handshake_backoff_factor = 2;
  options.handshake_backoff_cap_ticks = 64;
  options.max_handshake_retries = 6;
  options.suspect_ttl_ticks = 60;
  return options;
}

std::shared_ptr<core::FaultPlan> churn_plan() {
  auto plan = std::make_shared<core::FaultPlan>();
  plan->crashes.push_back({120, 3});
  plan->restarts.push_back({300, 3});
  plan->stalls.push_back({150, 250, 4});
  plan->joins.push_back({200, 2, false});
  plan->blackouts.push_back({100, 180, 0, 1});
  return plan;
}

struct ChurnRun {
  bool completed = false;
  std::size_t peer_count = 0;
  std::vector<std::size_t> completion_ticks;
  std::size_t control_bytes = 0;
  std::size_t data_bytes = 0;
  std::size_t data_frames = 0;
  std::size_t failed_sessions = 0;
  std::uint64_t ticks_skipped = 0;
};

template <typename Service>
ChurnRun harvest(Service& service) {
  ChurnRun run;
  run.peer_count = service.peer_count();
  run.completed = true;
  for (std::size_t p = 0; p < run.peer_count; ++p) {
    run.completion_ticks.push_back(service.peer_completion_tick(p));
    run.completed = run.completed && service.peer_complete(p);
    run.failed_sessions += service.session_result(p).failed_peers.size();
  }
  const auto totals = service.link_totals();
  run.control_bytes = totals.control_bytes;
  run.data_bytes = totals.data_bytes;
  run.data_frames = totals.data_frames;
  run.ticks_skipped = service.ticks_skipped();
  return run;
}

template <typename Service>
void add_peers(Service& service, std::size_t peers, std::size_t fed) {
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("peer" + std::to_string(p), p < fed);
  }
}

/// Lockstep tick loop that keeps going until every scheduled fault fired
/// (the restart at tick 300 is the last) and every peer — including the
/// flash-crowd joiners — completed.
template <typename Service>
void drive_lockstep(Service& service, std::size_t max_ticks) {
  for (std::size_t t = 0; t < max_ticks; ++t) {
    service.tick();
    if (service.ticks() <= 300) continue;
    bool all = true;
    for (std::size_t p = 0; p < service.peer_count(); ++p) {
      all = all && service.peer_complete(p);
    }
    if (all) return;
  }
}

bool same_trajectory(const ChurnRun& a, const ChurnRun& b) {
  return a.peer_count == b.peer_count &&
         a.completion_ticks == b.completion_ticks &&
         a.control_bytes == b.control_bytes && a.data_bytes == b.data_bytes &&
         a.data_frames == b.data_frames &&
         a.failed_sessions == b.failed_sessions;
}

/// Crash-detection latency: a fed sender crashes mid-epoch (offset from
/// the refresh boundary so its sessions are mid-transfer) and never comes
/// back. Returns the worst crash-to-diagnostic latency over all receivers,
/// plus whether every survivor still completed.
struct StallProbe {
  std::uint64_t max_stall_ticks = 0;
  bool detected = false;
  bool survivors_completed = false;
};

StallProbe probe_crash_stall(const std::vector<std::uint8_t>& content,
                             std::size_t max_ticks) {
  constexpr std::size_t kCrashedPeer = 1;
  constexpr std::uint64_t kCrashTick = 80;
  core::DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 72;
  options.refresh_interval = 60;
  options.liveness_timeout_ticks = 25;
  options.handshake_backoff_factor = 2;
  options.handshake_backoff_cap_ticks = 32;
  options.max_handshake_retries = 5;
  options.suspect_ttl_ticks = 60;
  auto plan = std::make_shared<core::FaultPlan>();
  plan->crashes.push_back({kCrashTick, kCrashedPeer});
  options.faults = std::move(plan);

  core::ContentDeliveryService service(content, options);
  add_peers(service, 4, 2);

  StallProbe probe;
  std::vector<std::size_t> seen_failures(4, 0);
  for (std::size_t t = 0; t < max_ticks; ++t) {
    service.tick();
    for (std::size_t p = 0; p < 4; ++p) {
      if (p == kCrashedPeer) continue;
      const auto result = service.session_result(p);
      for (std::size_t i = seen_failures[p]; i < result.failed_peers.size();
           ++i) {
        const auto& failed = result.failed_peers[i];
        if (failed.peer != kCrashedPeer || failed.tick < kCrashTick) continue;
        probe.detected = true;
        probe.max_stall_ticks =
            std::max(probe.max_stall_ticks, failed.tick - kCrashTick);
      }
      seen_failures[p] = result.failed_peers.size();
    }
    bool survivors = true;
    for (std::size_t p = 0; p < 4; ++p) {
      survivors = survivors && (p == kCrashedPeer || service.peer_complete(p));
    }
    if (survivors && probe.detected) {
      probe.survivors_completed = true;
      break;
    }
  }
  return probe;
}

/// Strategy comparison under burst loss: the same swarm, Recode vs Random,
/// untimed GE links. Recoded symbols survive the burst structure better —
/// the completion gap is the report's robustness headline.
std::size_t strategy_completion_total(const std::vector<std::uint8_t>& content,
                                      overlay::Strategy strategy,
                                      std::size_t max_ticks) {
  core::DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 73;
  options.refresh_interval = 40;
  options.strategy = strategy;
  options.link.ge_loss_good = 0.02;
  options.link.ge_loss_bad = 0.6;
  options.link.ge_p_good_bad = 0.03;
  options.link.ge_p_bad_good = 0.15;
  core::ContentDeliveryService service(content, options);
  add_peers(service, 5, 1);
  service.run(max_ticks);
  std::size_t total = 0;
  for (std::size_t p = 0; p < service.peer_count(); ++p) {
    const std::size_t tick = service.peer_completion_tick(p);
    total += tick != 0 ? tick : max_ticks;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = icd::bench::smoke_mode(argc, argv);
  const std::size_t content_bytes = smoke ? 64 * 24 : 64 * 48;
  const std::size_t peers = smoke ? 6 : 8;
  const std::size_t max_ticks = smoke ? 30000 : 60000;
  const auto content = make_content(content_bytes);

  icd::bench::JsonReport report;
  report.add_string("bench", "fault_churn");
  report.add_string("mode", smoke ? "smoke" : "full");
  report.add("peers", peers);
  report.add("content_bytes", content_bytes);

  // --- Determinism under churn: four engine/driver combinations ----------
  const auto with_faults = [&]() {
    auto options = churn_options();
    options.faults = churn_plan();
    return options;
  };
  core::ContentDeliveryService legacy_lockstep(content, with_faults());
  add_peers(legacy_lockstep, peers, 2);
  drive_lockstep(legacy_lockstep, max_ticks);
  const ChurnRun baseline = harvest(legacy_lockstep);

  core::ContentDeliveryService legacy_jump(content, with_faults());
  add_peers(legacy_jump, peers, 2);
  legacy_jump.run(max_ticks);
  const ChurnRun jumped = harvest(legacy_jump);

  core::ShardedDelivery shards1(content, with_faults(),
                                core::ShardOptions{1});
  add_peers(shards1, peers, 2);
  shards1.run(max_ticks);
  const ChurnRun sharded1 = harvest(shards1);

  // Multi-shard trajectories legitimately differ from the legacy engine
  // (different link plumbing); the contract for shards >= 2 is that the
  // event-loop jump reproduces that engine's own lockstep run exactly.
  core::ShardedDelivery shards2_lockstep(content, with_faults(),
                                         core::ShardOptions{2});
  add_peers(shards2_lockstep, peers, 2);
  drive_lockstep(shards2_lockstep, max_ticks);
  const ChurnRun sharded2_base = harvest(shards2_lockstep);

  core::ShardedDelivery shards2_jump(content, with_faults(),
                                     core::ShardOptions{2});
  add_peers(shards2_jump, peers, 2);
  shards2_jump.run(max_ticks);
  const ChurnRun sharded2 = harvest(shards2_jump);

  const bool deterministic = same_trajectory(baseline, jumped) &&
                             same_trajectory(baseline, sharded1) &&
                             same_trajectory(sharded2_base, sharded2);
  const bool churn_completed = baseline.completed && jumped.completed &&
                               sharded1.completed && sharded2.completed;
  std::printf(
      "churn determinism (lockstep==jump==shards1, shards2 jump==lockstep): "
      "%s\n",
      deterministic ? "EXACT" : "MISMATCH");
  std::printf("churn swarm: %zu peers (%zu joined), completed=%s, "
              "%zu failed sessions, %zu data B\n",
              baseline.peer_count, baseline.peer_count - peers,
              churn_completed ? "yes" : "NO", baseline.failed_sessions,
              baseline.data_bytes);
  report.add("fault_determinism",
             deterministic ? std::size_t{1} : std::size_t{0});
  report.add("churn_completed", churn_completed ? std::size_t{1}
                                                : std::size_t{0});
  report.add("churn_peer_count", baseline.peer_count);
  report.add("churn_failed_sessions", baseline.failed_sessions);
  report.add("churn_data_bytes", baseline.data_bytes);
  report.add("churn_control_bytes", baseline.control_bytes);
  report.add("churn_ticks_skipped", jumped.ticks_skipped);

  // --- Crash-detection latency -------------------------------------------
  const StallProbe probe = probe_crash_stall(content, max_ticks);
  // Liveness timeout plus sweep/scheduling slack: detection must not slip
  // into "wait for the next refresh epoch" territory.
  const std::uint64_t stall_bound = 25 + 15;
  std::printf("crash detection: stall=%llu ticks (bound %llu), "
              "survivors %s\n",
              static_cast<unsigned long long>(probe.max_stall_ticks),
              static_cast<unsigned long long>(stall_bound),
              probe.survivors_completed ? "completed" : "INCOMPLETE");
  report.add("max_stall_ticks",
             static_cast<std::size_t>(probe.max_stall_ticks));
  report.add("stall_bound", static_cast<std::size_t>(stall_bound));
  report.add("stall_detected", probe.detected ? std::size_t{1}
                                              : std::size_t{0});
  const bool survivors_ok = probe.survivors_completed && churn_completed;
  report.add("all_survivors_completed",
             survivors_ok ? std::size_t{1} : std::size_t{0});

  // --- Recode vs Random under burst loss (reported, not gated) -----------
  const std::size_t recode_total = strategy_completion_total(
      content, overlay::Strategy::kRecode, max_ticks);
  const std::size_t random_total = strategy_completion_total(
      content, overlay::Strategy::kRandom, max_ticks);
  std::printf("burst-loss completion (sum of ticks): recode=%zu "
              "random=%zu (ratio %.3f)\n",
              recode_total, random_total,
              random_total > 0 ? static_cast<double>(recode_total) /
                                     static_cast<double>(random_total)
                               : 0.0);
  report.add("recode_completion_ticks_total", recode_total);
  report.add("random_completion_ticks_total", random_total);

  report.write("BENCH_churn.json");
  const bool ok = deterministic && survivors_ok && probe.detected &&
                  probe.max_stall_ticks <= stall_bound;
  return ok ? 0 : 1;
}

// Sharded delivery engine scaling: a 64-peer swarm downloading one piece
// of content through ContentDeliveryService-style ticks, run on 1/2/4/8
// worker shards of core::ShardedDelivery. Emits BENCH_delivery.json.
//
// Two scaling views are reported:
//   * wall-clock speedup — honest elapsed time; meaningful when the
//     machine has at least as many cores as shards;
//   * critical-path speedup — the work model baseline_wall /
//     (serial_part + max per-shard thread-CPU time), which is what the
//     wall clock converges to on a sufficiently parallel machine. On
//     boxes with fewer cores than shards (CI runners, laptops in
//     containers) this is the only view that can show scaling, and the
//     JSON labels which basis the headline speedup uses.
//
// Also checks the determinism contract on every run: shards = 1 must
// reproduce the legacy single-threaded ContentDeliveryService per-peer
// results exactly (completion ticks and cumulative wire accounting).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/delivery.hpp"
#include "core/sharded_delivery.hpp"

namespace {

using namespace icd;

std::vector<std::uint8_t> make_content(std::size_t bytes) {
  std::vector<std::uint8_t> content(bytes);
  util::Xoshiro256 rng(0xc0ffee);
  for (auto& b : content) b = static_cast<std::uint8_t>(rng());
  return content;
}

core::DeliveryOptions delivery_options() {
  core::DeliveryOptions options;
  options.block_size = 512;
  options.max_peer_sessions = 2;
  options.refresh_interval = 40;
  return options;
}

struct SwarmRun {
  bool completed = false;
  std::size_t ticks = 0;
  double wall_ms = 0.0;
  /// Sum over peers of distinct encoded symbols absorbed — the "work" the
  /// throughput figures are normalized by.
  std::size_t symbols = 0;
  double serial_ms = 0.0;    // wall time outside the parallel phases
  double max_busy_ms = 0.0;  // busiest shard's thread-CPU time
  std::vector<std::size_t> completion_ticks;
  std::size_t control_bytes = 0;
  std::size_t data_bytes = 0;
};

template <typename Service>
void drive(Service& service, std::size_t peers, std::size_t origin_fed,
           std::size_t max_ticks, SwarmRun& run) {
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("peer" + std::to_string(p), p < origin_fed);
  }
  run.completion_ticks.assign(peers, 0);
  for (std::size_t t = 0; t < max_ticks; ++t) {
    service.tick();
    for (std::size_t p = 0; p < peers; ++p) {
      if (run.completion_ticks[p] == 0 && service.peer_complete(p)) {
        run.completion_ticks[p] = service.ticks();
      }
    }
    bool all = true;
    for (std::size_t p = 0; p < peers; ++p) {
      all = all && service.peer_complete(p);
    }
    if (all) break;
  }
  run.ticks = service.ticks();
  run.completed = std::all_of(run.completion_ticks.begin(),
                              run.completion_ticks.end(),
                              [](std::size_t t) { return t != 0; });
  for (std::size_t p = 0; p < peers; ++p) {
    run.symbols += service.peer(p).symbol_count();
  }
  const auto totals = service.link_totals();
  run.control_bytes = totals.control_bytes;
  run.data_bytes = totals.data_bytes;
}

SwarmRun run_swarm(const std::vector<std::uint8_t>& content,
                   std::size_t shards, std::size_t peers,
                   std::size_t max_ticks) {
  SwarmRun run;
  core::ShardOptions shard_options;
  shard_options.shards = shards;
  core::ShardedDelivery service(content, delivery_options(), shard_options);
  service.add_mirror();
  const auto start = std::chrono::steady_clock::now();
  drive(service, peers, /*origin_fed=*/peers / 4, max_ticks, run);
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  run.serial_ms =
      run.wall_ms - static_cast<double>(service.parallel_wall_ns()) / 1e6;
  for (const std::uint64_t ns : service.shard_busy_ns()) {
    run.max_busy_ms = std::max(run.max_busy_ms, static_cast<double>(ns) / 1e6);
  }
  return run;
}

/// Timed-swarm run for the event-loop section: every link carries RTT,
/// jitter and a token-bucket pace, so empty tick spans exist for run() to
/// jump. `jump` off = the lockstep tick loop (the PR 4 behavior).
struct TimedRun {
  bool completed = false;
  std::size_t ticks = 0;
  double wall_ms = 0.0;
  std::vector<std::size_t> completion_ticks;
  std::uint64_t events_processed = 0;
  std::uint64_t ticks_skipped = 0;
  std::size_t control_bytes = 0;
  std::size_t data_bytes = 0;
};

TimedRun run_timed_swarm(const std::vector<std::uint8_t>& content,
                         std::size_t peers, std::size_t max_ticks,
                         bool jump) {
  core::DeliveryOptions options = delivery_options();
  options.flow_control = true;
  options.jump_empty_ticks = jump;
  options.link.loss_rate = 0.05;
  options.link.delay_ticks = 8;
  options.link.jitter_ticks = 2;
  options.link.rate_bytes_per_tick = 150.0;  // ~1 data frame per 4 ticks
  core::ShardedDelivery service(content, options, core::ShardOptions{1});
  service.add_mirror();
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("peer" + std::to_string(p), p < peers / 4);
  }
  TimedRun run;
  const auto start = std::chrono::steady_clock::now();
  run.completed = service.run(max_ticks);
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  run.ticks = service.ticks();
  run.completion_ticks.resize(peers);
  for (std::size_t p = 0; p < peers; ++p) {
    run.completion_ticks[p] = service.peer_completion_tick(p);
  }
  run.events_processed = service.events_processed();
  run.ticks_skipped = service.ticks_skipped();
  const auto totals = service.link_totals();
  run.control_bytes = totals.control_bytes;
  run.data_bytes = totals.data_bytes;
  return run;
}

/// shards = 1 must reproduce the legacy engine exactly.
bool check_determinism(const std::vector<std::uint8_t>& content,
                       std::size_t peers, std::size_t max_ticks) {
  SwarmRun legacy;
  {
    core::ContentDeliveryService service(content, delivery_options());
    service.add_mirror();
    drive(service, peers, peers / 4, max_ticks, legacy);
  }
  SwarmRun sharded = run_swarm(content, /*shards=*/1, peers, max_ticks);
  const bool equal = legacy.completion_ticks == sharded.completion_ticks &&
                     legacy.control_bytes == sharded.control_bytes &&
                     legacy.data_bytes == sharded.data_bytes &&
                     legacy.symbols == sharded.symbols;
  std::printf("determinism (shards=1 vs legacy): %s\n",
              equal ? "EXACT" : "MISMATCH");
  return equal;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = icd::bench::smoke_mode(argc, argv);
  const std::size_t peers = smoke ? 8 : 64;
  const std::size_t content_bytes = smoke ? 16 * 1024 : 96 * 1024;
  const std::size_t max_ticks = smoke ? 4000 : 20000;
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};

  const auto content = make_content(content_bytes);
  icd::bench::JsonReport report;
  report.add_string("bench", "delivery_shard_scaling");
  report.add_string("mode", smoke ? "smoke" : "full");
  report.add("peers", peers);
  report.add("content_bytes", content_bytes);
  report.add("hw_threads",
             static_cast<std::size_t>(std::thread::hardware_concurrency()));

  const bool deterministic = check_determinism(content, peers, max_ticks);
  report.add("shards1_matches_legacy", deterministic ? std::size_t{1}
                                                     : std::size_t{0});

  std::printf("%8s %10s %12s %12s %12s %10s\n", "shards", "ticks", "wall ms",
              "serial ms", "max busy ms", "complete");
  double base_wall = 0.0;
  double wall_speedup_at_8 = 0.0;
  double model_speedup_at_8 = 0.0;
  for (const std::size_t shards : shard_counts) {
    const SwarmRun run = run_swarm(content, shards, peers, max_ticks);
    std::printf("%8zu %10zu %12.1f %12.1f %12.1f %10s\n", shards, run.ticks,
                run.wall_ms, run.serial_ms, run.max_busy_ms,
                run.completed ? "yes" : "NO");
    const std::string prefix = "shards" + std::to_string(shards);
    report.add(prefix + "_wall_ms", run.wall_ms);
    report.add(prefix + "_ticks", run.ticks);
    report.add(prefix + "_symbols", run.symbols);
    report.add(prefix + "_completed", run.completed ? std::size_t{1}
                                                    : std::size_t{0});
    report.add(prefix + "_sym_per_sec",
               run.wall_ms > 0
                   ? static_cast<double>(run.symbols) / (run.wall_ms / 1e3)
                   : 0.0);
    if (shards == 1) {
      base_wall = run.wall_ms;
    } else {
      // The parallel-machine model: serial part + the busiest shard's CPU
      // time is what the wall clock becomes once every shard has a core.
      const double modeled = run.serial_ms + run.max_busy_ms;
      const double wall_speedup =
          run.wall_ms > 0 ? base_wall / run.wall_ms : 0.0;
      const double model_speedup = modeled > 0 ? base_wall / modeled : 0.0;
      report.add(prefix + "_wall_speedup", wall_speedup);
      report.add(prefix + "_critical_path_ms", modeled);
      report.add(prefix + "_critical_path_speedup", model_speedup);
      if (shards == shard_counts.back()) {
        wall_speedup_at_8 = wall_speedup;
        model_speedup_at_8 = model_speedup;
      }
    }
  }

  // Event loop on a timed swarm: run() jumps empty tick spans; the
  // trajectory must equal the lockstep tick loop's exactly, and the jump
  // accounting (events_processed / ticks_skipped) plus the wall ratio is
  // tracked here.
  {
    const std::size_t timed_max = max_ticks * 4;
    const TimedRun lockstep =
        run_timed_swarm(content, peers, timed_max, /*jump=*/false);
    const TimedRun jumped =
        run_timed_swarm(content, peers, timed_max, /*jump=*/true);
    const bool matches =
        lockstep.completion_ticks == jumped.completion_ticks &&
        lockstep.control_bytes == jumped.control_bytes &&
        lockstep.data_bytes == jumped.data_bytes;
    const double speedup =
        jumped.wall_ms > 0.0 ? lockstep.wall_ms / jumped.wall_ms : 0.0;
    report.add("timed_eventloop_matches_lockstep",
               matches ? std::size_t{1} : std::size_t{0});
    report.add("timed_completed",
               jumped.completed ? std::size_t{1} : std::size_t{0});
    report.add("timed_ticks", jumped.ticks);
    report.add("timed_events_processed", jumped.events_processed);
    report.add("timed_ticks_skipped", jumped.ticks_skipped);
    report.add("timed_wall_speedup", speedup);
    std::printf(
        "timed swarm (event loop): %zu ticks, %zu events, %zu skipped, "
        "%.2fx vs lockstep, trajectory %s\n",
        jumped.ticks, static_cast<std::size_t>(jumped.events_processed),
        static_cast<std::size_t>(jumped.ticks_skipped), speedup,
        matches ? "EXACT" : "MISMATCH");
  }

  // Headline speedup: wall clock when the machine can actually run all
  // shards concurrently, the critical-path model otherwise.
  const std::size_t cores = std::thread::hardware_concurrency();
  const bool use_wall = cores >= shard_counts.back();
  report.add_string("speedup_basis", use_wall ? "wall_clock" : "critical_path");
  report.add("speedup_max_shards",
             use_wall ? wall_speedup_at_8 : model_speedup_at_8);
  std::printf("speedup at %zu shards: %.2fx (%s basis, %zu hw threads)\n",
              shard_counts.back(),
              use_wall ? wall_speedup_at_8 : model_speedup_at_8,
              use_wall ? "wall clock" : "critical path", cores);

  report.write("BENCH_delivery.json");
  return deterministic ? 0 : 1;
}

// Ablations for the design choices DESIGN.md calls out:
//   A1  recoding degree cap (the paper fixes 50)
//   A2  Recode/BF restricted-domain allowance (the "appropriate small size")
//   A3  CPI solve-time growth with discrepancy (the Theta(d^3) of §5.1)
//   A4  sketch size vs Recode/MW end-to-end overhead
//   A5  flat-arena vs list-based peeling solver (full-decode wall time)
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "codec/block_source.hpp"
#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/peeling.hpp"
#include "codec/solver_reference.hpp"
#include "overlay/scenario.hpp"
#include "overlay/sim_config.hpp"
#include "overlay/transfer.hpp"
#include "reconcile/cpi.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;
using Clock = std::chrono::steady_clock;

void ablate_degree_cap() {
  std::printf("\n=== Ablation A1: recode degree cap (compact, corr=0.3, "
              "Recode strategy) ===\n");
  std::printf("%8s %12s\n", "cap", "overhead");
  for (const std::size_t cap : {2u, 5u, 10u, 25u, 50u, 100u}) {
    double total = 0;
    constexpr int kTrials = 3;
    for (int t = 0; t < kTrials; ++t) {
      util::Xoshiro256 rng(600 + t);
      overlay::SimConfig config;
      config.n = 800;
      config.recode_degree_limit = cap;
      config.seed = 6000 + t;
      const auto scenario = overlay::make_pair_scenario(
          config.n, overlay::kCompactStretch, 0.3, rng);
      total += overlay::run_pair_transfer(scenario,
                                          overlay::Strategy::kRecode, config)
                   .overhead();
    }
    std::printf("%8zu %12.3f\n", cap, total / 3);
  }
}

void ablate_domain_allowance() {
  std::printf("\n=== Ablation A2: Recode/BF domain allowance (compact, "
              "corr=0.2) ===\n");
  std::printf("%10s %12s %12s\n", "allowance", "overhead", "completed");
  for (const double allowance : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    double total = 0;
    int completed = 0;
    constexpr int kTrials = 3;
    for (int t = 0; t < kTrials; ++t) {
      util::Xoshiro256 rng(700 + t);
      overlay::SimConfig config;
      config.n = 800;
      config.recode_domain_allowance = allowance;
      config.seed = 7000 + t;
      const auto scenario = overlay::make_pair_scenario(
          config.n, overlay::kCompactStretch, 0.2, rng);
      const auto result = overlay::run_pair_transfer(
          scenario, overlay::Strategy::kRecodeBloom, config);
      total += result.overhead();
      completed += result.completed;
    }
    std::printf("%10.2f %12.3f %11d/3\n", allowance, total / 3, completed);
  }
}

void ablate_cpi_cost() {
  std::printf("\n=== Ablation A3: CPI reconciliation cost vs discrepancy "
              "(Theta(d^3) solve) ===\n");
  std::printf("%8s %14s %14s\n", "d", "solve (ms)", "bytes on wire");
  for (const std::size_t d : {8u, 16u, 32u, 64u, 128u, 256u}) {
    util::Xoshiro256 rng(800);
    // Shared base set plus d/2 extras on each side.
    std::vector<std::uint64_t> a, b;
    for (int i = 0; i < 1000; ++i) {
      const auto key = rng.next_below(reconcile::kMaxCpiKey);
      a.push_back(key);
      b.push_back(key);
    }
    for (std::size_t i = 0; i < d / 2; ++i) {
      a.push_back(rng.next_below(reconcile::kMaxCpiKey));
      b.push_back(rng.next_below(reconcile::kMaxCpiKey));
    }
    const auto sketch = reconcile::make_cpi_sketch(a, d + 8);
    const auto start = Clock::now();
    const auto result = reconcile::cpi_reconcile(b, sketch, d);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    std::printf("%8zu %14.2f %14zu %s\n", d, ms, sketch.wire_bytes(),
                result.verified ? "" : "(unverified!)");
  }
}

void ablate_sketch_size() {
  std::printf("\n=== Ablation A4: sketch size vs Recode/MW overhead "
              "(compact, corr=0.35) ===\n");
  std::printf("%8s %12s\n", "minima", "overhead");
  for (const std::size_t perms : {16u, 32u, 64u, 128u, 256u}) {
    double total = 0;
    constexpr int kTrials = 3;
    for (int t = 0; t < kTrials; ++t) {
      util::Xoshiro256 rng(900 + t);
      overlay::SimConfig config;
      config.n = 800;
      config.sketch_permutations = perms;
      config.seed = 9000 + t;
      const auto scenario = overlay::make_pair_scenario(
          config.n, overlay::kCompactStretch, 0.35, rng);
      total += overlay::run_pair_transfer(
                   scenario, overlay::Strategy::kRecodeMinwise, config)
                   .overhead();
    }
    std::printf("%8zu %12.3f\n", perms, total / 3);
  }
}

void ablate_solver_layout() {
  std::printf("\n=== Ablation A5: peeling solver layout (full decode, "
              "robust soliton, 8 B payloads) ===\n");
  std::printf("%8s %14s %14s %10s\n", "blocks", "flat-arena ms",
              "list-based ms", "speedup");
  for (const std::size_t blocks : {1000u, 4000u, 16000u}) {
    util::Xoshiro256 rng(1000);
    std::vector<std::uint8_t> content(blocks * 8);
    for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
    const codec::BlockSource source(content, 8);
    const auto dist = codec::DegreeDistribution::robust_soliton(blocks);
    codec::Encoder encoder(source, dist, 1000);
    std::vector<codec::EncodedSymbol> symbols;
    std::vector<std::vector<std::uint32_t>> neighbors;
    for (std::size_t i = 0; i < 2 * blocks; ++i) {
      symbols.push_back(encoder.next());
      neighbors.push_back(codec::symbol_neighbors(encoder.parameters(), dist,
                                                  symbols.back().id));
    }

    auto start = Clock::now();
    codec::PeelingDecoder<std::uint32_t> flat;
    for (std::size_t i = 0; flat.known_count() < blocks && i < symbols.size();
         ++i) {
      flat.add_equation(std::span<const std::uint32_t>(neighbors[i]),
                        std::span<const std::uint8_t>(symbols[i].payload));
    }
    const double flat_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();

    start = Clock::now();
    codec::ReferencePeelingDecoder<std::uint32_t> list;
    for (std::size_t i = 0; list.known_count() < blocks && i < symbols.size();
         ++i) {
      list.add_equation(std::span<const std::uint32_t>(neighbors[i]),
                        std::span<const std::uint8_t>(symbols[i].payload));
    }
    const double list_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    std::printf("%8zu %14.2f %14.2f %9.2fx\n", blocks, flat_ms, list_ms,
                list_ms / flat_ms);
  }
}

}  // namespace

int main() {
  ablate_degree_cap();
  ablate_domain_allowance();
  ablate_cpi_cost();
  ablate_sketch_size();
  ablate_solver_layout();
  return 0;
}

// E10 (Section 4): accuracy of the three working-set similarity estimators
// within the paper's single-1KB-packet budget, plus sketch-update
// micro-benchmarks.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "sketch/bottomk.hpp"
#include "sketch/minwise.hpp"
#include "sketch/sampling.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;

constexpr std::uint64_t kUniverse = 1 << 24;

struct SetPair {
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  double containment;  // |A n B| / |B|
  double resemblance;
};

SetPair make_pair(std::size_t size, double containment, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto shared = static_cast<std::size_t>(containment * size);
  const auto ids =
      util::sample_without_replacement(kUniverse, 2 * size - shared, rng);
  SetPair pair;
  pair.a.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(size));
  pair.b.assign(ids.begin() + static_cast<std::ptrdiff_t>(size - shared),
                ids.end());
  pair.containment = static_cast<double>(shared) / size;
  pair.resemblance =
      static_cast<double>(shared) / static_cast<double>(2 * size - shared);
  return pair;
}

void print_estimator_table() {
  constexpr std::size_t kSetSize = 10000;
  constexpr int kTrials = 5;

  std::printf("\n=== Section 4: containment estimates, one 1KB packet per "
              "method (|A|=|B|=%zu) ===\n",
              kSetSize);
  std::printf("%8s %12s %12s %12s %12s\n", "true c", "minwise",
              "random-smpl", "mod-k", "(all est.)");
  for (const double c : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9}) {
    double mw = 0, rs = 0, mk = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto pair = make_pair(kSetSize, c, 40 + t);
      // Min-wise: 128 permutations = 1KB of 64-bit minima.
      sketch::MinwiseSketch sa(kUniverse, 128), sb(kUniverse, 128);
      sa.update_all(pair.a);
      sb.update_all(pair.b);
      mw += sketch::containment_from_resemblance(
          sketch::MinwiseSketch::resemblance(sa, sb), pair.a.size(),
          pair.b.size());
      // Random sampling: 128 keys = 1KB.
      util::Xoshiro256 rng(100 + t);
      const sketch::RandomSample sample(pair.b, 128, rng);
      const std::unordered_set<std::uint64_t> a_set(pair.a.begin(),
                                                    pair.a.end());
      rs += sample.estimate_containment(a_set);
      // Mod-k with k sized for ~128 samples.
      const sketch::ModKSample ma(pair.a, kSetSize / 128);
      const sketch::ModKSample mb(pair.b, kSetSize / 128);
      mk += sketch::ModKSample::estimate_containment(ma, mb);
    }
    std::printf("%8.2f %12.3f %12.3f %12.3f\n", c, mw / kTrials, rs / kTrials,
                mk / kTrials);
  }

  std::printf("\n=== Min-wise estimate std-dev vs sketch size (true r = "
              "1/3) ===\n");
  std::printf("%8s %12s %12s\n", "minima", "mean est", "std dev");
  for (const std::size_t perms : {32u, 64u, 128u, 256u, 512u}) {
    double total = 0, total_sq = 0;
    constexpr int kReps = 20;
    for (int t = 0; t < kReps; ++t) {
      const auto pair = make_pair(4000, 0.5, 200 + t);
      sketch::MinwiseSketch sa(kUniverse, perms), sb(kUniverse, perms);
      sa.update_all(pair.a);
      sb.update_all(pair.b);
      const double r = sketch::MinwiseSketch::resemblance(sa, sb);
      total += r;
      total_sq += r * r;
    }
    const double mean = total / kReps;
    const double var = total_sq / kReps - mean * mean;
    std::printf("%8zu %12.4f %12.4f\n", perms, mean,
                std::sqrt(std::max(0.0, var)));
  }

  std::printf("\n=== Extension: min-wise vs bottom-k at equal budget (128 "
              "values, true r = 1/3) ===\n");
  std::printf("%10s %12s %12s\n", "sketch", "mean est", "std dev");
  for (const bool bottomk : {false, true}) {
    double total = 0, total_sq = 0;
    constexpr int kReps = 30;
    for (int t = 0; t < kReps; ++t) {
      const auto pair = make_pair(4000, 0.5, 300 + t);
      double r;
      if (bottomk) {
        sketch::BottomKSketch sa(kUniverse, 128), sb(kUniverse, 128);
        sa.update_all(pair.a);
        sb.update_all(pair.b);
        r = sketch::BottomKSketch::resemblance(sa, sb);
      } else {
        sketch::MinwiseSketch sa(kUniverse, 128), sb(kUniverse, 128);
        sa.update_all(pair.a);
        sb.update_all(pair.b);
        r = sketch::MinwiseSketch::resemblance(sa, sb);
      }
      total += r;
      total_sq += r * r;
    }
    const double mean = total / kReps;
    const double var = total_sq / kReps - mean * mean;
    std::printf("%10s %12.4f %12.4f\n", bottomk ? "bottom-k" : "min-wise",
                mean, std::sqrt(std::max(0.0, var)));
  }
  std::printf("\n");
}

void BM_MinwiseUpdate(benchmark::State& state) {
  const auto perms = static_cast<std::size_t>(state.range(0));
  sketch::MinwiseSketch sketch(kUniverse, perms);
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    sketch.update(rng());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinwiseUpdate)->Arg(64)->Arg(128)->Arg(256);

void BM_MinwiseResemblance(benchmark::State& state) {
  const auto pair = make_pair(2000, 0.5, 2);
  sketch::MinwiseSketch sa(kUniverse, 128), sb(kUniverse, 128);
  sa.update_all(pair.a);
  sb.update_all(pair.b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch::MinwiseSketch::resemblance(sa, sb));
  }
}
BENCHMARK(BM_MinwiseResemblance);

}  // namespace

int main(int argc, char** argv) {
  print_estimator_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Adaptive overlay experiments (the Section 2.1 claims, quantified):
//   B1  sketch-based admission control vs random peer selection
//   B2  loss tolerance: completion time vs per-link loss rate
//   B3  churn tolerance: completion under peer crash/rejoin
//   B4  value of adaptation: completion vs reconfiguration interval
// All runs use the count-only overlay simulator with Recode/BF connections.
#include <cstdio>

#include "overlay/simulator.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;

overlay::AdaptiveOverlayConfig base_config(std::uint64_t seed) {
  overlay::AdaptiveOverlayConfig config;
  config.base.n = 400;
  config.base.seed = seed;
  config.peer_count = 12;
  config.origin_fanout = 2;
  config.connections_per_peer = 2;
  config.reconfigure_interval = 25;
  config.max_rounds = 60000;
  return config;
}

template <typename Mutate>
void sweep(const char* title, const char* xlabel,
           const std::vector<double>& xs, Mutate&& mutate) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%12s %14s %14s %14s %10s\n", xlabel, "mean rounds",
              "last finisher", "ctrl packets", "complete");
  for (const double x : xs) {
    double mean = 0, last = 0, control = 0;
    std::size_t complete = 0, runs = 3;
    for (std::uint64_t s = 0; s < runs; ++s) {
      auto config = base_config(77001 + s);
      mutate(config, x);
      const auto result = overlay::run_adaptive_overlay(config);
      mean += result.mean_completion;
      last += static_cast<double>(result.last_completion);
      control += static_cast<double>(result.control_packets);
      complete += result.completed_peers;
    }
    std::printf("%12.3f %14.1f %14.1f %14.1f %7zu/%zu\n", x,
                mean / static_cast<double>(runs),
                last / static_cast<double>(runs),
                control / static_cast<double>(runs), complete,
                runs * base_config(0).peer_count);
  }
}

}  // namespace

int main() {
  // B1: admission control on/off (x = 0 random selection, 1 sketch-based).
  sweep("B1: sketch admission control vs random peer selection",
        "admission", {0.0, 1.0}, [](auto& config, double x) {
          config.sketch_admission = x > 0.5;
        });

  // B2: loss tolerance.
  sweep("B2: completion vs per-link loss rate (Recode/BF overlay)",
        "loss", {0.0, 0.05, 0.1, 0.2, 0.3, 0.4},
        [](auto& config, double x) { config.loss_rate = x; });

  // B3: churn tolerance.
  sweep("B3: completion vs churn rate (peer crash + empty rejoin)",
        "churn/round", {0.0, 0.005, 0.01, 0.02},
        [](auto& config, double x) { config.churn_rate = x; });

  // B4: adaptation interval (0 = never reconfigure after join).
  sweep("B4: completion vs reconfiguration interval",
        "interval", {0.0, 10.0, 25.0, 50.0, 100.0, 400.0},
        [](auto& config, double x) {
          config.reconfigure_interval = static_cast<std::size_t>(x);
        });

  return 0;
}

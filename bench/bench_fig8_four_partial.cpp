// Figure 8: "Relative transfer rates using four partial senders, compared
// with a single full sender." As Figure 7 with four senders; the paper
// sweeps correlation to 0.5 in both scenarios.
//
// Expected shape (paper): four partial senders push the relative rate well
// above 2x ("while not as efficient as full senders, these flows are
// additive as with a true digital fountain"), with informed strategies
// closest to additive.
#include "bench_common.hpp"

namespace {

/// --shards N: produce each round's sender symbols on a worker pool.
std::size_t g_shards = 1;

void run_scenario(const char* name, double stretch, double max_correlation) {
  using namespace icd;
  using namespace icd::bench;

  overlay::SimConfig config;
  config.n = 1000;
  constexpr std::size_t kTrials = 5;

  print_header(
      std::string("Figure 8: relative rate, four partial senders — ") + name);
  print_strategy_columns();
  for (const double target_corr : correlation_sweep(max_correlation)) {
    double realized = target_corr;
    std::vector<double> values;
    for (const auto strategy : overlay::kAllStrategies) {
      const double rate = average_over_trials(
          kTrials, 31415, [&](std::uint64_t seed) {
            util::Xoshiro256 rng(seed);
            const auto scenario = overlay::make_multi_scenario(
                config.n, stretch, target_corr, 4, rng);
            realized = scenario.correlation;
            overlay::SimConfig c = config;
            c.seed = seed ^ 0xcafe;
            c.shards = g_shards;
            return overlay::run_multi_transfer(scenario, strategy, c)
                .speedup();
          });
      values.push_back(rate);
    }
    std::printf("%11.3f", realized);
    for (const double v : values) std::printf("%12.3f", v);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_shards = icd::bench::shards_arg(argc, argv);
  run_scenario("compact (1.1n distinct symbols)", icd::overlay::kCompactStretch,
               0.50);
  run_scenario("stretched (1.5n distinct symbols)",
               icd::overlay::kStretchedStretch, 0.50);
  return 0;
}

// Time-to-completion for the Figure 6-8 scenario family under *realistic*
// link behavior: per-link virtual clocks with heterogeneous RTT, jitter,
// token-bucket rate limits, and 5-20% edge loss — the dimension the
// paper's round-based Figures 6-8 abstract away. One receiver downloads
// concurrently from a set of senders (Figure 6: one full + one partial;
// Figure 7: two partials; Figure 8: four partials) over asymmetric
// ChannelLinks driven by the core::EventLoop, with closed-loop flow
// control on: the receiver re-issues its request as symbols land and every
// sender provably stops at satisfaction (gated in BENCH_latency.json,
// which CI validates).
//
// The metric is virtual ticks until the receiver holds the decoding
// target of distinct symbols. Lanes are asymmetric by construction: lane
// k's forward path doubles the base RTT and halves the base rate of lane
// k-1, so the scheduler genuinely services links at different cadences.
//
// Every scenario runs twice: once with the historical lockstep loop
// (every virtual tick iterated) and once on the core::EventLoop (the
// clock jumps straight to the next frame arrival / send credit /
// handshake retry). The two trajectories must be tick-for-tick identical
// — gated in BENCH_latency.json — and the event loop's wall-time speedup,
// events_processed and ticks_skipped are reported per scenario.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/endpoint.hpp"
#include "core/event_loop.hpp"
#include "core/origin.hpp"
#include "core/peer.hpp"
#include "overlay/scenario.hpp"
#include "util/random.hpp"
#include "wire/channel.hpp"
#include "wire/transport.hpp"

namespace {

using namespace icd;

struct BenchParams {
  std::size_t n = 400;               // blocks to recover
  std::size_t block_size = 64;       // bytes per block
  double stretch = 1.5;              // distinct symbols = stretch * n
  std::vector<double> loss_rates{0.05, 0.10, 0.20};
  std::vector<double> correlations{0.0, 0.2, 0.4};
  std::size_t max_ticks = 60000;
  /// The hirtt lanes deliver one frame per ~4096 ticks by design; their
  /// completion horizon is correspondingly longer.
  std::size_t hirtt_max_ticks = 3200000;
};

/// The asymmetric link profile of lane k: RTT doubles and the forward
/// rate halves with each lane; the reverse (control) path is narrower
/// still, so request updates are themselves paced.
struct LaneProfile {
  std::uint64_t delay = 0;
  double forward_rate = 0.0;
  double reverse_rate = 0.0;
};

LaneProfile lane_profile(std::size_t k) {
  LaneProfile profile;
  profile.delay = 2ull << k;                              // 4, 8, 16... RTT
  profile.forward_rate = 1200.0 / static_cast<double>(1ull << k);
  profile.reverse_rate = profile.forward_rate / 4.0;
  return profile;
}

/// The high-RTT / low-rate regime the event loop exists for: propagation
/// runs to hundreds of ticks and the token bucket grants roughly one data
/// frame per ~4096 ticks, so almost every lockstep iteration is empty —
/// the jumping driver executes only the ~1-in-500 ticks where a frame
/// arrives, credit refills, or a retry fires.
LaneProfile hirtt_profile(std::size_t k) {
  LaneProfile profile;
  profile.delay = 512ull << k;  // RTT 1024, 2048...
  profile.forward_rate = 0.03125 / static_cast<double>(1ull << k);
  profile.reverse_rate = 16.0;  // control path: slow but not strangled
  return profile;
}

/// One download lane: an asymmetric timed ChannelLink plus its endpoints.
struct Lane {
  Lane(core::Peer& sender_peer, core::Peer& receiver_peer,
       const core::SessionOptions& options, wire::ChannelConfig forward,
       wire::ChannelConfig reverse)
      : link(forward, reverse), sender(sender_peer, options, link.a()),
        receiver(receiver_peer, options, link.b()) {}

  wire::ChannelLink link;
  core::SenderEndpoint sender;
  core::ReceiverEndpoint receiver;
};

struct RunResult {
  std::size_t ticks = 0;
  bool completed = false;
  /// No sender sent a data frame after it acknowledged its stop.
  bool no_stop_violations = false;
  /// Lanes whose sender had acknowledged the stop at the freeze snapshot.
  std::size_t stopped_lanes = 0;
  std::size_t flow_updates = 0;
  std::size_t throttled = 0;
  /// Receiver's distinct-symbol count at the end (trajectory fingerprint
  /// for the lockstep-vs-event-loop equality gate).
  std::size_t symbols = 0;
  /// Event-loop accounting. Both modes pop services through the loop, so
  /// events_processed is nonzero in lockstep runs too; only the jumping
  /// run's numbers are reported (ticks_skipped is zero under lockstep).
  std::uint64_t events_processed = 0;
  std::uint64_t ticks_skipped = 0;
  /// Wall time of the completion loop.
  double wall_ms = 0.0;
};

/// Builds `count` distinct encoded symbols from one origin stream.
std::vector<codec::EncodedSymbol> build_universe(core::OriginServer& origin,
                                                 std::size_t count) {
  std::vector<codec::EncodedSymbol> universe;
  std::map<std::uint64_t, bool> seen;
  while (universe.size() < count) {
    auto symbol = origin.next();
    if (seen.emplace(symbol.id, true).second) {
      universe.push_back(std::move(symbol));
    }
  }
  return universe;
}

void preload(core::Peer& peer, const std::vector<std::uint64_t>& ids,
             const std::vector<codec::EncodedSymbol>& universe) {
  for (const std::uint64_t id : ids) {
    peer.receive_encoded(universe[static_cast<std::size_t>(id)]);
  }
}

/// Services every lane at virtual tick `now` in event order — the same
/// service rule the delivery engines use.
void service_lanes(std::vector<std::unique_ptr<Lane>>& lanes,
                   core::EventLoop& loop, std::uint64_t now,
                   std::size_t hint) {
  loop.clear();
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    Lane& lane = *lanes[k];
    lane.link.advance_to(now);
    core::LinkTimes times;
    times.timed = lane.link.timed();
    if (times.timed) {
      times.next_arrival = lane.link.next_arrival_at();
      times.send_credit_at = lane.link.a_send_ready_at(hint);
    }
    if (auto at = core::next_service_time(lane.sender, lane.receiver, times,
                                          now)) {
      loop.schedule(*at, core::EventKind::kService, k);
    }
  }
  while (auto event = loop.pop_due(now)) {
    Lane& lane = *lanes[event->key];
    lane.sender.tick();
    if (!lane.link.timed() || lane.link.a_send_ready_at(hint) <= now) {
      lane.sender.send_symbol();
    }
    lane.receiver.advance_to(now);
    lane.receiver.tick();
  }
}

/// The earliest virtual tick > now at which any lane has an event (frame
/// arrival, send credit, handshake retry) — where the jumping driver
/// wakes next. nullopt = every lane is provably drained and satisfied.
std::optional<std::uint64_t> next_lane_event(
    std::vector<std::unique_ptr<Lane>>& lanes, core::EventLoop& loop,
    std::uint64_t now, std::size_t hint) {
  loop.clear();
  const std::uint64_t next_tick = now + 1;
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    Lane& lane = *lanes[k];
    core::LinkTimes times;
    times.timed = lane.link.timed();
    if (times.timed) {
      times.next_arrival = lane.link.next_event_time();
      times.send_credit_at = lane.link.a_send_ready_at(hint);
    }
    core::schedule_download_events(loop, lane.sender, lane.receiver, times,
                                   next_tick, k);
  }
  const auto next = loop.peek();
  if (!next) return std::nullopt;
  return std::max(next->at, next_tick);
}

/// Runs one scenario: `sender_sets` partial senders (plus a full sender
/// when `with_full_sender`), asymmetric timed lanes, a given loss rate.
RunResult run_scenario(const BenchParams& params,
                       const std::vector<std::uint64_t>& receiver_ids,
                       const std::vector<std::vector<std::uint64_t>>&
                           sender_sets,
                       bool with_full_sender, overlay::Strategy strategy,
                       double loss, std::uint64_t seed, bool jump,
                       bool hirtt) {
  const auto distinct =
      static_cast<std::size_t>(params.stretch * double(params.n));
  std::vector<std::uint8_t> content(params.n * params.block_size, 0);
  util::Xoshiro256 content_rng(seed);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(content_rng());
  core::OriginServer origin(
      content, params.block_size,
      codec::DegreeDistribution::robust_soliton(params.n), seed ^ 0x0815);
  const auto universe = build_universe(origin, distinct);
  const auto distribution = codec::DegreeDistribution::robust_soliton(params.n);

  core::Peer receiver_peer("receiver", origin.parameters(), distribution);
  preload(receiver_peer, receiver_ids, universe);

  const std::size_t target =
      static_cast<std::size_t>(1.07 * static_cast<double>(params.n) + 0.999);
  const std::size_t needed = target > receiver_peer.symbol_count()
                                 ? target - receiver_peer.symbol_count()
                                 : 1;
  const std::size_t lane_count =
      sender_sets.size() + (with_full_sender ? 1 : 0);

  std::vector<std::unique_ptr<core::Peer>> sender_peers;
  std::vector<std::unique_ptr<Lane>> lanes;
  std::uint64_t max_rtt = 0;
  for (std::size_t k = 0; k < lane_count; ++k) {
    const bool full = with_full_sender && k == 0;
    auto peer = std::make_unique<core::Peer>(
        "sender" + std::to_string(k), origin.parameters(), distribution);
    if (full) {
      for (const auto& symbol : universe) peer->receive_encoded(symbol);
    } else {
      preload(*peer, sender_sets[k - (with_full_sender ? 1 : 0)], universe);
    }

    const LaneProfile profile = hirtt ? hirtt_profile(k) : lane_profile(k);
    max_rtt = std::max(max_rtt, 2 * profile.delay);
    wire::ChannelConfig forward;
    forward.mtu = 1024;
    forward.loss_rate = loss;
    forward.delay_ticks = profile.delay;
    forward.jitter_ticks = 2;
    forward.rate_bytes_per_tick = profile.forward_rate;
    forward.seed = seed ^ (0xf0 + k);
    wire::ChannelConfig reverse = forward;
    reverse.rate_bytes_per_tick = profile.reverse_rate;
    reverse.seed = seed ^ (0x0f + 31 * k);

    core::SessionOptions options;
    // Full senders serve fresh-equivalent symbols (kRandom over the whole
    // universe); partial senders use the strategy under test.
    options.strategy = full ? overlay::Strategy::kRandom : strategy;
    options.flow_control = true;
    options.flow_update_symbols = 8;
    // Partial lanes get a bounded share of the need; the full sender (the
    // Figure 6 baseline) streams for the whole transfer — request 0 =
    // full domain — and stops via the decode-complete zero update. A
    // bounded full sender could satisfy its share and stop while the
    // partial has no novel symbols left, stalling the run: per-lane
    // shares don't re-plan here (the delivery engines' refresh does that).
    options.requested_symbols =
        full ? 0
             : std::max<std::size_t>(1, (needed * 5 / 4) / lane_count);
    // Above the worst RTT, or every in-flight reply triggers a redundant
    // bundle re-send. On the hirtt lanes the reply's *serialization* time
    // dominates propagation (a ~1 KB sketch at a fraction of a byte per
    // tick), so the cadence must cover that too or each lane re-bundles
    // dozens of times per reply in flight.
    options.handshake_retry_ticks =
        std::max<std::size_t>(8, (hirtt ? 16 : 2) * max_rtt);
    options.seed = seed ^ (0xab5 + 7 * k);

    lanes.push_back(std::make_unique<Lane>(*peer, receiver_peer, options,
                                           forward, reverse));
    sender_peers.push_back(std::move(peer));
    lanes.back()->receiver.start();
  }

  core::EventLoop loop;
  const std::size_t hint = core::data_frame_bytes_hint(params.block_size);
  const std::uint64_t max_ticks =
      hirtt ? params.hirtt_max_ticks : params.max_ticks;
  RunResult result;
  std::uint64_t now = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  while (now < max_ticks) {
    service_lanes(lanes, loop, now, hint);
    // Complete on real decode, or on the figures' distinct-symbol target —
    // decoding can finish a few symbols early, at which point flow control
    // rightly stops every sender, so symbol count alone would never trip.
    if (receiver_peer.has_content() ||
        receiver_peer.symbol_count() >= target) {
      result.completed = true;
      break;
    }
    if (!jump) {
      ++now;
      continue;
    }
    // Event-loop mode: wake only when some lane has something to do. The
    // span in between is empty for every lane, so the trajectory — and
    // the completion tick — is identical to the lockstep loop's.
    const auto next = next_lane_event(lanes, loop, now, hint);
    if (!next) {
      now = max_ticks;  // drained forever: lockstep idles to the cap
      break;
    }
    loop.advance_to(now + 1);
    loop.skip_to(std::min<std::uint64_t>(*next, max_ticks));
    now = loop.now();
  }
  result.ticks = static_cast<std::size_t>(now);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  result.symbols = receiver_peer.symbol_count();
  result.events_processed = loop.events_processed();
  result.ticks_skipped = loop.ticks_skipped();

  // Satisfaction gate, per lane: once a *sender* has heard the
  // zero-remaining stop (sender.satisfied()), its data plane must be
  // frozen — not one further data frame across a second multi-RTT grace
  // window. Lanes whose request is not met (the receiver hit the global
  // target through other lanes first) legitimately keep streaming until a
  // driver-level teardown, which this harness deliberately does not
  // perform, and a stop still crossing the (paced, lossy) reverse path at
  // snapshot time is not a violation: the gate proves the protocol-level
  // stop, not its propagation latency.
  const std::uint64_t grace = 4 * max_rtt + 16;
  for (std::uint64_t g = 0; g < grace; ++g) {
    service_lanes(lanes, loop, now + g, hint);
  }
  std::vector<bool> sender_satisfied_at_snapshot(lanes.size(), false);
  std::vector<std::size_t> frames_at_snapshot(lanes.size(), 0);
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    sender_satisfied_at_snapshot[k] = lanes[k]->sender.satisfied();
    frames_at_snapshot[k] =
        lanes[k]->sender.transport().stats().data_frames_sent;
  }
  for (std::uint64_t g = 0; g < grace; ++g) {
    service_lanes(lanes, loop, now + grace + g, hint);
  }
  result.no_stop_violations = true;
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    const Lane& lane = *lanes[k];
    result.flow_updates += lane.receiver.flow_updates_sent();
    result.throttled += lane.link.a_to_b().throttled();
    if (!sender_satisfied_at_snapshot[k]) continue;
    ++result.stopped_lanes;
    const std::size_t frames_now =
        lane.sender.transport().stats().data_frames_sent;
    if (frames_now != frames_at_snapshot[k]) {
      result.no_stop_violations = false;
      std::fprintf(stderr,
                   "  lane %zu sent past its stop: data frames %zu -> %zu\n",
                   k, frames_at_snapshot[k], frames_now);
    }
  }
  return result;
}

const char* strategy_key(overlay::Strategy strategy) {
  switch (strategy) {
    case overlay::Strategy::kRandom: return "random";
    case overlay::Strategy::kRandomBloom: return "randombf";
    case overlay::Strategy::kRecode: return "recode";
    case overlay::Strategy::kRecodeBloom: return "recodebf";
    case overlay::Strategy::kRecodeMinwise: return "recodemw";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icd;
  const bool smoke = bench::smoke_mode(argc, argv);

  BenchParams params;
  if (smoke) {
    params.n = 150;
    params.loss_rates = {0.10};
    params.correlations = {0.2};
  }
  const std::vector<overlay::Strategy> strategies{
      overlay::Strategy::kRecodeBloom, overlay::Strategy::kRandom};

  bench::JsonReport report;
  report.add("n", params.n);
  report.add("block_size", params.block_size);
  report.add_string("mode", smoke ? "smoke" : "full");
  report.add_string(
      "metric",
      "virtual ticks to the decoding target over asymmetric rate-limited "
      "links (lane k: RTT 2^k*4 ticks, forward rate 1200/2^k B/tick)");

  bool all_completed = true;
  bool no_violations = true;
  bool eventloop_matches = true;
  std::size_t stopped_lanes_total = 0;
  std::size_t flow_updates_total = 0;
  std::size_t throttled_total = 0;
  std::uint64_t events_total = 0;
  std::uint64_t skipped_total = 0;
  double speedup_max = 0.0;
  double speedup_fig8_max = 0.0;
  double speedup_hirtt_max = 0.0;

  struct Fig {
    const char* name;
    std::size_t partial_senders;
    bool full_sender;
    bool hirtt = false;
  };
  // The Figure 6-8 families plus the high-RTT/low-rate lane pair (hirtt):
  // the regime where lockstep iteration burns thousands of empty ticks
  // between frame arrivals, and the event loop's jump pays off.
  const std::vector<Fig> figs{{"fig6", 1, true},
                              {"fig7", 2, false},
                              {"fig8", 4, false},
                              {"hirtt", 1, true, true}};

  for (const Fig& fig : figs) {
    bench::print_header(std::string("Latency ") + fig.name +
                        ": ticks to completion (asymmetric timed links)");
    for (const double corr : params.correlations) {
      for (const double loss : params.loss_rates) {
        for (const auto strategy : strategies) {
          const std::uint64_t seed =
              0x1a7e9c1ULL ^ (static_cast<std::uint64_t>(corr * 100) << 20) ^
              (static_cast<std::uint64_t>(loss * 100) << 8);
          util::Xoshiro256 scenario_rng(seed);
          std::vector<std::uint64_t> receiver_ids;
          std::vector<std::vector<std::uint64_t>> sender_sets;
          if (fig.full_sender) {
            const auto scenario = overlay::make_pair_scenario(
                params.n, params.stretch, corr, scenario_rng);
            receiver_ids = scenario.receiver;
            sender_sets.push_back(scenario.sender);
          } else {
            const auto scenario = overlay::make_multi_scenario(
                params.n, params.stretch, corr, fig.partial_senders,
                scenario_rng);
            receiver_ids = scenario.receiver;
            sender_sets = scenario.senders;
          }

          // Same scenario through both drivers: the historical lockstep
          // loop, then the jumping event loop — equality is the gate,
          // the wall-time ratio is the headline.
          const RunResult lockstep =
              run_scenario(params, receiver_ids, sender_sets,
                           fig.full_sender, strategy, loss, seed ^ 0xbead,
                           /*jump=*/false, fig.hirtt);
          const RunResult run =
              run_scenario(params, receiver_ids, sender_sets,
                           fig.full_sender, strategy, loss, seed ^ 0xbead,
                           /*jump=*/true, fig.hirtt);
          const bool matches = run.ticks == lockstep.ticks &&
                               run.symbols == lockstep.symbols &&
                               run.completed == lockstep.completed &&
                               run.flow_updates == lockstep.flow_updates;
          eventloop_matches = eventloop_matches && matches;
          all_completed = all_completed && run.completed;
          no_violations = no_violations && run.no_stop_violations &&
                          lockstep.no_stop_violations;
          stopped_lanes_total += run.stopped_lanes;
          flow_updates_total += run.flow_updates;
          throttled_total += run.throttled;
          events_total += run.events_processed;
          skipped_total += run.ticks_skipped;
          const double speedup =
              run.wall_ms > 0.0 ? lockstep.wall_ms / run.wall_ms : 0.0;
          speedup_max = std::max(speedup_max, speedup);
          if (fig.hirtt) {
            speedup_hirtt_max = std::max(speedup_hirtt_max, speedup);
          } else if (std::string(fig.name) == "fig8") {
            speedup_fig8_max = std::max(speedup_fig8_max, speedup);
          }

          const std::string key =
              std::string(fig.name) + "_corr" +
              std::to_string(static_cast<int>(corr * 100)) + "_loss" +
              std::to_string(static_cast<int>(loss * 100)) + "_" +
              strategy_key(strategy);
          report.add(key + "_ticks", run.ticks);
          report.add(key + "_completed", std::size_t{run.completed ? 1u : 0u});
          report.add(key + "_events", run.events_processed);
          report.add(key + "_ticks_skipped", run.ticks_skipped);
          report.add(key + "_wall_speedup", speedup);
          report.add(key + "_lockstep_wall_ms", lockstep.wall_ms);
          report.add(key + "_eventloop_wall_ms", run.wall_ms);
          std::printf(
              "  %-32s %8zu ticks  %s  %6zu events  %8zu skipped  %5.1fx%s\n",
              key.c_str(), run.ticks, run.completed ? "done" : "INCOMPLETE",
              static_cast<std::size_t>(run.events_processed),
              static_cast<std::size_t>(run.ticks_skipped), speedup,
              matches ? "" : "  TRAJECTORY MISMATCH");
        }
      }
    }
  }

  // The stop gate aggregates across the sweep: zero violations (a sender
  // that acknowledged its stop never sent again) AND the mechanism
  // demonstrably engaged (some lanes actually stopped — runs that
  // complete with no per-lane request met have nothing to stop).
  const bool stop_gate = no_violations && stopped_lanes_total > 0;
  // Event-loop gates: every jumped trajectory reproduced its lockstep
  // twin tick for tick, and the jump mechanism demonstrably engaged.
  const bool jump_gate = eventloop_matches && skipped_total > 0;
  report.add("all_completed", std::size_t{all_completed ? 1u : 0u});
  report.add("senders_stop_at_satisfaction", std::size_t{stop_gate ? 1u : 0u});
  report.add("stopped_lanes_total", stopped_lanes_total);
  report.add("flow_updates_total", flow_updates_total);
  report.add("throttled_frames_total", throttled_total);
  report.add("eventloop_matches_lockstep",
             std::size_t{eventloop_matches ? 1u : 0u});
  report.add("events_processed_total", events_total);
  report.add("ticks_skipped_total", skipped_total);
  report.add("eventloop_speedup_max", speedup_max);
  report.add("eventloop_speedup_fig8_max", speedup_fig8_max);
  report.add("eventloop_speedup_hirtt_max", speedup_hirtt_max);
  std::printf(
      "event loop: %s lockstep, %zu events, %zu ticks skipped, "
      "max speedup %.1fx (fig8 %.1fx, hirtt %.1fx)\n",
      eventloop_matches ? "matches" : "DIVERGES FROM",
      static_cast<std::size_t>(events_total),
      static_cast<std::size_t>(skipped_total), speedup_max,
      speedup_fig8_max, speedup_hirtt_max);
  report.write("BENCH_latency.json");
  return (all_completed && stop_gate && jump_gate) ? 0 : 1;
}

// Table 4(c): "High level structure comparison at 8 bits per element" —
// Bloom filter vs approximate reconciliation tree: size in bits, accuracy,
// and search cost.
//
// Paper's reference rows:  Bloom filters   8n  98%  O(n)
//                          A.R.T. (corr=5) 8n  92%  O(d log n)
// The ART uses the optimal budget split from Figure 4(a) (5 bits leaf /
// 3 bits internal). The search-cost column is measured wall time for the
// difference search: the Bloom scan touches all |S_B| elements, so it
// grows with n; the ART search grows with d log n, so at large n / small d
// it pulls ahead — the second block demonstrates the crossover.
#include <chrono>
#include <cstdio>
#include <vector>

#include "art/art_summary.hpp"
#include "art/reconciliation_tree.hpp"
#include "filter/bloom.hpp"
#include "reconcile/set_difference.hpp"
#include "util/random.hpp"

namespace {

using namespace icd;
using Clock = std::chrono::steady_clock;

std::vector<std::uint64_t> random_keys(std::size_t n, util::Xoshiro256& rng) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng());
  return keys;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void compare_at(std::size_t set_size, std::size_t differences, int trials) {
  constexpr double kBits = 8.0;
  // Optimal split per Figure 4(a) at correction 5.
  constexpr double kLeafBits = 5.0;
  constexpr double kInternalBits = 3.0;

  double bloom_found = 0, art_found = 0;
  double bloom_seconds = 0, art_seconds = 0;
  std::size_t bloom_bits = 0, art_bits = 0;

  for (int trial = 0; trial < trials; ++trial) {
    util::Xoshiro256 rng(9000 + trial);
    auto remote_keys = random_keys(set_size, rng);
    auto local_keys = remote_keys;
    const auto extra = random_keys(differences, rng);
    local_keys.insert(local_keys.end(), extra.begin(), extra.end());

    auto filter = filter::BloomFilter::with_bits_per_element(set_size, kBits);
    filter.insert_all(remote_keys);
    bloom_bits = filter.bit_count();
    auto start = Clock::now();
    bloom_found += static_cast<double>(
        reconcile::bloom_set_difference(local_keys, filter).size());
    bloom_seconds += seconds_since(start);

    const art::ReconciliationTree remote(remote_keys);
    const art::ReconciliationTree local(local_keys);
    const auto summary =
        art::ArtSummary::build(remote, kLeafBits, kInternalBits);
    art_bits = summary.total_bits();
    start = Clock::now();
    art_found += static_cast<double>(
        art::find_local_differences(local, summary, 5).size());
    art_seconds += seconds_since(start);
  }

  std::printf("\n--- n = %zu, d = %zu ---\n", set_size, differences);
  std::printf("%-22s %12s %10s %14s %12s\n", "structure", "size (bits)",
              "accuracy", "search (us)", "paper acc");
  std::printf("%-22s %12zu %9.1f%% %14.1f %12s\n", "Bloom filter", bloom_bits,
              100.0 * bloom_found / (trials * static_cast<double>(differences)),
              1e6 * bloom_seconds / trials, "98%");
  std::printf("%-22s %12zu %9.1f%% %14.1f %12s\n", "A.R.T. (correction=5)",
              art_bits,
              100.0 * art_found / (trials * static_cast<double>(differences)),
              1e6 * art_seconds / trials, "92%");
}

}  // namespace

int main() {
  std::printf("\n=== Table 4(c): structure comparison at 8 bits/element ===");
  // The paper's operating point.
  compare_at(10000, 100, 10);
  // Large set, small difference: the regime where the ART's O(d log n)
  // search beats the Bloom filter's O(n) scan.
  compare_at(200000, 10, 3);
  std::printf(
      "\nNote: ART search excludes local tree construction (a live peer\n"
      "maintains its tree incrementally); the Bloom scan touches all n\n"
      "elements while the ART search touches O(d log n) nodes.\n");
  return 0;
}

// The scenario-catalog gate runner: every `scenarios/*.scn` file is lowered
// by core::compile_scenario and executed through the three simulator
// drivers — legacy lockstep, legacy event-loop jump, and the sharded engine
// at shards=1 — re-proving the fault-enabled determinism contracts per
// catalog entry (lockstep == jump == shards1) and evaluating each
// scenario's declared pass gates (survivor completion inside the deadline,
// failed-session budget, control-byte budget) on the reference trajectory.
// Emits BENCH_scenarios.json (schema: docs/BENCHMARKS.md) and exits
// nonzero when any scenario misses a gate or any driver pair diverges, so
// CI fails on the exact scenario that regressed.
//
// Usage: bench_scenarios [--smoke] [--dir <catalog>]
// The catalog defaults to ./scenarios then ../scenarios (the build tree
// sits one level below the repo root).
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/delivery.hpp"
#include "core/scenario.hpp"
#include "core/sharded_delivery.hpp"

namespace {

using namespace icd;

std::string catalog_dir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0) return argv[i + 1];
  }
  if (std::filesystem::is_directory("scenarios")) return "scenarios";
  return "../scenarios";
}

struct ScenarioReport {
  std::string name;
  bool deterministic = false;
  core::GateVerdict verdict;
  core::ScenarioOutcome baseline;
  std::uint64_t ticks_skipped = 0;  // from the jump driver
};

ScenarioReport run_scenario(const core::CompiledScenario& compiled) {
  ScenarioReport report;
  report.name = compiled.name;

  core::ContentDeliveryService lockstep(compiled.content, compiled.options);
  core::seed_scenario_peers(lockstep, compiled);
  core::drive_scenario_lockstep(lockstep, compiled);
  report.baseline = core::harvest_scenario(lockstep);

  core::ContentDeliveryService jump(compiled.content, compiled.options);
  core::seed_scenario_peers(jump, compiled);
  jump.run(compiled.max_ticks);
  const auto jumped = core::harvest_scenario(jump);

  core::ShardedDelivery shards1(compiled.content, compiled.options,
                                core::ShardOptions{1});
  core::seed_scenario_peers(shards1, compiled);
  shards1.run(compiled.max_ticks);
  const auto sharded = core::harvest_scenario(shards1);

  report.deterministic = report.baseline.same_trajectory(jumped) &&
                         report.baseline.same_trajectory(sharded);
  report.ticks_skipped = jumped.ticks_skipped;
  report.verdict = core::evaluate_gates(report.baseline, compiled);
  return report;
}

std::size_t max_completion_tick(const core::ScenarioOutcome& outcome) {
  std::size_t worst = 0;
  for (std::size_t p = 0; p < outcome.peer_count; ++p) {
    if (!outcome.down_at_end[p]) {
      worst = std::max(worst, outcome.completion_ticks[p]);
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = icd::bench::smoke_mode(argc, argv);
  const std::string dir = catalog_dir(argc, argv);

  std::vector<std::string> files;
  try {
    files = core::list_scenario_files(dir);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_scenarios: %s\n", error.what());
    return 1;
  }

  icd::bench::JsonReport report;
  report.add_string("bench", "scenarios");
  report.add_string("mode", smoke ? "smoke" : "full");
  report.add_string("catalog_dir", dir);

  bench::print_header("scenario catalog: 3-driver determinism + pass gates");
  std::printf("%-28s %5s %7s %6s %8s %8s %6s  %s\n", "scenario", "peers",
              "worst", "fails", "ctl-B", "data-B", "skip", "verdict");

  bool all_deterministic = true;
  bool all_gates = true;
  std::size_t ran = 0;
  for (const auto& path : files) {
    ScenarioReport result;
    try {
      const auto compiled =
          core::compile_scenario(core::Scenario::parse_file(path));
      result = run_scenario(compiled);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "bench_scenarios: %s: %s\n", path.c_str(),
                   error.what());
      return 1;
    }
    ++ran;
    const bool pass = result.verdict.pass();
    all_deterministic = all_deterministic && result.deterministic;
    all_gates = all_gates && pass;

    std::printf("%-28s %5zu %7zu %6zu %8zu %8zu %6llu  %s%s\n",
                result.name.c_str(), result.baseline.peer_count,
                max_completion_tick(result.baseline),
                result.baseline.failed_sessions,
                result.baseline.control_bytes, result.baseline.data_bytes,
                static_cast<unsigned long long>(result.ticks_skipped),
                result.deterministic ? "deterministic" : "DIVERGED",
                pass ? " pass" : " GATE-FAIL");

    const std::string prefix = "scenario_" + result.name + "_";
    report.add(prefix + "deterministic",
               result.deterministic ? std::size_t{1} : std::size_t{0});
    report.add(prefix + "gates_pass", pass ? std::size_t{1} : std::size_t{0});
    report.add(prefix + "survivors_completed",
               result.verdict.survivors_completed ? std::size_t{1}
                                                  : std::size_t{0});
    report.add(prefix + "peer_count", result.baseline.peer_count);
    report.add(prefix + "worst_completion_tick",
               max_completion_tick(result.baseline));
    report.add(prefix + "failed_sessions", result.baseline.failed_sessions);
    report.add(prefix + "control_bytes", result.baseline.control_bytes);
    report.add(prefix + "data_bytes", result.baseline.data_bytes);
    report.add(prefix + "ticks_skipped",
               static_cast<std::size_t>(result.ticks_skipped));
  }

  report.add("scenarios_total", ran);
  report.add("all_deterministic",
             all_deterministic ? std::size_t{1} : std::size_t{0});
  report.add("all_gates_pass", all_gates ? std::size_t{1} : std::size_t{0});
  report.write("BENCH_scenarios.json");

  std::printf("%zu scenarios: determinism %s, gates %s\n", ran,
              all_deterministic ? "EXACT" : "MISMATCH",
              all_gates ? "all pass" : "FAILURES");
  return all_deterministic && all_gates ? 0 : 1;
}

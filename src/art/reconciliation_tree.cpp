#include "art/reconciliation_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace icd::art {

namespace {
constexpr std::uint64_t kPositionSeedSalt = 0x705171055a17edULL;
constexpr std::uint64_t kValueSeedSalt = 0x7a1ce5eed5a17edULL;
}  // namespace

ReconciliationTree::ReconciliationTree(const std::vector<std::uint64_t>& keys,
                                       std::uint64_t seed)
    : seed_(seed) {
  std::vector<Item> items;
  items.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    items.push_back(Item{position_hash(key), key});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.position < b.position; });
  // Drop duplicate keys (same key => same position). Distinct keys whose
  // 64-bit positions collide are astronomically unlikely; if it happens the
  // first key wins and the set shrinks by one.
  items.erase(std::unique(items.begin(), items.end(),
                          [](const Item& a, const Item& b) {
                            return a.position == b.position;
                          }),
              items.end());
  element_count_ = items.size();
  if (element_count_ == 0) return;
  nodes_.reserve(2 * element_count_);
  root_ = build(items, 0, items.size(), 63);
}

std::int32_t ReconciliationTree::build(std::vector<Item>& items,
                                       std::size_t lo, std::size_t hi,
                                       int bit) {
  if (hi - lo == 1) {
    Node leaf;
    leaf.key = items[lo].key;
    leaf.value = value_hash(items[lo].key);
    leaf.count = 1;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }
  // Collapse trivial levels: skip bits on which this span does not split.
  while (bit >= 0) {
    const std::uint64_t mask = std::uint64_t{1} << bit;
    if ((items[lo].position & mask) != (items[hi - 1].position & mask)) break;
    --bit;
  }
  if (bit < 0) {
    // All remaining positions identical — impossible after dedup.
    throw std::logic_error("ReconciliationTree: duplicate positions survived");
  }
  const std::uint64_t mask = std::uint64_t{1} << bit;
  // Items are sorted, so the 0-bit run is a prefix of the span.
  const auto split = static_cast<std::size_t>(
      std::lower_bound(items.begin() + static_cast<std::ptrdiff_t>(lo),
                       items.begin() + static_cast<std::ptrdiff_t>(hi), mask,
                       [&](const Item& item, std::uint64_t) {
                         return (item.position & mask) == 0;
                       }) -
      items.begin());
  const std::int32_t left = build(items, lo, split, bit - 1);
  const std::int32_t right = build(items, split, hi, bit - 1);
  Node node;
  node.left = left;
  node.right = right;
  node.value = nodes_[static_cast<std::size_t>(left)].value ^
               nodes_[static_cast<std::size_t>(right)].value;
  node.count = nodes_[static_cast<std::size_t>(left)].count +
               nodes_[static_cast<std::size_t>(right)].count;
  nodes_.push_back(node);
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::size_t ReconciliationTree::depth() const {
  if (root_ == kNoChild) return 0;
  // Iterative post-order depth computation; nodes_ is in child-before-parent
  // order by construction, so one forward pass suffices.
  std::vector<std::size_t> depth_of(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (!n.is_leaf()) {
      depth_of[i] = 1 + std::max(depth_of[static_cast<std::size_t>(n.left)],
                                 depth_of[static_cast<std::size_t>(n.right)]);
    }
  }
  return depth_of[static_cast<std::size_t>(root_)];
}

std::vector<std::uint64_t> ReconciliationTree::leaf_values() const {
  std::vector<std::uint64_t> values;
  values.reserve(element_count_);
  for (const Node& n : nodes_) {
    if (n.is_leaf()) values.push_back(n.value);
  }
  return values;
}

std::vector<std::uint64_t> ReconciliationTree::internal_values() const {
  std::vector<std::uint64_t> values;
  values.reserve(element_count_);
  for (const Node& n : nodes_) {
    if (!n.is_leaf()) values.push_back(n.value);
  }
  return values;
}

std::uint64_t ReconciliationTree::position_hash(std::uint64_t key) const {
  return util::hash64(key, seed_ ^ kPositionSeedSalt);
}

std::uint64_t ReconciliationTree::value_hash(std::uint64_t key) const {
  return util::hash64(key, seed_ ^ kValueSeedSalt);
}

}  // namespace icd::art

#include "art/art_summary.hpp"

#include <cmath>
#include <stdexcept>

#include "util/buffer.hpp"

namespace icd::art {

namespace {

std::optional<filter::BloomFilter> make_filter(
    const std::vector<std::uint64_t>& values, double bits_per_element,
    std::size_t element_count, std::uint64_t seed) {
  if (bits_per_element <= 0 || element_count == 0) return std::nullopt;
  auto filter = filter::BloomFilter::with_bits_per_element(
      element_count, bits_per_element, seed);
  filter.insert_all(values);
  return filter;
}

}  // namespace

ArtSummary ArtSummary::build(const ReconciliationTree& tree,
                             double leaf_bits_per_element,
                             double internal_bits_per_element,
                             std::uint64_t seed) {
  ArtSummary summary;
  summary.element_count_ = tree.element_count();
  if (tree.empty()) return summary;
  summary.leaf_filter_ =
      make_filter(tree.leaf_values(), leaf_bits_per_element,
                  tree.element_count(), seed ^ 0x1eafULL);
  summary.internal_filter_ =
      make_filter(tree.internal_values(), internal_bits_per_element,
                  tree.element_count(), seed ^ 0x1257e27a1ULL);
  return summary;
}

bool ArtSummary::leaf_may_contain(std::uint64_t value) const {
  return !leaf_filter_ || leaf_filter_->contains(value);
}

bool ArtSummary::internal_may_contain(std::uint64_t value) const {
  return !internal_filter_ || internal_filter_->contains(value);
}

std::size_t ArtSummary::total_bits() const {
  std::size_t bits = 0;
  if (leaf_filter_) bits += leaf_filter_->bit_count();
  if (internal_filter_) bits += internal_filter_->bit_count();
  return bits;
}

std::vector<std::uint8_t> ArtSummary::serialize() const {
  util::ByteWriter writer;
  serialize_into(writer);
  return writer.take();
}

std::size_t ArtSummary::serialized_size() const {
  std::size_t size = util::varint_size(element_count_) + 2;
  if (leaf_filter_) {
    const std::size_t inner = leaf_filter_->serialized_size();
    size += util::varint_size(inner) + inner;
  }
  if (internal_filter_) {
    const std::size_t inner = internal_filter_->serialized_size();
    size += util::varint_size(inner) + inner;
  }
  return size;
}

void ArtSummary::serialize_into(util::ByteWriter& out) const {
  out.varint(element_count_);
  out.u8(leaf_filter_ ? 1 : 0);
  out.u8(internal_filter_ ? 1 : 0);
  if (leaf_filter_) {
    out.varint(leaf_filter_->serialized_size());
    leaf_filter_->serialize_into(out);
  }
  if (internal_filter_) {
    out.varint(internal_filter_->serialized_size());
    internal_filter_->serialize_into(out);
  }
}

ArtSummary ArtSummary::deserialize(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader reader(bytes);
  ArtSummary summary;
  summary.element_count_ = reader.varint();
  const bool has_leaf = reader.u8() != 0;
  const bool has_internal = reader.u8() != 0;
  if (has_leaf) {
    summary.leaf_filter_ =
        filter::BloomFilter::deserialize(reader.raw(reader.varint()));
  }
  if (has_internal) {
    summary.internal_filter_ =
        filter::BloomFilter::deserialize(reader.raw(reader.varint()));
  }
  return summary;
}

namespace {

struct SearchContext {
  const ReconciliationTree& local;
  const ArtSummary& remote;
  int correction;
  std::vector<std::uint64_t> found;

  void visit(std::int32_t index, int consecutive_matches) {
    const auto& node =
        local.nodes()[static_cast<std::size_t>(index)];
    if (node.is_leaf()) {
      // A leaf whose value hash misses the peer's leaf filter is certainly
      // absent from the peer's set (Bloom filters have no false negatives).
      if (!remote.leaf_may_contain(node.value)) found.push_back(node.key);
      return;
    }
    int next_matches = 0;
    if (remote.internal_may_contain(node.value)) {
      next_matches = consecutive_matches + 1;
      // The paper's correction rule: prune only after `correction` + 1
      // consecutive internal matches.
      if (next_matches > correction) return;
    }
    visit(node.left, next_matches);
    visit(node.right, next_matches);
  }
};

}  // namespace

std::vector<std::uint64_t> find_local_differences(
    const ReconciliationTree& local, const ArtSummary& remote,
    int correction) {
  if (local.empty()) return {};
  if (correction < 0) {
    throw std::invalid_argument("find_local_differences: correction < 0");
  }
  SearchContext ctx{local, remote, correction, {}};
  ctx.visit(local.root(), 0);
  return std::move(ctx.found);
}

}  // namespace icd::art

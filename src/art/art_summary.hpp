#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "art/reconciliation_tree.hpp"
#include "filter/bloom.hpp"

/// The transmissible half of an approximate reconciliation tree.
///
/// "To avoid some bulkiness in sending an explicit representation of the
/// tree, we instead summarize the hashes of the tree in a Bloom filter ...
/// we separate the leaf hashes from the internal hashes and use separate
/// Bloom filters, thus allowing the relative accuracies to be controlled."
namespace icd::art {

class ArtSummary {
 public:
  /// Builds the summary of `tree`, spending `leaf_bits_per_element` and
  /// `internal_bits_per_element` bits per *set element* on the leaf and
  /// internal filters respectively (the paper's Figure 4 budget is their
  /// sum). A zero budget disables that filter: every membership probe on a
  /// disabled filter reports "present" (an always-saturated filter), which
  /// reproduces the endpoints of Figure 4(a).
  static ArtSummary build(const ReconciliationTree& tree,
                          double leaf_bits_per_element,
                          double internal_bits_per_element,
                          std::uint64_t seed = kSummarySeed);

  /// True if a leaf with this value hash may exist in the summarized set.
  bool leaf_may_contain(std::uint64_t value) const;
  /// True if an internal node with this XOR value may exist.
  bool internal_may_contain(std::uint64_t value) const;

  std::size_t element_count() const { return element_count_; }

  /// Heap bytes the two filters pin (scale audit).
  std::size_t memory_bytes() const {
    return (leaf_filter_ ? leaf_filter_->memory_bytes() : 0) +
           (internal_filter_ ? internal_filter_->memory_bytes() : 0);
  }

  /// Total size of both filters in bits / in serialized bytes.
  /// serialize_into appends the same bytes as serialize() to an existing
  /// writer (e.g. over a pooled frame buffer) without scratch vectors;
  /// serialized_size is the exact byte count it will append.
  std::size_t total_bits() const;
  std::vector<std::uint8_t> serialize() const;
  std::size_t serialized_size() const;
  void serialize_into(util::ByteWriter& out) const;
  static ArtSummary deserialize(const std::vector<std::uint8_t>& bytes);

  static constexpr std::uint64_t kSummarySeed = 0x5a11ad5b100f11ULL;

 private:
  ArtSummary() = default;

  std::size_t element_count_ = 0;
  std::optional<filter::BloomFilter> leaf_filter_;
  std::optional<filter::BloomFilter> internal_filter_;
};

/// Searches the locally built `local` tree against a peer's `remote`
/// summary and returns the keys believed to be in the local set but not the
/// peer's (S_local - S_peer), i.e. the symbols worth sending.
///
/// `correction` is the paper's correction level: "the number of consecutive
/// matches allowed without pruning the search. A correction level of 0
/// stops the search at the first match found while a correction level of 1
/// allows one match at an internal node but stops if a child of that node
/// also matches."
std::vector<std::uint64_t> find_local_differences(
    const ReconciliationTree& local, const ArtSummary& remote, int correction);

}  // namespace icd::art

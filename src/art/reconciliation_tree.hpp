#pragma once

#include <cstdint>
#include <vector>

/// Approximate reconciliation trees (Section 5.3) — local tree side.
///
/// Construction mirrors the paper's Figure 3:
///  1. Every element key is hashed into a large universe ("we hash each
///     element initially before inserting it into the virtual tree") — this
///     randomizes positions so the collapsed tree is balanced, depth
///     O(log n) w.h.p.
///  2. The virtual binary trie over the hashed positions is collapsed by
///     "removing trivial edges between nodes that correspond to the same
///     set", leaving <= 2n - 1 nodes.
///  3. Each element is hashed *again* into a value universe ("each leaf
///     element is hashed again ... to avoid spatial correlation,
///     particularly in the higher order bits"); an internal node's value is
///     the XOR of its children's values.
///
/// The tree itself never travels: its node values are summarized in two
/// Bloom filters (ArtSummary) which are what a peer transmits.
namespace icd::art {

class ReconciliationTree {
 public:
  struct Node {
    /// XOR of the value hashes of all elements in this subtree.
    std::uint64_t value = 0;
    /// Child indices into nodes(), or kNoChild for leaves.
    std::int32_t left = kNoChild;
    std::int32_t right = kNoChild;
    /// Number of elements beneath (1 for leaves).
    std::uint32_t count = 0;
    /// Original element key; valid only when is_leaf().
    std::uint64_t key = 0;

    bool is_leaf() const { return left == kNoChild && right == kNoChild; }
  };

  static constexpr std::int32_t kNoChild = -1;
  /// Shared default seed so independently built trees are comparable
  /// (position/value hash families must coincide across peers).
  static constexpr std::uint64_t kSharedSeed = 0xa57e11a7e0c0ffeeULL;

  /// Builds the collapsed tree over `keys` (duplicates are ignored).
  explicit ReconciliationTree(const std::vector<std::uint64_t>& keys,
                              std::uint64_t seed = kSharedSeed);

  /// Number of elements in the underlying set.
  std::size_t element_count() const { return element_count_; }
  bool empty() const { return element_count_ == 0; }
  std::uint64_t seed() const { return seed_; }

  const std::vector<Node>& nodes() const { return nodes_; }
  /// Index of the root node; only valid when !empty().
  std::int32_t root() const { return root_; }

  /// Depth of the collapsed tree (edges on the longest path; 0 for a single
  /// leaf). O(log n) w.h.p. thanks to position hashing.
  std::size_t depth() const;

  /// Value hashes of all leaves / of all internal (branching) nodes —
  /// exactly what gets inserted into the summary's two Bloom filters.
  std::vector<std::uint64_t> leaf_values() const;
  std::vector<std::uint64_t> internal_values() const;

  /// The position and value hashes, exposed so that tests and the summary
  /// builder agree on the mapping.
  std::uint64_t position_hash(std::uint64_t key) const;
  std::uint64_t value_hash(std::uint64_t key) const;

 private:
  struct Item {
    std::uint64_t position;
    std::uint64_t key;
  };

  std::int32_t build(std::vector<Item>& items, std::size_t lo, std::size_t hi,
                     int bit);

  std::uint64_t seed_;
  std::size_t element_count_ = 0;
  std::int32_t root_ = kNoChild;
  std::vector<Node> nodes_;
};

}  // namespace icd::art

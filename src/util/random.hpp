#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

/// Deterministic pseudo-random number generation substrate.
///
/// Everything in the library that needs randomness (hash-family selection,
/// encoder neighbor sets, workload generation) draws from these generators so
/// that experiments are reproducible from a single 64-bit seed.
namespace icd::util {

/// SplitMix64 — tiny, fast seed expander (Steele, Lea, Flood 2014).
///
/// Used to derive well-distributed state for other generators from an
/// arbitrary (possibly low-entropy) user seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the sequence.
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman, Vigna) — the library's workhorse generator.
///
/// Satisfies std::uniform_random_bit_generator so it can be used with the
/// standard <random> distributions as well.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection
  /// method. `bound` must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool next_bool(double p) { return next_double() < p; }

  /// Equivalent to 2^128 calls of operator(); used to split one seed into
  /// non-overlapping subsequences for independent components.
  void jump();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Robert Floyd's algorithm: a uniform random k-subset of {0, ..., n-1},
/// returned in the (random) order produced by the algorithm. O(k) expected
/// time and space. Requires k <= n.
std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                      std::size_t k,
                                                      Xoshiro256& rng);

/// In-place variant: reuses `out`'s capacity, and for small k (<= 64, which
/// covers the recode degree cap and the bulk of the soliton mass) tests
/// membership by linear scan so it allocates nothing. Larger draws fall
/// back to a hash set. Produces the same sample as the vector version for
/// the same arguments.
void sample_without_replacement_into(std::vector<std::uint64_t>& out,
                                     std::uint64_t n, std::size_t k,
                                     Xoshiro256& rng);

/// Fisher-Yates shuffle of `values` in place.
template <typename T>
void shuffle(std::vector<T>& values, Xoshiro256& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

}  // namespace icd::util

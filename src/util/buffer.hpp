#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

/// Endian-safe byte-buffer serialization.
///
/// Every control message in the library (sketches, Bloom filters, ART
/// summaries, symbol headers) serializes through these so that the exact
/// wire size can be measured against the paper's 1 KB-packet budgets.
namespace icd::util {

/// Encoded size of a LEB128 varint (1-10 bytes).
constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopts `storage` as the output buffer, clearing its contents but
  /// keeping its capacity — the zero-allocation path: hand a recycled
  /// buffer (wire::BufferPool) to the writer and take() it back out.
  explicit ByteWriter(std::vector<std::uint8_t> storage)
      : bytes_(std::move(storage)) {
    bytes_.clear();
  }

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// LEB128 variable-length unsigned integer (1-10 bytes).
  void varint(std::uint64_t v);
  void raw(std::span<const std::uint8_t> data);

  std::size_t size() const { return bytes_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader; all methods throw std::out_of_range on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  std::vector<std::uint8_t> raw(std::size_t n);
  /// Bounds-checked non-owning view of the next `n` bytes; the span borrows
  /// the reader's underlying buffer and is invalidated with it.
  std::span<const std::uint8_t> view(std::size_t n);

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace icd::util

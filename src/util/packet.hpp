#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

/// Packet-size accounting.
///
/// The paper sizes all of its control traffic against 1 KB packets: a
/// min-wise sketch "fits into a single 1KB packet", Bloom filters for 10,000
/// packets fit "into five 1 KB packets", etc. Rather than simulating a full
/// transport, the library enforces these budgets at serialization time.
namespace icd::util {

/// The paper's control-message MTU.
inline constexpr std::size_t kPacketPayloadBytes = 1024;

/// Splits a serialized control message into <= kPacketPayloadBytes chunks,
/// the unit the simulator charges for messaging complexity.
std::vector<std::vector<std::uint8_t>> packetize(
    const std::vector<std::uint8_t>& message,
    std::size_t mtu = kPacketPayloadBytes);

/// Reassembles packetize() output.
std::vector<std::uint8_t> reassemble(
    const std::vector<std::vector<std::uint8_t>>& packets);

/// Number of packets a message of `bytes` bytes occupies.
constexpr std::size_t packets_for(std::size_t bytes,
                                  std::size_t mtu = kPacketPayloadBytes) {
  return bytes == 0 ? 0 : (bytes + mtu - 1) / mtu;
}

}  // namespace icd::util

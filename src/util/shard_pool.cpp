#include "util/shard_pool.hpp"

#include <ctime>

namespace icd::util {

ShardPool::ShardPool(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards),
      gate_(static_cast<std::ptrdiff_t>(shards_ + 1)),
      busy_ns_(shards_, 0) {
  workers_.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    workers_.emplace_back([this, s] { worker(s); });
  }
}

ShardPool::~ShardPool() {
  stop_ = true;
  gate_.arrive_and_wait();  // release workers into the stop check
}

void ShardPool::run(const std::function<void(std::size_t)>& fn) {
  ++runs_;
  fn_ = &fn;
  gate_.arrive_and_wait();  // entry: workers see fn_ and start
  gate_.arrive_and_wait();  // exit: all workers finished the callback
  fn_ = nullptr;
}

void ShardPool::worker(std::size_t shard) {
  while (true) {
    gate_.arrive_and_wait();  // entry (or destructor's release)
    if (stop_) return;
    const std::uint64_t start = thread_cpu_ns();
    (*fn_)(shard);
    busy_ns_[shard] += thread_cpu_ns() - start;
    gate_.arrive_and_wait();  // exit
  }
}

std::uint64_t ShardPool::thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace icd::util

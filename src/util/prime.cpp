#include "util/prime.hpp"

#include <limits>
#include <stdexcept>

namespace icd::util {

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  if (m == 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
    exp >>= 1;
  }
  return result;
}

namespace {

// One Miller-Rabin round: returns true if `n` passes for witness `a`.
bool miller_rabin_round(std::uint64_t n, std::uint64_t a, std::uint64_t d,
                        int r) {
  std::uint64_t x = pow_mod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 0; i < r - 1; ++i) {
    x = mul_mod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (const std::uint64_t p :
       {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL,
        31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // These witnesses are a proven deterministic certificate for n < 2^64
  // (Sorenson & Webster 2015).
  for (const std::uint64_t a :
       {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL,
        31ULL, 37ULL}) {
    if (!miller_rabin_round(n, a, d, r)) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) {
  if (n <= 2) return 2;
  std::uint64_t candidate = n | 1;  // first odd >= n
  while (true) {
    if (is_prime(candidate)) return candidate;
    if (candidate > std::numeric_limits<std::uint64_t>::max() - 2) {
      throw std::overflow_error("next_prime: no 64-bit prime >= n");
    }
    candidate += 2;
  }
}

std::uint64_t inverse_mod(std::uint64_t a, std::uint64_t m) {
  if (m < 2) throw std::invalid_argument("inverse_mod: modulus must be >= 2");
  a %= m;
  if (a == 0) throw std::invalid_argument("inverse_mod: a divisible by m");
  // Fermat: a^(m-2) mod m, valid because m is prime.
  return pow_mod(a, m - 2, m);
}

}  // namespace icd::util

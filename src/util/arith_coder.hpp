#pragma once

#include <cstdint>
#include <vector>

/// Static binary arithmetic coder.
///
/// Encodes a bit sequence whose bits are i.i.d. one with probability `p1`
/// to within a fraction of a percent of the entropy bound
/// H(p1) = -p1 log2 p1 - (1-p1) log2 (1-p1) bits per input bit. Used by the
/// compressed Bloom filters: a sparse filter (low fill ratio) compresses
/// well below m bits on the wire.
namespace icd::util {

/// Entropy of a Bernoulli(p) bit in bits; 0 at p in {0, 1}.
double binary_entropy(double p);

/// Encodes `bits` under a Bernoulli(p1) model. p1 is clamped away from
/// 0 and 1 so that unlikely symbols remain encodable.
std::vector<std::uint8_t> arith_encode_bits(const std::vector<bool>& bits,
                                            double p1);

/// Decodes exactly `count` bits from an arith_encode_bits() stream
/// produced with the same p1.
std::vector<bool> arith_decode_bits(const std::vector<std::uint8_t>& bytes,
                                    std::size_t count, double p1);

}  // namespace icd::util

#pragma once

#include <cstdint>

/// Primality utilities used to size the key universes for the linear
/// permutation families of the min-wise sketches (Section 4 of the paper)
/// and the prime fields of the exact set-discrepancy reconciler (Section
/// 5.1).
namespace icd::util {

/// Computes (a * b) mod m without overflow for 64-bit operands.
std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

/// Computes (base ^ exp) mod m.
std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

/// Deterministic Miller-Rabin for all 64-bit integers (uses the 12-base
/// certificate {2, 3, 5, ..., 37}).
bool is_prime(std::uint64_t n);

/// Smallest prime >= n. Throws std::overflow_error if none fits in 64 bits.
std::uint64_t next_prime(std::uint64_t n);

/// Modular inverse of a mod m for m prime and a not divisible by m.
std::uint64_t inverse_mod(std::uint64_t a, std::uint64_t m);

}  // namespace icd::util

#include "util/bitvector.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace icd::util {

std::size_t BitVector::popcount() const {
  std::size_t total = 0;
  for (const std::uint64_t word : words_) {
    total += static_cast<std::size_t>(std::popcount(word));
  }
  return total;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  if (bits_ != other.bits_) {
    throw std::invalid_argument("BitVector |=: size mismatch");
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  if (bits_ != other.bits_) {
    throw std::invalid_argument("BitVector &=: size mismatch");
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

std::vector<std::uint8_t> BitVector::to_bytes() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words_.size() * 8);
  for (const std::uint64_t word : words_) {
    for (int shift = 0; shift < 64; shift += 8) {
      bytes.push_back(static_cast<std::uint8_t>(word >> shift));
    }
  }
  return bytes;
}

BitVector BitVector::from_bytes(const std::vector<std::uint8_t>& bytes,
                                std::size_t bits) {
  BitVector result(bits);
  if (bytes.size() < result.words_.size() * 8) {
    throw std::invalid_argument("BitVector::from_bytes: truncated input");
  }
  for (std::size_t w = 0; w < result.words_.size(); ++w) {
    std::uint64_t word = 0;
    for (int i = 0; i < 8; ++i) {
      word |= static_cast<std::uint64_t>(bytes[w * 8 + i]) << (8 * i);
    }
    result.words_[w] = word;
  }
  return result;
}

}  // namespace icd::util

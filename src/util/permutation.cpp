#include "util/permutation.hpp"

#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "util/prime.hpp"

namespace icd::util {

LinearPermutation::LinearPermutation(std::uint64_t a, std::uint64_t b,
                                     std::uint64_t modulus)
    : a_(a), b_(b), modulus_(modulus) {
  if (!is_prime(modulus)) {
    throw std::invalid_argument("LinearPermutation: modulus must be prime");
  }
  if (a == 0 || a >= modulus || b >= modulus) {
    throw std::invalid_argument(
        "LinearPermutation: require 1 <= a < p and 0 <= b < p");
  }
  a_inverse_ = inverse_mod(a_, modulus_);
}

LinearPermutation LinearPermutation::random(std::uint64_t universe_size,
                                            Xoshiro256& rng) {
  if (universe_size < 2) {
    throw std::invalid_argument("LinearPermutation: universe too small");
  }
  const std::uint64_t p = next_prime(universe_size);
  const std::uint64_t a = 1 + rng.next_below(p - 1);
  const std::uint64_t b = rng.next_below(p);
  return LinearPermutation(a, b, p);
}

std::uint64_t LinearPermutation::inverse(std::uint64_t y) const {
  const std::uint64_t shifted = (y + modulus_ - b_ % modulus_) % modulus_;
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(shifted) * a_inverse_ % modulus_);
}

std::vector<LinearPermutation> make_permutation_family(
    std::uint64_t universe_size, std::size_t count, std::uint64_t seed) {
  if (universe_size < 2) {
    throw std::invalid_argument("make_permutation_family: universe too small");
  }
  Xoshiro256 rng(seed);
  // Hoisted out of the loop: the modulus is shared by the whole family, and
  // next_prime near 2^63 costs ~10^4 modular multiplications per call.
  const std::uint64_t p = next_prime(universe_size);
  std::vector<LinearPermutation> family;
  family.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t a = 1 + rng.next_below(p - 1);
    const std::uint64_t b = rng.next_below(p);
    family.emplace_back(a, b, p);
  }
  return family;
}

std::shared_ptr<const std::vector<LinearPermutation>>
shared_permutation_family(std::uint64_t universe_size, std::size_t count,
                          std::uint64_t seed) {
  using Key = std::tuple<std::uint64_t, std::size_t, std::uint64_t>;
  static std::mutex mutex;
  static std::map<Key, std::shared_ptr<const std::vector<LinearPermutation>>>
      cache;
  const Key key{universe_size, count, seed};
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (const auto it = cache.find(key); it != cache.end()) return it->second;
  }
  // Draw outside the lock — next_prime near 2^63 is the expensive part and
  // the draw is deterministic, so a racing duplicate is identical and the
  // first insert simply wins.
  auto family = std::make_shared<const std::vector<LinearPermutation>>(
      make_permutation_family(universe_size, count, seed));
  std::lock_guard<std::mutex> lock(mutex);
  return cache.try_emplace(key, std::move(family)).first->second;
}

}  // namespace icd::util

#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

/// A bounded single-producer / single-consumer ring.
///
/// This is the cross-shard seam of the sharded delivery engine: frames (and
/// spent buffers travelling back for recycling) cross between worker threads
/// only through these queues. The slot array is the same grow-nothing
/// circular layout as util::RingBuffer, but head and tail become atomics so
/// exactly one producer thread and one consumer thread may touch the ring
/// concurrently — push publishes with a release store the consumer's acquire
/// load observes, and vice versa. Values move through the slots, so a popped
/// std::vector carries its heap storage with it (nothing is copied).
///
/// The capacity is fixed at construction (rounded up to a power of two): a
/// full ring rejects the push rather than reallocating, because growth would
/// require synchronizing both sides. Callers treat a rejected frame push as
/// channel loss — the protocol's retry/fountain paths absorb it.
namespace icd::util {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap *= 2;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// May be called only by the producer thread. Returns false on a full
  /// ring (the value is left untouched for the caller to dispose of).
  bool try_push(T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// May be called only by the consumer thread.
  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return std::nullopt;
    std::optional<T> value(std::move(slots_[head & mask_]));
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  /// Consumer-side emptiness check (exact for the consumer; a producer may
  /// have pushed since).
  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Producer and consumer cursors on separate cache lines so the two
  /// threads don't false-share.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace icd::util

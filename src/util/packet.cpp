#include "util/packet.hpp"

#include <algorithm>

namespace icd::util {

std::vector<std::vector<std::uint8_t>> packetize(
    const std::vector<std::uint8_t>& message, std::size_t mtu) {
  if (mtu == 0) throw std::invalid_argument("packetize: mtu must be > 0");
  std::vector<std::vector<std::uint8_t>> packets;
  packets.reserve(packets_for(message.size(), mtu));
  for (std::size_t offset = 0; offset < message.size(); offset += mtu) {
    const std::size_t len = std::min(mtu, message.size() - offset);
    packets.emplace_back(message.begin() + offset,
                         message.begin() + offset + len);
  }
  return packets;
}

std::vector<std::uint8_t> reassemble(
    const std::vector<std::vector<std::uint8_t>>& packets) {
  std::vector<std::uint8_t> message;
  for (const auto& packet : packets) {
    message.insert(message.end(), packet.begin(), packet.end());
  }
  return message;
}

}  // namespace icd::util

#include "util/arith_coder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icd::util {

namespace {

// 32-bit range coder state with 16-bit probabilities.
constexpr std::uint32_t kTop = 0xFFFFFFFFu;
constexpr std::uint32_t kProbBits = 16;
constexpr std::uint32_t kProbOne = 1u << kProbBits;

std::uint32_t clamp_probability(double p1) {
  const double clamped = std::clamp(p1, 1.0 / kProbOne, 1.0 - 1.0 / kProbOne);
  const auto scaled = static_cast<std::uint32_t>(clamped * kProbOne);
  return std::clamp<std::uint32_t>(scaled, 1, kProbOne - 1);
}

}  // namespace

double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

std::vector<std::uint8_t> arith_encode_bits(const std::vector<bool>& bits,
                                            double p1) {
  const std::uint32_t prob1 = clamp_probability(p1);
  std::vector<std::uint8_t> out;
  std::uint64_t low = 0;  // 33+ bits so additions expose the carry
  std::uint32_t range = kTop;
  const auto propagate_carry = [&]() {
    // low overflowed 32 bits: +1 ripples through the emitted bytes.
    std::size_t i = out.size();
    while (i > 0 && out[i - 1] == 0xff) {
      out[--i] = 0;
    }
    if (i > 0) ++out[i - 1];
    low &= 0xFFFFFFFFull;
  };
  for (const bool bit : bits) {
    // Split the range: [low, low+split] encodes 0, remainder encodes 1.
    const std::uint32_t split = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(range) * (kProbOne - prob1)) >> kProbBits);
    if (bit) {
      low += split + 1;
      range -= split + 1;
      if (low > 0xFFFFFFFFull) propagate_carry();
    } else {
      range = split;
    }
    // Renormalize: emit leading bytes once they are settled.
    while (range < (1u << 24)) {
      out.push_back(static_cast<std::uint8_t>(low >> 24));
      low = (low << 8) & 0xFFFFFFFFull;
      range = (range << 8) | 0xff;
    }
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(low >> 24));
    low = (low << 8) & 0xFFFFFFFFull;
  }
  return out;
}

std::vector<bool> arith_decode_bits(const std::vector<std::uint8_t>& bytes,
                                    std::size_t count, double p1) {
  const std::uint32_t prob1 = clamp_probability(p1);
  std::vector<bool> bits;
  bits.reserve(count);
  std::uint32_t low = 0;
  std::uint32_t range = kTop;
  std::uint32_t code = 0;
  std::size_t pos = 0;
  const auto next_byte = [&]() -> std::uint8_t {
    return pos < bytes.size() ? bytes[pos++] : 0;
  };
  for (int i = 0; i < 4; ++i) code = (code << 8) | next_byte();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t split = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(range) * (kProbOne - prob1)) >> kProbBits);
    const bool bit = (code - low) > split;
    if (bit) {
      low += split + 1;
      range -= split + 1;
    } else {
      range = split;
    }
    bits.push_back(bit);
    while (range < (1u << 24)) {
      code = (code << 8) | next_byte();
      low <<= 8;
      range = (range << 8) | 0xff;
    }
  }
  return bits;
}

}  // namespace icd::util

#include "util/buffer.hpp"

#include <stdexcept>

namespace icd::util {

void ByteWriter::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void ByteReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n) {
    throw std::out_of_range("ByteReader: read past end of buffer");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = bytes_[pos_];
  v |= static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    need(1);
    const std::uint8_t byte = bytes_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7e))) {
      throw std::out_of_range("ByteReader: varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

std::vector<std::uint8_t> ByteReader::raw(std::size_t n) {
  need(n);
  std::vector<std::uint8_t> out(bytes_.begin() + pos_,
                                bytes_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> ByteReader::view(std::size_t n) {
  need(n);
  const auto out = bytes_.subspan(pos_, n);
  pos_ += n;
  return out;
}

}  // namespace icd::util

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/random.hpp"

/// Linear permutations pi(x) = (a*x + b) mod p over a prime-sized universe.
///
/// Section 4 of the paper: "In practice, truly random permutations cannot be
/// used, as the storage requirements are impractical. Instead, we may use
/// simple permutations, such as pi(x) = ax + b (mod |U|) for randomly chosen
/// a and b, without dramatically affecting overall performance."
namespace icd::util {

class LinearPermutation {
 public:
  /// Constructs pi(x) = (a*x + b) mod modulus. `modulus` must be prime and
  /// `a` must satisfy 1 <= a < modulus; 0 <= b < modulus.
  LinearPermutation(std::uint64_t a, std::uint64_t b, std::uint64_t modulus);

  /// Draws a uniformly random member of the family over a universe of at
  /// least `universe_size` (the modulus is the smallest prime >= the size).
  static LinearPermutation random(std::uint64_t universe_size,
                                  Xoshiro256& rng);

  std::uint64_t operator()(std::uint64_t x) const {
    return (mul_a(x % modulus_) + b_) % modulus_;
  }

  /// Inverse permutation: pi^{-1}(y) = (y - b) * a^{-1} mod p.
  std::uint64_t inverse(std::uint64_t y) const;

  std::uint64_t a() const { return a_; }
  std::uint64_t b() const { return b_; }
  std::uint64_t modulus() const { return modulus_; }

 private:
  std::uint64_t mul_a(std::uint64_t x) const {
    return static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(a_) * x % modulus_);
  }

  std::uint64_t a_;
  std::uint64_t b_;
  std::uint64_t modulus_;
  std::uint64_t a_inverse_;
};

/// A fixed, seed-derived family of linear permutations. Peers that agree on
/// (seed, count, universe size) derive identical permutations — this is how
/// the paper's requirement that "peers must agree on these permutations in
/// advance" is met without any communication.
std::vector<LinearPermutation> make_permutation_family(
    std::uint64_t universe_size, std::size_t count, std::uint64_t seed);

/// Process-wide cache over make_permutation_family, keyed by
/// (universe_size, count, seed). Families are immutable once drawn and the
/// key triple fully determines the draw, so every sketch over the same
/// universe can share one family. This matters on the handshake receive
/// path: MinwiseSketch::deserialize constructs a sketch per received
/// summary, and rebuilding the family there costs a next_prime search plus
/// `count` modular inversions per packet. Thread-safe; entries live for the
/// process (distinct key triples are few — one per universe geometry).
std::shared_ptr<const std::vector<LinearPermutation>>
shared_permutation_family(std::uint64_t universe_size, std::size_t count,
                          std::uint64_t seed);

}  // namespace icd::util

#pragma once

#include <barrier>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

/// A persistent worker pool for tick-phased shard execution.
///
/// The sharded engines advance in global ticks, each tick a sequence of
/// phases with a barrier between them (see DESIGN.md, "Threading model").
/// ShardPool owns one std::jthread per shard and runs one callback per
/// phase on every worker:
///
///   pool.run([&](std::size_t shard) { ... phase work for `shard` ... });
///
/// run() blocks the calling (coordinator) thread until every worker has
/// finished the callback, and the entry/exit barriers give the coordinator
/// happens-before both ways: state the coordinator wrote before run() is
/// visible to the workers, and everything the workers wrote is visible to
/// the coordinator after run() returns. Between run() calls the workers are
/// parked, so the coordinator may freely touch shard-owned state
/// (admission, link teardown, stats aggregation) single-threaded.
///
/// Each worker also accumulates its own thread-CPU time across callbacks
/// (busy_ns). On machines with fewer cores than shards wall-clock cannot
/// show parallel scaling, so bench_delivery reports the critical-path model
/// max(busy_ns) + serial time alongside the measured wall time.
namespace icd::util {

class ShardPool {
 public:
  explicit ShardPool(std::size_t shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  std::size_t shards() const { return shards_; }

  /// Runs `fn(shard)` on every worker and waits for all of them.
  void run(const std::function<void(std::size_t)>& fn);

  /// Cumulative per-worker thread-CPU nanoseconds spent inside callbacks.
  const std::vector<std::uint64_t>& busy_ns() const { return busy_ns_; }

  /// Phase callbacks dispatched so far — the denominator for turning
  /// busy_ns into a per-phase cost (bench/scale instrumentation).
  std::uint64_t runs() const { return runs_; }

 private:
  void worker(std::size_t shard);
  static std::uint64_t thread_cpu_ns();

  std::size_t shards_;
  /// Workers plus the coordinator; run() releases the workers at the entry
  /// barrier and collects them at the exit barrier.
  std::barrier<> gate_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  bool stop_ = false;
  std::uint64_t runs_ = 0;
  std::vector<std::uint64_t> busy_ns_;
  std::vector<std::jthread> workers_;
};

}  // namespace icd::util

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

/// Compact bit array backing the Bloom filters.
namespace icd::util {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }
  bool empty() const { return bits_ == 0; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void clear(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  std::size_t popcount() const;

  /// Bitwise OR with a vector of identical size (Bloom filter union).
  BitVector& operator|=(const BitVector& other);
  /// Bitwise AND with a vector of identical size (Bloom filter intersection).
  BitVector& operator&=(const BitVector& other);

  bool operator==(const BitVector& other) const = default;

  /// Raw 64-bit words, little-endian bit order within each word.
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Serialized size in bytes (8 per word; callers prepend their own
  /// headers).
  std::vector<std::uint8_t> to_bytes() const;
  static BitVector from_bytes(const std::vector<std::uint8_t>& bytes,
                              std::size_t bits);

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace icd::util

#include "util/hash.hpp"

#include <stdexcept>

#include "util/random.hpp"

namespace icd::util {

std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

DoubleHashFamily::DoubleHashFamily(std::size_t range, std::uint64_t seed)
    : range_(range),
      seed1_(mix64(seed ^ 0x71ee2147a1c7c9b5ULL)),
      seed2_(mix64(seed ^ 0x2545f4914f6cdd1dULL)) {
  if (range == 0) {
    throw std::invalid_argument("DoubleHashFamily: range must be > 0");
  }
}

void DoubleHashFamily::fill(std::uint64_t key, std::size_t k,
                            std::vector<std::size_t>& out) const {
  const std::uint64_t h1 = hash64(key, seed1_);
  const std::uint64_t h2 = hash64(key, seed2_) | 1;
  std::uint64_t h = h1;
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(static_cast<std::size_t>(h % range_));
    h += h2;
  }
}

TabulationHash64::TabulationHash64(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& table : tables_) {
    for (auto& entry : table) entry = rng();
  }
}

}  // namespace icd::util

#include "util/random.hpp"

#include <stdexcept>
#include <unordered_set>

namespace icd::util {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("next_below: bound must be > 0");
  // Lemire 2019: multiply-shift with rejection to remove modulo bias.
  unsigned __int128 m =
      static_cast<unsigned __int128>((*this)()) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      m = static_cast<unsigned __int128>((*this)()) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (void)(*this)();
    }
  }
  state_ = acc;
}

std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                      std::size_t k,
                                                      Xoshiro256& rng) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  std::vector<std::uint64_t> result;
  result.reserve(k);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(k * 2);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = rng.next_below(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

void sample_without_replacement_into(std::vector<std::uint64_t>& out,
                                     std::uint64_t n, std::size_t k,
                                     Xoshiro256& rng) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  out.clear();
  // Both branches run Robert Floyd's algorithm with identical rng draws,
  // so this yields the same sample as the vector version for the same
  // arguments — required: encoder and decoder derive neighbor sets from
  // whichever variant their call site uses.
  if (k > 64) {
    // Rare large draw (the soliton tail): the O(k^2) scan would dominate,
    // so fall back to a hash set and accept the allocation.
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(k * 2);
    for (std::uint64_t j = n - k; j < n; ++j) {
      const std::uint64_t t = rng.next_below(j + 1);
      if (chosen.insert(t).second) {
        out.push_back(t);
      } else {
        chosen.insert(j);
        out.push_back(j);
      }
    }
    return;
  }
  const auto contains = [&out](std::uint64_t v) {
    for (const std::uint64_t x : out) {
      if (x == v) return true;
    }
    return false;
  };
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = rng.next_below(j + 1);
    out.push_back(contains(t) ? j : t);
  }
}

}  // namespace icd::util

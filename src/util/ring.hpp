#pragma once

#include <cstddef>
#include <utility>
#include <vector>

/// A FIFO over a circular slot array that never releases its slots.
///
/// std::deque allocates and frees node blocks as the head crosses chunk
/// boundaries, which shows up as steady-state allocation churn on the
/// zero-allocation symbol path (wire::Pipe and wire::LossyChannel queues).
/// RingBuffer grows by doubling and then reuses the same slots forever:
/// push/pop move values in and out, so a popped std::vector's heap storage
/// travels with it and the vacated slot costs nothing to refill.
namespace icd::util {

template <typename T>
class RingBuffer {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Element `i` counted from the front (0 = next to pop).
  T& operator[](std::size_t i) { return slots_[index(i)]; }
  const T& operator[](std::size_t i) const { return slots_[index(i)]; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }
  T& back() { return slots_[index(count_ - 1)]; }

  void push_back(T value) {
    if (count_ == slots_.size()) grow();
    slots_[index(count_)] = std::move(value);
    ++count_;
  }

  T pop_front() {
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    return value;
  }

 private:
  std::size_t index(std::size_t i) const {
    return (head_ + i) % slots_.size();
  }

  void grow() {
    std::vector<T> bigger(slots_.empty() ? 8 : 2 * slots_.size());
    for (std::size_t i = 0; i < count_; ++i) bigger[i] = std::move((*this)[i]);
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace icd::util

#pragma once

#include <cstdint>

/// Arithmetic in GF(p) with p = 2^61 - 1 (a Mersenne prime), the field
/// underlying the exact set-discrepancy reconciler of Section 5.1 ("set
/// discrepancy methods of [Minsky, Trachtenberg, Zippel]"). The paper notes
/// such methods cost Theta(d * |S_A|) preprocessing and Theta(d^3) solve
/// time — costs this implementation reproduces and the ablation bench
/// measures.
namespace icd::reconcile {

class Fp {
 public:
  /// The field modulus.
  static constexpr std::uint64_t kP = (std::uint64_t{1} << 61) - 1;

  constexpr Fp() = default;
  /// Reduces `v` modulo p. Callers that need injectivity (set elements)
  /// must supply values already < p.
  constexpr explicit Fp(std::uint64_t v) : v_(v % kP) {}

  constexpr std::uint64_t value() const { return v_; }

  friend constexpr Fp operator+(Fp a, Fp b) {
    std::uint64_t s = a.v_ + b.v_;
    if (s >= kP) s -= kP;
    return from_raw(s);
  }
  friend constexpr Fp operator-(Fp a, Fp b) {
    return from_raw(a.v_ >= b.v_ ? a.v_ - b.v_ : a.v_ + kP - b.v_);
  }
  friend constexpr Fp operator*(Fp a, Fp b) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(a.v_) * b.v_;
    // Mersenne reduction: x = hi * 2^61 + lo == hi + lo (mod 2^61 - 1).
    std::uint64_t lo = static_cast<std::uint64_t>(prod) & kP;
    std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
    std::uint64_t s = lo + hi;
    if (s >= kP) s -= kP;
    return from_raw(s);
  }
  friend constexpr Fp operator-(Fp a) { return from_raw(a.v_ == 0 ? 0 : kP - a.v_); }

  Fp& operator+=(Fp o) { return *this = *this + o; }
  Fp& operator-=(Fp o) { return *this = *this - o; }
  Fp& operator*=(Fp o) { return *this = *this * o; }

  friend constexpr bool operator==(Fp a, Fp b) { return a.v_ == b.v_; }

  constexpr bool is_zero() const { return v_ == 0; }

  /// a^e by square-and-multiply.
  static Fp pow(Fp a, std::uint64_t e) {
    Fp result(1);
    while (e > 0) {
      if (e & 1) result *= a;
      a *= a;
      e >>= 1;
    }
    return result;
  }

  /// Multiplicative inverse (Fermat); *this must be nonzero.
  Fp inverse() const;

 private:
  static constexpr Fp from_raw(std::uint64_t v) {
    Fp f;
    f.v_ = v;
    return f;
  }

  std::uint64_t v_ = 0;
};

}  // namespace icd::reconcile

#include "reconcile/polynomial.hpp"

namespace icd::reconcile {

Polynomial::Polynomial(std::vector<Fp> coeffs) : coeffs_(std::move(coeffs)) {
  trim();
}

void Polynomial::trim() {
  while (!coeffs_.empty() && coeffs_.back().is_zero()) coeffs_.pop_back();
}

Polynomial Polynomial::from_roots(const std::vector<Fp>& roots) {
  std::vector<Fp> coeffs{Fp(1)};
  for (const Fp root : roots) {
    // Multiply by (z - root) in place.
    coeffs.push_back(Fp(0));
    for (std::size_t i = coeffs.size(); i-- > 1;) {
      coeffs[i] = coeffs[i - 1] - root * coeffs[i];
    }
    coeffs[0] = -root * coeffs[0];
  }
  return Polynomial(std::move(coeffs));
}

Fp Polynomial::eval(Fp z) const {
  Fp acc(0);
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = acc * z + coeffs_[i];
  }
  return acc;
}

Polynomial operator*(const Polynomial& a, const Polynomial& b) {
  if (a.is_zero() || b.is_zero()) return Polynomial::zero();
  std::vector<Fp> coeffs(a.coeffs_.size() + b.coeffs_.size() - 1, Fp(0));
  for (std::size_t i = 0; i < a.coeffs_.size(); ++i) {
    for (std::size_t j = 0; j < b.coeffs_.size(); ++j) {
      coeffs[i + j] += a.coeffs_[i] * b.coeffs_[j];
    }
  }
  return Polynomial(std::move(coeffs));
}

Polynomial operator+(const Polynomial& a, const Polynomial& b) {
  std::vector<Fp> coeffs(std::max(a.coeffs_.size(), b.coeffs_.size()), Fp(0));
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    coeffs[i] = a.coefficient(i) + b.coefficient(i);
  }
  return Polynomial(std::move(coeffs));
}

}  // namespace icd::reconcile

#pragma once

#include <cstddef>
#include <vector>

#include "reconcile/gf.hpp"

/// Dense univariate polynomials over GF(2^61 - 1), just enough machinery
/// for characteristic-polynomial set reconciliation.
namespace icd::reconcile {

class Polynomial {
 public:
  /// The zero polynomial.
  Polynomial() = default;
  /// coeffs[i] is the coefficient of z^i; trailing zeros are trimmed.
  explicit Polynomial(std::vector<Fp> coeffs);

  static Polynomial zero() { return Polynomial(); }
  static Polynomial one() { return Polynomial({Fp(1)}); }

  /// The monic characteristic polynomial prod (z - r) over `roots`.
  static Polynomial from_roots(const std::vector<Fp>& roots);

  bool is_zero() const { return coeffs_.empty(); }
  /// Degree; -1 for the zero polynomial.
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const std::vector<Fp>& coefficients() const { return coeffs_; }
  Fp coefficient(std::size_t i) const {
    return i < coeffs_.size() ? coeffs_[i] : Fp(0);
  }

  /// Horner evaluation.
  Fp eval(Fp z) const;

  friend Polynomial operator*(const Polynomial& a, const Polynomial& b);
  friend Polynomial operator+(const Polynomial& a, const Polynomial& b);

 private:
  void trim();

  std::vector<Fp> coeffs_;
};

}  // namespace icd::reconcile

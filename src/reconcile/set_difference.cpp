#include "reconcile/set_difference.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace icd::reconcile {

WholeSetMessage make_whole_set_message(
    const std::vector<std::uint64_t>& keys) {
  return WholeSetMessage{keys};
}

std::vector<std::uint64_t> whole_set_difference(
    const std::vector<std::uint64_t>& local, const WholeSetMessage& remote) {
  const std::unordered_set<std::uint64_t> remote_set(remote.keys.begin(),
                                                     remote.keys.end());
  std::vector<std::uint64_t> difference;
  for (const std::uint64_t key : local) {
    if (!remote_set.contains(key)) difference.push_back(key);
  }
  return difference;
}

std::size_t HashedSetMessage::wire_bytes() const {
  // ceil(log2 range) bits per hash, plus the 16-byte header.
  std::size_t bits_per = 1;
  while ((std::uint64_t{1} << bits_per) < range && bits_per < 64) ++bits_per;
  return (hashes.size() * bits_per + 7) / 8 + 16;
}

HashedSetMessage make_hashed_set_message(const std::vector<std::uint64_t>& keys,
                                         std::uint64_t range,
                                         std::uint64_t seed) {
  if (range == 0) {
    throw std::invalid_argument("make_hashed_set_message: range must be > 0");
  }
  HashedSetMessage message;
  message.range = range;
  message.seed = seed;
  message.hashes.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    message.hashes.push_back(util::hash64(key, seed) % range);
  }
  std::sort(message.hashes.begin(), message.hashes.end());
  return message;
}

std::vector<std::uint64_t> hashed_set_difference(
    const std::vector<std::uint64_t>& local, const HashedSetMessage& remote) {
  std::vector<std::uint64_t> difference;
  for (const std::uint64_t key : local) {
    const std::uint64_t h = util::hash64(key, remote.seed) % remote.range;
    if (!std::binary_search(remote.hashes.begin(), remote.hashes.end(), h)) {
      difference.push_back(key);
    }
  }
  return difference;
}

std::vector<std::uint64_t> bloom_set_difference(
    const std::vector<std::uint64_t>& local,
    const filter::BloomFilter& remote_filter) {
  std::vector<std::uint64_t> difference;
  for (const std::uint64_t key : local) {
    if (!remote_filter.contains(key)) difference.push_back(key);
  }
  return difference;
}

}  // namespace icd::reconcile

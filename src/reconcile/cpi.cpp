#include "reconcile/cpi.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "reconcile/polynomial.hpp"

namespace icd::reconcile {

namespace {

/// Held-out points used to validate an interpolation before accepting it.
constexpr std::size_t kVerifyPoints = 4;

/// Solves the square system M x = rhs over GF(p) by Gaussian elimination
/// with partial pivoting. Returns nullopt if M is singular. O(n^3) — the
/// Theta(d^3) the paper attributes to this method.
std::optional<std::vector<Fp>> solve_linear(std::vector<std::vector<Fp>> m,
                                            std::vector<Fp> rhs) {
  const std::size_t n = m.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && m[pivot][col].is_zero()) ++pivot;
    if (pivot == n) return std::nullopt;
    std::swap(m[pivot], m[col]);
    std::swap(rhs[pivot], rhs[col]);
    const Fp inv = m[col][col].inverse();
    for (std::size_t j = col; j < n; ++j) m[col][j] *= inv;
    rhs[col] *= inv;
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || m[row][col].is_zero()) continue;
      const Fp factor = m[row][col];
      for (std::size_t j = col; j < n; ++j) {
        m[row][j] -= factor * m[col][j];
      }
      rhs[row] -= factor * rhs[col];
    }
  }
  return rhs;
}

}  // namespace

Fp cpi_evaluation_point(std::size_t i) {
  return Fp(Fp::kP - 1 - static_cast<std::uint64_t>(i));
}

CpiSketch make_cpi_sketch(const std::vector<std::uint64_t>& keys,
                          std::size_t m) {
  CpiSketch sketch;
  sketch.set_size = keys.size();
  sketch.evaluations.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const Fp z = cpi_evaluation_point(i);
    Fp prod(1);
    for (const std::uint64_t key : keys) {
      if (key >= kMaxCpiKey) {
        throw std::invalid_argument("make_cpi_sketch: key >= kMaxCpiKey");
      }
      prod *= z - Fp(key);
    }
    sketch.evaluations.push_back(prod);
  }
  return sketch;
}

CpiResult cpi_reconcile(const std::vector<std::uint64_t>& local_keys,
                        const CpiSketch& remote,
                        std::size_t max_discrepancy) {
  CpiResult result;
  const std::size_t m = remote.evaluations.size();
  if (m < kVerifyPoints + 1) return result;  // not enough points to even try

  // f_i = chi_A(z_i) / chi_B(z_i) at every shared point.
  std::vector<Fp> f(m);
  for (std::size_t i = 0; i < m; ++i) {
    const Fp z = cpi_evaluation_point(i);
    Fp chi_local(1);
    for (const std::uint64_t key : local_keys) {
      if (key >= kMaxCpiKey) {
        throw std::invalid_argument("cpi_reconcile: key >= kMaxCpiKey");
      }
      chi_local *= z - Fp(key);
    }
    f[i] = remote.evaluations[i] * chi_local.inverse();
  }

  // deg P - deg Q is pinned by the set sizes.
  const auto local_size = static_cast<std::int64_t>(local_keys.size());
  const auto remote_size = static_cast<std::int64_t>(remote.set_size);
  const std::int64_t delta = remote_size - local_size;  // dP - dQ

  const std::size_t usable = m - kVerifyPoints;
  const std::size_t bound = std::min(max_discrepancy, usable);

  // Try the smallest consistent total degree first; grow in steps of 2 to
  // preserve parity. The smallest D that verifies gives gcd(P, Q) = 1, so
  // the root sets are exactly the two differences.
  const auto abs_delta = static_cast<std::size_t>(delta < 0 ? -delta : delta);
  for (std::size_t d_total = abs_delta; d_total <= bound; d_total += 2) {
    // dp - dq = delta and dp + dq = d_total (parities agree by loop step).
    const auto signed_total = static_cast<std::int64_t>(d_total);
    const auto dp_real = static_cast<std::size_t>((signed_total + delta) / 2);
    const auto dq = static_cast<std::size_t>((signed_total - delta) / 2);

    // Solve for the non-leading coefficients of monic P (deg dp_real) and
    // monic Q (deg dq): P(z) - f Q(z) = 0, i.e.
    //   sum_j p_j z^j - f sum_j q_j z^j = f z^dq - z^dp.
    const std::size_t unknowns = dp_real + dq;
    std::optional<std::vector<Fp>> solution;
    if (unknowns == 0) {
      solution.emplace();  // P = Q = 1
    } else {
      std::vector<std::vector<Fp>> matrix(unknowns,
                                          std::vector<Fp>(unknowns, Fp(0)));
      std::vector<Fp> rhs(unknowns, Fp(0));
      for (std::size_t row = 0; row < unknowns; ++row) {
        const Fp z = cpi_evaluation_point(row);
        Fp zj(1);
        for (std::size_t j = 0; j < dp_real; ++j) {
          matrix[row][j] = zj;
          zj *= z;
        }
        zj = Fp(1);
        for (std::size_t j = 0; j < dq; ++j) {
          matrix[row][dp_real + j] = -(f[row] * zj);
          zj *= z;
        }
        rhs[row] = f[row] * Fp::pow(z, dq) - Fp::pow(z, dp_real);
      }
      solution = solve_linear(std::move(matrix), std::move(rhs));
      if (!solution) continue;  // singular: try a larger degree
    }

    std::vector<Fp> p_coeffs(solution->begin(),
                             solution->begin() + static_cast<std::ptrdiff_t>(
                                                     dp_real));
    p_coeffs.push_back(Fp(1));
    std::vector<Fp> q_coeffs(
        solution->begin() + static_cast<std::ptrdiff_t>(dp_real),
        solution->end());
    q_coeffs.push_back(Fp(1));
    const Polynomial p_poly{std::vector<Fp>(p_coeffs)};
    const Polynomial q_poly{std::vector<Fp>(q_coeffs)};

    // Validate on the held-out points.
    bool ok = true;
    for (std::size_t i = m - kVerifyPoints; i < m; ++i) {
      const Fp z = cpi_evaluation_point(i);
      if (!(p_poly.eval(z) == f[i] * q_poly.eval(z))) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    // B - A are the roots of Q among the local elements.
    std::vector<std::uint64_t> local_only;
    for (const std::uint64_t key : local_keys) {
      if (q_poly.eval(Fp(key)).is_zero()) local_only.push_back(key);
    }
    if (local_only.size() != dq) continue;  // spurious factor: keep growing

    result.local_only = std::move(local_only);
    result.remote_only_count = dp_real;
    result.verified = true;
    return result;
  }
  return result;  // bound too small; caller should retry with more points
}

}  // namespace icd::reconcile

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "art/art_summary.hpp"
#include "filter/bloom.hpp"
#include "reconcile/cpi.hpp"
#include "reconcile/set_difference.hpp"

/// One façade over every reconciliation mechanism in the library, so that
/// applications (and Table 4(c)) can switch methods with a flag and compare
/// wire size vs accuracy vs compute on identical inputs.
namespace icd::reconcile {

enum class Method {
  kWholeSet,     // exact, O(n log u) bits
  kHashedSet,    // exact up to hash collisions, O(n log h) bits
  kBloomFilter,  // approximate, O(n) bits, O(n) search
  kArt,          // approximate, O(n) bits, O(d log n) search
  kCpi,          // exact, O(d log u) bits, Theta(d^3) compute
};

std::string_view method_name(Method method);

struct ReconcileOptions {
  Method method = Method::kBloomFilter;
  /// Summary budget for Bloom/ART methods, in bits per element of the
  /// summarized set.
  double bits_per_element = 8.0;
  /// ART: fraction of the budget spent on the leaf filter (rest internal)
  /// and the correction level. Defaults follow Table 4's best settings.
  double art_leaf_fraction = 0.5;
  int art_correction = 5;
  /// Hashed-set: hash range h (poly(n) to make misses unlikely).
  std::uint64_t hashed_range = std::uint64_t{1} << 40;
  /// CPI: bound on |A - B| + |B - A| (evaluation points scale with it).
  std::size_t cpi_max_discrepancy = 128;
};

struct ReconcileOutcome {
  /// Elements of the local set the mechanism identified as missing from the
  /// remote set (candidates to send).
  std::vector<std::uint64_t> local_minus_remote;
  /// Bytes of summary the remote peer had to transmit.
  std::size_t summary_bytes = 0;
  /// The same, in 1 KB packets (the paper's messaging-complexity unit).
  std::size_t summary_packets = 0;
  /// False for CPI runs whose discrepancy bound proved too small.
  bool exact_method_verified = true;
};

/// Runs both sides of a reconciliation: `remote` summarizes its set with
/// the chosen method, `local` searches the summary and returns the elements
/// it believes the remote peer lacks (local - remote).
///
/// Keys must be < kMaxCpiKey when Method::kCpi is used.
ReconcileOutcome reconcile(const std::vector<std::uint64_t>& local,
                           const std::vector<std::uint64_t>& remote,
                           const ReconcileOptions& options);

}  // namespace icd::reconcile

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "filter/bloom.hpp"

/// The exact approaches of Section 5.1 and the Bloom-filter approximate
/// approach of Section 5.2, in one place so their costs and accuracies can
/// be compared head-to-head (Table 4(c)).
namespace icd::reconcile {

/// --- Exact: send the whole set -------------------------------------------
/// O(|S_A| log u) bits on the wire; exact difference.
struct WholeSetMessage {
  std::vector<std::uint64_t> keys;
  std::size_t wire_bytes() const { return keys.size() * 8 + 8; }
};

WholeSetMessage make_whole_set_message(const std::vector<std::uint64_t>& keys);

/// Elements of `local` absent from the message's key set — exact.
std::vector<std::uint64_t> whole_set_difference(
    const std::vector<std::uint64_t>& local, const WholeSetMessage& remote);

/// --- Exact-up-to-collisions: send hashes ----------------------------------
/// O(|S_A| log h) bits; misses an element only on an h-collision, so h is
/// chosen poly(|S_A|) ("the miss probability can be made inversely
/// polynomial in n by setting h = poly(|S_A|)").
struct HashedSetMessage {
  std::vector<std::uint64_t> hashes;  // reduced to [0, range)
  std::uint64_t range = 0;
  std::uint64_t seed = 0;
  std::size_t wire_bytes() const;
};

inline constexpr std::uint64_t kHashedSetSeed = 0x9a5eedc0de1234ULL;

HashedSetMessage make_hashed_set_message(const std::vector<std::uint64_t>& keys,
                                         std::uint64_t range,
                                         std::uint64_t seed = kHashedSetSeed);

/// Elements of `local` whose hash is absent from the message.
std::vector<std::uint64_t> hashed_set_difference(
    const std::vector<std::uint64_t>& local, const HashedSetMessage& remote);

/// --- Approximate: Bloom filter (Section 5.2) ------------------------------
/// Elements of `local` that miss `remote_filter`; one-sided error — every
/// returned element is certainly not in the remote set... in reverse: a
/// false positive only *withholds* a useful element, it never admits a
/// redundant one.
std::vector<std::uint64_t> bloom_set_difference(
    const std::vector<std::uint64_t>& local,
    const filter::BloomFilter& remote_filter);

}  // namespace icd::reconcile

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "reconcile/gf.hpp"

/// Characteristic-polynomial interpolation (CPI) set reconciliation —
/// the Minsky/Trachtenberg/Zippel scheme the paper cites in Section 5.1 as
/// the exact approach with "nearly optimal communication complexity":
/// O(d log u) bits for discrepancy d, at the price of a Theta(d^3) solve.
///
/// Peer A evaluates its characteristic polynomial chi_A(z) = prod (z - a) at
/// m agreed sample points and ships the evaluations. Peer B forms
/// f(z) = chi_A(z) / chi_B(z) = chi_{A-B}(z) / chi_{B-A}(z), interpolates
/// the reduced rational function, and reads B - A off the roots of the
/// denominator among its own elements.
///
/// Element keys must be < kMaxKey so they never collide with the reserved
/// evaluation points at the top of the field.
namespace icd::reconcile {

/// Keys must lie below this bound (2^60), leaving the top of GF(2^61-1)
/// free for evaluation points.
inline constexpr std::uint64_t kMaxCpiKey = std::uint64_t{1} << 60;

/// The transmissible evaluation vector: O(m) field elements, i.e.
/// O(d log u) bits as in the paper.
struct CpiSketch {
  /// chi_A evaluated at the first `evaluations.size()` shared points.
  std::vector<Fp> evaluations;
  /// |S_A|; needed by the receiver to fix deg P - deg Q.
  std::uint64_t set_size = 0;

  std::size_t wire_bytes() const { return evaluations.size() * 8 + 8; }
};

/// The i-th shared evaluation point (descending from the top of the field).
Fp cpi_evaluation_point(std::size_t i);

/// Builds the sketch of `keys` with `m` evaluation points. m must be at
/// least the (suspected) discrepancy |A - B| + |B - A|; choose it with
/// slack and verify. Throws if any key >= kMaxCpiKey.
CpiSketch make_cpi_sketch(const std::vector<std::uint64_t>& keys,
                          std::size_t m);

struct CpiResult {
  /// Keys of the local set believed absent from the remote set (B - A when
  /// run by B against A's sketch). Exact when `verified` is true.
  std::vector<std::uint64_t> local_only;
  /// Size of the inferred remote-only difference |A - B|.
  std::size_t remote_only_count = 0;
  /// True when the interpolated rational function reproduced both sketches
  /// at held-out verification points.
  bool verified = false;
};

/// Reconciles `local_keys` against a remote sketch, assuming the total
/// discrepancy is at most `max_discrepancy` (must be <= the sketch's
/// evaluation count minus the verification margin). Returns an unverified
/// result if the discrepancy bound was too small.
CpiResult cpi_reconcile(const std::vector<std::uint64_t>& local_keys,
                        const CpiSketch& remote,
                        std::size_t max_discrepancy);

}  // namespace icd::reconcile

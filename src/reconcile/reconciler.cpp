#include "reconcile/reconciler.hpp"

#include <stdexcept>
#include <unordered_map>

#include "art/reconciliation_tree.hpp"
#include "util/hash.hpp"
#include "util/packet.hpp"

namespace icd::reconcile {

std::string_view method_name(Method method) {
  switch (method) {
    case Method::kWholeSet:
      return "whole-set";
    case Method::kHashedSet:
      return "hashed-set";
    case Method::kBloomFilter:
      return "bloom-filter";
    case Method::kArt:
      return "art";
    case Method::kCpi:
      return "cpi";
  }
  return "unknown";
}

ReconcileOutcome reconcile(const std::vector<std::uint64_t>& local,
                           const std::vector<std::uint64_t>& remote,
                           const ReconcileOptions& options) {
  ReconcileOutcome outcome;
  switch (options.method) {
    case Method::kWholeSet: {
      const auto message = make_whole_set_message(remote);
      outcome.summary_bytes = message.wire_bytes();
      outcome.local_minus_remote = whole_set_difference(local, message);
      break;
    }
    case Method::kHashedSet: {
      const auto message =
          make_hashed_set_message(remote, options.hashed_range);
      outcome.summary_bytes = message.wire_bytes();
      outcome.local_minus_remote = hashed_set_difference(local, message);
      break;
    }
    case Method::kBloomFilter: {
      if (remote.empty()) {
        outcome.local_minus_remote = local;
        break;
      }
      auto filter = filter::BloomFilter::with_bits_per_element(
          remote.size(), options.bits_per_element);
      filter.insert_all(remote);
      outcome.summary_bytes = filter.serialize().size();
      outcome.local_minus_remote = bloom_set_difference(local, filter);
      break;
    }
    case Method::kArt: {
      const art::ReconciliationTree remote_tree(remote);
      const double leaf_bits =
          options.bits_per_element * options.art_leaf_fraction;
      const double internal_bits = options.bits_per_element - leaf_bits;
      const auto summary =
          art::ArtSummary::build(remote_tree, leaf_bits, internal_bits);
      outcome.summary_bytes = summary.serialize().size();
      const art::ReconciliationTree local_tree(local);
      outcome.local_minus_remote = art::find_local_differences(
          local_tree, summary, options.art_correction);
      break;
    }
    case Method::kCpi: {
      // CPI works over GF(2^61 - 1) and needs keys below 2^60; arbitrary
      // 64-bit keys are first mapped down by a shared hash (collisions are
      // ~n^2 / 2^60, i.e. negligible at any practical working-set size).
      constexpr std::uint64_t kCpiMapSeed = 0xc91e0a60f00dULL;
      const auto map_key = [](std::uint64_t key) {
        return util::hash64(key, kCpiMapSeed) >> 4;  // 60 bits
      };
      std::vector<std::uint64_t> mapped_remote;
      mapped_remote.reserve(remote.size());
      for (const std::uint64_t key : remote) {
        mapped_remote.push_back(map_key(key));
      }
      std::vector<std::uint64_t> mapped_local;
      std::unordered_map<std::uint64_t, std::uint64_t> back;
      mapped_local.reserve(local.size());
      back.reserve(local.size() * 2);
      for (const std::uint64_t key : local) {
        const std::uint64_t mapped = map_key(key);
        mapped_local.push_back(mapped);
        back.emplace(mapped, key);
      }
      // Evaluation points: discrepancy bound plus the verification margin.
      const std::size_t points = options.cpi_max_discrepancy + 8;
      const auto sketch = make_cpi_sketch(mapped_remote, points);
      outcome.summary_bytes = sketch.wire_bytes();
      const auto result =
          cpi_reconcile(mapped_local, sketch, options.cpi_max_discrepancy);
      outcome.local_minus_remote.reserve(result.local_only.size());
      for (const std::uint64_t mapped : result.local_only) {
        outcome.local_minus_remote.push_back(back.at(mapped));
      }
      outcome.exact_method_verified = result.verified;
      break;
    }
  }
  outcome.summary_packets = util::packets_for(outcome.summary_bytes);
  return outcome;
}

}  // namespace icd::reconcile

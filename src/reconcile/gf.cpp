#include "reconcile/gf.hpp"

#include <stdexcept>

namespace icd::reconcile {

Fp Fp::inverse() const {
  if (is_zero()) throw std::domain_error("Fp::inverse of zero");
  return pow(*this, kP - 2);
}

}  // namespace icd::reconcile

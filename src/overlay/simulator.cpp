#include "overlay/simulator.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "codec/recoder.hpp"
#include "core/event_loop.hpp"
#include "filter/bloom.hpp"
#include "overlay/node.hpp"
#include "sketch/minwise.hpp"
#include "util/hash.hpp"
#include "util/packet.hpp"
#include "util/random.hpp"
#include "util/shard_pool.hpp"
#include "wire/message.hpp"

namespace icd::overlay {

namespace {

/// Symbol ids live anywhere below 2^63; the min-wise permutations must
/// cover the whole range since fountain ids are hash-derived.
constexpr std::uint64_t kIdUniverse = std::uint64_t{1} << 63;

filter::BloomFilter build_bloom(const std::vector<std::uint64_t>& ids,
                                const SimConfig& config) {
  auto filter = filter::BloomFilter::with_bits_per_element(
      std::max<std::size_t>(1, ids.size()), config.bloom_bits_per_element);
  filter.insert_all(ids);
  return filter;
}

struct Connection {
  std::size_t sender_index;
  SenderNode view;  // snapshot of the sender at connection setup
  /// Per-edge wire: the connection's symbols travel through this channel,
  /// which owns the edge's loss, reordering and MTU.
  wire::LossyChannel channel;
  /// Shard-local symbol-selection RNG, used instead of the simulation's
  /// shared RNG when the p2p round runs on worker shards (shards > 1).
  /// Seeded without consuming the shared RNG so the shards = 1 path stays
  /// bit-for-bit identical to the historical sequence.
  util::Xoshiro256 rng{0};
};

/// Data-plane counters one shard accumulates during a round; merged into
/// the AdaptiveOverlayResult by the coordinator.
struct WireTotals {
  std::size_t transmissions = 0;
  std::size_t data_bytes = 0;
  std::size_t oversized_frames = 0;
};

/// Count-only symbols still cross the wire as real frames (empty payloads),
/// so byte accounting and MTU behavior are exact.
std::vector<std::uint8_t> encode_transmission(const Transmission& t) {
  if (t.is_recoded()) {
    return wire::encode_frame(
        wire::RecodedSymbolMessage{codec::RecodedSymbol{t.constituents, {}}});
  }
  return wire::encode_frame(
      wire::EncodedSymbolMessage{codec::EncodedSymbol{t.id, {}}});
}

std::optional<Transmission> decode_transmission(
    const std::vector<std::uint8_t>& frame) {
  const wire::Message message = wire::decode_frame(frame);
  if (const auto* encoded =
          std::get_if<wire::EncodedSymbolMessage>(&message)) {
    return Transmission{encoded->symbol.id, {}};
  }
  if (const auto* recoded =
          std::get_if<wire::RecodedSymbolMessage>(&message)) {
    return Transmission{0, recoded->symbol.constituents};
  }
  return std::nullopt;
}

struct PeerState {
  explicit PeerState(const SimConfig& config)
      : sketch_permutations(config.sketch_permutations),
        sketch(kIdUniverse, config.sketch_permutations) {}

  std::size_t sketch_permutations;
  codec::RecodeDecoder decoder;
  /// Incrementally maintained calling card, as Section 4 prescribes ("all
  /// of our approaches can be incrementally updated upon acquisition of
  /// new content, with constant overhead per receipt of each new element").
  sketch::MinwiseSketch sketch;
  std::size_t sketch_offset = 0;
  bool joined = false;
  std::size_t completion_round = 0;
  std::vector<Connection> connections;
  /// Wire from the origin fountain (built lazily for fanout peers).
  std::optional<wire::LossyChannel> origin_channel;

  const std::vector<std::uint64_t>& symbols() const {
    return decoder.acquisition_log();
  }
  std::size_t count() const { return decoder.symbol_count(); }

  /// Folds newly acquired ids into the sketch (lazy, before sketch use).
  void sync_sketch() {
    const auto& log = decoder.acquisition_log();
    while (sketch_offset < log.size()) {
      sketch.update(log[sketch_offset++] % kIdUniverse);
    }
  }

  void reset() {
    decoder = codec::RecodeDecoder();
    sketch = sketch::MinwiseSketch(kIdUniverse, sketch_permutations);
    sketch_offset = 0;
    connections.clear();
    origin_channel.reset();
    completion_round = 0;
  }

  std::size_t apply(const Transmission& t) {
    const std::size_t before = decoder.symbol_count();
    if (t.is_recoded()) {
      decoder.add_recoded(codec::RecodedSymbol{t.constituents, {}});
    } else {
      decoder.add_held_symbol(codec::EncodedSymbol{t.id, {}});
    }
    return decoder.symbol_count() - before;
  }
};

/// Delivers every deliverable frame on `channel` into `peer`. A frame
/// still in flight (one-hop residency) is released by the trailing empty
/// receive and arrives on the next drain; flush the channel first at
/// teardown to collect it immediately.
void drain_into(wire::LossyChannel& channel, PeerState& peer) {
  while (channel.pending()) {
    const auto frame = channel.receive();
    if (frame.empty()) break;  // in flight; deliverable next drain
    if (const auto t = decode_transmission(frame)) {
      peer.apply(*t);
    }
  }
}

}  // namespace

AdaptiveOverlayResult run_adaptive_overlay(
    const AdaptiveOverlayConfig& config) {
  if (config.peer_count == 0) {
    throw std::invalid_argument("run_adaptive_overlay: no peers");
  }
  util::Xoshiro256 rng(config.base.seed ^ 0xada97e);
  AdaptiveOverlayResult result;
  result.completion_round.assign(config.peer_count, 0);

  // Wire shaping for one edge. The legacy scalar loss_rate fills in when
  // the default link config supplies none; a per-edge callback fully
  // specifies its edges (documented on AdaptiveOverlayConfig::loss_rate).
  wire::ChannelConfig base_link = config.link;
  if (base_link.loss_rate == 0.0) base_link.loss_rate = config.loss_rate;
  const auto edge_config = [&](std::size_t sender, std::size_t receiver) {
    return wire::resolve_edge_config(config.link_config, base_link, sender,
                                     receiver, rng());
  };

  std::vector<PeerState> peers(config.peer_count, PeerState(config.base));
  FullSender origin(/*stream_index=*/0);
  const std::size_t target = config.base.target();

  // Worker shards for the p2p round (peers partitioned by index). The
  // connections of a peer are exclusively that shard's: the sender view is
  // a snapshot, the channel per-edge, and the selection RNG per-connection,
  // so rounds are deterministic for a fixed shard count.
  std::optional<util::ShardPool> pool;
  std::vector<WireTotals> shard_totals;
  if (config.base.shards > 1) {
    pool.emplace(config.base.shards);
    shard_totals.resize(config.base.shards);
  }
  WireTotals serial_totals;
  std::size_t connection_serial = 0;
  // The discrete-event clock for timed edges (ChannelConfig
  // delay/jitter/rate): the same core::EventLoop the delivery engines run
  // on owns the round time here — every channel is advanced to
  // clock.now() before it is used, so delays are measured in rounds, and
  // the periodic reconfiguration rides the loop's queue as a scheduled
  // kRefresh event instead of a per-round modulo check. Untimed edges
  // ignore the clock.
  core::EventLoop clock;
  if (config.reconfigure_interval > 0) {
    clock.schedule(config.reconfigure_interval, core::EventKind::kRefresh, 0);
  }


  // Reconnects `peer` to up to connections_per_peer senders, charging the
  // control traffic of the handshakes.
  const auto reconfigure_peer = [&](std::size_t me) {
    PeerState& peer = peers[me];
    // Reconfiguration is graceful: frames still in flight on the old
    // connections (the channel's one-hop residency can hold one per edge)
    // are delivered before teardown. A crash, by contrast, loses them in
    // PeerState::reset().
    for (Connection& conn : peer.connections) {
      conn.channel.flush();
      drain_into(conn.channel, peer);
    }
    peer.connections.clear();
    if (!peer.joined || peer.completion_round != 0) return;

    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j < config.peer_count; ++j) {
      if (j != me && peers[j].joined && peers[j].count() > 0) {
        candidates.push_back(j);
      }
    }
    if (candidates.empty()) return;

    // Rank candidates: sketch-based novelty, or random order.
    if (config.sketch_admission) {
      peer.sync_sketch();
      result.control_packets +=
          util::packets_for(peer.sketch.serialize().size());
      std::vector<std::pair<double, std::size_t>> scored;
      scored.reserve(candidates.size());
      for (const std::size_t j : candidates) {
        peers[j].sync_sketch();
        result.control_packets +=
            util::packets_for(peers[j].sketch.serialize().size());
        const double r =
            sketch::MinwiseSketch::resemblance(peer.sketch, peers[j].sketch);
        const double containment = sketch::containment_from_resemblance(
            r, peer.count(), peers[j].count());
        // Expected novel symbols this candidate offers.
        const double novelty =
            (1.0 - containment) * static_cast<double>(peers[j].count());
        scored.emplace_back(novelty, j);
      }
      std::stable_sort(scored.begin(), scored.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
      candidates.clear();
      for (const auto& [novelty, j] : scored) {
        if (novelty >= 1.0) candidates.push_back(j);  // admission control
      }
    } else {
      util::shuffle(candidates, rng);
    }

    const std::size_t want =
        std::min(config.connections_per_peer, candidates.size());
    const std::size_t needed = target > peer.count() ? target - peer.count() : 1;
    for (std::size_t c = 0; c < want; ++c) {
      const std::size_t j = candidates[c];
      SenderNode view(peers[j].symbols(), config.strategy, config.base);
      const auto requested = static_cast<std::size_t>(
          std::max(1.0, (1.0 + config.base.recode_domain_allowance) *
                            static_cast<double>(needed) /
                            static_cast<double>(want)));
      // Per-connection setup blobs. Receiver -> sender: the fine-grained
      // summary (BF strategies) and, for minwise strategies, the
      // receiver's sketch; sender -> receiver: the sender's sketch.
      std::size_t receiver_blob_bytes = 0;
      std::size_t receiver_packets = 0;
      std::size_t sender_packets = 0;
      if (strategy_uses_bloom(config.strategy)) {
        const auto bloom = build_bloom(peer.symbols(), config.base);
        receiver_blob_bytes += bloom.serialized_size();
        receiver_packets += util::packets_for(bloom.serialized_size());
        view.install_bloom(bloom, requested, rng);
      }
      if (strategy_uses_minwise(config.strategy)) {
        peer.sync_sketch();
        peers[j].sync_sketch();
        receiver_blob_bytes += peer.sketch.serialized_size();
        receiver_packets += util::packets_for(peer.sketch.serialized_size());
        sender_packets += util::packets_for(peers[j].sketch.serialized_size());
      }
      if (config.base.batch_budget == 0) {
        result.control_packets += receiver_packets + sender_packets;
      } else {
        // Batched (SimConfig::batch_budget): the receiver's setup blobs
        // ride one train stream on this link — appended behind the
        // admission sketch it already shipped there when sketch admission
        // is on — so they pay the *marginal* packets of extending that
        // stream instead of packetizing each blob alone. This is the
        // count-only analogue of wire::Transport's control-frame trains.
        const std::size_t mtu =
            std::min(config.base.batch_budget, util::kPacketPayloadBytes);
        std::size_t prefix = 0;
        if (config.sketch_admission) {
          peer.sync_sketch();
          prefix = peer.sketch.serialized_size();
        }
        result.control_packets +=
            util::packets_for(prefix + receiver_blob_bytes, mtu) -
            util::packets_for(prefix, mtu) + sender_packets;
      }
      if (strategy_uses_minwise(config.strategy)) {
        const double r =
            sketch::MinwiseSketch::resemblance(peer.sketch, peers[j].sketch);
        view.install_containment_estimate(
            sketch::containment_from_resemblance(r, peer.count(),
                                                 peers[j].count()));
      }
      Connection conn{j, std::move(view),
                      wire::LossyChannel(edge_config(j, me))};
      // Derived, not drawn from `rng`: the shards = 1 trajectory must not
      // depend on whether the parallel path exists.
      conn.rng = util::Xoshiro256(util::mix64(
          config.base.seed ^ (0x9e3779b97f4a7c15ULL * ++connection_serial) ^
          (j << 20) ^ me));
      peer.connections.push_back(std::move(conn));
    }
  };

  const auto all_complete = [&]() {
    for (std::size_t i = 0; i < config.peer_count; ++i) {
      if (!peers[i].joined || peers[i].completion_round == 0) return false;
    }
    return true;
  };

  // One wire hop shared by the origin feed and the p2p loop: encode,
  // account (a refused oversized frame is never a transmission), and
  // drain. The channel's own one-hop residency pairs adjacent frames for
  // its swap reordering (latency <= 1 round), so draining every round is
  // correct — no alternate-round rule needed. Timed edges instead deliver
  // by their delay/jitter/rate schedule against the round clock.
  const auto send_through = [&clock](
                                wire::LossyChannel& channel, PeerState& peer,
                                const Transmission& t, WireTotals& totals) {
    channel.advance_to(clock.now());
    auto frame = encode_transmission(t);
    const std::size_t frame_bytes = frame.size();
    if (channel.send(std::move(frame))) {
      ++totals.transmissions;
      totals.data_bytes += frame_bytes;
    } else {
      ++totals.oversized_frames;  // exceeded the edge MTU; never sent
    }
    drain_into(channel, peer);
  };

  // Sharded p2p round: each worker advances the peers it owns using the
  // connections' own RNGs; everything else (joins, churn, origin feed,
  // completion checks, reconfiguration) stays on the coordinator between
  // pool runs. Hoisted out of the round loop so the std::function is
  // built once, not once per round.
  const std::function<void(std::size_t)> sharded_round =
      [&](std::size_t shard) {
        WireTotals& totals = shard_totals[shard];
        for (std::size_t i = shard; i < config.peer_count;
             i += config.base.shards) {
          PeerState& peer = peers[i];
          if (!peer.joined || peer.completion_round != 0) continue;
          for (Connection& conn : peer.connections) {
            send_through(conn.channel, peer, conn.view.produce(conn.rng),
                         totals);
          }
        }
      };

  for (std::size_t round = 1; round <= config.max_rounds; ++round) {
    clock.advance_to(round);
    // Joins (staggered arrivals: the paper's asynchrony requirement).
    for (std::size_t i = 0; i < config.peer_count; ++i) {
      if (!peers[i].joined && round > i * config.join_stagger) {
        peers[i].joined = true;
        reconfigure_peer(i);
      }
    }

    // Churn: a random joined peer crashes and rejoins with nothing.
    if (config.churn_rate > 0 && rng.next_bool(config.churn_rate)) {
      const std::size_t victim = rng.next_below(config.peer_count);
      if (peers[victim].joined) {
        peers[victim].reset();
        result.completion_round[victim] = 0;
        ++result.churn_events;
        reconfigure_peer(victim);
      }
    }

    // Origin feed: the fountain serves the first origin_fanout peers, one
    // symbol per round through each peer's origin wire.
    for (std::size_t i = 0;
         i < std::min(config.origin_fanout, config.peer_count); ++i) {
      PeerState& peer = peers[i];
      if (!peer.joined || peer.completion_round != 0) continue;
      if (!peer.origin_channel) {
        peer.origin_channel.emplace(edge_config(kOriginSenderId, i));
      }
      send_through(*peer.origin_channel, peer, origin.produce(),
                   serial_totals);
    }

    // Peer-to-peer transfers: one symbol per connection per round, each
    // crossing its edge's channel (loss, reordering, MTU apply there).
    if (!pool) {
      for (std::size_t i = 0; i < config.peer_count; ++i) {
        PeerState& peer = peers[i];
        if (!peer.joined || peer.completion_round != 0) continue;
        for (Connection& conn : peer.connections) {
          send_through(conn.channel, peer, conn.view.produce(rng),
                       serial_totals);
        }
      }
    } else {
      pool->run(sharded_round);
    }

    // Completions.
    for (std::size_t i = 0; i < config.peer_count; ++i) {
      if (peers[i].joined && peers[i].completion_round == 0 &&
          peers[i].count() >= target) {
        peers[i].completion_round = round;
        result.completion_round[i] = round;
        peers[i].connections.clear();
      }
    }
    if (all_complete()) break;

    // Periodic reconfiguration: the overlay adapts when the scheduled
    // refresh event comes due (the same rounds the historical modulo
    // check fired on).
    if (clock.pop_due(round)) {
      for (std::size_t i = 0; i < config.peer_count; ++i) {
        reconfigure_peer(i);
      }
      clock.schedule(round + config.reconfigure_interval,
                     core::EventKind::kRefresh, 0);
    }
  }

  result.transmissions += serial_totals.transmissions;
  result.data_bytes += serial_totals.data_bytes;
  result.oversized_frames += serial_totals.oversized_frames;
  for (const WireTotals& totals : shard_totals) {
    result.transmissions += totals.transmissions;
    result.data_bytes += totals.data_bytes;
    result.oversized_frames += totals.oversized_frames;
  }

  double total = 0;
  for (std::size_t i = 0; i < config.peer_count; ++i) {
    if (result.completion_round[i] != 0) {
      ++result.completed_peers;
      total += static_cast<double>(result.completion_round[i]);
      result.last_completion =
          std::max(result.last_completion, result.completion_round[i]);
    }
  }
  if (result.completed_peers > 0) {
    result.mean_completion = total / static_cast<double>(result.completed_peers);
  }
  if (result.completed_peers < config.peer_count) result.last_completion = 0;
  return result;
}

}  // namespace icd::overlay

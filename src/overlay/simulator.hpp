#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "overlay/sim_config.hpp"
#include "overlay/strategy.hpp"
#include "wire/channel.hpp"

/// Adaptive overlay simulation (the Section 2.1 environment).
///
/// A source plus a population of peers form an overlay of unicast
/// connections. The simulation exercises everything the paper says a
/// content-delivery overlay must cope with:
///   * Asynchrony   — peers join with empty working sets at random times;
///   * Heterogeneity— per-connection loss rates;
///   * Transience   — churn: peers crash and rejoin empty;
///   * Adaptivity   — the overlay periodically reconfigures, and peers use
///                    min-wise-sketch admission control to pick senders
///                    whose content is most novel (Section 4's "overlay
///                    management may explicitly avoid connecting nodes with
///                    identical content").
///
/// Connections are informed: at setup the receiver ships its Bloom filter
/// and sketch (once — no updates until the next reconfiguration), and the
/// sender serves symbols under the configured strategy using that
/// snapshot. Stale summaries between reconfigurations are the realistic
/// cost the paper's design accepts.
namespace icd::overlay {

struct AdaptiveOverlayConfig {
  /// Base simulation knobs (n, decoding overhead, summary budgets...).
  SimConfig base;

  std::size_t peer_count = 12;
  /// Peers directly fed by the origin fountain.
  std::size_t origin_fanout = 2;
  /// Download connections each peer maintains.
  std::size_t connections_per_peer = 2;
  /// Rounds between overlay reconfigurations (0 = never reconfigure).
  std::size_t reconfigure_interval = 25;
  /// Per-symbol Bernoulli loss on every overlay connection. Legacy knob:
  /// folded into `link.loss_rate` when that is left at zero. Ignored when
  /// `link_config` is supplied — the callback fully specifies each edge,
  /// including its loss rate.
  double loss_rate = 0.0;
  /// Wire shaping for every connection: each edge (including the origin
  /// feeds) carries its symbols through a LossyChannel built from this
  /// config, so loss, reordering and the MTU are per-edge properties.
  /// Timing knobs (delay_ticks, jitter_ticks, hops, rate_bytes_per_tick)
  /// switch an edge to its virtual clock, advanced to the round number
  /// before every use — delays are measured in rounds, rate limits in
  /// bytes per round. An unset seed is replaced with a fresh per-edge
  /// draw to decorrelate edges; an explicit seed is honored verbatim (so
  /// every edge sharing it sees the same loss realization).
  wire::ChannelConfig link;
  /// Optional per-edge override: (sender, receiver) -> config, where the
  /// sender index kOriginSenderId denotes the origin fountain. It replaces
  /// `link` for that edge; the unset-seed rule above applies to the
  /// returned config too.
  std::function<wire::ChannelConfig(std::size_t, std::size_t)> link_config;
  /// Per-round probability that one random peer crashes and rejoins empty.
  double churn_rate = 0.0;
  /// Rounds between each peer's (staggered) join; 0 = all join at once.
  std::size_t join_stagger = 0;
  /// Content-selection strategy on peer-to-peer connections.
  Strategy strategy = Strategy::kRecodeBloom;
  /// Pick senders by sketch novelty (true) or uniformly at random (false).
  bool sketch_admission = true;
  /// Hard stop.
  std::size_t max_rounds = 20000;
};

struct AdaptiveOverlayResult {
  /// Round at which each peer first completed (0 = never).
  std::vector<std::size_t> completion_round;
  /// Peers complete at the end.
  std::size_t completed_peers = 0;
  /// Round at which the last peer completed (0 = not all completed).
  std::size_t last_completion = 0;
  /// Mean completion round over completed peers.
  double mean_completion = 0.0;
  /// Data-plane symbols sent (including lost ones).
  std::size_t transmissions = 0;
  /// Exact data-plane bytes handed to the wire (encoded symbol frames,
  /// including lost ones).
  std::size_t data_bytes = 0;
  /// Control-plane packets (sketches + summaries at every [re]connection).
  std::size_t control_packets = 0;
  /// Frames rejected by an edge MTU (never transmitted, not in data_bytes).
  /// Nonzero means the configured MTU is too small for this strategy's
  /// recoded frames.
  std::size_t oversized_frames = 0;
  /// Crash/rejoin events that occurred.
  std::size_t churn_events = 0;
};

/// Sender index that denotes the origin fountain in per-edge link_config
/// callbacks.
inline constexpr std::size_t kOriginSenderId = static_cast<std::size_t>(-1);

AdaptiveOverlayResult run_adaptive_overlay(const AdaptiveOverlayConfig& config);

}  // namespace icd::overlay

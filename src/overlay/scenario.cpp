#include "overlay/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icd::overlay {

namespace {

std::vector<std::uint64_t> id_range(std::uint64_t begin, std::uint64_t end) {
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t id = begin; id < end; ++id) ids.push_back(id);
  return ids;
}

}  // namespace

PairScenario make_pair_scenario(std::size_t n, double stretch,
                                double correlation, util::Xoshiro256& rng) {
  if (n < 4 || stretch < 1.0) {
    throw std::invalid_argument("make_pair_scenario: need n >= 4, stretch >= 1");
  }
  const auto distinct = static_cast<std::size_t>(
      std::llround(stretch * static_cast<double>(n)));
  const std::size_t half = distinct / 2;
  const std::size_t base = distinct - half;  // sender's fresh half

  PairScenario scenario;
  scenario.distinct_symbols = distinct;
  scenario.receiver = id_range(0, half);
  scenario.sender = id_range(half, distinct);

  // extra / (base + extra) = correlation  =>  extra = c * base / (1 - c),
  // capped by both the receiver's holdings and the n-symbol sender cap.
  const double c = std::clamp(correlation, 0.0, 0.999);
  auto extra = static_cast<std::size_t>(
      std::llround(c * static_cast<double>(base) / (1.0 - c)));
  extra = std::min({extra, half, n > base ? n - base : std::size_t{0}});

  const auto picks = util::sample_without_replacement(half, extra, rng);
  for (const std::uint64_t p : picks) scenario.sender.push_back(p);
  scenario.correlation = static_cast<double>(extra) /
                         static_cast<double>(scenario.sender.size());
  return scenario;
}

MultiScenario make_multi_scenario(std::size_t n, double stretch,
                                  double correlation,
                                  std::size_t sender_count,
                                  util::Xoshiro256& rng) {
  (void)rng;  // symbol identity is abstract; no randomness needed here
  if (n < 4 || stretch < 1.0 || sender_count == 0) {
    throw std::invalid_argument("make_multi_scenario: bad arguments");
  }
  const auto distinct = static_cast<std::size_t>(
      std::llround(stretch * static_cast<double>(n)));
  const std::size_t peers = sender_count + 1;  // senders + the receiver

  // distinct = s + peers * u with s = c*m, u = (1-c)*m, m = s + u <= n.
  const double c_max =
      (static_cast<double>(peers) - stretch) / static_cast<double>(peers - 1);
  const double c = std::clamp(correlation, 0.0, std::max(0.0, c_max));
  const double m_real = static_cast<double>(distinct) /
                        (c + static_cast<double>(peers) * (1.0 - c));
  auto shared = static_cast<std::size_t>(std::llround(c * m_real));
  auto unique = static_cast<std::size_t>(std::llround((1.0 - c) * m_real));
  if (unique == 0) unique = 1;
  // Shrink the shared pool if rounding overshot the distinct budget.
  while (shared + peers * unique > distinct && shared > 0) --shared;

  MultiScenario scenario;
  scenario.distinct_symbols = distinct;
  scenario.correlation =
      static_cast<double>(shared) / static_cast<double>(shared + unique);

  const auto shared_ids = id_range(0, shared);
  std::uint64_t next = shared;
  const auto make_peer = [&]() {
    std::vector<std::uint64_t> ids = shared_ids;
    for (std::size_t i = 0; i < unique; ++i) ids.push_back(next++);
    return ids;
  };
  scenario.receiver = make_peer();
  scenario.senders.reserve(sender_count);
  for (std::size_t s = 0; s < sender_count; ++s) {
    scenario.senders.push_back(make_peer());
  }
  return scenario;
}

}  // namespace icd::overlay

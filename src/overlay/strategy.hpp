#pragma once

#include <array>
#include <string_view>

/// The five content-selection strategies compared in Section 6.2.
namespace icd::overlay {

enum class Strategy {
  /// "The transmitting node randomly picks an available symbol to send."
  /// (the Swarmcast-style baseline).
  kRandom,
  /// Random selection among symbols that miss the receiver's Bloom filter.
  kRandomBloom,
  /// Recoded symbols generated from the sender's entire working set.
  kRecode,
  /// Recoded symbols generated only from symbols missing the receiver's
  /// Bloom filter.
  kRecodeBloom,
  /// Recoded symbols with the degree distribution rescaled by the min-wise
  /// correlation estimate (degree d -> floor(d / (1 - c))).
  kRecodeMinwise,
};

/// All strategies in the paper's plotting order.
inline constexpr std::array<Strategy, 5> kAllStrategies = {
    Strategy::kRandom, Strategy::kRandomBloom, Strategy::kRecode,
    Strategy::kRecodeBloom, Strategy::kRecodeMinwise};

constexpr std::string_view strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kRandom:
      return "Random";
    case Strategy::kRandomBloom:
      return "Random/BF";
    case Strategy::kRecode:
      return "Recode";
    case Strategy::kRecodeBloom:
      return "Recode/BF";
    case Strategy::kRecodeMinwise:
      return "Recode/MW";
  }
  return "unknown";
}

constexpr bool strategy_uses_bloom(Strategy strategy) {
  return strategy == Strategy::kRandomBloom ||
         strategy == Strategy::kRecodeBloom;
}

constexpr bool strategy_uses_minwise(Strategy strategy) {
  return strategy == Strategy::kRecodeMinwise;
}

constexpr bool strategy_recodes(Strategy strategy) {
  return strategy == Strategy::kRecode || strategy == Strategy::kRecodeBloom ||
         strategy == Strategy::kRecodeMinwise;
}

}  // namespace icd::overlay

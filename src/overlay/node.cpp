#include "overlay/node.hpp"

#include <algorithm>
#include <stdexcept>

namespace icd::overlay {

ReceiverNode::ReceiverNode(std::vector<std::uint64_t> initial,
                           std::uint64_t universe_size,
                           const SimConfig& config)
    : initial_(std::move(initial)), universe_size_(universe_size),
      config_(config) {
  for (const std::uint64_t id : initial_) {
    decoder_.add_held_symbol(codec::EncodedSymbol{id, {}});
  }
}

std::size_t ReceiverNode::apply(const Transmission& transmission) {
  const std::size_t before = decoder_.symbol_count();
  if (transmission.is_recoded()) {
    decoder_.add_recoded(codec::RecodedSymbol{transmission.constituents, {}});
  } else {
    decoder_.add_held_symbol(codec::EncodedSymbol{transmission.id, {}});
  }
  return decoder_.symbol_count() - before;
}

sketch::MinwiseSketch ReceiverNode::make_sketch() const {
  sketch::MinwiseSketch sketch(universe_size_, config_.sketch_permutations);
  sketch.update_all(initial_);
  return sketch;
}

filter::BloomFilter ReceiverNode::make_bloom() const {
  auto filter = filter::BloomFilter::with_bits_per_element(
      std::max<std::size_t>(1, initial_.size()),
      config_.bloom_bits_per_element);
  filter.insert_all(initial_);
  return filter;
}

SenderNode::SenderNode(std::vector<std::uint64_t> symbols, Strategy strategy,
                       const SimConfig& config)
    : symbols_(std::move(symbols)), strategy_(strategy), config_(config),
      base_distribution_(
          codec::DegreeDistribution::robust_soliton(
              std::max<std::size_t>(symbols_.size(), 2))
              .truncated(config.recode_degree_limit)) {
  if (symbols_.empty()) {
    throw std::invalid_argument("SenderNode: empty working set");
  }
}

void SenderNode::install_bloom(const filter::BloomFilter& receiver_filter,
                               std::size_t requested_count,
                               util::Xoshiro256& rng) {
  if (!strategy_uses_bloom(strategy_)) return;
  filtered_.clear();
  for (const std::uint64_t id : symbols_) {
    if (!receiver_filter.contains(id)) filtered_.push_back(id);
  }
  if (strategy_ == Strategy::kRecodeBloom && !filtered_.empty()) {
    recode_domain_ = filtered_;
    if (requested_count > 0 && recode_domain_.size() > requested_count) {
      util::shuffle(recode_domain_, rng);
      recode_domain_.resize(requested_count);
      std::sort(recode_domain_.begin(), recode_domain_.end());
    }
    restricted_distribution_ =
        codec::DegreeDistribution::robust_soliton(
            std::max<std::size_t>(recode_domain_.size(), 2))
            .truncated(config_.recode_degree_limit);
  }
}

void SenderNode::install_containment_estimate(double c) {
  containment_estimate_ = std::clamp(c, 0.0, 1.0);
}

std::size_t SenderNode::draw_degree(const std::vector<std::uint64_t>& domain,
                                    util::Xoshiro256& rng) const {
  const codec::DegreeDistribution& dist =
      (strategy_ == Strategy::kRecodeBloom && restricted_distribution_)
          ? *restricted_distribution_
          : base_distribution_;
  std::size_t degree = dist.sample(rng);
  if (strategy_ == Strategy::kRecodeMinwise) {
    degree = codec::minwise_recode_degree(degree, containment_estimate_,
                                          config_.recode_degree_limit);
  }
  return std::min(degree, domain.size());
}

Transmission SenderNode::produce(util::Xoshiro256& rng) const {
  switch (strategy_) {
    case Strategy::kRandom: {
      return Transmission{symbols_[rng.next_below(symbols_.size())], {}};
    }
    case Strategy::kRandomBloom: {
      const auto& domain = send_domain();
      return Transmission{domain[rng.next_below(domain.size())], {}};
    }
    case Strategy::kRecode:
    case Strategy::kRecodeMinwise: {
      const std::size_t degree = draw_degree(symbols_, rng);
      Transmission t;
      t.constituents.reserve(degree);
      for (const std::uint64_t pick :
           util::sample_without_replacement(symbols_.size(), degree, rng)) {
        t.constituents.push_back(symbols_[static_cast<std::size_t>(pick)]);
      }
      return t;
    }
    case Strategy::kRecodeBloom: {
      const auto& domain = recode_domain();
      const std::size_t degree = draw_degree(domain, rng);
      Transmission t;
      t.constituents.reserve(degree);
      for (const std::uint64_t pick :
           util::sample_without_replacement(domain.size(), degree, rng)) {
        t.constituents.push_back(domain[static_cast<std::size_t>(pick)]);
      }
      return t;
    }
  }
  throw std::logic_error("SenderNode::produce: unknown strategy");
}

FullSender::FullSender(std::uint64_t stream_index)
    : next_id_((stream_index + 1) << 40) {}

Transmission FullSender::produce() { return Transmission{next_id_++, {}}; }

}  // namespace icd::overlay

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "codec/degree.hpp"
#include "codec/recoder.hpp"
#include "filter/bloom.hpp"
#include "overlay/sim_config.hpp"
#include "overlay/strategy.hpp"
#include "sketch/minwise.hpp"

/// Count-only end-system models for the Section 6 simulations.
///
/// Symbols here are bare 64-bit ids (payload-free): with the constant
/// decoding-overhead assumption the paper's experiments make, everything
/// measured — transmissions, overhead, speedup — depends only on which
/// distinct symbols a receiver can account for, and a payload-free
/// simulation runs orders of magnitude more sweep points. The full-fidelity
/// path (real payloads, real decoding) lives in icd::core and is exercised
/// by the examples and integration tests.
namespace icd::overlay {

/// One message of the data plane.
struct Transmission {
  /// Regular encoded symbol when constituents is empty; otherwise a recoded
  /// symbol blending the listed ids.
  std::uint64_t id = 0;
  std::vector<std::uint64_t> constituents;

  bool is_recoded() const { return !constituents.empty(); }
};

/// A downloading end-system. Wraps the recode peeling decoder so that
/// buffered recoded symbols resolve as later arrivals (regular or recoded)
/// supply their missing constituents.
class ReceiverNode {
 public:
  /// `universe_size`: id universe for the min-wise permutations; all peers
  /// in an experiment must agree on it.
  ReceiverNode(std::vector<std::uint64_t> initial, std::uint64_t universe_size,
               const SimConfig& config);

  /// Applies one transmission; returns the number of *new* distinct symbols
  /// it yielded (recoded arrivals can cascade to several).
  std::size_t apply(const Transmission& transmission);

  /// Distinct symbols currently accounted for.
  std::size_t symbol_count() const { return decoder_.symbol_count(); }
  bool has(std::uint64_t id) const { return decoder_.has_symbol(id); }

  /// Recoded symbols still buffered with >= 2 unknown constituents.
  std::size_t buffered_count() const { return decoder_.buffered_count(); }

  const std::vector<std::uint64_t>& initial_symbols() const {
    return initial_;
  }

  /// The receiver's calling card (Section 4): a min-wise sketch of the
  /// *initial* working set. Like the Bloom filter below, it is produced
  /// once at connection setup and never refreshed ("in our experiments, we
  /// never send updates to our Bloom filter").
  sketch::MinwiseSketch make_sketch() const;

  /// Fine-grained summary of the initial working set (Section 5.2).
  filter::BloomFilter make_bloom() const;

 private:
  std::vector<std::uint64_t> initial_;
  std::uint64_t universe_size_;
  SimConfig config_;
  codec::RecodeDecoder decoder_;
};

/// A sending end-system with partial content, following one of the five
/// strategies. Stateless across transmissions (it never remembers what it
/// already sent), matching the paper's memoryless senders.
class SenderNode {
 public:
  SenderNode(std::vector<std::uint64_t> symbols, Strategy strategy,
             const SimConfig& config);

  Strategy strategy() const { return strategy_; }
  std::size_t symbol_count() const { return symbols_.size(); }

  /// Handshake, Bloom side (BF strategies only; no-op otherwise).
  ///
  /// Random/BF selects uniformly among *all* symbols missing the filter.
  /// Recode/BF additionally restricts its recoding domain to a random
  /// subset of `requested_count` of them — the paper's "we restrict the
  /// recoding domain to an appropriate small size", with the size taken
  /// from the receiver's symbols-desired request of Section 6.1.
  void install_bloom(const filter::BloomFilter& receiver_filter,
                     std::size_t requested_count, util::Xoshiro256& rng);

  /// Handshake, min-wise side: record the containment estimate
  /// c ~ |A ∩ B| / |B| (A = receiver, B = this sender) for degree scaling.
  void install_containment_estimate(double c);

  /// Produces one transmission according to the strategy.
  Transmission produce(util::Xoshiro256& rng) const;

  /// Visible for tests: the BF-filtered send domain and the (possibly
  /// further restricted) recoding domain.
  const std::vector<std::uint64_t>& send_domain() const {
    return filtered_.empty() ? symbols_ : filtered_;
  }
  const std::vector<std::uint64_t>& recode_domain() const {
    return recode_domain_.empty() ? symbols_ : recode_domain_;
  }

 private:
  std::size_t draw_degree(const std::vector<std::uint64_t>& domain,
                          util::Xoshiro256& rng) const;

  std::vector<std::uint64_t> symbols_;
  Strategy strategy_;
  SimConfig config_;
  codec::DegreeDistribution base_distribution_;
  std::optional<codec::DegreeDistribution> restricted_distribution_;
  std::vector<std::uint64_t> filtered_;       // symbols missing receiver BF
  std::vector<std::uint64_t> recode_domain_;  // restricted recoding domain
  double containment_estimate_ = 0.0;
};

/// A sender in possession of the entire file: a true digital fountain,
/// producing an endless stream of fresh symbols ("senders with a copy of a
/// file may continuously produce a streamed encoding of its content").
/// Fresh ids are drawn from a disjoint range so they never collide with the
/// partial-content universe.
class FullSender {
 public:
  explicit FullSender(std::uint64_t stream_index);

  Transmission produce();

 private:
  std::uint64_t next_id_;
};

}  // namespace icd::overlay

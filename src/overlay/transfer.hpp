#pragma once

#include <cstdint>

#include "overlay/node.hpp"
#include "overlay/scenario.hpp"
#include "overlay/sim_config.hpp"
#include "overlay/strategy.hpp"

/// Transfer harnesses reproducing the experiments of Section 6.3.
namespace icd::overlay {

struct TransferResult {
  /// Symbols transmitted by partial senders.
  std::size_t transmissions = 0;
  /// Simulation rounds (each active sender transmits once per round).
  std::size_t rounds = 0;
  /// New distinct symbols the receiver had to acquire (target - initial).
  std::size_t needed = 0;
  /// Distinct symbols actually acquired.
  std::size_t acquired = 0;
  bool completed = false;

  /// Figure 5 metric: partial-sender transmissions per needed symbol,
  /// "the additional overhead beyond that of a baseline transfer in which
  /// encoded content is used" (the baseline sends exactly `needed`).
  double overhead() const {
    return needed == 0 ? 1.0
                       : static_cast<double>(transmissions) /
                             static_cast<double>(needed);
  }

  /// Figures 6-8 metric: downloading from a single full sender would take
  /// exactly `needed` rounds at one symbol per round, so the speedup /
  /// relative rate is needed / rounds.
  double speedup() const {
    return rounds == 0 ? 1.0
                       : static_cast<double>(needed) /
                             static_cast<double>(rounds);
  }
};

/// Figure 5: one partial sender serving one receiver.
TransferResult run_pair_transfer(const PairScenario& scenario,
                                 Strategy strategy, const SimConfig& config);

/// Figure 6: a full sender and a partial sender serving the receiver
/// concurrently at equal rates ("the full sender sends regular symbols at
/// the same rate that the partial sender sends recoded symbols").
TransferResult run_pair_with_full_sender(const PairScenario& scenario,
                                         Strategy strategy,
                                         const SimConfig& config);

/// Figures 7 and 8: `scenario.senders.size()` partial senders, no full
/// sender, equal per-sender rates.
TransferResult run_multi_transfer(const MultiScenario& scenario,
                                  Strategy strategy, const SimConfig& config);

}  // namespace icd::overlay

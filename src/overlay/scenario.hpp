#pragma once

#include <cstdint>
#include <vector>

#include "util/random.hpp"

/// Workload generators reproducing the initial conditions of Section 6.3.
namespace icd::overlay {

/// The two symbol-scarcity regimes of Figure 5: "compact" scenarios have
/// 1.1n distinct symbols in the system, "stretched" scenarios 1.5n.
inline constexpr double kCompactStretch = 1.1;
inline constexpr double kStretchedStretch = 1.5;

/// Peer-to-peer scenario (Figures 5 and 6): "the receiver is initially in
/// possession of half of the distinct symbols in the system. The sender
/// stores the other half of symbols plus a fraction of the receiver's
/// symbols to achieve the specified level of correlation," subject to "no
/// nodes with partial content initially have more than n symbols".
struct PairScenario {
  std::vector<std::uint64_t> receiver;
  std::vector<std::uint64_t> sender;
  /// Total distinct symbols in the system (stretch * n).
  std::size_t distinct_symbols = 0;
  /// Realized |receiver ∩ sender| / |sender|.
  double correlation = 0.0;
};

/// Builds the scenario for `n` recovery symbols, `stretch` * n distinct
/// symbols, targeting correlation `correlation` (clamped to the feasible
/// range given the n-symbol cap on the sender).
PairScenario make_pair_scenario(std::size_t n, double stretch,
                                double correlation, util::Xoshiro256& rng);

/// Parallel-download scenario (Figures 7 and 8): "each of the symbols in
/// the system is initially either distributed to all of the peers or is
/// known to only one peer. Each peer in the system initially has the same
/// number of symbols." The receiver is one of the peers; `sender_count`
/// others serve it.
struct MultiScenario {
  std::vector<std::uint64_t> receiver;
  std::vector<std::vector<std::uint64_t>> senders;
  std::size_t distinct_symbols = 0;
  /// Realized shared fraction |shared| / |per-peer symbols| — the
  /// correlation axis of Figures 7 and 8.
  double correlation = 0.0;
};

MultiScenario make_multi_scenario(std::size_t n, double stretch,
                                  double correlation,
                                  std::size_t sender_count,
                                  util::Xoshiro256& rng);

}  // namespace icd::overlay

#pragma once

#include <cstdint>

#include "codec/recoder.hpp"

/// Shared knobs for the Section 6 simulations.
///
/// Per-edge wire behavior (loss, reordering, MTU, and the simulated-time
/// delay/jitter/rate knobs) is not configured here but on the
/// wire::ChannelConfig each harness takes alongside this struct —
/// AdaptiveOverlayConfig::link / link_config for the overlay simulator,
/// DeliveryOptions::link / link_config for the delivery engines; see
/// DESIGN.md, "Time and scheduling model".
namespace icd::overlay {

struct SimConfig {
  /// n: the number of symbols needed for recovery before decoding overhead
  /// (the paper's file is 23,968 blocks; the default here is laptop-scale —
  /// the curves depend on ratios, not absolute n).
  std::size_t n = 1000;

  /// "The experiments used the simplifying assumption of a constant
  /// decoding overhead of 7%": a receiver completes on reaching
  /// ceil(decode_overhead * n) distinct symbols.
  double decode_overhead = 1.07;

  /// Receiver Bloom filters at 8 bits per element, 5-6 hashes (~2% fp).
  double bloom_bits_per_element = 8.0;

  /// Min-wise sketch positions; 128 64-bit minima = one 1 KB packet.
  std::size_t sketch_permutations = 128;

  /// Recoding degree limit ("a degree limit of 50").
  std::size_t recode_degree_limit = codec::kDefaultRecodeDegreeLimit;

  /// Slack on the receiver's symbols-desired request ("the receiver may
  /// specify the number of symbols desired from each sender with
  /// appropriate allowances for decoding overhead"): a Recode/BF sender's
  /// restricted recoding domain is sized at (1 + allowance) * needed so the
  /// receiver never depends on recovering 100% of an LT-coded domain.
  double recode_domain_allowance = 0.25;

  /// Safety cap: a run aborts (incomplete) after
  /// max_transmission_factor * (symbols still needed) transmissions.
  std::size_t max_transmission_factor = 60;

  std::uint64_t seed = 0x1cdc0de5eedULL;

  /// Worker shards the tick engines partition work across (peers in the
  /// adaptive-overlay simulator, senders in the multi-sender transfer
  /// harnesses; core::ShardedDelivery takes the same knob through
  /// ShardOptions). 1 = the single-threaded legacy path, bit-for-bit
  /// reproducing historical results. With more shards, runs are still
  /// deterministic for a fixed shard count (shard-local RNGs, no shared
  /// draws), but trajectories differ from the shards=1 sequence because
  /// the shared-RNG draw order is gone.
  std::size_t shards = 1;

  /// Per-tick control-frame batching budget in bytes. Frame-carrying
  /// engines pass it to wire::Transport::set_batch_budget (see
  /// core::ShardOptions::batch_budget): handshake/sketch control streams
  /// coalesce into trains of up to this size, one pooled buffer and one
  /// datagram per train. The count-only adaptive-overlay simulator models
  /// the same thing in its packet currency: the setup blobs a peer ships
  /// to one neighbor pay packetization once for the concatenated stream
  /// instead of per blob. 0 = off (historical accounting and framing).
  std::size_t batch_budget = 0;

  /// Completion target in distinct symbols.
  std::size_t target() const {
    const auto t = static_cast<std::size_t>(
        decode_overhead * static_cast<double>(n) + 0.999999);
    return t;
  }
};

}  // namespace icd::overlay

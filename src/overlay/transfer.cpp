#include "overlay/transfer.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/shard_pool.hpp"

namespace icd::overlay {

namespace {

/// Receiver's per-sender symbols-desired request: its share of the symbols
/// still needed, padded by the decoding-overhead allowance of Section 6.1.
std::size_t requested_count(std::size_t needed, std::size_t sender_count,
                            const SimConfig& config) {
  const double share = static_cast<double>(needed) /
                       static_cast<double>(sender_count);
  return static_cast<std::size_t>(
      std::ceil(share * (1.0 + config.recode_domain_allowance)));
}

}  // namespace

TransferResult run_pair_transfer(const PairScenario& scenario,
                                 Strategy strategy, const SimConfig& config) {
  util::Xoshiro256 rng(config.seed);
  const std::uint64_t universe = scenario.distinct_symbols;
  ReceiverNode receiver(scenario.receiver, universe, config);
  SenderNode sender(scenario.sender, strategy, config);

  TransferResult result;
  const std::size_t target = config.target();
  if (receiver.symbol_count() >= target) {
    result.completed = true;
    return result;
  }
  result.needed = target - receiver.symbol_count();

  const std::size_t requested = requested_count(result.needed, 1, config);
  if (strategy_uses_bloom(strategy)) {
    sender.install_bloom(receiver.make_bloom(), requested, rng);
  }
  if (strategy_uses_minwise(strategy)) {
    sketch::MinwiseSketch receiver_sketch = receiver.make_sketch();
    sketch::MinwiseSketch sender_sketch(universe, config.sketch_permutations);
    sender_sketch.update_all(scenario.sender);
    const double r =
        sketch::MinwiseSketch::resemblance(receiver_sketch, sender_sketch);
    sender.install_containment_estimate(sketch::containment_from_resemblance(
        r, scenario.receiver.size(), scenario.sender.size()));
  }

  const std::size_t start = receiver.symbol_count();
  const std::size_t cap = result.needed * config.max_transmission_factor;
  while (receiver.symbol_count() < target && result.transmissions < cap) {
    receiver.apply(sender.produce(rng));
    ++result.transmissions;
  }
  result.rounds = result.transmissions;
  result.acquired = receiver.symbol_count() - start;
  result.completed = receiver.symbol_count() >= target;
  return result;
}

TransferResult run_pair_with_full_sender(const PairScenario& scenario,
                                         Strategy strategy,
                                         const SimConfig& config) {
  util::Xoshiro256 rng(config.seed);
  const std::uint64_t universe = scenario.distinct_symbols;
  ReceiverNode receiver(scenario.receiver, universe, config);
  SenderNode sender(scenario.sender, strategy, config);
  FullSender full(0);

  TransferResult result;
  const std::size_t target = config.target();
  if (receiver.symbol_count() >= target) {
    result.completed = true;
    return result;
  }
  result.needed = target - receiver.symbol_count();

  // With two senders serving it, the receiver requests half its needs from
  // the partial sender.
  const std::size_t requested = requested_count(result.needed, 2, config);
  if (strategy_uses_bloom(strategy)) {
    sender.install_bloom(receiver.make_bloom(), requested, rng);
  }
  if (strategy_uses_minwise(strategy)) {
    sketch::MinwiseSketch receiver_sketch = receiver.make_sketch();
    sketch::MinwiseSketch sender_sketch(universe, config.sketch_permutations);
    sender_sketch.update_all(scenario.sender);
    const double r =
        sketch::MinwiseSketch::resemblance(receiver_sketch, sender_sketch);
    sender.install_containment_estimate(sketch::containment_from_resemblance(
        r, scenario.receiver.size(), scenario.sender.size()));
  }

  const std::size_t start = receiver.symbol_count();
  const std::size_t cap = result.needed * config.max_transmission_factor;
  while (receiver.symbol_count() < target && result.rounds < cap) {
    receiver.apply(full.produce());
    if (receiver.symbol_count() >= target) {
      ++result.rounds;  // the finishing round still counts
      break;
    }
    receiver.apply(sender.produce(rng));
    ++result.transmissions;
    ++result.rounds;
  }
  result.acquired = receiver.symbol_count() - start;
  result.completed = receiver.symbol_count() >= target;
  return result;
}

TransferResult run_multi_transfer(const MultiScenario& scenario,
                                  Strategy strategy, const SimConfig& config) {
  util::Xoshiro256 rng(config.seed);
  const std::uint64_t universe = scenario.distinct_symbols;
  ReceiverNode receiver(scenario.receiver, universe, config);

  TransferResult result;
  const std::size_t target = config.target();
  if (receiver.symbol_count() >= target) {
    result.completed = true;
    return result;
  }
  result.needed = target - receiver.symbol_count();

  const std::size_t requested =
      requested_count(result.needed, scenario.senders.size(), config);
  std::vector<SenderNode> senders;
  senders.reserve(scenario.senders.size());
  sketch::MinwiseSketch receiver_sketch = receiver.make_sketch();
  for (const auto& symbols : scenario.senders) {
    SenderNode sender(symbols, strategy, config);
    if (strategy_uses_bloom(strategy)) {
      sender.install_bloom(receiver.make_bloom(), requested, rng);
    }
    if (strategy_uses_minwise(strategy)) {
      sketch::MinwiseSketch sender_sketch(universe,
                                          config.sketch_permutations);
      sender_sketch.update_all(symbols);
      const double r =
          sketch::MinwiseSketch::resemblance(receiver_sketch, sender_sketch);
      sender.install_containment_estimate(
          sketch::containment_from_resemblance(r, scenario.receiver.size(),
                                               symbols.size()));
    }
    senders.push_back(std::move(sender));
  }

  // Sharded production: with config.shards > 1 the senders' symbol
  // selection (the recode/XOR-free but sampling-heavy part of a round)
  // runs on a worker pool, each sender with its own derived RNG; the
  // receiver still absorbs serially in sender order, so results are
  // deterministic for a fixed shard count. shards = 1 keeps the historical
  // shared-RNG loop bit for bit.
  std::optional<util::ShardPool> pool;
  std::vector<util::Xoshiro256> sender_rngs;
  std::vector<Transmission> produced;
  if (config.shards > 1 && senders.size() > 1) {
    pool.emplace(std::min(config.shards, senders.size()));
    for (std::size_t s = 0; s < senders.size(); ++s) {
      sender_rngs.emplace_back(
          util::mix64(config.seed ^ (0x9e3779b97f4a7c15ULL * (s + 1))));
    }
    produced.resize(senders.size());
  }

  // Built once, not once per round (std::function conversion allocates).
  const std::function<void(std::size_t)> produce_sharded =
      [&](std::size_t shard) {
        for (std::size_t s = shard; s < senders.size();
             s += pool->shards()) {
          produced[s] = senders[s].produce(sender_rngs[s]);
        }
      };

  const std::size_t start = receiver.symbol_count();
  const std::size_t cap = result.needed * config.max_transmission_factor;
  while (receiver.symbol_count() < target && result.rounds < cap) {
    if (!pool) {
      for (SenderNode& sender : senders) {
        receiver.apply(sender.produce(rng));
        ++result.transmissions;
        if (receiver.symbol_count() >= target) break;
      }
    } else {
      pool->run(produce_sharded);
      for (std::size_t s = 0; s < senders.size(); ++s) {
        receiver.apply(produced[s]);
        ++result.transmissions;
        if (receiver.symbol_count() >= target) break;
      }
    }
    ++result.rounds;
  }
  result.acquired = receiver.symbol_count() - start;
  result.completed = receiver.symbol_count() >= target;
  return result;
}

}  // namespace icd::overlay

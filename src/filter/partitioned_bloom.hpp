#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "filter/bloom.hpp"

/// The pipelined scaling scheme of Section 5.2: "if |S_A| and |S_B| are
/// larger than tens of thousands, then peer A can create a Bloom filter only
/// for elements of S that are equal to beta modulo rho ... The Bloom filter
/// approach can then be pipelined by incrementally providing additional
/// filters for differing values of beta as needed."
namespace icd::filter {

/// One residue-class filter: covers the keys of a set with
/// hash(key) % rho == beta. Hashing before reduction keeps the classes
/// balanced even for adversarial key distributions.
class PartitionedBloomFilter {
 public:
  /// Builds the filter for residue `beta` (mod `rho`) over `keys`, at
  /// `bits_per_element` for the covered subset.
  PartitionedBloomFilter(const std::vector<std::uint64_t>& keys,
                         std::uint32_t rho, std::uint32_t beta,
                         double bits_per_element,
                         std::uint64_t seed = BloomFilter::kDefaultSeed);

  std::uint32_t rho() const { return rho_; }
  std::uint32_t beta() const { return beta_; }

  /// True if `key` belongs to this filter's residue class.
  bool covers(std::uint64_t key) const;

  /// Membership test. Keys outside the residue class always return false
  /// ("the filter only determines elements ... equal to beta modulo rho").
  bool contains(std::uint64_t key) const;

  const BloomFilter& bloom() const { return bloom_; }
  std::size_t covered_count() const { return covered_; }

  static std::uint64_t residue_of(std::uint64_t key, std::uint32_t rho);

 private:
  std::uint32_t rho_;
  std::uint32_t beta_;
  std::size_t covered_ = 0;
  BloomFilter bloom_;
};

/// Driver for the incremental pipeline: hands out residue-class filters one
/// beta at a time, so a pair of very large peers can reconcile slice by
/// slice, interleaving useful data transfer with summary transfer.
class BloomFilterPipeline {
 public:
  BloomFilterPipeline(std::vector<std::uint64_t> keys, std::uint32_t rho,
                      double bits_per_element,
                      std::uint64_t seed = BloomFilter::kDefaultSeed);

  std::uint32_t rho() const { return rho_; }

  /// Number of residue classes already emitted.
  std::uint32_t emitted() const { return next_beta_; }
  bool exhausted() const { return next_beta_ >= rho_; }

  /// Builds and returns the filter for the next beta, or nullopt when all
  /// rho classes have been emitted.
  std::optional<PartitionedBloomFilter> next();

 private:
  std::vector<std::uint64_t> keys_;
  std::uint32_t rho_;
  double bits_per_element_;
  std::uint64_t seed_;
  std::uint32_t next_beta_ = 0;
};

}  // namespace icd::filter

#pragma once

#include <cstdint>
#include <vector>

#include "util/hash.hpp"

/// Counting Bloom filter (Fan, Cao, Almeida, Broder — "Summary Cache",
/// cited as [11] by the paper).
///
/// The paper requires that all summaries be *incrementally updatable* as new
/// symbols arrive. A plain Bloom filter supports insertion but not deletion;
/// the counting variant supports both, which matters when a peer's working
/// set is pruned (e.g. after decoding completes and re-encoding begins).
/// A peer maintains the counting filter locally and ships the cheap 1-bit
/// projection (to_bloom_bits) to its peers.
namespace icd::filter {

class CountingBloomFilter {
 public:
  /// `counters` 4-bit-saturating counters with `hashes` hash functions.
  CountingBloomFilter(std::size_t counters, std::size_t hashes,
                      std::uint64_t seed = 0x1cdb10f11e500d5eULL);

  void insert(std::uint64_t key);

  /// Removes one previous insertion of `key`. Removing a key that was never
  /// inserted may corrupt the filter (standard counting-Bloom caveat); the
  /// caller is responsible for only deleting held keys.
  void erase(std::uint64_t key);

  bool contains(std::uint64_t key) const;

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t hash_count() const { return hashes_; }
  std::uint64_t seed() const { return seed_; }

  /// Counter value at position i (saturates at 15).
  std::uint8_t counter(std::size_t i) const { return counters_[i]; }

  /// Projects to the positions a plain Bloom filter with identical geometry
  /// would have set — used to ship a compact summary of the live set.
  std::vector<bool> to_bloom_bits() const;

 private:
  static constexpr std::uint8_t kMaxCounter = 15;

  std::size_t hashes_;
  std::uint64_t seed_;
  util::DoubleHashFamily family_;
  std::vector<std::uint8_t> counters_;
};

}  // namespace icd::filter

#pragma once

#include <cstdint>
#include <vector>

#include "filter/bloom.hpp"

/// Compressed Bloom filters (Mitzenmacher 2001 — the same author's
/// companion work, and the natural upgrade for this paper's summaries):
/// when a Bloom filter is built to be *transmitted* rather than held in
/// RAM, it pays to use a larger, sparser bit array with fewer hash
/// functions and compress it for the wire. At equal transmitted size the
/// false-positive rate drops below the classical optimum.
///
/// The wire form entropy-codes the bit array with the static binary
/// arithmetic coder in util/arith_coder.hpp; the receiver decompresses to
/// the full m-bit filter and queries it normally.
namespace icd::filter {

class CompressedBloomFilter {
 public:
  /// Designs a filter for `expected_elements` whose *transmitted* size is
  /// about `wire_bits_per_element` bits per element, searching a small
  /// (m/n, k) grid for the lowest false-positive rate whose expected
  /// compressed size fits the budget.
  static CompressedBloomFilter design(std::size_t expected_elements,
                                      double wire_bits_per_element,
                                      std::uint64_t seed = BloomFilter::kDefaultSeed);

  /// Wraps an existing filter (no re-design); useful for tests.
  explicit CompressedBloomFilter(BloomFilter filter);

  void insert(std::uint64_t key) { filter_.insert(key); }
  void insert_all(const std::vector<std::uint64_t>& keys) {
    filter_.insert_all(keys);
  }
  bool contains(std::uint64_t key) const { return filter_.contains(key); }

  const BloomFilter& filter() const { return filter_; }
  std::size_t memory_bits() const { return filter_.bit_count(); }

  /// Expected false-positive probability after n insertions.
  double theoretical_fp_rate(std::size_t n) const {
    return filter_.theoretical_fp_rate(n);
  }

  /// Compressed wire form: header + arithmetic-coded bit array. The coder
  /// model (fill probability) travels in the header.
  std::vector<std::uint8_t> serialize() const;
  static CompressedBloomFilter deserialize(
      const std::vector<std::uint8_t>& bytes);

 private:
  BloomFilter filter_;
};

}  // namespace icd::filter

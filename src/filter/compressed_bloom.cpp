#include "filter/compressed_bloom.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/arith_coder.hpp"
#include "util/buffer.hpp"

namespace icd::filter {

CompressedBloomFilter::CompressedBloomFilter(BloomFilter filter)
    : filter_(std::move(filter)) {}

CompressedBloomFilter CompressedBloomFilter::design(
    std::size_t expected_elements, double wire_bits_per_element,
    std::uint64_t seed) {
  if (expected_elements == 0 || wire_bits_per_element <= 0) {
    throw std::invalid_argument("CompressedBloomFilter::design: bad inputs");
  }
  const double n = static_cast<double>(expected_elements);
  double best_fp = 1.0;
  double best_c = wire_bits_per_element;  // m/n ratio
  std::size_t best_k = 1;
  // Grid search: sparser arrays (larger c) with few hashes compress below
  // the budget while driving fp down; stop where the entropy bound says
  // the wire budget is violated.
  for (std::size_t k = 1; k <= 4; ++k) {
    for (double c = wire_bits_per_element; c <= 64.0; c *= 1.25) {
      const double fill = 1.0 - std::exp(-static_cast<double>(k) / c);
      const double wire = c * util::binary_entropy(fill);
      if (wire > wire_bits_per_element) continue;
      const double fp = std::pow(fill, static_cast<double>(k));
      if (fp < best_fp) {
        best_fp = fp;
        best_c = c;
        best_k = k;
      }
    }
  }
  const auto bits = static_cast<std::size_t>(std::ceil(best_c * n));
  return CompressedBloomFilter(BloomFilter(bits, best_k, seed));
}

std::vector<std::uint8_t> CompressedBloomFilter::serialize() const {
  // Model probability: the realized fill ratio (quantized to 16 bits) —
  // slightly better than the theoretical fill and self-describing.
  const double fill = filter_.fill_ratio();
  const auto fill_q = static_cast<std::uint16_t>(
      std::lround(std::clamp(fill, 0.0, 1.0) * 65535.0));

  // Extract the raw bit array through the filter's documented wire layout:
  // varint bits, varint k, u64 seed, varint inserted, then bit bytes
  // (little-endian within each byte).
  const auto words = filter_.serialize();
  std::vector<bool> bits(filter_.bit_count());
  util::ByteReader reader(words);
  const std::size_t bit_count = reader.varint();
  const std::size_t hashes = reader.varint();
  const std::uint64_t seed = reader.u64();
  const std::size_t inserted = reader.varint();
  const auto raw = reader.raw(reader.remaining());
  for (std::size_t i = 0; i < bit_count; ++i) {
    bits[i] = (raw[i >> 3] >> (i & 7)) & 1;
  }

  const auto coded =
      util::arith_encode_bits(bits, static_cast<double>(fill_q) / 65535.0);

  util::ByteWriter writer;
  writer.varint(bit_count);
  writer.varint(hashes);
  writer.u64(seed);
  writer.varint(inserted);
  writer.u16(fill_q);
  writer.varint(coded.size());
  writer.raw(coded);
  return writer.take();
}

CompressedBloomFilter CompressedBloomFilter::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  util::ByteReader reader(bytes);
  const std::size_t bit_count = reader.varint();
  const std::size_t hashes = reader.varint();
  const std::uint64_t seed = reader.u64();
  const std::size_t inserted = reader.varint();
  const double fill = static_cast<double>(reader.u16()) / 65535.0;
  const auto coded = reader.raw(reader.varint());
  const auto bits = util::arith_decode_bits(coded, bit_count, fill);

  // Rebuild the inner filter through its own wire format.
  util::ByteWriter inner;
  inner.varint(bit_count);
  inner.varint(hashes);
  inner.u64(seed);
  inner.varint(inserted);
  std::vector<std::uint8_t> raw(((bit_count + 63) / 64) * 8, 0);
  for (std::size_t i = 0; i < bit_count; ++i) {
    if (bits[i]) raw[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
  }
  inner.raw(raw);
  return CompressedBloomFilter(BloomFilter::deserialize(inner.bytes()));
}

}  // namespace icd::filter

#include "filter/bloom.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/buffer.hpp"

namespace icd::filter {

BloomFilter::BloomFilter(std::size_t bits, std::size_t hashes,
                         std::uint64_t seed)
    : hashes_(hashes), seed_(seed), family_(bits == 0 ? 1 : bits, seed),
      bits_(bits) {
  if (bits == 0) throw std::invalid_argument("BloomFilter: bits must be > 0");
  if (hashes == 0) {
    throw std::invalid_argument("BloomFilter: hashes must be > 0");
  }
}

BloomFilter BloomFilter::with_bits_per_element(std::size_t expected_elements,
                                               double bits_per_element,
                                               std::uint64_t seed) {
  if (expected_elements == 0 || bits_per_element <= 0) {
    throw std::invalid_argument(
        "BloomFilter::with_bits_per_element: need n > 0 and bits > 0");
  }
  const auto bits = static_cast<std::size_t>(
      std::ceil(bits_per_element * static_cast<double>(expected_elements)));
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(bits_per_element * 0.6931472)));
  return BloomFilter(std::max<std::size_t>(bits, 1), k, seed);
}

void BloomFilter::insert(std::uint64_t key) {
  for (std::size_t i = 0; i < hashes_; ++i) {
    bits_.set(family_.at(key, i));
  }
  ++inserted_;
}

bool BloomFilter::contains(std::uint64_t key) const {
  for (std::size_t i = 0; i < hashes_; ++i) {
    if (!bits_.get(family_.at(key, i))) return false;
  }
  return true;
}

void BloomFilter::insert_all(const std::vector<std::uint64_t>& keys) {
  for (const std::uint64_t key : keys) insert(key);
}

double BloomFilter::fill_ratio() const {
  return static_cast<double>(bits_.popcount()) /
         static_cast<double>(bits_.size());
}

double BloomFilter::theoretical_fp_rate(std::size_t n) const {
  return fp_rate(bits_.size(), n, hashes_);
}

void BloomFilter::check_compatible(const BloomFilter& other) const {
  if (bits_.size() != other.bits_.size() || hashes_ != other.hashes_ ||
      seed_ != other.seed_) {
    throw std::invalid_argument("BloomFilter: incompatible geometry/seed");
  }
}

BloomFilter& BloomFilter::merge_union(const BloomFilter& other) {
  check_compatible(other);
  bits_ |= other.bits_;
  inserted_ += other.inserted_;
  return *this;
}

BloomFilter& BloomFilter::merge_intersect(const BloomFilter& other) {
  check_compatible(other);
  bits_ &= other.bits_;
  inserted_ = std::min(inserted_, other.inserted_);
  return *this;
}

std::vector<std::uint8_t> BloomFilter::serialize() const {
  util::ByteWriter writer;
  serialize_into(writer);
  return writer.take();
}

std::size_t BloomFilter::serialized_size() const {
  return util::varint_size(bits_.size()) + util::varint_size(hashes_) + 8 +
         util::varint_size(inserted_) + bits_.words().size() * 8;
}

void BloomFilter::serialize_into(util::ByteWriter& out) const {
  out.varint(bits_.size());
  out.varint(hashes_);
  out.u64(seed_);
  out.varint(inserted_);
  // Byte-identical to raw(bits_.to_bytes()): u64 and to_bytes both emit
  // each word little-endian.
  for (const std::uint64_t word : bits_.words()) out.u64(word);
}

BloomFilter BloomFilter::deserialize(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader reader(bytes);
  const std::size_t bits = reader.varint();
  const std::size_t hashes = reader.varint();
  const std::uint64_t seed = reader.u64();
  const std::size_t inserted = reader.varint();
  // Bound by what the payload can hold: a corrupt bit count must fail
  // like a truncation, not attempt a giant allocation (and bits near
  // 2^64 must not overflow the word computation below).
  if (bits > reader.remaining() * 8) {
    throw std::out_of_range("BloomFilter: bit count exceeds payload");
  }
  // No sane filter probes more positions than it has bits, and real
  // configurations use a handful; a corrupt hash count must not turn
  // every future membership query into an unbounded loop.
  if (hashes > std::min<std::size_t>(bits, 256)) {
    throw std::out_of_range("BloomFilter: hash count exceeds geometry");
  }
  BloomFilter filter(bits, hashes, seed);
  const std::size_t words = (bits + 63) / 64;
  filter.bits_ = util::BitVector::from_bytes(reader.raw(words * 8), bits);
  filter.inserted_ = inserted;
  return filter;
}

}  // namespace icd::filter

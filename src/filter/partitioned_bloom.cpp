#include "filter/partitioned_bloom.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace icd::filter {

namespace {
constexpr std::uint64_t kResidueSeed = 0x9aa1f7b44e21cc03ULL;
}

std::uint64_t PartitionedBloomFilter::residue_of(std::uint64_t key,
                                                 std::uint32_t rho) {
  return util::hash64(key, kResidueSeed) % rho;
}

namespace {

std::size_t count_covered(const std::vector<std::uint64_t>& keys,
                          std::uint32_t rho, std::uint32_t beta) {
  // Validated here because this runs in the member-initializer list, before
  // the constructor body could reject bad arguments.
  if (rho == 0) {
    throw std::invalid_argument("PartitionedBloomFilter: rho must be > 0");
  }
  if (beta >= rho) {
    throw std::invalid_argument("PartitionedBloomFilter: beta must be < rho");
  }
  return static_cast<std::size_t>(
      std::count_if(keys.begin(), keys.end(), [&](std::uint64_t key) {
        return PartitionedBloomFilter::residue_of(key, rho) == beta;
      }));
}

}  // namespace

PartitionedBloomFilter::PartitionedBloomFilter(
    const std::vector<std::uint64_t>& keys, std::uint32_t rho,
    std::uint32_t beta, double bits_per_element, std::uint64_t seed)
    : rho_(rho), beta_(beta),
      bloom_(BloomFilter::with_bits_per_element(
          std::max<std::size_t>(1, count_covered(keys, rho, beta)),
          bits_per_element, seed)) {
  for (const std::uint64_t key : keys) {
    if (covers(key)) {
      bloom_.insert(key);
      ++covered_;
    }
  }
}

bool PartitionedBloomFilter::covers(std::uint64_t key) const {
  return residue_of(key, rho_) == beta_;
}

bool PartitionedBloomFilter::contains(std::uint64_t key) const {
  return covers(key) && bloom_.contains(key);
}

BloomFilterPipeline::BloomFilterPipeline(std::vector<std::uint64_t> keys,
                                         std::uint32_t rho,
                                         double bits_per_element,
                                         std::uint64_t seed)
    : keys_(std::move(keys)), rho_(rho), bits_per_element_(bits_per_element),
      seed_(seed) {
  if (rho == 0) {
    throw std::invalid_argument("BloomFilterPipeline: rho must be > 0");
  }
}

std::optional<PartitionedBloomFilter> BloomFilterPipeline::next() {
  if (exhausted()) return std::nullopt;
  return PartitionedBloomFilter(keys_, rho_, next_beta_++, bits_per_element_,
                                seed_);
}

}  // namespace icd::filter

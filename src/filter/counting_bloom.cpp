#include "filter/counting_bloom.hpp"

#include <stdexcept>

namespace icd::filter {

CountingBloomFilter::CountingBloomFilter(std::size_t counters,
                                         std::size_t hashes,
                                         std::uint64_t seed)
    : hashes_(hashes), seed_(seed), family_(counters == 0 ? 1 : counters, seed),
      counters_(counters, 0) {
  if (counters == 0) {
    throw std::invalid_argument("CountingBloomFilter: counters must be > 0");
  }
  if (hashes == 0) {
    throw std::invalid_argument("CountingBloomFilter: hashes must be > 0");
  }
}

void CountingBloomFilter::insert(std::uint64_t key) {
  for (std::size_t i = 0; i < hashes_; ++i) {
    std::uint8_t& c = counters_[family_.at(key, i)];
    if (c < kMaxCounter) ++c;
  }
}

void CountingBloomFilter::erase(std::uint64_t key) {
  for (std::size_t i = 0; i < hashes_; ++i) {
    std::uint8_t& c = counters_[family_.at(key, i)];
    // Saturated counters are sticky: decrementing one would risk a false
    // negative, which counting Bloom filters must never produce.
    if (c > 0 && c < kMaxCounter) --c;
  }
}

bool CountingBloomFilter::contains(std::uint64_t key) const {
  for (std::size_t i = 0; i < hashes_; ++i) {
    if (counters_[family_.at(key, i)] == 0) return false;
  }
  return true;
}

std::vector<bool> CountingBloomFilter::to_bloom_bits() const {
  std::vector<bool> bits(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    bits[i] = counters_[i] > 0;
  }
  return bits;
}

}  // namespace icd::filter

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/bitvector.hpp"
#include "util/hash.hpp"

namespace icd::util {
class ByteWriter;
}

/// Bloom filters (Section 5.2 of the paper).
///
/// Peer A sends a Bloom filter of its working set S_A; peer B checks each of
/// its own symbols against the filter and sends only those that miss. False
/// positives make B *withhold* a useful symbol (harmless with encoded
/// content); the filter never causes a redundant transmission.
namespace icd::filter {

class BloomFilter {
 public:
  /// A filter of `bits` bits with `hashes` hash functions drawn from the
  /// family selected by `seed`. Both peers must use the same seed; the
  /// library fixes one by default so filters are interchangeable.
  BloomFilter(std::size_t bits, std::size_t hashes,
              std::uint64_t seed = kDefaultSeed);

  /// Convenience: dimensions the filter for `expected_elements` at
  /// `bits_per_element`, using the optimal hash count
  /// k = round(ln 2 * m / n).
  static BloomFilter with_bits_per_element(std::size_t expected_elements,
                                           double bits_per_element,
                                           std::uint64_t seed = kDefaultSeed);

  void insert(std::uint64_t key);

  /// True if `key` may be in the set (false positives possible); false
  /// guarantees absence.
  bool contains(std::uint64_t key) const;

  /// Inserts every key in `keys`.
  void insert_all(const std::vector<std::uint64_t>& keys);

  std::size_t bit_count() const { return bits_.size(); }
  std::size_t hash_count() const { return hashes_; }
  std::size_t inserted_count() const { return inserted_; }
  std::uint64_t seed() const { return seed_; }

  /// Heap bytes the bit array pins (the scale-audit surface).
  std::size_t memory_bytes() const { return (bits_.size() + 7) / 8; }

  /// Fraction of bits set; used to estimate the realized fp probability
  /// (1 - e^{-kn/m})^k without knowing n.
  double fill_ratio() const;

  /// Theoretical false positive probability for n insertions into this
  /// filter: (1 - e^{-kn/m})^k.
  double theoretical_fp_rate(std::size_t n) const;

  /// Same formula as a free function, as printed in the paper:
  /// f = (1 - e^{-kn/m})^k.
  static double fp_rate(std::size_t m, std::size_t n, std::size_t k) {
    return std::pow(1.0 - std::exp(-static_cast<double>(k) * n / m),
                    static_cast<double>(k));
  }

  /// Union of two filters with identical geometry and seed (bitwise OR).
  /// The result behaves exactly like a filter built from the union of the
  /// two key sets.
  BloomFilter& merge_union(const BloomFilter& other);

  /// Bitwise AND. Note: unlike union this only *approximates* the filter of
  /// the intersection (it may contain extra bits), but never loses elements
  /// of the intersection.
  BloomFilter& merge_intersect(const BloomFilter& other);

  /// Wire form: header (bits, hashes, seed, inserted) + bit array. Sized to
  /// be charged against 1 KB packets by the simulator. serialize_into
  /// appends the same bytes to an existing writer (e.g. over a pooled
  /// frame buffer) without a scratch vector; serialized_size is the exact
  /// byte count it will append.
  std::vector<std::uint8_t> serialize() const;
  std::size_t serialized_size() const;
  void serialize_into(util::ByteWriter& out) const;
  static BloomFilter deserialize(const std::vector<std::uint8_t>& bytes);

  static constexpr std::uint64_t kDefaultSeed = 0x1cdb10f11e500d5eULL;

 private:
  void check_compatible(const BloomFilter& other) const;

  std::size_t hashes_;
  std::uint64_t seed_;
  std::size_t inserted_ = 0;
  util::DoubleHashFamily family_;
  util::BitVector bits_;
};

}  // namespace icd::filter

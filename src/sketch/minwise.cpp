#include "sketch/minwise.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/buffer.hpp"
#include "util/hash.hpp"

namespace icd::sketch {

MinwiseSketch::MinwiseSketch(std::uint64_t universe_size,
                             std::size_t permutations, std::uint64_t seed)
    : universe_size_(universe_size), seed_(seed),
      permutations_(
          util::shared_permutation_family(universe_size, permutations, seed)),
      minima_(permutations, kEmpty) {
  if (permutations == 0) {
    throw std::invalid_argument("MinwiseSketch: need at least 1 permutation");
  }
}

void MinwiseSketch::update(std::uint64_t key) {
  const auto& family = *permutations_;
  for (std::size_t j = 0; j < family.size(); ++j) {
    minima_[j] = std::min(minima_[j], family[j](key));
  }
}

void MinwiseSketch::update_all(const std::vector<std::uint64_t>& keys) {
  for (const std::uint64_t key : keys) update(key);
}

void MinwiseSketch::check_compatible(const MinwiseSketch& other) const {
  if (universe_size_ != other.universe_size_ || seed_ != other.seed_ ||
      minima_.size() != other.minima_.size()) {
    throw std::invalid_argument("MinwiseSketch: incompatible sketches");
  }
}

double MinwiseSketch::resemblance(const MinwiseSketch& a,
                                  const MinwiseSketch& b) {
  a.check_compatible(b);
  std::size_t live = 0;
  std::size_t equal = 0;
  for (std::size_t j = 0; j < a.minima_.size(); ++j) {
    const bool a_empty = a.minima_[j] == kEmpty;
    const bool b_empty = b.minima_[j] == kEmpty;
    if (a_empty && b_empty) continue;
    ++live;
    if (a.minima_[j] == b.minima_[j]) ++equal;
  }
  if (live == 0) return 1.0;  // both sets empty
  return static_cast<double>(equal) / static_cast<double>(live);
}

MinwiseSketch MinwiseSketch::combine_union(const MinwiseSketch& a,
                                           const MinwiseSketch& b) {
  a.check_compatible(b);
  MinwiseSketch result = a;
  for (std::size_t j = 0; j < result.minima_.size(); ++j) {
    result.minima_[j] = std::min(result.minima_[j], b.minima_[j]);
  }
  return result;
}

std::vector<std::uint8_t> MinwiseSketch::serialize() const {
  util::ByteWriter writer;
  serialize_into(writer);
  return writer.take();
}

std::size_t MinwiseSketch::serialized_size() const {
  return 16 + util::varint_size(minima_.size()) + 8 * minima_.size();
}

void MinwiseSketch::serialize_into(util::ByteWriter& out) const {
  out.u64(universe_size_);
  out.u64(seed_);
  out.varint(minima_.size());
  for (const std::uint64_t m : minima_) out.u64(m);
}

MinwiseSketch MinwiseSketch::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  util::ByteReader reader(bytes);
  const std::uint64_t universe = reader.u64();
  const std::uint64_t seed = reader.u64();
  const std::size_t count = reader.varint();
  // Bound by what the payload can hold (8 bytes per minimum): a corrupt
  // count must fail like a truncation, not attempt a giant allocation.
  if (count > reader.remaining() / 8) {
    throw std::out_of_range("MinwiseSketch: count exceeds payload");
  }
  MinwiseSketch sketch(universe, count, seed);
  for (std::size_t j = 0; j < count; ++j) sketch.minima_[j] = reader.u64();
  return sketch;
}

double containment_from_resemblance(double resemblance, std::size_t size_a,
                                    std::size_t size_b) {
  if (size_b == 0) return 0.0;
  const double r = std::clamp(resemblance, 0.0, 1.0);
  const double intersection =
      r / (1.0 + r) * (static_cast<double>(size_a) + size_b);
  return std::clamp(intersection / static_cast<double>(size_b), 0.0, 1.0);
}

double resemblance_from_containment(double containment, std::size_t size_a,
                                    std::size_t size_b) {
  const double intersection = containment * static_cast<double>(size_b);
  const double uni = static_cast<double>(size_a) + size_b - intersection;
  if (uni <= 0.0) return 1.0;
  return std::clamp(intersection / uni, 0.0, 1.0);
}

}  // namespace icd::sketch

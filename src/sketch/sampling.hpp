#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/random.hpp"

/// The two sampling-based estimators of Section 4 that the paper discusses
/// before settling on min-wise sketches. Implemented both as baselines for
/// the sketch benchmarks and because they remain the right tool in some
/// regimes (random sampling needs no agreed-on hash family at all).
namespace icd::sketch {

/// --- Straightforward random sampling -------------------------------------
///
/// "simply select k elements of the working set at random (with replacement)
/// and transport those to the peer." The receiver must look each sample up
/// in its own working set, so estimation is O(k) hash lookups on the
/// receiving side.
class RandomSample {
 public:
  /// Draws `k` keys with replacement from `keys` (must be non-empty).
  RandomSample(const std::vector<std::uint64_t>& keys, std::size_t k,
               util::Xoshiro256& rng);

  /// Keys as transmitted (with duplicates, as drawn).
  const std::vector<std::uint64_t>& samples() const { return samples_; }

  /// Size of the sampled set, optionally sent alongside.
  std::size_t source_size() const { return source_size_; }

  /// Receiver-side estimate of |A ∩ B| / |A| where A is the *sampled* set
  /// and B is `other`: the fraction of samples present in `other`.
  double estimate_containment(
      const std::unordered_set<std::uint64_t>& other) const;

  /// Wire size in bytes at 8 bytes per key.
  std::size_t wire_bytes() const { return samples_.size() * 8 + 8; }

 private:
  std::vector<std::uint64_t> samples_;
  std::size_t source_size_;
};

/// --- Sampling keys equal to 0 modulo k -----------------------------------
///
/// Broder's second technique: both peers keep the subset of keys whose hash
/// is 0 mod k; the two small samples can then be intersected directly,
/// with no lookups into the full working sets. The sample is variable-sized
/// (~|S|/k), which is its practical drawback — packets have a maximum size.
class ModKSample {
 public:
  /// Collects keys with hash(key) % k == 0. `k` must be > 0.
  ModKSample(const std::vector<std::uint64_t>& keys, std::uint64_t k);

  std::uint64_t modulus() const { return k_; }
  const std::vector<std::uint64_t>& samples() const { return samples_; }
  std::size_t source_size() const { return source_size_; }

  /// Estimate of |A ∩ B| / |B| from the two samples alone:
  /// |A_k ∩ B_k| / |B_k|. Returns 0 when the other sample is empty.
  static double estimate_containment(const ModKSample& a, const ModKSample& b);

  std::size_t wire_bytes() const { return samples_.size() * 8 + 16; }

 private:
  std::uint64_t k_;
  std::vector<std::uint64_t> samples_;
  std::size_t source_size_;
};

}  // namespace icd::sketch

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "util/permutation.hpp"

namespace icd::util {
class ByteWriter;
}

/// Min-wise sketches (Broder; Section 4 of the paper) — the preferred
/// coarse reconciliation mechanism.
///
/// For each of N pre-agreed random permutations pi_j of the key universe, a
/// peer records min pi_j(S) over its working set S. Two sketches agree at
/// position j with probability exactly
///     r = |A ∩ B| / |A ∪ B|
/// (the *resemblance*), so the fraction of matching positions is an unbiased
/// estimator of r. With 64-bit minima, the default 128 permutations fill the
/// paper's single 1 KB calling-card packet exactly.
namespace icd::sketch {

class MinwiseSketch {
 public:
  /// Number of permutations that fit a 1 KB packet at 8 bytes per minimum.
  static constexpr std::size_t kDefaultPermutations = 128;
  /// Seed that all peers share so their permutation families coincide
  /// ("we assume they are fixed universally off-line").
  static constexpr std::uint64_t kSharedSeed = 0x51e7c4a11c0ffee5ULL;

  /// Sentinel stored at a position before any element has been folded in.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  /// Sketch over a universe of `universe_size` keys with `permutations`
  /// positions. Peers must agree on all three constructor arguments.
  explicit MinwiseSketch(std::uint64_t universe_size,
                         std::size_t permutations = kDefaultPermutations,
                         std::uint64_t seed = kSharedSeed);

  /// Folds one element in: O(#permutations). This is the constant-overhead
  /// incremental update the paper requires of all its summaries.
  void update(std::uint64_t key);

  /// Folds in every key of `keys`.
  void update_all(const std::vector<std::uint64_t>& keys);

  std::size_t permutation_count() const { return minima_.size(); }
  std::uint64_t universe_size() const { return universe_size_; }
  std::uint64_t seed() const { return seed_; }
  const std::vector<std::uint64_t>& minima() const { return minima_; }

  /// Heap bytes pinned per sketch. The permutation family is shared
  /// process-wide (util::shared_permutation_family) and deliberately not
  /// charged per peer.
  std::size_t memory_bytes() const {
    return minima_.capacity() * sizeof(std::uint64_t);
  }

  /// Unbiased estimate of |A ∩ B| / |A ∪ B| from two sketches. Positions
  /// never touched on either side are skipped; two empty sketches resemble
  /// each other completely by convention.
  static double resemblance(const MinwiseSketch& a, const MinwiseSketch& b);

  /// Coordinate-wise minimum: the sketch of the union of the two sets
  /// ("the sketch for the union of A_F and B_F is easily found by taking
  /// the coordinate-wise minimum of v(A) and v(B)").
  static MinwiseSketch combine_union(const MinwiseSketch& a,
                                     const MinwiseSketch& b);

  /// Wire form; 16 bytes of header + 8 bytes per minimum. serialize_into
  /// appends the same bytes to an existing writer (e.g. over a pooled
  /// frame buffer) so the handshake path serializes without a scratch
  /// vector; serialized_size is the exact byte count it will append.
  std::vector<std::uint8_t> serialize() const;
  std::size_t serialized_size() const;
  void serialize_into(util::ByteWriter& out) const;
  static MinwiseSketch deserialize(const std::vector<std::uint8_t>& bytes);

 private:
  void check_compatible(const MinwiseSketch& other) const;

  std::uint64_t universe_size_;
  std::uint64_t seed_;
  /// Shared across every sketch with the same (universe, count, seed) via
  /// util::shared_permutation_family — sketches are copied and deserialized
  /// per handshake, and the family is the expensive immutable part.
  std::shared_ptr<const std::vector<util::LinearPermutation>> permutations_;
  std::vector<std::uint64_t> minima_;
};

/// Converts a resemblance estimate r = |A∩B| / |A∪B| into the containment
/// c = |A∩B| / |B| the recoding strategies need, via inclusion-exclusion:
/// |A∩B| = r (|A| + |B|) / (1 + r). Returns a value clamped to [0, 1].
double containment_from_resemblance(double resemblance, std::size_t size_a,
                                    std::size_t size_b);

/// The reverse conversion, used by tests and by workload generators that
/// target a specific containment.
double resemblance_from_containment(double containment, std::size_t size_a,
                                    std::size_t size_b);

}  // namespace icd::sketch

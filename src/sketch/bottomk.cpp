#include "sketch/bottomk.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/buffer.hpp"

namespace icd::sketch {

namespace {

util::LinearPermutation shared_permutation(std::uint64_t universe_size,
                                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return util::LinearPermutation::random(universe_size, rng);
}

}  // namespace

BottomKSketch::BottomKSketch(std::uint64_t universe_size, std::size_t k,
                             std::uint64_t seed)
    : universe_size_(universe_size), seed_(seed), k_(k),
      permutation_(shared_permutation(universe_size, seed)) {
  if (k == 0) throw std::invalid_argument("BottomKSketch: k must be > 0");
}

void BottomKSketch::update(std::uint64_t key) {
  const std::uint64_t v = permutation_(key);
  const auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it != values_.end() && *it == v) return;  // duplicate element
  if (values_.size() == k_) {
    if (v >= values_.back()) return;
    values_.pop_back();
  }
  values_.insert(std::lower_bound(values_.begin(), values_.end(), v), v);
}

void BottomKSketch::update_all(const std::vector<std::uint64_t>& keys) {
  for (const std::uint64_t key : keys) update(key);
}

void BottomKSketch::check_compatible(const BottomKSketch& other) const {
  if (universe_size_ != other.universe_size_ || seed_ != other.seed_ ||
      k_ != other.k_) {
    throw std::invalid_argument("BottomKSketch: incompatible sketches");
  }
}

double BottomKSketch::resemblance(const BottomKSketch& a,
                                  const BottomKSketch& b) {
  a.check_compatible(b);
  if (a.values_.empty() && b.values_.empty()) return 1.0;
  // The k smallest values of union(sketch(A), sketch(B)) are exactly the k
  // smallest permuted values of A ∪ B; each lies in A ∩ B iff it appears
  // in both sketches.
  std::vector<std::uint64_t> merged;
  merged.reserve(a.values_.size() + b.values_.size());
  std::merge(a.values_.begin(), a.values_.end(), b.values_.begin(),
             b.values_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  const std::size_t take = std::min(merged.size(), a.k_);
  std::size_t in_both = 0;
  for (std::size_t i = 0; i < take; ++i) {
    const std::uint64_t v = merged[i];
    const bool in_a =
        std::binary_search(a.values_.begin(), a.values_.end(), v);
    const bool in_b =
        std::binary_search(b.values_.begin(), b.values_.end(), v);
    if (in_a && in_b) ++in_both;
  }
  return static_cast<double>(in_both) / static_cast<double>(take);
}

BottomKSketch BottomKSketch::combine_union(const BottomKSketch& a,
                                           const BottomKSketch& b) {
  a.check_compatible(b);
  BottomKSketch result = a;
  std::vector<std::uint64_t> merged;
  merged.reserve(a.values_.size() + b.values_.size());
  std::merge(a.values_.begin(), a.values_.end(), b.values_.begin(),
             b.values_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  if (merged.size() > a.k_) merged.resize(a.k_);
  result.values_ = std::move(merged);
  return result;
}

std::vector<std::uint8_t> BottomKSketch::serialize() const {
  util::ByteWriter writer;
  writer.u64(universe_size_);
  writer.u64(seed_);
  writer.varint(k_);
  writer.varint(values_.size());
  for (const std::uint64_t v : values_) writer.u64(v);
  return writer.take();
}

BottomKSketch BottomKSketch::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  util::ByteReader reader(bytes);
  const std::uint64_t universe = reader.u64();
  const std::uint64_t seed = reader.u64();
  const std::size_t k = reader.varint();
  BottomKSketch sketch(universe, k, seed);
  const std::size_t count = reader.varint();
  sketch.values_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sketch.values_.push_back(reader.u64());
  }
  return sketch;
}

}  // namespace icd::sketch

#pragma once

#include <cstdint>
#include <vector>

#include "util/permutation.hpp"

/// Bottom-k sketches: the single-permutation variant of min-wise
/// summarization (Broder's "sketches" as later refined by Cohen &
/// Kaplan).
///
/// Where the Section 4 min-wise sketch stores the minimum under each of N
/// independent permutations, a bottom-k sketch stores the k smallest values
/// under ONE shared permutation. For the same wire budget it retains more
/// distinct information about the set (k distinct elements instead of N
/// correlated minima), giving a lower-variance resemblance estimate — the
/// library includes it as the natural upgrade path the paper's framework
/// allows, and bench_sketch compares the two at equal packet budgets.
namespace icd::sketch {

class BottomKSketch {
 public:
  static constexpr std::size_t kDefaultK = 128;
  static constexpr std::uint64_t kSharedSeed = 0xb0770a1c5eed11ULL;

  /// Sketch of up to `k` minima over a universe of `universe_size` keys.
  explicit BottomKSketch(std::uint64_t universe_size,
                         std::size_t k = kDefaultK,
                         std::uint64_t seed = kSharedSeed);

  /// Folds one element in: O(log k) amortized.
  void update(std::uint64_t key);
  void update_all(const std::vector<std::uint64_t>& keys);

  std::size_t k() const { return k_; }
  std::uint64_t universe_size() const { return universe_size_; }
  std::uint64_t seed() const { return seed_; }

  /// The sketch contents: the k smallest permuted values, ascending.
  /// Fewer than k when the set itself is smaller.
  const std::vector<std::uint64_t>& values() const { return values_; }

  /// Unbiased estimate of |A ∩ B| / |A ∪ B|: the fraction of the k
  /// smallest values of the (sketch-wise) union that appear in both
  /// sketches. Both sketches must share k, seed and universe.
  static double resemblance(const BottomKSketch& a, const BottomKSketch& b);

  /// Sketch of the union of the underlying sets: merge + keep k smallest.
  static BottomKSketch combine_union(const BottomKSketch& a,
                                     const BottomKSketch& b);

  std::vector<std::uint8_t> serialize() const;
  static BottomKSketch deserialize(const std::vector<std::uint8_t>& bytes);

 private:
  void check_compatible(const BottomKSketch& other) const;

  std::uint64_t universe_size_;
  std::uint64_t seed_;
  std::size_t k_;
  util::LinearPermutation permutation_;
  /// Sorted ascending; at most k_ entries.
  std::vector<std::uint64_t> values_;
};

}  // namespace icd::sketch

#include "sketch/sampling.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace icd::sketch {

namespace {
constexpr std::uint64_t kModKSeed = 0x3c6ef372fe94f82bULL;
}

RandomSample::RandomSample(const std::vector<std::uint64_t>& keys,
                           std::size_t k, util::Xoshiro256& rng)
    : source_size_(keys.size()) {
  if (keys.empty()) {
    throw std::invalid_argument("RandomSample: cannot sample an empty set");
  }
  samples_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    samples_.push_back(keys[rng.next_below(keys.size())]);
  }
}

double RandomSample::estimate_containment(
    const std::unordered_set<std::uint64_t>& other) const {
  if (samples_.empty()) return 0.0;
  std::size_t hits = 0;
  for (const std::uint64_t key : samples_) {
    if (other.contains(key)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples_.size());
}

ModKSample::ModKSample(const std::vector<std::uint64_t>& keys,
                       std::uint64_t k)
    : k_(k), source_size_(keys.size()) {
  if (k == 0) throw std::invalid_argument("ModKSample: k must be > 0");
  for (const std::uint64_t key : keys) {
    if (util::hash64(key, kModKSeed) % k == 0) samples_.push_back(key);
  }
  std::sort(samples_.begin(), samples_.end());
}

double ModKSample::estimate_containment(const ModKSample& a,
                                        const ModKSample& b) {
  if (a.k_ != b.k_) {
    throw std::invalid_argument("ModKSample: mismatched moduli");
  }
  if (b.samples_.empty()) return 0.0;
  std::vector<std::uint64_t> common;
  std::set_intersection(a.samples_.begin(), a.samples_.end(),
                        b.samples_.begin(), b.samples_.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) /
         static_cast<double>(b.samples_.size());
}

}  // namespace icd::sketch

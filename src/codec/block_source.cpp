#include "codec/block_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace icd::codec {

BlockSource::BlockSource(std::span<const std::uint8_t> content,
                         std::size_t block_size)
    : block_size_(block_size), content_size_(content.size()) {
  if (block_size == 0) {
    throw std::invalid_argument("BlockSource: block_size must be > 0");
  }
  const std::size_t count =
      std::max<std::size_t>(1, (content.size() + block_size - 1) / block_size);
  blocks_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::uint8_t> block(block_size, 0);
    const std::size_t offset = i * block_size;
    if (offset < content.size()) {
      const std::size_t len = std::min(block_size, content.size() - offset);
      std::copy_n(content.begin() + offset, len, block.begin());
    }
    blocks_.push_back(std::move(block));
  }
}

std::vector<std::uint8_t> BlockSource::restore(
    const std::vector<std::vector<std::uint8_t>>& blocks,
    std::size_t content_size) {
  std::vector<std::uint8_t> content;
  content.reserve(content_size);
  for (const auto& block : blocks) {
    for (const std::uint8_t byte : block) {
      if (content.size() == content_size) return content;
      content.push_back(byte);
    }
  }
  if (content.size() != content_size) {
    throw std::invalid_argument("BlockSource::restore: not enough blocks");
  }
  return content;
}

}  // namespace icd::codec

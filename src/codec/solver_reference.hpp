#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/symbol.hpp"

/// The list-based solvers the flat-arena data plane replaced, kept
/// verbatim as the semantic ground truth:
///
///   * `ReferencePeelingDecoder` — per-equation heap vectors of unknown
///     keys, `std::find`+`erase` substitution, an `unordered_map<Key,
///     vector<eq_id>>` waiting index. The randomized solver property test
///     (tests/solver_property_test.cpp) runs every scripted add /
///     mark_known / release sequence through this and the production
///     `PeelingDecoder`, asserting identical recovery logs, counters, and
///     values.
///   * `ReferenceInactivationDecoder` — stores its own copy of every
///     equation and payload and re-runs Gaussian elimination from scratch
///     on every try_solve call. The BENCH_codec solve lanes time it
///     against the incremental production solver
///     (`solve_incremental_speedup`, CI-gated).
///
/// Nothing on the delivery path instantiates these; they exist so the
/// optimized solvers stay pinned bit-for-bit to known-good behavior.
namespace icd::codec {

template <typename Key>
class ReferencePeelingDecoder {
 public:
  ReferencePeelingDecoder() = default;

  bool mark_known(const Key& key, std::vector<std::uint8_t> value) {
    if (known_.contains(key)) return false;
    recover(key, std::move(value));
    drain();
    return true;
  }

  bool add_equation(std::vector<Key> keys, std::vector<std::uint8_t> payload) {
    return add_equation_impl(keys, std::move(payload));
  }

  bool add_equation(std::span<const Key> keys,
                    std::span<const std::uint8_t> payload) {
    return add_equation_impl(
        keys, std::vector<std::uint8_t>(payload.begin(), payload.end()));
  }

  bool is_known(const Key& key) const { return known_.contains(key); }

  const std::vector<std::uint8_t>& value(const Key& key) const {
    const auto it = known_.find(key);
    if (it == known_.end()) {
      throw std::out_of_range("ReferencePeelingDecoder: key not recovered");
    }
    return it->second;
  }

  std::size_t known_count() const { return known_.size(); }
  std::size_t buffered_count() const { return live_equations_; }
  std::size_t redundant_count() const { return redundant_; }
  const std::vector<Key>& recovery_log() const { return log_; }

  void release_solver_state() {
    equations_.clear();
    equations_.shrink_to_fit();
    waiting_.clear();
    waiting_.rehash(0);
    pending_.clear();
    pending_.shrink_to_fit();
    live_equations_ = 0;
  }

 private:
  struct Equation {
    std::vector<Key> unknowns;
    std::vector<std::uint8_t> payload;
    bool retired = false;
  };

  void recover(const Key& key, std::vector<std::uint8_t> value) {
    known_.emplace(key, std::move(value));
    pending_.push_back(key);
    log_.push_back(key);
  }

  bool add_equation_impl(std::span<const Key> keys,
                         std::vector<std::uint8_t> payload) {
    bool sorted_distinct = true;
    for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
      if (!(keys[i] < keys[i + 1])) {
        sorted_distinct = false;
        break;
      }
    }

    std::vector<Key> unknowns;
    unknowns.reserve(keys.size());
    const auto substitute = [&](const Key& k) {
      const auto it = known_.find(k);
      if (it == known_.end()) {
        unknowns.push_back(k);
      } else {
        xor_into(payload, it->second);
      }
    };
    if (sorted_distinct) {
      for (const Key& k : keys) substitute(k);
    } else {
      std::unordered_map<Key, int> counts;
      for (const Key& k : keys) ++counts[k];
      for (const auto& [k, c] : counts) {
        if (c % 2 == 1) substitute(k);
      }
    }

    if (unknowns.empty()) {
      ++redundant_;
      return false;
    }
    if (unknowns.size() == 1) {
      recover(unknowns.front(), std::move(payload));
      drain();
      return true;
    }

    const std::size_t eq_id = equations_.size();
    for (const Key& k : unknowns) waiting_[k].push_back(eq_id);
    equations_.push_back(Equation{std::move(unknowns), std::move(payload),
                                  /*retired=*/false});
    ++live_equations_;
    return false;
  }

  void drain() {
    while (!pending_.empty()) {
      const Key key = pending_.front();
      pending_.pop_front();
      const auto wit = waiting_.find(key);
      if (wit == waiting_.end()) continue;
      const std::vector<std::size_t> eq_ids = std::move(wit->second);
      waiting_.erase(wit);
      for (const std::size_t eq_id : eq_ids) {
        Equation& eq = equations_[eq_id];
        if (eq.retired) continue;
        auto pos = std::find(eq.unknowns.begin(), eq.unknowns.end(), key);
        if (pos == eq.unknowns.end()) continue;  // already substituted
        eq.unknowns.erase(pos);
        xor_into(eq.payload, known_.at(key));
        if (eq.unknowns.size() == 1) {
          const Key last = eq.unknowns.front();
          eq.retired = true;
          --live_equations_;
          if (!known_.contains(last)) {
            recover(last, std::move(eq.payload));
          }
        } else if (eq.unknowns.empty()) {
          eq.retired = true;
          --live_equations_;
        }
      }
    }
  }

  std::unordered_map<Key, std::vector<std::uint8_t>> known_;
  std::vector<Equation> equations_;
  std::unordered_map<Key, std::vector<std::size_t>> waiting_;  // key -> eq ids
  std::deque<Key> pending_;
  std::vector<Key> log_;
  std::size_t live_equations_ = 0;
  std::size_t redundant_ = 0;
};

/// Scratch-elimination inactivation decoder: keeps duplicate copies of
/// every equation and payload next to the peeler's own storage and
/// rebuilds + re-reduces the whole residual system on each try_solve.
class ReferenceInactivationDecoder {
 public:
  ReferenceInactivationDecoder(CodeParameters params, DegreeDistribution dist)
      : params_(params), dist_(std::move(dist)) {
    if (params_.block_count == 0) {
      throw std::invalid_argument(
          "ReferenceInactivationDecoder: block_count must be > 0");
    }
  }

  bool add_symbol(const EncodedSymbol& symbol) {
    ++received_count_;
    auto keys = symbol_neighbors(params_, dist_, symbol.id);
    equations_.push_back(keys);
    payloads_.push_back(symbol.payload);
    return peeler_.add_equation(std::move(keys), symbol.payload);
  }

  bool try_solve() {
    if (complete()) return true;
    if (received_count_ < params_.block_count) return false;

    // Residual unknowns -> dense column indices.
    std::unordered_map<std::uint32_t, std::size_t> column_of;
    std::vector<std::uint32_t> unknown_ids;
    for (std::uint32_t b = 0; b < params_.block_count; ++b) {
      if (!peeler_.is_known(b)) {
        column_of.emplace(b, unknown_ids.size());
        unknown_ids.push_back(b);
      }
    }
    const std::size_t u = unknown_ids.size();
    const std::size_t words = (u + 63) / 64;

    // Reduce every stored equation by the known values; keep the nonzero
    // residual rows as (bitmask over unknowns, payload).
    struct Row {
      std::vector<std::uint64_t> bits;
      std::vector<std::uint8_t> payload;
    };
    std::vector<Row> rows;
    rows.reserve(equations_.size());
    for (std::size_t e = 0; e < equations_.size(); ++e) {
      Row row{std::vector<std::uint64_t>(words, 0), payloads_[e]};
      bool nonzero = false;
      for (const std::uint32_t b : equations_[e]) {
        const auto it = column_of.find(b);
        if (it == column_of.end()) {
          xor_into(row.payload, peeler_.value(b));
        } else {
          row.bits[it->second >> 6] ^= std::uint64_t{1} << (it->second & 63);
          nonzero = true;
        }
      }
      if (nonzero) rows.push_back(std::move(row));
    }
    if (rows.size() < u) return false;  // rank can't reach u yet

    // Forward elimination with partial pivoting by column.
    std::vector<std::size_t> pivot_row_of(u, SIZE_MAX);
    std::size_t next_row = 0;
    for (std::size_t col = 0; col < u && next_row < rows.size(); ++col) {
      const std::size_t word = col >> 6;
      const std::uint64_t mask = std::uint64_t{1} << (col & 63);
      std::size_t pivot = next_row;
      while (pivot < rows.size() && !(rows[pivot].bits[word] & mask)) ++pivot;
      if (pivot == rows.size()) continue;  // rank-deficient in this column
      std::swap(rows[pivot], rows[next_row]);
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r != next_row && (rows[r].bits[word] & mask)) {
          for (std::size_t w = 0; w < words; ++w) {
            rows[r].bits[w] ^= rows[next_row].bits[w];
          }
          xor_into(rows[r].payload, rows[next_row].payload);
        }
      }
      pivot_row_of[col] = next_row;
      ++next_row;
    }
    for (std::size_t col = 0; col < u; ++col) {
      if (pivot_row_of[col] == SIZE_MAX) return false;  // underdetermined
    }

    // Full elimination above leaves each pivot row with a single set bit:
    // its payload is the unknown's value.
    for (std::size_t col = 0; col < u; ++col) {
      peeler_.mark_known(unknown_ids[col],
                         std::move(rows[pivot_row_of[col]].payload));
    }
    return complete();
  }

  std::size_t recovered_count() const { return peeler_.known_count(); }
  std::size_t received_count() const { return received_count_; }
  bool complete() const { return recovered_count() == params_.block_count; }

  std::vector<std::vector<std::uint8_t>> blocks() const {
    if (!complete()) {
      throw std::logic_error("ReferenceInactivationDecoder::blocks: incomplete");
    }
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(params_.block_count);
    for (std::uint32_t b = 0; b < params_.block_count; ++b) {
      out.push_back(peeler_.value(b));
    }
    return out;
  }

  const CodeParameters& parameters() const { return params_; }

 private:
  CodeParameters params_;
  DegreeDistribution dist_;
  ReferencePeelingDecoder<std::uint32_t> peeler_;
  /// Raw equations kept for the elimination phase.
  std::vector<std::vector<std::uint32_t>> equations_;
  std::vector<std::vector<std::uint8_t>> payloads_;
  std::size_t received_count_ = 0;
};

}  // namespace icd::codec

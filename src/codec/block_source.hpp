#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// Splits content into the fixed-length source blocks x_1..x_l of Section
/// 5.4.1 ("a piece of content is divided into a collection of l fixed-length
/// blocks, each of size suitable for packetization").
namespace icd::codec {

class BlockSource {
 public:
  /// Splits `content` into blocks of `block_size` bytes, zero-padding the
  /// final block. `block_size` must be > 0; empty content yields one
  /// all-zero block so that l >= 1 always holds.
  BlockSource(std::span<const std::uint8_t> content, std::size_t block_size);

  std::size_t block_count() const { return blocks_.size(); }
  std::size_t block_size() const { return block_size_; }
  std::size_t content_size() const { return content_size_; }

  const std::vector<std::uint8_t>& block(std::size_t i) const {
    return blocks_.at(i);
  }
  const std::vector<std::vector<std::uint8_t>>& blocks() const {
    return blocks_;
  }

  /// Reassembles the original content (strips the padding) from any
  /// complete set of blocks with this geometry.
  static std::vector<std::uint8_t> restore(
      const std::vector<std::vector<std::uint8_t>>& blocks,
      std::size_t content_size);

 private:
  std::size_t block_size_;
  std::size_t content_size_;
  std::vector<std::vector<std::uint8_t>> blocks_;
};

}  // namespace icd::codec

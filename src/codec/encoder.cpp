#include "codec/encoder.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/random.hpp"

namespace icd::codec {

std::vector<std::uint32_t> symbol_neighbors(const CodeParameters& params,
                                            const DegreeDistribution& dist,
                                            std::uint64_t symbol_id) {
  std::vector<std::uint32_t> neighbors;
  std::vector<std::uint64_t> picks;
  symbol_neighbors_into(neighbors, picks, params, dist, symbol_id);
  return neighbors;
}

void symbol_neighbors_into(std::vector<std::uint32_t>& out,
                           std::vector<std::uint64_t>& pick_scratch,
                           const CodeParameters& params,
                           const DegreeDistribution& dist,
                           std::uint64_t symbol_id) {
  if (params.block_count == 0) {
    throw std::invalid_argument("symbol_neighbors: block_count must be > 0");
  }
  util::Xoshiro256 rng(util::hash64(symbol_id, params.session_seed));
  const std::size_t degree =
      std::min<std::size_t>(dist.sample(rng), params.block_count);
  util::sample_without_replacement_into(pick_scratch, params.block_count,
                                        degree, rng);
  out.clear();
  out.reserve(pick_scratch.size());
  for (const std::uint64_t p : pick_scratch) {
    out.push_back(static_cast<std::uint32_t>(p));
  }
  std::sort(out.begin(), out.end());
}

Encoder::Encoder(const BlockSource& source, DegreeDistribution dist,
                 std::uint64_t session_seed, std::uint64_t stream_seed)
    : source_(source), dist_(std::move(dist)),
      params_{static_cast<std::uint32_t>(source.block_count()), session_seed},
      next_id_(util::hash64(session_seed ^ stream_seed, 0x5eedf00dULL)) {}

EncodedSymbol Encoder::encode(std::uint64_t symbol_id) const {
  EncodedSymbol symbol;
  symbol.id = symbol_id;
  for (const std::uint32_t b : neighbors(symbol_id)) {
    xor_into(symbol.payload, source_.block(b));
  }
  return symbol;
}

void Encoder::encode_into(EncodedSymbol& out, std::uint64_t symbol_id) {
  out.id = symbol_id;
  out.payload.clear();
  symbol_neighbors_into(neighbor_scratch_, pick_scratch_, params_, dist_,
                        symbol_id);
  for (const std::uint32_t b : neighbor_scratch_) {
    xor_into(out.payload, source_.block(b));
  }
}

EncodedSymbol Encoder::next() { return encode(next_id_++); }

}  // namespace icd::codec

#include "codec/encoder.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/random.hpp"

namespace icd::codec {

std::vector<std::uint32_t> symbol_neighbors(const CodeParameters& params,
                                            const DegreeDistribution& dist,
                                            std::uint64_t symbol_id) {
  if (params.block_count == 0) {
    throw std::invalid_argument("symbol_neighbors: block_count must be > 0");
  }
  util::Xoshiro256 rng(util::hash64(symbol_id, params.session_seed));
  const std::size_t degree =
      std::min<std::size_t>(dist.sample(rng), params.block_count);
  const auto picks =
      util::sample_without_replacement(params.block_count, degree, rng);
  std::vector<std::uint32_t> neighbors;
  neighbors.reserve(picks.size());
  for (const std::uint64_t p : picks) {
    neighbors.push_back(static_cast<std::uint32_t>(p));
  }
  std::sort(neighbors.begin(), neighbors.end());
  return neighbors;
}

Encoder::Encoder(const BlockSource& source, DegreeDistribution dist,
                 std::uint64_t session_seed, std::uint64_t stream_seed)
    : source_(source), dist_(std::move(dist)),
      params_{static_cast<std::uint32_t>(source.block_count()), session_seed},
      next_id_(util::hash64(session_seed ^ stream_seed, 0x5eedf00dULL)) {}

EncodedSymbol Encoder::encode(std::uint64_t symbol_id) const {
  EncodedSymbol symbol;
  symbol.id = symbol_id;
  for (const std::uint32_t b : neighbors(symbol_id)) {
    xor_into(symbol.payload, source_.block(b));
  }
  return symbol;
}

EncodedSymbol Encoder::next() { return encode(next_id_++); }

}  // namespace icd::codec

#pragma once

#include <cstdint>
#include <vector>

#include "util/random.hpp"

/// Degree distributions for sparse parity-check codes (Section 5.4.1).
///
/// Each encoded symbol is the XOR of a random subset of source blocks; the
/// size of that subset (the symbol's *degree*) is drawn from an irregular,
/// heavy-tailed distribution. "A heavy-tailed distribution was proven to be
/// a good choice in [Luby et al. 97]" — we provide the ideal and robust
/// soliton distributions from that line of work plus the truncated variant
/// the paper's heuristics use for recoding (degree limit 50).
namespace icd::codec {

class DegreeDistribution {
 public:
  /// `weights[d-1]` is the unnormalized probability of degree d; weights
  /// must be non-empty with a positive sum.
  explicit DegreeDistribution(std::vector<double> weights);

  /// Ideal soliton over {1..l}: p(1) = 1/l, p(d) = 1/(d(d-1)).
  static DegreeDistribution ideal_soliton(std::size_t l);

  /// Robust soliton (Luby): ideal soliton plus the spike/tail term with
  /// parameters c and delta. The standard choice for LT codes; for
  /// l ~ 10^4 its mean degree is ~11, matching the paper's Section 6.1
  /// ("average degree of 11 for the encoded symbols").
  static DegreeDistribution robust_soliton(std::size_t l, double c = 0.03,
                                           double delta = 0.5);

  /// The distribution truncated to degrees <= cap and renormalized. Used
  /// for recoding, which imposes "a fixed degree limit primarily to keep
  /// the listing of identifiers short" (cap 50 in the paper's experiments).
  DegreeDistribution truncated(std::size_t cap) const;

  /// All mass on a single degree; used in tests and ablations.
  static DegreeDistribution constant(std::size_t degree);

  /// Samples a degree in {1..max_degree()}.
  std::size_t sample(util::Xoshiro256& rng) const;

  /// Probability of degree d (0 outside the support).
  double pmf(std::size_t d) const;

  double mean() const;
  std::size_t max_degree() const { return pmf_.size(); }

 private:
  std::vector<double> pmf_;  // pmf_[d-1] = P(degree = d)
  std::vector<double> cdf_;
};

}  // namespace icd::codec

#include "codec/decoder.hpp"

#include <stdexcept>

#include "util/random.hpp"

namespace icd::codec {

Decoder::Decoder(CodeParameters params, DegreeDistribution dist)
    : params_(params), dist_(std::move(dist)) {
  if (params_.block_count == 0) {
    throw std::invalid_argument("Decoder: block_count must be > 0");
  }
}

bool Decoder::add_symbol(const EncodedSymbol& symbol) {
  return add_symbol(symbol.id, symbol.payload);
}

bool Decoder::add_symbol(std::uint64_t id,
                         std::span<const std::uint8_t> payload) {
  ++received_;
  symbol_neighbors_into(neighbor_scratch_, pick_scratch_, params_, dist_, id);
  return peeler_.add_equation(
      std::span<const std::uint32_t>(neighbor_scratch_), payload);
}

std::vector<std::vector<std::uint8_t>> Decoder::blocks() const {
  if (!complete()) {
    throw std::logic_error("Decoder::blocks: decoding incomplete");
  }
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(params_.block_count);
  for (std::uint32_t i = 0; i < params_.block_count; ++i) {
    out.push_back(peeler_.value(i));
  }
  return out;
}

double measure_decode_overhead(std::uint32_t block_count,
                               std::size_t block_size,
                               const DegreeDistribution& dist,
                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(block_count * block_size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());

  const BlockSource source(content, block_size);
  Encoder encoder(source, dist, seed);
  Decoder decoder(encoder.parameters(), dist);
  // Safety valve far beyond any sane overhead; prevents infinite loops if a
  // distribution is degenerate (e.g. all degree 2 can never finish).
  const std::size_t max_symbols = 40ULL * block_count + 1000;
  while (!decoder.complete() && decoder.received_count() < max_symbols) {
    decoder.add_symbol(encoder.next());
  }
  if (!decoder.complete()) {
    throw std::runtime_error(
        "measure_decode_overhead: decoding did not converge");
  }
  return static_cast<double>(decoder.received_count()) /
         static_cast<double>(block_count);
}

}  // namespace icd::codec

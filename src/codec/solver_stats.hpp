#pragma once

#include <cstdint>

/// Operation counters for the decoding solvers (peeling substitution +
/// GF(2) inactivation), aggregated per decoder and surfaced through
/// core::SessionResult so the delivery engines and the BENCH_codec solve
/// lanes can report solver work without instrumenting hot loops twice.
namespace icd::codec {

struct DecoderStats {
  /// add_equation calls (one per received symbol reaching the solver).
  std::uint64_t equations_added = 0;
  /// (key, equation) incidences processed by the substitution rule — the
  /// unit the flat-arena peeler makes O(1); the substitution-throughput
  /// bench lane divides these by wall time.
  std::uint64_t substitutions = 0;
  /// Keys recovered (seeded mark_known calls included).
  std::uint64_t recovered = 0;
  /// Equations that arrived fully redundant.
  std::uint64_t redundant = 0;
  /// Inactivation only: residual rows folded into the incremental
  /// elimination state (each row is folded exactly once).
  std::uint64_t rows_folded = 0;
  /// Inactivation only: row-XOR reductions performed while maintaining
  /// the reduced elimination state.
  std::uint64_t row_reductions = 0;
  /// Inactivation only: try_solve invocations.
  std::uint64_t solve_calls = 0;

  DecoderStats& operator+=(const DecoderStats& other) {
    equations_added += other.equations_added;
    substitutions += other.substitutions;
    recovered += other.recovered;
    redundant += other.redundant;
    rows_folded += other.rows_folded;
    row_reductions += other.row_reductions;
    solve_calls += other.solve_calls;
    return *this;
  }

  friend DecoderStats operator+(DecoderStats lhs, const DecoderStats& rhs) {
    lhs += rhs;
    return lhs;
  }

  bool operator==(const DecoderStats&) const = default;
};

}  // namespace icd::codec

#pragma once

#include <cstdint>
#include <vector>

#include "codec/block_source.hpp"
#include "codec/degree.hpp"
#include "codec/symbol.hpp"

/// Memoryless digital-fountain encoder (Sections 2.3, 5.4.1).
///
/// The neighbor set of every symbol is derived deterministically from
/// (symbol id, session seed), so a symbol is fully described on the wire by
/// its 64-bit id — "senders with a copy of a file may continuously produce a
/// streamed encoding of its content", and fountains seeded differently are
/// uncorrelated ("Additivity").
namespace icd::codec {

/// Code geometry shared by an encoder and its decoders.
struct CodeParameters {
  std::uint32_t block_count = 0;
  std::uint64_t session_seed = 0;

  bool operator==(const CodeParameters&) const = default;
};

/// Derives the neighbor set (sorted, distinct source-block indices) of
/// `symbol_id` under `params` and `dist`. Pure function of its arguments;
/// encoder and decoder both call it, which is what keeps symbol headers to
/// one id.
std::vector<std::uint32_t> symbol_neighbors(const CodeParameters& params,
                                            const DegreeDistribution& dist,
                                            std::uint64_t symbol_id);

/// Allocation-free variant for hot decode/encode loops: writes the neighbor
/// set into `out` (cleared first), reusing both vectors' capacity. Same
/// result as symbol_neighbors for the same arguments.
void symbol_neighbors_into(std::vector<std::uint32_t>& out,
                           std::vector<std::uint64_t>& pick_scratch,
                           const CodeParameters& params,
                           const DegreeDistribution& dist,
                           std::uint64_t symbol_id);

class Encoder {
 public:
  /// The encoder keeps a reference to `source`; the caller must keep it
  /// alive. `dist` is copied. `session_seed` defines the code (all encoders
  /// and decoders of one session must agree); `stream_seed` only offsets
  /// where next() starts in id space, so encoders with distinct stream
  /// seeds emit disjoint (uncorrelated) symbol streams of the same code.
  Encoder(const BlockSource& source, DegreeDistribution dist,
          std::uint64_t session_seed, std::uint64_t stream_seed = 0);

  const CodeParameters& parameters() const { return params_; }
  const DegreeDistribution& distribution() const { return dist_; }

  /// Produces the encoded symbol with the given id (XOR of its neighbor
  /// blocks).
  EncodedSymbol encode(std::uint64_t symbol_id) const;

  /// In-place variant: reuses `out`'s payload capacity and the encoder's
  /// neighbor scratch, so a warm fountain stream allocates nothing.
  void encode_into(EncodedSymbol& out, std::uint64_t symbol_id);

  /// Produces the next symbol of the fountain stream: ids are consumed
  /// sequentially from a random 64-bit starting point, so streams from
  /// different seeds do not collide.
  EncodedSymbol next();

  /// Draws the next stream id WITHOUT encoding it. next() ≡
  /// encode(take_next_id()); splitting the draw lets a coordinator reserve
  /// ids in deterministic order while shard workers run the (pure, const)
  /// encode() for those ids in parallel.
  std::uint64_t take_next_id() { return next_id_++; }

  std::vector<std::uint32_t> neighbors(std::uint64_t symbol_id) const {
    return symbol_neighbors(params_, dist_, symbol_id);
  }

 private:
  const BlockSource& source_;
  DegreeDistribution dist_;
  CodeParameters params_;
  std::uint64_t next_id_;
  // encode_into scratch (neighbor derivation).
  std::vector<std::uint32_t> neighbor_scratch_;
  std::vector<std::uint64_t> pick_scratch_;
};

}  // namespace icd::codec

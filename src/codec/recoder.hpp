#pragma once

#include <cstdint>
#include <vector>

#include "codec/degree.hpp"
#include "codec/peeling.hpp"
#include "codec/symbol.hpp"

/// Recoded content (Section 5.4.2): a partial sender — one that cannot yet
/// decode the file — blends the encoded symbols it *does* hold into recoded
/// symbols, personalizing the mix to what it knows about the receiver.
namespace icd::codec {

/// The paper's experimental degree cap for recoding ("a degree limit of
/// 50"), imposed "primarily to keep the listing of identifiers short".
inline constexpr std::size_t kDefaultRecodeDegreeLimit = 50;

/// The degree that maximizes the probability a recoded symbol is
/// *immediately* useful, given the sender holds n symbols of which the
/// receiver already has a fraction c: the degree at which one constituent
/// is expected to be unknown to the receiver, d ~= 1 + c/(1-c) = 1/(1-c).
///
/// Note on fidelity: the paper prints d = ceil((n(1-c)+1)/(nc)), which
/// *decreases* in c; but its own parenthetical ("as recoded symbols are
/// received, correlation naturally increases and the target degree
/// increases accordingly") and the Recode/MW rule (scale degree by
/// 1/(1-c)) both require d to *increase* with c. We follow the intent:
/// d = ceil((n c + 1)/(n (1 - c))), the printed formula with the roles of
/// c and 1-c restored. See DESIGN.md.
std::size_t optimal_recode_degree(std::size_t n, double c,
                                  std::size_t cap = kDefaultRecodeDegreeLimit);

/// Draws a recoding degree: a base degree from `dist` (already truncated to
/// the cap), floored at the locally-optimal degree, as in the paper ("we
/// use this value of d as a lower limit on the actual degrees generated,
/// and generate degrees between this value and the maximum allowable
/// degree").
std::size_t draw_recode_degree(const DegreeDistribution& dist, std::size_t n,
                               double c, util::Xoshiro256& rng,
                               std::size_t cap = kDefaultRecodeDegreeLimit);

/// The Recode/MW degree rule of Section 6.2: "If the regular recoding
/// algorithm randomly generates a degree d symbol, generate a recoded
/// symbol of degree floor(d / (1-c)), subject to the maximum degree."
std::size_t minwise_recode_degree(std::size_t base_degree, double c,
                                  std::size_t cap = kDefaultRecodeDegreeLimit);

/// Generates recoded symbols over a domain of held encoded symbols.
///
/// The domain is the knob the strategies of Section 6.2 turn: plain Recode
/// uses the sender's whole working set; Recode/BF restricts it to the
/// symbols that miss the receiver's Bloom filter.
class Recoder {
 public:
  /// `domain` is copied; payloads may be empty for count-only simulation.
  explicit Recoder(std::vector<EncodedSymbol> domain);

  std::size_t domain_size() const { return domain_.size(); }

  /// XOR of `degree` distinct symbols drawn uniformly from the domain
  /// (degree is clamped to the domain size). Domain must be non-empty.
  RecodedSymbol generate(std::size_t degree, util::Xoshiro256& rng) const;

 private:
  std::vector<EncodedSymbol> domain_;
};

/// Receiver side: resolves incoming recoded symbols against the set of
/// encoded symbols already held, recovering fresh encoded symbols by the
/// substitution rule ("A peer that receives z1, z2 and z3 can immediately
/// recover y13. Then by substituting y13 into z3, the peer can recover
/// y5 ...").
class RecodeDecoder {
 public:
  RecodeDecoder() = default;

  /// Seeds the solver with an encoded symbol the receiver already holds.
  /// Returns false if the id was already present.
  bool add_held_symbol(const EncodedSymbol& symbol);

  /// View variant for payloads borrowed from a transport frame: the
  /// payload is copied exactly once, into the solver's storage.
  bool add_held_symbol(const EncodedSymbolView& symbol);

  /// Feeds one recoded symbol; returns true if it immediately recovered at
  /// least one new encoded symbol.
  bool add_recoded(const RecodedSymbol& symbol);

  /// View variant; constituents and payload may borrow a transport frame.
  bool add_recoded(const RecodedSymbolView& symbol);

  /// Encoded symbols recovered (or held) so far.
  std::size_t symbol_count() const { return peeler_.known_count(); }
  bool has_symbol(std::uint64_t id) const { return peeler_.is_known(id); }

  /// Payload of a held/recovered symbol; throws if absent.
  const std::vector<std::uint8_t>& payload(std::uint64_t id) const {
    return peeler_.value(id);
  }

  /// Recoded symbols buffered with >= 2 unknown constituents.
  std::size_t buffered_count() const { return peeler_.buffered_count(); }
  /// Recoded symbols that arrived fully redundant.
  std::size_t redundant_count() const { return peeler_.redundant_count(); }

  /// All ids ever recovered or held, in acquisition order; use an offset to
  /// consume increments.
  const std::vector<std::uint64_t>& acquisition_log() const {
    return peeler_.recovery_log();
  }

  /// Solver op counters (equations, substitution incidences, recoveries).
  const DecoderStats& stats() const { return peeler_.stats(); }

  /// Heap bytes pinned (held payloads + buffered recode equations).
  std::size_t memory_bytes() const { return peeler_.memory_bytes(); }

  /// Releases recode-solver storage (buffered equations with unresolved
  /// constituents) once no further symbols will arrive. Held/recovered
  /// payloads — payload() serving — survive. Idempotent.
  void release_solver_state() { peeler_.release_solver_state(); }

 private:
  PeelingDecoder<std::uint64_t> peeler_;
};

}  // namespace icd::codec

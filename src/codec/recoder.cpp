#include "codec/recoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/random.hpp"

namespace icd::codec {

std::size_t optimal_recode_degree(std::size_t n, double c, std::size_t cap) {
  if (n == 0) return 1;
  const double cc = std::clamp(c, 0.0, 1.0);
  const double dn = static_cast<double>(n);
  const double denom = dn * (1.0 - cc);
  if (denom < 1.0) return cap;  // c ~ 1: everything shared; max blending
  const double d = std::ceil((dn * cc + 1.0) / denom);
  return std::clamp<std::size_t>(static_cast<std::size_t>(d), 1, cap);
}

std::size_t draw_recode_degree(const DegreeDistribution& dist, std::size_t n,
                               double c, util::Xoshiro256& rng,
                               std::size_t cap) {
  const std::size_t lower = optimal_recode_degree(n, c, cap);
  const std::size_t base = dist.sample(rng);
  return std::clamp(std::max(base, lower), std::size_t{1}, cap);
}

std::size_t minwise_recode_degree(std::size_t base_degree, double c,
                                  std::size_t cap) {
  const double cc = std::clamp(c, 0.0, 1.0);
  if (cc >= 1.0) return cap;
  const double scaled = std::floor(static_cast<double>(base_degree) /
                                   (1.0 - cc));
  return std::clamp<std::size_t>(
      static_cast<std::size_t>(std::max(1.0, scaled)), 1, cap);
}

Recoder::Recoder(std::vector<EncodedSymbol> domain)
    : domain_(std::move(domain)) {}

RecodedSymbol Recoder::generate(std::size_t degree,
                                util::Xoshiro256& rng) const {
  if (domain_.empty()) {
    throw std::logic_error("Recoder::generate: empty domain");
  }
  const std::size_t d = std::clamp<std::size_t>(degree, 1, domain_.size());
  const auto picks =
      util::sample_without_replacement(domain_.size(), d, rng);
  RecodedSymbol symbol;
  symbol.constituents.reserve(d);
  for (const std::uint64_t p : picks) {
    const EncodedSymbol& s = domain_[static_cast<std::size_t>(p)];
    symbol.constituents.push_back(s.id);
    xor_into(symbol.payload, s.payload);
  }
  std::sort(symbol.constituents.begin(), symbol.constituents.end());
  return symbol;
}

bool RecodeDecoder::add_held_symbol(const EncodedSymbol& symbol) {
  return peeler_.mark_known(symbol.id, symbol.payload);
}

bool RecodeDecoder::add_held_symbol(const EncodedSymbolView& symbol) {
  return peeler_.mark_known(symbol.id, symbol.payload);
}

bool RecodeDecoder::add_recoded(const RecodedSymbol& symbol) {
  return add_recoded(RecodedSymbolView(symbol));
}

bool RecodeDecoder::add_recoded(const RecodedSymbolView& symbol) {
  return peeler_.add_equation(symbol.constituents, symbol.payload);
}

}  // namespace icd::codec

#pragma once

#include <cstdint>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/peeling.hpp"
#include "codec/solver_stats.hpp"
#include "codec/symbol.hpp"

/// Inactivation decoding: the substitution rule backed by Gaussian
/// elimination over GF(2) on the stalled residual system.
///
/// Pure peeling needs a few percent extra symbols to finish (Section 6.1's
/// decoding overhead); the paper notes that "using more sophisticated
/// techniques for generating distributions ... will slightly improve all of
/// our results". The orthogonal classical improvement implemented here is
/// to stop waiting for fresh symbols once the received set is information-
/// theoretically sufficient, and solve the remaining unknowns directly.
///
/// The elimination state is *incremental* (see DESIGN.md "Solver
/// internals"): residual rows are maintained in reduced row-echelon form
/// across try_solve() calls instead of being rebuilt from scratch. Each
/// buffered peeler equation is folded exactly once (one reduction pass
/// against the current pivot set), peeling recoveries between calls are
/// swept out of the stored rows by consuming the peeler's recovery log, and
/// a rank-gap early-exit makes the call-per-arrival pattern of
/// measure_inactivation_overhead O(u^3) total rather than O(n·u^3). The
/// residual system reads the peeler's own CSR equation plane — no duplicate
/// equation/payload copies, and add_symbol copies the payload exactly once.
namespace icd::codec {

class InactivationDecoder {
 public:
  InactivationDecoder(CodeParameters params, DegreeDistribution dist);

  /// Feeds one symbol through the peeling front end. Returns true if it
  /// recovered at least one block immediately. The payload is copied
  /// exactly once, into the peeler's pooled storage.
  bool add_symbol(const EncodedSymbol& symbol);

  /// Attempts to finish decoding by Gaussian elimination over the residual
  /// unknowns. Cheap to call repeatedly: the elimination state persists,
  /// so a call only pays for rows that arrived (or keys that peeled) since
  /// the previous call, and exits immediately while the received-equation
  /// count cannot cover the unknowns. Returns complete().
  bool try_solve();

  std::size_t recovered_count() const { return peeler_.known_count(); }
  std::size_t received_count() const { return received_count_; }
  bool complete() const {
    return recovered_count() == params_.block_count;
  }

  /// Recovered source blocks in index order; requires complete().
  std::vector<std::vector<std::uint8_t>> blocks() const;

  const CodeParameters& parameters() const { return params_; }

  /// Peeling counters plus elimination counters (rows folded, row
  /// reductions, try_solve calls).
  DecoderStats stats() const;

  /// Heap bytes pinned: the peeler plus the persistent elimination state.
  std::size_t memory_bytes() const;

 private:
  static constexpr std::uint32_t kNoRow = 0xffffffffu;

  /// One pivot row of the persistent RREF state: a bit per source block
  /// (known columns are swept to zero) and the matching payload. `pivot`
  /// is the column this row owns; a pivot column is set in no other row.
  struct Row {
    std::vector<std::uint64_t> bits;
    std::vector<std::uint8_t> payload;
    std::uint32_t pivot = 0;
  };

  bool bit(const Row& row, std::uint32_t col) const {
    return ((row.bits[col >> 6] >> (col & 63)) & 1) != 0;
  }
  void flip_bit(Row& row, std::uint32_t col) const {
    row.bits[col >> 6] ^= std::uint64_t{1} << (col & 63);
  }
  std::uint32_t lowest_set_bit(const Row& row) const;
  void xor_row(Row& dst, const Row& src);
  void remove_row(std::uint32_t index);

  /// Consumes peeler recoveries since the last call, clearing the now-known
  /// columns from the stored rows (re-pivoting or dropping rows as needed).
  void sweep_recovered();
  /// Folds peeler equations buffered since the last call into the RREF
  /// state: one reduction pass against the current pivots each.
  void fold_new_equations();
  /// rank == unknowns: every row is a singleton; mark all values known.
  void finish();

  CodeParameters params_;
  DegreeDistribution dist_;
  PeelingDecoder<std::uint32_t> peeler_;
  std::size_t received_count_ = 0;

  // Persistent elimination state.
  std::size_t words_ = 0;  // ceil(block_count / 64)
  std::vector<Row> rows_;
  std::vector<std::uint32_t> pivot_row_of_;  // block -> row index or kNoRow
  std::size_t eq_cursor_ = 0;   // next peeler equation id to fold
  std::size_t log_cursor_ = 0;  // next recovery-log entry to sweep

  // add_symbol scratch (neighbor derivation).
  std::vector<std::uint32_t> neighbor_scratch_;
  std::vector<std::uint64_t> pick_scratch_;

  std::uint64_t rows_folded_ = 0;
  std::uint64_t row_reductions_ = 0;
  std::uint64_t solve_calls_ = 0;
};

/// Measures decoding overhead with inactivation: symbols consumed per
/// source block when try_solve() runs after every arrival beyond l.
double measure_inactivation_overhead(std::uint32_t block_count,
                                     std::size_t block_size,
                                     const DegreeDistribution& dist,
                                     std::uint64_t seed);

}  // namespace icd::codec

#pragma once

#include <cstdint>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/peeling.hpp"
#include "codec/symbol.hpp"

/// Inactivation decoding: the substitution rule backed by Gaussian
/// elimination over GF(2) on the stalled residual system.
///
/// Pure peeling needs a few percent extra symbols to finish (Section 6.1's
/// decoding overhead); the paper notes that "using more sophisticated
/// techniques for generating distributions ... will slightly improve all of
/// our results". The orthogonal classical improvement implemented here is
/// to stop waiting for fresh symbols once the received set is information-
/// theoretically sufficient, and solve the remaining unknowns directly —
/// trading O(u^3 / 64) bit-matrix work (u = residual unknowns, typically a
/// few percent of l) for lower overhead. bench_ablations compares the two.
namespace icd::codec {

class InactivationDecoder {
 public:
  InactivationDecoder(CodeParameters params, DegreeDistribution dist);

  /// Feeds one symbol through the peeling front end. Returns true if it
  /// recovered at least one block immediately.
  bool add_symbol(const EncodedSymbol& symbol);

  /// Attempts to finish decoding by Gaussian elimination over the residual
  /// unknowns. Cheap to call repeatedly: it exits immediately unless the
  /// received-equation count can possibly cover the unknowns. Returns
  /// complete().
  bool try_solve();

  std::size_t recovered_count() const { return peeler_.known_count(); }
  std::size_t received_count() const { return received_count_; }
  bool complete() const {
    return recovered_count() == params_.block_count;
  }

  /// Recovered source blocks in index order; requires complete().
  std::vector<std::vector<std::uint8_t>> blocks() const;

  const CodeParameters& parameters() const { return params_; }

 private:
  CodeParameters params_;
  DegreeDistribution dist_;
  PeelingDecoder<std::uint32_t> peeler_;
  /// Raw equations kept for the elimination phase.
  std::vector<std::vector<std::uint32_t>> equations_;
  std::vector<std::vector<std::uint8_t>> payloads_;
  std::size_t received_count_ = 0;
};

/// Measures decoding overhead with inactivation: symbols consumed per
/// source block when try_solve() runs after every arrival beyond l.
double measure_inactivation_overhead(std::uint32_t block_count,
                                     std::size_t block_size,
                                     const DegreeDistribution& dist,
                                     std::uint64_t seed);

}  // namespace icd::codec

#include "codec/symbol.hpp"

#include <stdexcept>

namespace icd::codec {

void xor_into(std::vector<std::uint8_t>& dst,
              std::span<const std::uint8_t> src) {
  if (src.empty()) return;
  if (dst.empty()) {
    dst.assign(src.begin(), src.end());
    return;
  }
  if (dst.size() != src.size()) {
    throw std::invalid_argument("xor_into: payload size mismatch");
  }
  xor_bytes(dst.data(), src.data(), dst.size());
}

std::size_t wire_bytes(const EncodedSymbol& symbol) {
  return 8 + symbol.payload.size();
}

std::size_t wire_bytes(const RecodedSymbol& symbol) {
  return 2 + 8 * symbol.constituents.size() + symbol.payload.size();
}

}  // namespace icd::codec

#include "codec/inactivation.hpp"

#include <stdexcept>
#include <unordered_map>

#include "util/random.hpp"

namespace icd::codec {

InactivationDecoder::InactivationDecoder(CodeParameters params,
                                         DegreeDistribution dist)
    : params_(params), dist_(std::move(dist)) {
  if (params_.block_count == 0) {
    throw std::invalid_argument("InactivationDecoder: block_count must be > 0");
  }
}

bool InactivationDecoder::add_symbol(const EncodedSymbol& symbol) {
  ++received_count_;
  auto keys = symbol_neighbors(params_, dist_, symbol.id);
  equations_.push_back(keys);
  payloads_.push_back(symbol.payload);
  return peeler_.add_equation(std::move(keys), symbol.payload);
}

bool InactivationDecoder::try_solve() {
  if (complete()) return true;
  if (received_count_ < params_.block_count) return false;

  // Residual unknowns -> dense column indices.
  std::unordered_map<std::uint32_t, std::size_t> column_of;
  std::vector<std::uint32_t> unknown_ids;
  for (std::uint32_t b = 0; b < params_.block_count; ++b) {
    if (!peeler_.is_known(b)) {
      column_of.emplace(b, unknown_ids.size());
      unknown_ids.push_back(b);
    }
  }
  const std::size_t u = unknown_ids.size();
  const std::size_t words = (u + 63) / 64;

  // Reduce every stored equation by the known values; keep the nonzero
  // residual rows as (bitmask over unknowns, payload).
  struct Row {
    std::vector<std::uint64_t> bits;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Row> rows;
  rows.reserve(equations_.size());
  for (std::size_t e = 0; e < equations_.size(); ++e) {
    Row row{std::vector<std::uint64_t>(words, 0), payloads_[e]};
    bool nonzero = false;
    for (const std::uint32_t b : equations_[e]) {
      const auto it = column_of.find(b);
      if (it == column_of.end()) {
        xor_into(row.payload, peeler_.value(b));
      } else {
        row.bits[it->second >> 6] ^= std::uint64_t{1} << (it->second & 63);
        nonzero = true;
      }
    }
    if (nonzero) rows.push_back(std::move(row));
  }
  if (rows.size() < u) return false;  // rank can't reach u yet

  // Forward elimination with partial pivoting by column.
  std::vector<std::size_t> pivot_row_of(u, SIZE_MAX);
  std::size_t next_row = 0;
  for (std::size_t col = 0; col < u && next_row < rows.size(); ++col) {
    const std::size_t word = col >> 6;
    const std::uint64_t mask = std::uint64_t{1} << (col & 63);
    std::size_t pivot = next_row;
    while (pivot < rows.size() && !(rows[pivot].bits[word] & mask)) ++pivot;
    if (pivot == rows.size()) continue;  // rank-deficient in this column
    std::swap(rows[pivot], rows[next_row]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != next_row && (rows[r].bits[word] & mask)) {
        for (std::size_t w = 0; w < words; ++w) {
          rows[r].bits[w] ^= rows[next_row].bits[w];
        }
        xor_into(rows[r].payload, rows[next_row].payload);
      }
    }
    pivot_row_of[col] = next_row;
    ++next_row;
  }
  for (std::size_t col = 0; col < u; ++col) {
    if (pivot_row_of[col] == SIZE_MAX) return false;  // still underdetermined
  }

  // Full elimination above leaves each pivot row with a single set bit:
  // its payload is the unknown's value.
  for (std::size_t col = 0; col < u; ++col) {
    peeler_.mark_known(unknown_ids[col],
                       std::move(rows[pivot_row_of[col]].payload));
  }
  return complete();
}

std::vector<std::vector<std::uint8_t>> InactivationDecoder::blocks() const {
  if (!complete()) {
    throw std::logic_error("InactivationDecoder::blocks: incomplete");
  }
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(params_.block_count);
  for (std::uint32_t b = 0; b < params_.block_count; ++b) {
    out.push_back(peeler_.value(b));
  }
  return out;
}

double measure_inactivation_overhead(std::uint32_t block_count,
                                     std::size_t block_size,
                                     const DegreeDistribution& dist,
                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(block_count * block_size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  const BlockSource source(content, block_size);
  Encoder encoder(source, dist, seed);
  InactivationDecoder decoder(encoder.parameters(), dist);
  const std::size_t max_symbols = 40ULL * block_count + 1000;
  while (!decoder.complete() && decoder.received_count() < max_symbols) {
    decoder.add_symbol(encoder.next());
    if (decoder.received_count() >= block_count) decoder.try_solve();
  }
  if (!decoder.complete()) {
    throw std::runtime_error(
        "measure_inactivation_overhead: decoding did not converge");
  }
  return static_cast<double>(decoder.received_count()) /
         static_cast<double>(block_count);
}

}  // namespace icd::codec

#include "codec/inactivation.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

#include "util/random.hpp"

namespace icd::codec {

InactivationDecoder::InactivationDecoder(CodeParameters params,
                                         DegreeDistribution dist)
    : params_(params), dist_(std::move(dist)) {
  if (params_.block_count == 0) {
    throw std::invalid_argument("InactivationDecoder: block_count must be > 0");
  }
  words_ = (std::size_t{params_.block_count} + 63) / 64;
  pivot_row_of_.assign(params_.block_count, kNoRow);
}

bool InactivationDecoder::add_symbol(const EncodedSymbol& symbol) {
  ++received_count_;
  symbol_neighbors_into(neighbor_scratch_, pick_scratch_, params_, dist_,
                        symbol.id);
  return peeler_.add_equation(
      std::span<const std::uint32_t>(neighbor_scratch_),
      std::span<const std::uint8_t>(symbol.payload));
}

std::uint32_t InactivationDecoder::lowest_set_bit(const Row& row) const {
  for (std::size_t w = 0; w < words_; ++w) {
    if (row.bits[w] != 0) {
      return static_cast<std::uint32_t>(w * 64 + std::countr_zero(row.bits[w]));
    }
  }
  return kNoRow;
}

void InactivationDecoder::xor_row(Row& dst, const Row& src) {
  ++row_reductions_;
  for (std::size_t w = 0; w < words_; ++w) dst.bits[w] ^= src.bits[w];
  xor_into(dst.payload, src.payload);
}

void InactivationDecoder::remove_row(std::uint32_t index) {
  const std::uint32_t last = static_cast<std::uint32_t>(rows_.size() - 1);
  if (index != last) {
    rows_[index] = std::move(rows_[last]);
    pivot_row_of_[rows_[index].pivot] = index;
  }
  rows_.pop_back();
}

void InactivationDecoder::sweep_recovered() {
  const auto& log = peeler_.recovery_log();
  for (; log_cursor_ < log.size(); ++log_cursor_) {
    if (rows_.empty()) continue;
    const std::uint32_t col = log[log_cursor_];
    const std::uint32_t owner = pivot_row_of_[col];
    if (owner != kNoRow) {
      // The column is a pivot: by the RREF invariant it is set only in its
      // own row. Clear it there, then re-pivot the row on its lowest
      // remaining bit (all non-pivot columns, so no other row needs
      // reducing first) or drop the row if it became zero.
      Row& row = rows_[owner];
      flip_bit(row, col);
      xor_into(row.payload, peeler_.value(col));
      pivot_row_of_[col] = kNoRow;
      const std::uint32_t fresh = lowest_set_bit(row);
      if (fresh == kNoRow) {
        remove_row(owner);
        continue;
      }
      row.pivot = fresh;
      pivot_row_of_[fresh] = owner;
      for (std::uint32_t r = 0; r < rows_.size(); ++r) {
        if (r != owner && bit(rows_[r], fresh)) xor_row(rows_[r], row);
      }
    } else {
      // Non-pivot column: substitute the value into every row naming it.
      for (Row& row : rows_) {
        if (bit(row, col)) {
          flip_bit(row, col);
          xor_into(row.payload, peeler_.value(col));
        }
      }
    }
  }
}

void InactivationDecoder::fold_new_equations() {
  const std::size_t eq_count = peeler_.equation_count();
  for (; eq_cursor_ < eq_count; ++eq_cursor_) {
    // Equations retired by peeling would reduce to zero rows — skip them.
    if (!peeler_.equation_live(eq_cursor_)) continue;
    Row row;
    row.bits.assign(words_, 0);
    for (const std::uint32_t key : peeler_.equation_keys(eq_cursor_)) {
      if (!peeler_.is_known(key)) flip_bit(row, key);
    }
    row.payload = peeler_.equation_payload(eq_cursor_);
    ++rows_folded_;

    // One reduction pass against the current pivot set. A pivot row holds
    // no pivot column but its own, so each XOR only introduces non-pivot
    // bits: a single ascending scan of a per-word snapshot suffices —
    // snapshot bits owning a pivot stay set until processed, and any bits
    // that toggle under the XORs are non-pivot and need no reduction.
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t snapshot = row.bits[w];
      while (snapshot != 0) {
        const std::uint32_t col =
            static_cast<std::uint32_t>(w * 64 + std::countr_zero(snapshot));
        snapshot &= snapshot - 1;
        const std::uint32_t owner = pivot_row_of_[col];
        if (owner != kNoRow) xor_row(row, rows_[owner]);
      }
    }

    const std::uint32_t fresh = lowest_set_bit(row);
    if (fresh == kNoRow) continue;  // linearly dependent on stored rows
    for (std::uint32_t r = 0; r < rows_.size(); ++r) {
      if (bit(rows_[r], fresh)) xor_row(rows_[r], row);
    }
    row.pivot = fresh;
    pivot_row_of_[fresh] = static_cast<std::uint32_t>(rows_.size());
    rows_.push_back(std::move(row));
  }
}

void InactivationDecoder::finish() {
  // rank == unknowns: every unknown column owns a pivot, known columns are
  // swept to zero, so each row is a singleton and its payload is the
  // value. Mark in ascending block order (the reference's order); cascades
  // inside mark_known only pre-recover later blocks with the same unique
  // solution values, turning those calls into no-ops.
  for (std::uint32_t b = 0; b < params_.block_count; ++b) {
    const std::uint32_t owner = pivot_row_of_[b];
    if (owner == kNoRow) continue;
    peeler_.mark_known(b, std::move(rows_[owner].payload));
  }
  rows_.clear();
  rows_.shrink_to_fit();
  pivot_row_of_.assign(params_.block_count, kNoRow);
  log_cursor_ = peeler_.recovery_log().size();
  eq_cursor_ = peeler_.equation_count();
}

bool InactivationDecoder::try_solve() {
  if (complete()) return true;
  ++solve_calls_;
  // Rank gap: each recovery consumed at least one equation, so rank can
  // reach the unknown count only once received >= block_count.
  if (received_count_ < params_.block_count) return false;
  sweep_recovered();
  fold_new_equations();
  const std::size_t unknowns = params_.block_count - peeler_.known_count();
  if (rows_.size() < unknowns) return false;
  finish();
  return complete();
}

std::vector<std::vector<std::uint8_t>> InactivationDecoder::blocks() const {
  if (!complete()) {
    throw std::logic_error("InactivationDecoder::blocks: incomplete");
  }
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(params_.block_count);
  for (std::uint32_t b = 0; b < params_.block_count; ++b) {
    out.push_back(peeler_.value(b));
  }
  return out;
}

DecoderStats InactivationDecoder::stats() const {
  DecoderStats stats = peeler_.stats();
  stats.rows_folded = rows_folded_;
  stats.row_reductions = row_reductions_;
  stats.solve_calls = solve_calls_;
  return stats;
}

std::size_t InactivationDecoder::memory_bytes() const {
  std::size_t bytes = peeler_.memory_bytes();
  bytes += rows_.capacity() * sizeof(Row);
  for (const Row& row : rows_) {
    bytes += row.bits.capacity() * sizeof(std::uint64_t) +
             row.payload.capacity();
  }
  bytes += pivot_row_of_.capacity() * sizeof(std::uint32_t);
  bytes += neighbor_scratch_.capacity() * sizeof(std::uint32_t);
  bytes += pick_scratch_.capacity() * sizeof(std::uint64_t);
  return bytes;
}

double measure_inactivation_overhead(std::uint32_t block_count,
                                     std::size_t block_size,
                                     const DegreeDistribution& dist,
                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(block_count * block_size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  const BlockSource source(content, block_size);
  Encoder encoder(source, dist, seed);
  InactivationDecoder decoder(encoder.parameters(), dist);
  const std::size_t max_symbols = 40ULL * block_count + 1000;
  while (!decoder.complete() && decoder.received_count() < max_symbols) {
    decoder.add_symbol(encoder.next());
    if (decoder.received_count() >= block_count) decoder.try_solve();
  }
  if (!decoder.complete()) {
    throw std::runtime_error(
        "measure_inactivation_overhead: decoding did not converge");
  }
  return static_cast<double>(decoder.received_count()) /
         static_cast<double>(block_count);
}

}  // namespace icd::codec

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

/// Symbol types exchanged by peers.
///
/// An *encoded symbol* is the XOR of a subset of source blocks; the subset is
/// derived deterministically from the symbol id, so only the id travels in
/// the packet header. A *recoded symbol* (Section 5.4.2) is the XOR of a set
/// of encoded symbols held by a partial sender; it "must enumerate the
/// encoded symbols from which it was produced", so its header carries the
/// constituent id list.
namespace icd::codec {

struct EncodedSymbol {
  /// Identifies the symbol within a session; the encoder derives the degree
  /// and neighbor set from (id, session seed). 64 bits, matching the
  /// paper's "degree sequence representations of these symbols were 64
  /// bits".
  std::uint64_t id = 0;
  /// XOR of the neighbor source blocks. May be empty in count-only
  /// simulations where payloads are irrelevant.
  std::vector<std::uint8_t> payload;

  bool operator==(const EncodedSymbol&) const = default;
};

struct RecodedSymbol {
  /// Ids of the encoded symbols blended into this symbol.
  std::vector<std::uint64_t> constituents;
  /// XOR of the constituent payloads; may be empty in count-only
  /// simulations.
  std::vector<std::uint8_t> payload;

  std::size_t degree() const { return constituents.size(); }

  bool operator==(const RecodedSymbol&) const = default;
};

/// Non-owning views of the symbol types, for the zero-copy fast path: the
/// sender serializes straight out of its decoder's storage, and the
/// receiver's transport decodes frames in place and hands out views whose
/// spans borrow the frame buffer (valid only until the next receive).
struct EncodedSymbolView {
  std::uint64_t id = 0;
  std::span<const std::uint8_t> payload;

  EncodedSymbolView() = default;
  EncodedSymbolView(std::uint64_t id, std::span<const std::uint8_t> payload)
      : id(id), payload(payload) {}
  explicit EncodedSymbolView(const EncodedSymbol& symbol)
      : id(symbol.id), payload(symbol.payload) {}
};

struct RecodedSymbolView {
  std::span<const std::uint64_t> constituents;
  std::span<const std::uint8_t> payload;

  RecodedSymbolView() = default;
  RecodedSymbolView(std::span<const std::uint64_t> constituents,
                    std::span<const std::uint8_t> payload)
      : constituents(constituents), payload(payload) {}
  explicit RecodedSymbolView(const RecodedSymbol& symbol)
      : constituents(symbol.constituents), payload(symbol.payload) {}

  std::size_t degree() const { return constituents.size(); }
};

/// Word-wise XOR kernel: dst[i] ^= src[i] for `n` bytes, eight bytes per
/// lane (memcpy keeps it alignment- and aliasing-safe; compilers lower the
/// loop to full-width vector XORs). This is the one XOR inner loop shared
/// by the encoder, recoder, peeling decoders and inactivation solver.
inline void xor_bytes(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// XORs `src` into `dst`. Empty operands are treated as all-zero: XOR into
/// an empty destination copies, XOR of an empty source is a no-op. Sizes
/// must otherwise match.
void xor_into(std::vector<std::uint8_t>& dst,
              std::span<const std::uint8_t> src);
inline void xor_into(std::vector<std::uint8_t>& dst,
                     const std::vector<std::uint8_t>& src) {
  xor_into(dst, std::span<const std::uint8_t>(src));
}

/// Serialized wire sizes (header + payload), used by the simulator to charge
/// bandwidth.
std::size_t wire_bytes(const EncodedSymbol& symbol);
std::size_t wire_bytes(const RecodedSymbol& symbol);

}  // namespace icd::codec

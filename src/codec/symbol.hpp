#pragma once

#include <cstdint>
#include <vector>

/// Symbol types exchanged by peers.
///
/// An *encoded symbol* is the XOR of a subset of source blocks; the subset is
/// derived deterministically from the symbol id, so only the id travels in
/// the packet header. A *recoded symbol* (Section 5.4.2) is the XOR of a set
/// of encoded symbols held by a partial sender; it "must enumerate the
/// encoded symbols from which it was produced", so its header carries the
/// constituent id list.
namespace icd::codec {

struct EncodedSymbol {
  /// Identifies the symbol within a session; the encoder derives the degree
  /// and neighbor set from (id, session seed). 64 bits, matching the
  /// paper's "degree sequence representations of these symbols were 64
  /// bits".
  std::uint64_t id = 0;
  /// XOR of the neighbor source blocks. May be empty in count-only
  /// simulations where payloads are irrelevant.
  std::vector<std::uint8_t> payload;

  bool operator==(const EncodedSymbol&) const = default;
};

struct RecodedSymbol {
  /// Ids of the encoded symbols blended into this symbol.
  std::vector<std::uint64_t> constituents;
  /// XOR of the constituent payloads; may be empty in count-only
  /// simulations.
  std::vector<std::uint8_t> payload;

  std::size_t degree() const { return constituents.size(); }

  bool operator==(const RecodedSymbol&) const = default;
};

/// XORs `src` into `dst`. Empty operands are treated as all-zero: XOR into
/// an empty destination copies, XOR of an empty source is a no-op. Sizes
/// must otherwise match.
void xor_into(std::vector<std::uint8_t>& dst,
              const std::vector<std::uint8_t>& src);

/// Serialized wire sizes (header + payload), used by the simulator to charge
/// bandwidth.
std::size_t wire_bytes(const EncodedSymbol& symbol);
std::size_t wire_bytes(const RecodedSymbol& symbol);

}  // namespace icd::codec

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

/// Symbol types exchanged by peers.
///
/// An *encoded symbol* is the XOR of a subset of source blocks; the subset is
/// derived deterministically from the symbol id, so only the id travels in
/// the packet header. A *recoded symbol* (Section 5.4.2) is the XOR of a set
/// of encoded symbols held by a partial sender; it "must enumerate the
/// encoded symbols from which it was produced", so its header carries the
/// constituent id list.
namespace icd::codec {

struct EncodedSymbol {
  /// Identifies the symbol within a session; the encoder derives the degree
  /// and neighbor set from (id, session seed). 64 bits, matching the
  /// paper's "degree sequence representations of these symbols were 64
  /// bits".
  std::uint64_t id = 0;
  /// XOR of the neighbor source blocks. May be empty in count-only
  /// simulations where payloads are irrelevant.
  std::vector<std::uint8_t> payload;

  bool operator==(const EncodedSymbol&) const = default;
};

struct RecodedSymbol {
  /// Ids of the encoded symbols blended into this symbol.
  std::vector<std::uint64_t> constituents;
  /// XOR of the constituent payloads; may be empty in count-only
  /// simulations.
  std::vector<std::uint8_t> payload;

  std::size_t degree() const { return constituents.size(); }

  bool operator==(const RecodedSymbol&) const = default;
};

/// Non-owning views of the symbol types, for the zero-copy fast path: the
/// sender serializes straight out of its decoder's storage, and the
/// receiver's transport decodes frames in place and hands out views whose
/// spans borrow the frame buffer (valid only until the next receive).
struct EncodedSymbolView {
  std::uint64_t id = 0;
  std::span<const std::uint8_t> payload;

  EncodedSymbolView() = default;
  EncodedSymbolView(std::uint64_t id, std::span<const std::uint8_t> payload)
      : id(id), payload(payload) {}
  explicit EncodedSymbolView(const EncodedSymbol& symbol)
      : id(symbol.id), payload(symbol.payload) {}
};

struct RecodedSymbolView {
  std::span<const std::uint64_t> constituents;
  std::span<const std::uint8_t> payload;

  RecodedSymbolView() = default;
  RecodedSymbolView(std::span<const std::uint64_t> constituents,
                    std::span<const std::uint8_t> payload)
      : constituents(constituents), payload(payload) {}
  explicit RecodedSymbolView(const RecodedSymbol& symbol)
      : constituents(symbol.constituents), payload(symbol.payload) {}

  std::size_t degree() const { return constituents.size(); }
};

/// Wide XOR kernel: dst[i] ^= src[i] for `n` bytes. This is the one XOR
/// inner loop shared by the encoder, recoder, peeling decoders and
/// inactivation solver, so it is explicitly widened rather than left to
/// auto-vectorization: 32 bytes per iteration via AVX2 when the build
/// enables it, otherwise an unrolled 4x-uint64 block (memcpy keeps both
/// alignment- and aliasing-safe), then a word tail and a byte tail.
inline void xor_bytes(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 32 <= n; i += 32) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
#else
  for (; i + 32 <= n; i += 32) {
    std::uint64_t a0, a1, a2, a3, b0, b1, b2, b3;
    std::memcpy(&a0, dst + i, 8);
    std::memcpy(&a1, dst + i + 8, 8);
    std::memcpy(&a2, dst + i + 16, 8);
    std::memcpy(&a3, dst + i + 24, 8);
    std::memcpy(&b0, src + i, 8);
    std::memcpy(&b1, src + i + 8, 8);
    std::memcpy(&b2, src + i + 16, 8);
    std::memcpy(&b3, src + i + 24, 8);
    a0 ^= b0;
    a1 ^= b1;
    a2 ^= b2;
    a3 ^= b3;
    std::memcpy(dst + i, &a0, 8);
    std::memcpy(dst + i + 8, &a1, 8);
    std::memcpy(dst + i + 16, &a2, 8);
    std::memcpy(dst + i + 24, &a3, 8);
  }
#endif
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// XORs `src` into `dst`. Empty operands are treated as all-zero: XOR into
/// an empty destination copies, XOR of an empty source is a no-op. Sizes
/// must otherwise match.
void xor_into(std::vector<std::uint8_t>& dst,
              std::span<const std::uint8_t> src);
inline void xor_into(std::vector<std::uint8_t>& dst,
                     const std::vector<std::uint8_t>& src) {
  xor_into(dst, std::span<const std::uint8_t>(src));
}

/// Serialized wire sizes (header + payload), used by the simulator to charge
/// bandwidth.
std::size_t wire_bytes(const EncodedSymbol& symbol);
std::size_t wire_bytes(const RecodedSymbol& symbol);

}  // namespace icd::codec

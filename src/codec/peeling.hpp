#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "codec/symbol.hpp"

/// Generic peeling solver implementing the *substitution rule* of Luby et
/// al. [16], shared by the block-level decoder (equations over source block
/// indices) and the recode-level decoder of Section 5.4.2 (equations over
/// encoded symbol ids).
///
/// Each equation is an XOR constraint: payload = XOR of the variables named
/// in `keys`. Whenever an equation has exactly one unknown variable, that
/// variable is recovered and substituted into every other equation that
/// names it, which may cascade. Total work is proportional to the total
/// degree of all equations, as in the paper.
namespace icd::codec {

template <typename Key>
class PeelingDecoder {
 public:
  PeelingDecoder() = default;

  /// Declares `key` known with the given value. Typically used to seed the
  /// solver with already-held symbols before feeding recoded equations.
  /// Returns false (and changes nothing) if the key was already known.
  bool mark_known(const Key& key, std::vector<std::uint8_t> value) {
    if (known_.contains(key)) return false;
    recover(key, std::move(value));
    drain();
    return true;
  }

  /// Span variant: the value is copied exactly once, into the solver's own
  /// storage — the single copy the zero-copy receive path budgets for.
  bool mark_known(const Key& key, std::span<const std::uint8_t> value) {
    if (known_.contains(key)) return false;
    recover(key, std::vector<std::uint8_t>(value.begin(), value.end()));
    drain();
    return true;
  }

  /// Adds the constraint payload = XOR_{k in keys} value(k). Duplicate keys
  /// within one equation cancel (x ^ x = 0) and are removed up front.
  /// Returns true if the equation caused at least one new variable to be
  /// recovered (immediately useful), false if it was buffered or redundant.
  bool add_equation(std::vector<Key> keys, std::vector<std::uint8_t> payload);

  /// Span variant for frames decoded in place: keys and payload may borrow
  /// a transport buffer; the payload is copied exactly once, into the
  /// solver.
  bool add_equation(std::span<const Key> keys,
                    std::span<const std::uint8_t> payload) {
    return add_equation_impl(
        keys, std::vector<std::uint8_t>(payload.begin(), payload.end()));
  }

  bool is_known(const Key& key) const { return known_.contains(key); }

  /// Value of a recovered variable; throws if unknown.
  const std::vector<std::uint8_t>& value(const Key& key) const {
    const auto it = known_.find(key);
    if (it == known_.end()) {
      throw std::out_of_range("PeelingDecoder: key not recovered");
    }
    return it->second;
  }

  const std::unordered_map<Key, std::vector<std::uint8_t>>& known() const {
    return known_;
  }

  std::size_t known_count() const { return known_.size(); }

  /// Equations still waiting on 2+ unknowns.
  std::size_t buffered_count() const { return live_equations_; }

  /// Equations that arrived with all variables already known (fully
  /// redundant at arrival).
  std::size_t redundant_count() const { return redundant_; }

  /// Every recovered key in recovery order (seeded keys included). Callers
  /// track an offset into this log to observe incremental recoveries.
  const std::vector<Key>& recovery_log() const { return log_; }

  /// Heap bytes this decoder pins: recovered values, buffered equations
  /// (unknown lists + payloads), the waiting index, and the logs. Node
  /// and bucket overhead of the hash maps is approximated per entry.
  std::size_t memory_bytes() const {
    // unordered_map node ~= key + value + 2 pointers + hash slot.
    constexpr std::size_t kNodeOverhead = 4 * sizeof(void*);
    std::size_t bytes = 0;
    for (const auto& [key, value] : known_) {
      bytes += sizeof(Key) + value.capacity() + kNodeOverhead;
    }
    for (const Equation& eq : equations_) {
      bytes += sizeof(Equation) + eq.unknowns.capacity() * sizeof(Key) +
               eq.payload.capacity();
    }
    bytes += equations_.capacity() * sizeof(Equation);
    for (const auto& [key, ids] : waiting_) {
      bytes += sizeof(Key) + ids.capacity() * sizeof(std::size_t) +
               kNodeOverhead;
    }
    bytes += pending_.size() * sizeof(Key);
    bytes += log_.capacity() * sizeof(Key);
    return bytes;
  }

  /// Releases solver-only storage — buffered equations, the waiting
  /// index, the substitution queue — once no further equations will ever
  /// arrive (session completion). Recovered values (`known_`), the
  /// recovery log, and the redundancy counter survive: serving recoded
  /// symbols and content reassembly read them. Idempotent.
  void release_solver_state() {
    equations_.clear();
    equations_.shrink_to_fit();
    waiting_.clear();
    waiting_.rehash(0);
    pending_.clear();
    pending_.shrink_to_fit();
    live_equations_ = 0;
  }

 private:
  struct Equation {
    std::vector<Key> unknowns;
    std::vector<std::uint8_t> payload;
    bool retired = false;
  };

  void recover(const Key& key, std::vector<std::uint8_t> value) {
    known_.emplace(key, std::move(value));
    pending_.push_back(key);
    log_.push_back(key);
  }

  // Substitutes every newly recovered key into the equations that name it.
  void drain();

  bool add_equation_impl(std::span<const Key> keys,
                         std::vector<std::uint8_t> payload);

  std::unordered_map<Key, std::vector<std::uint8_t>> known_;
  std::vector<Equation> equations_;
  std::unordered_map<Key, std::vector<std::size_t>> waiting_;  // key -> eq ids
  std::deque<Key> pending_;
  std::vector<Key> log_;
  std::size_t live_equations_ = 0;
  std::size_t redundant_ = 0;
};

template <typename Key>
bool PeelingDecoder<Key>::add_equation(std::vector<Key> keys,
                                       std::vector<std::uint8_t> payload) {
  return add_equation_impl(keys, std::move(payload));
}

template <typename Key>
bool PeelingDecoder<Key>::add_equation_impl(std::span<const Key> keys,
                                            std::vector<std::uint8_t> payload) {
  // Cancel duplicate keys (x XOR x = 0).
  // Both producers (symbol_neighbors, recoded constituents) emit sorted
  // distinct keys; detect that and skip the dedup map on the hot path.
  bool sorted_distinct = true;
  for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
    if (!(keys[i] < keys[i + 1])) {
      sorted_distinct = false;
      break;
    }
  }

  // Substitute already-known variables (after duplicate cancellation).
  std::vector<Key> unknowns;
  unknowns.reserve(keys.size());
  const auto substitute = [&](const Key& k) {
    const auto it = known_.find(k);
    if (it == known_.end()) {
      unknowns.push_back(k);
    } else {
      xor_into(payload, it->second);
    }
  };
  if (sorted_distinct) {
    for (const Key& k : keys) substitute(k);
  } else {
    std::unordered_map<Key, int> counts;
    for (const Key& k : keys) ++counts[k];
    for (const auto& [k, c] : counts) {
      if (c % 2 == 1) substitute(k);
    }
  }

  if (unknowns.empty()) {
    ++redundant_;
    return false;
  }
  if (unknowns.size() == 1) {
    recover(unknowns.front(), std::move(payload));
    drain();
    return true;
  }

  const std::size_t eq_id = equations_.size();
  for (const Key& k : unknowns) waiting_[k].push_back(eq_id);
  equations_.push_back(Equation{std::move(unknowns), std::move(payload),
                                /*retired=*/false});
  ++live_equations_;
  return false;
}

template <typename Key>
void PeelingDecoder<Key>::drain() {
  while (!pending_.empty()) {
    const Key key = pending_.front();
    pending_.pop_front();
    const auto wit = waiting_.find(key);
    if (wit == waiting_.end()) continue;
    const std::vector<std::size_t> eq_ids = std::move(wit->second);
    waiting_.erase(wit);
    for (const std::size_t eq_id : eq_ids) {
      Equation& eq = equations_[eq_id];
      if (eq.retired) continue;
      // Remove `key` from the equation and fold its value in.
      auto pos = std::find(eq.unknowns.begin(), eq.unknowns.end(), key);
      if (pos == eq.unknowns.end()) continue;  // already substituted
      eq.unknowns.erase(pos);
      xor_into(eq.payload, known_.at(key));
      if (eq.unknowns.size() == 1) {
        const Key last = eq.unknowns.front();
        eq.retired = true;
        --live_equations_;
        if (!known_.contains(last)) {
          recover(last, std::move(eq.payload));
        }
      } else if (eq.unknowns.empty()) {
        eq.retired = true;
        --live_equations_;
      }
    }
  }
}

}  // namespace icd::codec

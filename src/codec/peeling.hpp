#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "codec/solver_stats.hpp"
#include "codec/symbol.hpp"

/// Generic peeling solver implementing the *substitution rule* of Luby et
/// al. [16], shared by the block-level decoder (equations over source block
/// indices) and the recode-level decoder of Section 5.4.2 (equations over
/// encoded symbol ids).
///
/// Each equation is an XOR constraint: payload = XOR of the variables named
/// in `keys`. Whenever an equation has exactly one unknown variable, that
/// variable is recovered and substituted into every other equation that
/// names it, which may cascade.
///
/// Layout (see DESIGN.md "Solver internals"): equations live in
/// structure-of-arrays form. The initial unknown keys of every buffered
/// equation are appended to one flat CSR arena (`arena_` + `eq_begin_`
/// offsets) that is never edited afterwards; the *live* unknown set of an
/// equation is tracked only as a count (`eq_unknowns_`) plus the XOR of its
/// unknown keys (`eq_acc_`). Substituting a recovered key is then O(1) per
/// (key, equation) incidence — decrement the counter, XOR the key out of
/// the accumulator, fold the value into the payload — and when the counter
/// hits 1 the surviving key *is* the accumulator: no scans, no erases. The
/// waiting index is a flat pool of singly-linked incidence nodes
/// (tail-appended so per-key traversal preserves equation insertion order),
/// and the known map is a dense value table + bitmap when keys are 32-bit
/// block indices (recode-level 64-bit ids keep a hash index). Retired and
/// redundant payload buffers are recycled through a small freelist, the
/// `wire::BufferPool` idiom.
///
/// Observable behavior (recovery values, recovery_log order,
/// redundant/buffered counts) is bit-for-bit identical to the list-based
/// `ReferencePeelingDecoder` (codec/solver_reference.hpp); the randomized
/// property test in tests/solver_property_test.cpp pins this.
namespace icd::codec {
namespace detail {

/// Null link / null index sentinel for the flat solver structures.
inline constexpr std::uint32_t kSolverNil = 0xffffffffu;

/// One (key, equation) incidence in the waiting index's node pool.
struct Incidence {
  std::uint32_t eq = 0;
  std::uint32_t next = kSolverNil;
};

struct IncidenceChain {
  std::uint32_t head = kSolverNil;
  std::uint32_t tail = kSolverNil;
};

/// Recovered-value store. Primary template: hash map, for sparse key
/// universes (recode-level 64-bit symbol ids, signed test keys).
template <typename Key>
class KnownStore {
 public:
  bool contains(const Key& key) const { return map_.contains(key); }

  const std::vector<std::uint8_t>* find(const Key& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  void insert(const Key& key, std::vector<std::uint8_t> value) {
    map_.emplace(key, std::move(value));
  }

  std::size_t size() const { return map_.size(); }

  std::size_t memory_bytes() const {
    // Bucket array plus, per node: key, vector header, node/hash links.
    std::size_t bytes = map_.bucket_count() * sizeof(void*);
    for (const auto& [key, value] : map_) {
      bytes += sizeof(Key) + sizeof(std::vector<std::uint8_t>) +
               2 * sizeof(void*) + value.capacity();
    }
    return bytes;
  }

 private:
  std::unordered_map<Key, std::vector<std::uint8_t>> map_;
};

/// Dense specialization for block-index keys: value table indexed by key
/// plus a presence bitmap. Block indices are < block_count, so the table
/// stays proportional to the source size.
template <>
class KnownStore<std::uint32_t> {
 public:
  bool contains(std::uint32_t key) const {
    return key < values_.size() &&
           ((bits_[key >> 6] >> (key & 63)) & 1) != 0;
  }

  const std::vector<std::uint8_t>* find(std::uint32_t key) const {
    return contains(key) ? &values_[key] : nullptr;
  }

  void insert(std::uint32_t key, std::vector<std::uint8_t> value) {
    if (key >= values_.size()) {
      const std::size_t want =
          std::max<std::size_t>(std::size_t{key} + 1, values_.size() * 2);
      values_.resize(want);
      bits_.resize((want + 63) / 64, 0);
    }
    values_[key] = std::move(value);
    bits_[key >> 6] |= std::uint64_t{1} << (key & 63);
    ++size_;
  }

  std::size_t size() const { return size_; }

  std::size_t memory_bytes() const {
    std::size_t bytes =
        values_.capacity() * sizeof(std::vector<std::uint8_t>) +
        bits_.capacity() * sizeof(std::uint64_t);
    for (const auto& value : values_) bytes += value.capacity();
    return bytes;
  }

 private:
  std::vector<std::vector<std::uint8_t>> values_;
  std::vector<std::uint64_t> bits_;  // presence bitmap over values_
  std::size_t size_ = 0;
};

/// Waiting index: key -> chain of incidence nodes. Primary template: hash
/// map of chains for sparse key universes.
template <typename Key>
class IncidenceIndex {
 public:
  IncidenceChain& chain(const Key& key) { return chains_[key]; }

  /// Removes the chain for `key` and returns its head (kSolverNil if none).
  std::uint32_t detach(const Key& key) {
    const auto it = chains_.find(key);
    if (it == chains_.end()) return kSolverNil;
    const std::uint32_t head = it->second.head;
    chains_.erase(it);
    return head;
  }

  void clear() {
    chains_.clear();
    chains_.rehash(0);
  }

  std::size_t memory_bytes() const {
    return chains_.bucket_count() * sizeof(void*) +
           chains_.size() * (sizeof(Key) + sizeof(IncidenceChain) +
                             2 * sizeof(void*));
  }

 private:
  std::unordered_map<Key, IncidenceChain> chains_;
};

/// Dense specialization for block-index keys: flat vector of chains.
template <>
class IncidenceIndex<std::uint32_t> {
 public:
  IncidenceChain& chain(std::uint32_t key) {
    if (key >= chains_.size()) {
      chains_.resize(
          std::max<std::size_t>(std::size_t{key} + 1, chains_.size() * 2));
    }
    return chains_[key];
  }

  std::uint32_t detach(std::uint32_t key) {
    if (key >= chains_.size()) return kSolverNil;
    const std::uint32_t head = chains_[key].head;
    chains_[key] = IncidenceChain{};
    return head;
  }

  void clear() {
    chains_.clear();
    chains_.shrink_to_fit();
  }

  std::size_t memory_bytes() const {
    return chains_.capacity() * sizeof(IncidenceChain);
  }

 private:
  std::vector<IncidenceChain> chains_;
};

}  // namespace detail

template <typename Key>
class PeelingDecoder {
  static_assert(std::is_integral_v<Key>,
                "PeelingDecoder keys are integral ids (block index, symbol "
                "id); the XOR accumulator relies on it");

 public:
  PeelingDecoder() = default;

  /// Declares `key` known with the given value. Typically used to seed the
  /// solver with already-held symbols before feeding recoded equations.
  /// Returns false (and changes nothing) if the key was already known.
  bool mark_known(const Key& key, std::vector<std::uint8_t> value) {
    if (known_.contains(key)) return false;
    recover(key, std::move(value));
    drain();
    return true;
  }

  /// Span variant: the value is copied exactly once, into the solver's own
  /// storage — the single copy the zero-copy receive path budgets for.
  bool mark_known(const Key& key, std::span<const std::uint8_t> value) {
    if (known_.contains(key)) return false;
    recover(key, acquire_payload(value));
    drain();
    return true;
  }

  /// Adds the constraint payload = XOR_{k in keys} value(k). Duplicate keys
  /// within one equation cancel (x ^ x = 0) and are removed up front.
  /// Returns true if the equation caused at least one new variable to be
  /// recovered (immediately useful), false if it was buffered or redundant.
  bool add_equation(std::vector<Key> keys, std::vector<std::uint8_t> payload) {
    return add_equation_impl(keys, std::move(payload));
  }

  /// Span variant for frames decoded in place: keys and payload may borrow
  /// a transport buffer; the payload is copied exactly once, into a pooled
  /// solver buffer.
  bool add_equation(std::span<const Key> keys,
                    std::span<const std::uint8_t> payload) {
    return add_equation_impl(keys, acquire_payload(payload));
  }

  bool is_known(const Key& key) const { return known_.contains(key); }

  /// Value of a recovered variable; throws if unknown.
  const std::vector<std::uint8_t>& value(const Key& key) const {
    const auto* found = known_.find(key);
    if (found == nullptr) {
      throw std::out_of_range("PeelingDecoder: key not recovered");
    }
    return *found;
  }

  std::size_t known_count() const { return known_.size(); }

  /// Equations still waiting on 2+ unknowns.
  std::size_t buffered_count() const { return live_equations_; }

  /// Equations that arrived with all variables already known (fully
  /// redundant at arrival).
  std::size_t redundant_count() const { return redundant_; }

  /// Every recovered key in recovery order (seeded keys included). Callers
  /// track an offset into this log to observe incremental recoveries.
  const std::vector<Key>& recovery_log() const { return log_; }

  /// Solver op counters (equations added, incidences substituted, keys
  /// recovered, redundant arrivals). Monotonic; survives
  /// release_solver_state().
  const DecoderStats& stats() const { return stats_; }

  // --- Equation plane -----------------------------------------------------
  // Read-only access to the buffered-equation arrays, consumed by the
  // incremental inactivation solver (which folds live residual equations
  // into its GF(2) elimination state without re-storing them) and by
  // white-box tests. Equation ids are dense and stable until
  // release_solver_state().

  /// Number of equations ever buffered (live + retired).
  std::size_t equation_count() const { return eq_unknowns_.size(); }

  /// True while the equation still has >= 2 unknowns.
  bool equation_live(std::size_t eq) const { return eq_unknowns_[eq] != 0; }

  std::uint32_t equation_unknown_count(std::size_t eq) const {
    return eq_unknowns_[eq];
  }

  /// The equation's unknown keys *at buffering time* (its CSR arena row).
  /// Keys recovered since then are identified via is_known(); their values
  /// are already folded into equation_payload().
  std::span<const Key> equation_keys(std::size_t eq) const {
    return std::span<const Key>(arena_.data() + eq_begin_[eq],
                                eq_begin_[eq + 1] - eq_begin_[eq]);
  }

  /// Current payload: original XOR values of all since-recovered keys.
  /// Meaningful only while equation_live(eq).
  const std::vector<std::uint8_t>& equation_payload(std::size_t eq) const {
    return eq_payload_[eq];
  }

  /// Heap bytes this decoder pins: recovered values (incl. the dense
  /// bitmap/table or hash buckets), the key arena and per-equation arrays,
  /// buffered payloads, the incidence pool + waiting index, the pending
  /// queue, the recovery log, and the payload freelist. Exact for vector
  /// storage; hash node overhead is counted per entry.
  std::size_t memory_bytes() const {
    std::size_t bytes = known_.memory_bytes();
    bytes += arena_.capacity() * sizeof(Key);
    bytes += eq_begin_.capacity() * sizeof(std::uint32_t);
    bytes += eq_unknowns_.capacity() * sizeof(std::uint32_t);
    bytes += eq_acc_.capacity() * sizeof(Key);
    bytes += eq_payload_.capacity() * sizeof(std::vector<std::uint8_t>);
    for (const auto& payload : eq_payload_) bytes += payload.capacity();
    bytes += incidences_.capacity() * sizeof(detail::Incidence);
    bytes += waiting_.memory_bytes();
    bytes += pending_.capacity() * sizeof(Key);
    bytes += log_.capacity() * sizeof(Key);
    bytes += payload_pool_.capacity() * sizeof(std::vector<std::uint8_t>);
    for (const auto& payload : payload_pool_) bytes += payload.capacity();
    return bytes;
  }

  /// Releases solver-only storage — the key arena, per-equation arrays,
  /// the waiting index, the substitution queue, the payload freelist —
  /// once no further equations will ever arrive (session completion).
  /// Recovered values (`known_`), the recovery log, the redundancy counter
  /// and op stats survive: serving recoded symbols and content reassembly
  /// read them. Idempotent. Equation ids are invalidated.
  void release_solver_state() {
    arena_.clear();
    arena_.shrink_to_fit();
    eq_begin_.assign(1, 0);
    eq_begin_.shrink_to_fit();
    eq_unknowns_.clear();
    eq_unknowns_.shrink_to_fit();
    eq_acc_.clear();
    eq_acc_.shrink_to_fit();
    eq_payload_.clear();
    eq_payload_.shrink_to_fit();
    incidences_.clear();
    incidences_.shrink_to_fit();
    waiting_.clear();
    pending_.clear();
    pending_.shrink_to_fit();
    pending_head_ = 0;
    payload_pool_.clear();
    payload_pool_.shrink_to_fit();
    dedup_scratch_.clear();
    dedup_scratch_.shrink_to_fit();
    live_equations_ = 0;
  }

 private:
  /// Retired/redundant payload buffers are recycled up to this many; the
  /// wire::BufferPool bound, small enough that an idle decoder pins little.
  static constexpr std::size_t kMaxPooledPayloads = 64;

  std::vector<std::uint8_t> acquire_payload(
      std::span<const std::uint8_t> bytes) {
    std::vector<std::uint8_t> out;
    if (!payload_pool_.empty()) {
      out = std::move(payload_pool_.back());
      payload_pool_.pop_back();
    }
    out.assign(bytes.begin(), bytes.end());
    return out;
  }

  void recycle(std::vector<std::uint8_t>&& payload) {
    if (payload.capacity() == 0) return;
    if (payload_pool_.size() < kMaxPooledPayloads) {
      payload.clear();
      payload_pool_.push_back(std::move(payload));
    }
  }

  void recover(const Key& key, std::vector<std::uint8_t> value) {
    known_.insert(key, std::move(value));
    pending_.push_back(key);
    log_.push_back(key);
    ++stats_.recovered;
  }

  void link(const Key& key, std::uint32_t eq_id) {
    const std::uint32_t idx = static_cast<std::uint32_t>(incidences_.size());
    incidences_.push_back(detail::Incidence{eq_id, detail::kSolverNil});
    detail::IncidenceChain& chain = waiting_.chain(key);
    if (chain.head == detail::kSolverNil) {
      chain.head = idx;
    } else {
      incidences_[chain.tail].next = idx;
    }
    chain.tail = idx;
  }

  bool add_equation_impl(std::span<const Key> keys,
                         std::vector<std::uint8_t> payload) {
    ++stats_.equations_added;
    // Cancel duplicate keys (x XOR x = 0). Both producers
    // (symbol_neighbors, recoded constituents) emit sorted distinct keys;
    // detect that and skip the dedup pass on the hot path.
    bool sorted_distinct = true;
    for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
      if (!(keys[i] < keys[i + 1])) {
        sorted_distinct = false;
        break;
      }
    }
    std::span<const Key> effective = keys;
    if (!sorted_distinct) {
      dedup_scratch_.assign(keys.begin(), keys.end());
      std::sort(dedup_scratch_.begin(), dedup_scratch_.end());
      std::size_t out = 0;
      for (std::size_t i = 0; i < dedup_scratch_.size();) {
        std::size_t j = i + 1;
        while (j < dedup_scratch_.size() &&
               dedup_scratch_[j] == dedup_scratch_[i]) {
          ++j;
        }
        if ((j - i) % 2 == 1) dedup_scratch_[out++] = dedup_scratch_[i];
        i = j;
      }
      dedup_scratch_.resize(out);
      effective = dedup_scratch_;
    }

    // Substitute already-known variables; stage the unknowns in the arena.
    const std::size_t arena_mark = arena_.size();
    Key acc{};
    std::uint32_t unknowns = 0;
    for (const Key& k : effective) {
      if (const auto* value = known_.find(k)) {
        ++stats_.substitutions;
        xor_into(payload, *value);
      } else {
        arena_.push_back(k);
        acc ^= k;
        ++unknowns;
      }
    }

    if (unknowns == 0) {
      ++redundant_;
      ++stats_.redundant;
      recycle(std::move(payload));
      return false;
    }
    if (unknowns == 1) {
      const Key last = arena_.back();
      arena_.pop_back();
      recover(last, std::move(payload));
      drain();
      return true;
    }

    const std::uint32_t eq_id =
        static_cast<std::uint32_t>(eq_unknowns_.size());
    for (std::size_t i = arena_mark; i < arena_.size(); ++i) {
      link(arena_[i], eq_id);
    }
    eq_begin_.push_back(static_cast<std::uint32_t>(arena_.size()));
    eq_unknowns_.push_back(unknowns);
    eq_acc_.push_back(acc);
    eq_payload_.push_back(std::move(payload));
    ++live_equations_;
    return false;
  }

  // Substitutes every newly recovered key into the equations that name it.
  void drain() {
    while (pending_head_ < pending_.size()) {
      const Key key = pending_[pending_head_++];
      std::uint32_t idx = waiting_.detach(key);
      if (idx == detail::kSolverNil) continue;
      // Span, not reference: recover() below may grow the dense value
      // table, moving the inner vectors — their heap buffers survive.
      const std::span<const std::uint8_t> value(*known_.find(key));
      while (idx != detail::kSolverNil) {
        const detail::Incidence inc = incidences_[idx];
        idx = inc.next;
        const std::uint32_t eq = inc.eq;
        if (eq_unknowns_[eq] == 0) continue;  // retired
        ++stats_.substitutions;
        xor_into(eq_payload_[eq], value);
        eq_acc_[eq] ^= key;
        if (--eq_unknowns_[eq] == 1) {
          // The counter/accumulator invariant: the surviving unknown IS
          // the accumulator.
          const Key last = eq_acc_[eq];
          eq_unknowns_[eq] = 0;
          --live_equations_;
          if (!known_.contains(last)) {
            recover(last, std::move(eq_payload_[eq]));
            eq_payload_[eq] = std::vector<std::uint8_t>();
          } else {
            recycle(std::move(eq_payload_[eq]));
            eq_payload_[eq] = std::vector<std::uint8_t>();
          }
        }
      }
    }
    pending_.clear();
    pending_head_ = 0;
  }

  detail::KnownStore<Key> known_;
  // Buffered equations, structure-of-arrays. arena_ holds every buffered
  // equation's initial unknown keys back to back; eq_begin_ is the CSR
  // offset array (size equation_count()+1).
  std::vector<Key> arena_;
  std::vector<std::uint32_t> eq_begin_{0};
  std::vector<std::uint32_t> eq_unknowns_;  // live unknown count; 0 = retired
  std::vector<Key> eq_acc_;                 // XOR of live unknown keys
  std::vector<std::vector<std::uint8_t>> eq_payload_;
  std::vector<detail::Incidence> incidences_;  // waiting-index node pool
  detail::IncidenceIndex<Key> waiting_;
  std::vector<Key> pending_;  // FIFO via pending_head_ cursor
  std::size_t pending_head_ = 0;
  std::vector<Key> log_;
  std::vector<std::vector<std::uint8_t>> payload_pool_;  // recycled buffers
  std::vector<Key> dedup_scratch_;
  std::size_t live_equations_ = 0;
  std::size_t redundant_ = 0;
  DecoderStats stats_;
};

}  // namespace icd::codec

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/peeling.hpp"
#include "codec/symbol.hpp"

/// Block-level fountain decoder: recovers the l source blocks from any
/// sufficiently large set of encoded symbols using the substitution rule.
/// "Some implementations are capable of efficiently reconstructing the file
/// having received only 3-5% more than the number of symbols in the original
/// file" — measure_decode_overhead() reports this code's actual figure.
namespace icd::codec {

class Decoder {
 public:
  /// Must be constructed with the same parameters and distribution as the
  /// encoder that produced the symbols.
  Decoder(CodeParameters params, DegreeDistribution dist);

  /// Feeds one encoded symbol. Returns true if it led to recovering at
  /// least one new source block.
  bool add_symbol(const EncodedSymbol& symbol);

  /// View variant for the zero-copy receive path: `payload` may borrow a
  /// transport frame or another decoder's storage; it is copied exactly
  /// once, into this decoder. Neighbor derivation reuses scratch vectors,
  /// so a warm decode loop performs no allocation beyond that copy.
  bool add_symbol(std::uint64_t id, std::span<const std::uint8_t> payload);

  std::size_t recovered_count() const { return peeler_.known_count(); }
  std::size_t received_count() const { return received_; }
  bool complete() const { return recovered_count() == params_.block_count; }

  /// Symbols that arrived fully redundant.
  std::size_t redundant_count() const { return peeler_.redundant_count(); }

  /// Solver op counters (equations, substitution incidences, recoveries).
  const DecoderStats& stats() const { return peeler_.stats(); }

  /// Recovered source blocks in index order; only valid when complete().
  std::vector<std::vector<std::uint8_t>> blocks() const;

  const CodeParameters& parameters() const { return params_; }

  /// Heap bytes pinned: the peeler plus the derivation scratch.
  std::size_t memory_bytes() const {
    return peeler_.memory_bytes() +
           neighbor_scratch_.capacity() * sizeof(std::uint32_t) +
           pick_scratch_.capacity() * sizeof(std::uint64_t);
  }

  /// Releases solver-only storage (buffered equations, waiting index)
  /// once no further symbols will arrive. Recovered blocks — blocks()
  /// and complete() — survive. Idempotent.
  void release_solver_state() {
    peeler_.release_solver_state();
    neighbor_scratch_.clear();
    neighbor_scratch_.shrink_to_fit();
    pick_scratch_.clear();
    pick_scratch_.shrink_to_fit();
  }

 private:
  CodeParameters params_;
  DegreeDistribution dist_;
  PeelingDecoder<std::uint32_t> peeler_;
  std::size_t received_ = 0;
  // add_symbol scratch (neighbor derivation).
  std::vector<std::uint32_t> neighbor_scratch_;
  std::vector<std::uint64_t> pick_scratch_;
};

/// Runs a fresh encode/decode session over random content of
/// `block_count` blocks of `block_size` bytes and returns the decoding
/// overhead (symbols consumed / block_count, >= 1).
double measure_decode_overhead(std::uint32_t block_count,
                               std::size_t block_size,
                               const DegreeDistribution& dist,
                               std::uint64_t seed);

}  // namespace icd::codec

#include "codec/degree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace icd::codec {

DegreeDistribution::DegreeDistribution(std::vector<double> weights)
    : pmf_(std::move(weights)) {
  if (pmf_.empty()) {
    throw std::invalid_argument("DegreeDistribution: empty support");
  }
  double total = 0;
  for (const double w : pmf_) {
    if (w < 0 || !std::isfinite(w)) {
      throw std::invalid_argument("DegreeDistribution: bad weight");
    }
    total += w;
  }
  if (total <= 0) {
    throw std::invalid_argument("DegreeDistribution: zero total mass");
  }
  cdf_.reserve(pmf_.size());
  double acc = 0;
  for (double& w : pmf_) {
    w /= total;
    acc += w;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;  // guard against fp drift
}

DegreeDistribution DegreeDistribution::ideal_soliton(std::size_t l) {
  if (l == 0) throw std::invalid_argument("ideal_soliton: l must be > 0");
  std::vector<double> weights(l, 0.0);
  weights[0] = 1.0 / static_cast<double>(l);
  for (std::size_t d = 2; d <= l; ++d) {
    weights[d - 1] = 1.0 / (static_cast<double>(d) * (d - 1));
  }
  return DegreeDistribution(std::move(weights));
}

DegreeDistribution DegreeDistribution::robust_soliton(std::size_t l, double c,
                                                      double delta) {
  if (l == 0) throw std::invalid_argument("robust_soliton: l must be > 0");
  if (c <= 0 || delta <= 0 || delta >= 1) {
    throw std::invalid_argument("robust_soliton: bad c/delta");
  }
  const double dl = static_cast<double>(l);
  const double big_r = c * std::log(dl / delta) * std::sqrt(dl);
  const auto spike =
      std::clamp<std::size_t>(static_cast<std::size_t>(dl / big_r), 1, l);

  std::vector<double> weights(l, 0.0);
  // rho: ideal soliton
  weights[0] = 1.0 / dl;
  for (std::size_t d = 2; d <= l; ++d) {
    weights[d - 1] = 1.0 / (static_cast<double>(d) * (d - 1));
  }
  // tau: the robust additive term
  for (std::size_t d = 1; d < spike; ++d) {
    weights[d - 1] += big_r / (static_cast<double>(d) * dl);
  }
  // At very small l the robust term's log can go negative; clamp at zero
  // (the distribution degenerates gracefully toward the ideal soliton).
  weights[spike - 1] += big_r * std::max(0.0, std::log(big_r / delta)) / dl;
  return DegreeDistribution(std::move(weights));
}

DegreeDistribution DegreeDistribution::truncated(std::size_t cap) const {
  if (cap == 0) throw std::invalid_argument("truncated: cap must be > 0");
  const std::size_t n = std::min(cap, pmf_.size());
  return DegreeDistribution(
      std::vector<double>(pmf_.begin(), pmf_.begin() + n));
}

DegreeDistribution DegreeDistribution::constant(std::size_t degree) {
  if (degree == 0) throw std::invalid_argument("constant: degree must be > 0");
  std::vector<double> weights(degree, 0.0);
  weights[degree - 1] = 1.0;
  return DegreeDistribution(std::move(weights));
}

std::size_t DegreeDistribution::sample(util::Xoshiro256& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double DegreeDistribution::pmf(std::size_t d) const {
  if (d == 0 || d > pmf_.size()) return 0.0;
  return pmf_[d - 1];
}

double DegreeDistribution::mean() const {
  double m = 0;
  for (std::size_t d = 1; d <= pmf_.size(); ++d) {
    m += static_cast<double>(d) * pmf_[d - 1];
  }
  return m;
}

}  // namespace icd::codec

#pragma once

#include <cstdint>

#include "core/endpoint.hpp"
#include "util/packet.hpp"

/// An informed peer-to-peer transfer session (the full protocol of
/// Sections 3-5 between two Peers, with real payloads).
///
/// This is a thin compatibility façade over a SenderEndpoint /
/// ReceiverEndpoint pair wired back-to-back on a perfect in-process Pipe:
/// the protocol itself runs entirely through wire::Message frames (see
/// core/endpoint.hpp and DESIGN.md), so SessionStats reports *exact*
/// control-plane costs measured from the encoded frames — including the
/// packetization of summaries that exceed the paper's 1 KB packet MTU.
///
///   1. *Estimate* — the peers exchange min-wise sketches and estimate
///      working-set containment.
///   2. *Summarize* — per the strategy, the receiver ships a Bloom filter
///      or ART summary of its working set.
///   3. *Transfer* — the sender streams symbols chosen by the strategy
///      (random / filtered / recoded), and the receiver's stacked decoders
///      absorb them.
///
/// Control traffic flows once, at handshake ("we never send updates to our
/// Bloom filter"). Callers that need loss, reordering or per-link MTUs
/// should drive the endpoints directly over a ChannelLink instead.
namespace icd::core {

/// The façade pipe's MTU: the paper's 1 KB control packet.
inline constexpr std::size_t kSessionPipeMtu = util::kPacketPayloadBytes;

class InformedSession {
 public:
  /// Both peers must share code parameters. The session holds references;
  /// the peers must outlive it.
  InformedSession(Peer& sender, Peer& receiver, SessionOptions options);

  /// The endpoints hold references into the session's pipe: copying or
  /// moving would silently alias (then dangle) it.
  InformedSession(const InformedSession&) = delete;
  InformedSession& operator=(const InformedSession&) = delete;

  /// Runs the estimate + summarize phases. Must be called before step().
  void handshake();

  /// Transfers one symbol; returns the number of new encoded symbols the
  /// receiver gained from it.
  std::size_t step();

  /// Steps until the receiver holds `target_symbols` distinct encoded
  /// symbols, it can decode the content, or `max_transmissions` is hit.
  /// Returns the accumulated stats.
  const SessionStats& run(std::size_t target_symbols,
                          std::size_t max_transmissions);

  const SessionStats& stats() const { return stats_; }

  /// The underlying protocol machinery, exposed for byte-level inspection
  /// (frame observers, transport stats) and tests.
  wire::Transport& sender_transport() { return pipe_.a(); }
  wire::Transport& receiver_transport() { return pipe_.b(); }
  const SenderEndpoint& sender_endpoint() const { return sender_; }
  const ReceiverEndpoint& receiver_endpoint() const { return receiver_; }

 private:
  void refresh_stats();

  wire::Pipe pipe_;
  SenderEndpoint sender_;
  ReceiverEndpoint receiver_;
  bool handshaken_ = false;
  SessionStats stats_;
};

}  // namespace icd::core

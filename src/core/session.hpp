#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/peer.hpp"
#include "overlay/strategy.hpp"
#include "util/random.hpp"

/// An informed peer-to-peer transfer session (the full protocol of
/// Sections 3-5 between two Peers, with real payloads):
///
///   1. *Estimate* — the peers exchange min-wise sketches (one 1 KB packet
///      each) and estimate working-set containment.
///   2. *Summarize* — per the strategy, the receiver ships a Bloom filter
///      or ART summary of its working set.
///   3. *Transfer* — the sender streams symbols chosen by the strategy
///      (random / filtered / recoded), and the receiver's stacked decoders
///      absorb them.
///
/// Control traffic flows once, at handshake ("we never send updates to our
/// Bloom filter"), and all of it is accounted in 1 KB-packet units.
namespace icd::core {

/// Which fine-grained summary the BF-flavored strategies ship.
enum class SummaryKind { kBloomFilter, kArt };

struct SessionOptions {
  overlay::Strategy strategy = overlay::Strategy::kRecodeBloom;
  SummaryKind summary = SummaryKind::kBloomFilter;
  double bloom_bits_per_element = 8.0;
  /// ART budget split and correction level (Table 4 defaults).
  double art_leaf_bits_per_element = 4.0;
  double art_internal_bits_per_element = 4.0;
  int art_correction = 5;
  /// Degree cap for recoded symbols.
  std::size_t recode_degree_limit = codec::kDefaultRecodeDegreeLimit;
  /// Number of symbols the receiver requests (0 = sender's full domain);
  /// the Recode/BF recoding domain is restricted to this size.
  std::size_t requested_symbols = 0;
  std::uint64_t seed = 0x5e5510a5eedULL;
};

struct SessionStats {
  /// Control-plane bytes / 1 KB packets exchanged at handshake.
  std::size_t control_bytes = 0;
  std::size_t control_packets = 0;
  /// Estimated containment |receiver ∩ sender| / |sender| from sketches.
  double estimated_containment = 0.0;
  /// Data-plane counters.
  std::size_t symbols_sent = 0;
  std::size_t symbols_useful = 0;  // yielded >= 1 new encoded symbol
  std::size_t new_encoded_symbols = 0;
};

class InformedSession {
 public:
  /// Both peers must share code parameters. The session holds references;
  /// the peers must outlive it.
  InformedSession(Peer& sender, Peer& receiver, SessionOptions options);

  /// Runs the estimate + summarize phases. Must be called before step().
  void handshake();

  /// Transfers one symbol; returns the number of new encoded symbols the
  /// receiver gained from it.
  std::size_t step();

  /// Steps until the receiver holds `target_symbols` distinct encoded
  /// symbols, it can decode the content, or `max_transmissions` is hit.
  /// Returns the accumulated stats.
  const SessionStats& run(std::size_t target_symbols,
                          std::size_t max_transmissions);

  const SessionStats& stats() const { return stats_; }

 private:
  Peer& sender_;
  Peer& receiver_;
  SessionOptions options_;
  util::Xoshiro256 rng_;
  bool handshaken_ = false;
  /// Sender-side send/recode domain after summary filtering (empty when the
  /// strategy uses the whole working set).
  std::vector<std::uint64_t> domain_;
  codec::DegreeDistribution recode_distribution_;
  SessionStats stats_;
};

}  // namespace icd::core

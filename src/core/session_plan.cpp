#include "core/session_plan.hpp"

#include <algorithm>

#include "core/delivery.hpp"
#include "util/hash.hpp"

namespace icd::core {

namespace {

/// Sketch of a ranked candidate id: ranked ids come out of
/// select_senders over `candidates`, so a linear find by id always hits
/// (the candidate lists here are admission pools — small by construction
/// in sampled mode, and only walked once per chosen member otherwise).
const sketch::MinwiseSketch* candidate_sketch(
    const std::vector<CandidateSender>& candidates, std::size_t id) {
  for (const CandidateSender& candidate : candidates) {
    if (candidate.id == id) return candidate.sketch;
  }
  return nullptr;
}

/// Overlap-aware narrowing of an admission-ranked pool to a session cap:
/// anchor at the top-ranked (most novel) candidate, then repeatedly add
/// the candidate whose inclusion keeps estimate_group_overlap of the
/// chosen group smallest, ranking order breaking exact ties. The sketches
/// admission already fetched are all this needs — the group-overlap
/// estimator works on coordinate-wise minima alone.
std::vector<std::size_t> pick_complementary_group(
    const std::vector<CandidateSender>& candidates,
    const std::vector<std::size_t>& ranked, std::size_t max_sessions) {
  if (ranked.size() <= max_sessions) return ranked;
  std::vector<std::size_t> chosen{ranked.front()};
  std::vector<const sketch::MinwiseSketch*> sketches{
      candidate_sketch(candidates, ranked.front())};
  std::vector<std::size_t> remaining(ranked.begin() + 1, ranked.end());
  while (chosen.size() < max_sessions && !remaining.empty()) {
    std::size_t best = 0;
    double best_overlap = 2.0;  // overlap estimates live in [0, 1]
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      sketches.push_back(candidate_sketch(candidates, remaining[i]));
      const double overlap = estimate_group_overlap(sketches);
      sketches.pop_back();
      if (overlap < best_overlap) {
        best_overlap = overlap;
        best = i;
      }
    }
    chosen.push_back(remaining[best]);
    sketches.push_back(candidate_sketch(candidates, remaining[best]));
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(best));
  }
  return chosen;
}

/// The candidate-based planning core: everything plan_peer_downloads did
/// after building its candidate pool, so the sampled-admission path can
/// feed a bounded pool through identical ranking/relaxation/sizing logic.
std::vector<PlannedDownload> plan_from_candidates(
    std::size_t me, const PlanPeer& self,
    const std::vector<CandidateSender>& candidates,
    const DeliveryOptions& options, std::size_t target_symbols,
    std::uint64_t& session_seed_chain) {
  const std::size_t have = self.symbol_count;
  const std::size_t needed =
      target_symbols > have ? target_symbols - have : 1;
  // Overlap-aware mode admits the whole pool (ranked), then narrows to the
  // cap by group complementarity below; a cap of zero still means zero.
  const std::size_t admit_cap =
      options.overlap_aware_selection && options.max_peer_sessions > 0
          ? candidates.size()
          : options.max_peer_sessions;
  auto selected = select_senders(*self.sketch, self.symbol_count,
                                 candidates, options.admission, admit_cap);
  // Starvation relaxation: admission exists to skip identical-content
  // senders, but near the end of a download every candidate looks
  // near-identical (resemblance above the cutoff) while still holding
  // the few novel symbols the peer needs to finish. Instead of blindly
  // connecting to the largest candidate, re-run admission under a policy
  // whose resemblance cutoff relaxes in proportion to the shrinking
  // remaining need — near-complete peers stay served, ranked by novelty,
  // while a peer that still needs most of the content keeps the strict
  // cutoff and admits no useless (genuinely identical) senders. The
  // largest candidate survives only as the last-resort fallback when even
  // the relaxed policy admits nobody (noisy sketch estimates), and never
  // when peer sessions are disabled outright (max_peer_sessions 0).
  if (selected.empty() && !candidates.empty() &&
      options.max_peer_sessions > 0) {
    selected = select_senders(
        *self.sketch, self.symbol_count, candidates,
        relax_policy_for_need(options.admission, needed, target_symbols),
        admit_cap);
  }
  if (selected.empty() && !candidates.empty() &&
      options.max_peer_sessions > 0) {
    const auto best = std::max_element(
        candidates.begin(), candidates.end(),
        [](const CandidateSender& a, const CandidateSender& b) {
          return a.working_set_size < b.working_set_size;
        });
    selected.push_back(best->id);
  }
  if (options.overlap_aware_selection &&
      selected.size() > options.max_peer_sessions) {
    selected = pick_complementary_group(candidates, selected,
                                        options.max_peer_sessions);
  }
  std::vector<PlannedDownload> plan;
  plan.reserve(selected.size());
  for (const std::size_t j : selected) {
    PlannedDownload download;
    download.sender_id = j;
    download.session.strategy = options.strategy;
    download.session.flow_control = options.flow_control;
    download.session.handshake_retry_ticks = options.handshake_retry_ticks;
    download.session.handshake_backoff_factor =
        options.handshake_backoff_factor;
    download.session.handshake_backoff_cap_ticks =
        options.handshake_backoff_cap_ticks;
    download.session.max_handshake_retries = options.max_handshake_retries;
    download.session.liveness_timeout_ticks = options.liveness_timeout_ticks;
    download.session.requested_symbols = std::max<std::size_t>(
        1, (needed * 5 / 4) / std::max<std::size_t>(1, selected.size()));
    download.session.seed = session_seed_chain =
        util::mix64(session_seed_chain);
    download.link = wire::resolve_edge_config(
        options.link_config, options.link, j, me,
        util::mix64(session_seed_chain ^ 0x11aacULL));
    plan.push_back(std::move(download));
  }
  return plan;
}

}  // namespace

std::vector<PlannedDownload> plan_peer_downloads(
    std::size_t me, const std::vector<PlanPeer>& peers,
    const DeliveryOptions& options, std::size_t target_symbols,
    std::uint64_t& session_seed_chain) {
  std::vector<CandidateSender> candidates;
  for (std::size_t j = 0; j < peers.size(); ++j) {
    if (j == me || peers[j].symbol_count == 0 || !peers[j].available) {
      continue;
    }
    candidates.push_back(
        CandidateSender{j, peers[j].sketch, peers[j].symbol_count});
  }
  return plan_from_candidates(me, peers[me], candidates, options,
                              target_symbols, session_seed_chain);
}

std::vector<std::size_t> balance_by_cost(
    const std::vector<std::uint64_t>& cost, std::size_t shards) {
  std::vector<std::size_t> assignment(cost.size(), 0);
  if (shards <= 1) return assignment;
  // Longest-processing-time: heaviest peers first (id ascending on ties,
  // so the result is deterministic), each onto the currently least-loaded
  // shard (lowest index on ties).
  std::vector<std::size_t> order(cost.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&cost](std::size_t a, std::size_t b) {
              if (cost[a] != cost[b]) return cost[a] > cost[b];
              return a < b;
            });
  std::vector<std::uint64_t> load(shards, 0);
  for (const std::size_t id : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    assignment[id] = lightest;
    load[lightest] += cost[id];
  }
  return assignment;
}

void run_refresh_loop(
    std::size_t peer_count, const DeliveryOptions& options,
    std::size_t target_symbols, std::uint64_t& session_seed_chain,
    const std::function<void(std::size_t)>& teardown,
    const std::function<bool(std::size_t)>& is_complete,
    const std::function<PlanPeer(std::size_t)>& snapshot,
    const std::function<void(std::size_t, PlannedDownload&)>& create) {
  if (options.admission_sample > 0) {
    // Sampled admission (massive swarms): tear every session down first,
    // snapshot the swarm once, and rank each receiver against a bounded
    // random candidate sample instead of the full pool — one refresh
    // costs O(n * sample) sketch comparisons instead of O(n^2). The
    // candidate draws come from a stream forked off the seed chain
    // without advancing it, so the chain still evolves only per planned
    // download (as in the historical path) and the whole refresh remains
    // a deterministic function of (swarm state, chain value).
    for (std::size_t me = 0; me < peer_count; ++me) teardown(me);
    std::vector<PlanPeer> plan_peers;
    plan_peers.reserve(peer_count);
    for (std::size_t j = 0; j < peer_count; ++j) {
      plan_peers.push_back(snapshot(j));
    }
    std::vector<std::size_t> eligible;
    for (std::size_t j = 0; j < peer_count; ++j) {
      if (plan_peers[j].symbol_count > 0 && plan_peers[j].available) {
        eligible.push_back(j);
      }
    }
    std::vector<CandidateSender> candidates;
    std::vector<char> drawn(peer_count, 0);
    for (std::size_t me = 0; me < peer_count; ++me) {
      if (is_complete(me)) continue;
      const bool self_eligible =
          std::binary_search(eligible.begin(), eligible.end(), me);
      const std::size_t pool =
          eligible.size() - static_cast<std::size_t>(self_eligible);
      if (pool == 0) continue;
      const std::size_t want = std::min(options.admission_sample, pool);
      std::uint64_t draw = util::mix64(
          session_seed_chain ^ (0x5ca1ab1eULL + me * 0x9e3779b97f4a7c15ULL));
      candidates.clear();
      // Rejection-sample `want` distinct candidates; the attempt cap only
      // matters when want is close to the pool size, where a rare
      // undershoot just means a slightly smaller (still ranked) pool.
      std::size_t attempts = 0;
      const std::size_t max_attempts = 64 + 16 * want;
      while (candidates.size() < want && attempts < max_attempts) {
        ++attempts;
        draw = util::mix64(draw);
        const std::size_t j = eligible[draw % eligible.size()];
        if (j == me || drawn[j]) continue;
        drawn[j] = 1;
        candidates.push_back(
            CandidateSender{j, plan_peers[j].sketch,
                            plan_peers[j].symbol_count});
      }
      for (const CandidateSender& candidate : candidates) {
        drawn[candidate.id] = 0;
      }
      for (PlannedDownload& planned :
           plan_from_candidates(me, plan_peers[me], candidates, options,
                                target_symbols, session_seed_chain)) {
        create(me, planned);
      }
    }
    return;
  }
  for (std::size_t me = 0; me < peer_count; ++me) {
    teardown(me);
    if (is_complete(me)) continue;
    std::vector<PlanPeer> plan_peers;
    plan_peers.reserve(peer_count);
    for (std::size_t j = 0; j < peer_count; ++j) {
      plan_peers.push_back(snapshot(j));
    }
    for (PlannedDownload& planned : plan_peer_downloads(
             me, plan_peers, options, target_symbols, session_seed_chain)) {
      create(me, planned);
    }
  }
}

codec::DegreeDistribution delivery_distribution(std::size_t content_size,
                                                std::size_t block_size) {
  const std::size_t blocks = std::max<std::size_t>(
      1, (content_size + block_size - 1) / block_size);
  return codec::DegreeDistribution::robust_soliton(
      std::max<std::size_t>(blocks, 2));
}

}  // namespace icd::core

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

/// Simulated-time link scheduling.
///
/// With timed links (wire::ChannelConfig delay/jitter/rate knobs), a
/// delivery engine no longer services every download every round: each
/// active download has a *next service time* — the earliest virtual tick at
/// which anything can happen on its link (a frame arrives, or the token
/// bucket grants send credit) — and the engine pops downloads from a
/// LinkScheduler in (time, key) order, skipping links that are provably
/// idle this tick. Untimed links report "now" and reproduce the historical
/// lockstep order exactly (keys tie-break in ascending order, matching the
/// legacy per-sender map iteration), which is what keeps the shards=1
/// bit-for-bit determinism gate intact under the new scheduler. See
/// DESIGN.md, "Time and scheduling model".
namespace icd::core {

class SenderEndpoint;
class ReceiverEndpoint;

/// A deterministic min-queue of (time, key) service events. Rebuilt cheaply
/// per scheduling round (clear + schedule), popped in strict (time, key)
/// order — no two equal (time, key) pairs behave nondeterministically.
class LinkScheduler {
 public:
  void clear() { heap_.clear(); }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Registers one service event. Duplicate keys are allowed; callers that
  /// reschedule simply clear() and rebuild (events are per-tick).
  void schedule(std::uint64_t at, std::uint64_t key);

  /// The earliest (time, key) event, if any.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> peek() const;

  /// Pops and returns the earliest event's key if its time is <= now;
  /// nullopt when the queue is empty or everything lies in the future.
  std::optional<std::uint64_t> pop_due(std::uint64_t now);

 private:
  /// std::push_heap/pop_heap min-heap ordered by (at, key).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> heap_;
};

/// Link-derived inputs to the service decision, gathered by the engine
/// from whichever link type carries the download (ChannelLink locally,
/// ShardLink across shards).
struct LinkTimes {
  /// False = legacy event-clock link: service every tick.
  bool timed = false;
  /// Earliest arrival of a queued frame in either direction.
  std::optional<std::uint64_t> next_arrival;
  /// Earliest departure credit for one data frame (token bucket).
  std::optional<std::uint64_t> send_credit_at;
};

/// Estimated wire size of one data-plane frame, used for the send-credit
/// probe (the exact size depends on strategy and degree; pacing itself is
/// enforced by the channel's token bucket, so the hint only shapes attempt
/// cadence).
std::size_t data_frame_bytes_hint(std::size_t block_size);

/// When the download next needs service: now for untimed links and during
/// the handshake (retry clocks must keep counting), the earliest of frame
/// arrival / send credit during transfer, and nullopt — skip entirely —
/// for a drained link whose sender is satisfied.
std::optional<std::uint64_t> next_service_time(const SenderEndpoint& sender,
                                               const ReceiverEndpoint& receiver,
                                               const LinkTimes& times,
                                               std::uint64_t now);

}  // namespace icd::core

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "codec/solver_stats.hpp"

/// Deterministic fault injection for the delivery engines.
///
/// A FaultPlan is a declarative schedule of membership and link faults —
/// peer crashes, stalls, restarts, flash-crowd joins, and link blackout
/// windows — expressed in virtual ticks. Both delivery engines honor one
/// plan identically: fault boundaries are kPeerFault events in the
/// cross-tick planning (so run_until's jump stops exactly on them), fault
/// *application* happens at the top of the tick on the coordinator in
/// ascending peer order, and all fault machinery is strictly inert when no
/// plan is set — every historical trajectory is bit-for-bit unchanged.
///
/// Semantics (see DESIGN.md, "Failure model"):
///   * crash    — the peer is down from `at` until its next restart: it is
///                not serviced, not origin-fed, and its own downloads are
///                torn down at the crash tick (wire costs banked). Its
///                decoded content *survives* — a restart rejoins with the
///                partial working set it held, and the next refresh
///                re-handshakes with the current summary (session
///                resumption; already-decoded symbols are not re-served).
///   * stall    — as down, but scoped to [from, until): the peer freezes
///                (no servicing, no origin feed) and thaws on its own.
///                Sessions stay up; its receivers discover the silence
///                through their liveness timeouts.
///   * restart  — the peer is up again from `at`; re-admitted by the next
///                refresh.
///   * join     — `count` fresh peers enter at `at` (flash crowd).
///   * blackout — the directed edge (sender, receiver) eats every frame
///                sent during [from, until): a partition of that link.
///                Frames already in flight still arrive.
namespace icd::core {

struct FaultPlan {
  struct Crash {
    std::uint64_t at = 0;
    std::size_t peer = 0;
  };
  struct Restart {
    std::uint64_t at = 0;
    std::size_t peer = 0;
  };
  struct Stall {
    std::uint64_t from = 0;
    std::uint64_t until = 0;  // exclusive
    std::size_t peer = 0;
  };
  struct Join {
    std::uint64_t at = 0;
    std::size_t count = 1;
    bool origin_fed = false;
  };
  struct Blackout {
    std::uint64_t from = 0;
    std::uint64_t until = 0;  // exclusive
    std::size_t sender = 0;
    std::size_t receiver = 0;
  };

  std::vector<Crash> crashes;
  std::vector<Restart> restarts;
  std::vector<Stall> stalls;
  std::vector<Join> joins;
  std::vector<Blackout> blackouts;

  bool empty() const {
    return crashes.empty() && restarts.empty() && stalls.empty() &&
           joins.empty() && blackouts.empty();
  }

  /// Crashed at or before `tick` with no restart in between.
  bool crashed_at(std::size_t peer, std::uint64_t tick) const;
  /// Inside a stall window.
  bool stalled_at(std::size_t peer, std::uint64_t tick) const;
  /// Down for servicing purposes: crashed or stalled.
  bool down_at(std::size_t peer, std::uint64_t tick) const {
    return crashed_at(peer, tick) || stalled_at(peer, tick);
  }
  /// The directed edge is inside a blackout window.
  bool blackout_at(std::size_t sender, std::size_t receiver,
                   std::uint64_t tick) const;

  /// Earliest fault boundary strictly after `tick` (crash/restart/join
  /// ticks, stall and blackout window edges) — the kPeerFault planning
  /// event that keeps jumped runs lockstep-identical across boundaries.
  std::optional<std::uint64_t> next_boundary_after(std::uint64_t tick) const;
};

/// One abandoned download session: the engine gave up on `peer` at `tick`
/// because its liveness timeout expired mid-transfer or its handshake
/// retry budget ran out.
struct FailedPeer {
  enum class Reason : std::uint8_t { kLivenessTimeout, kHandshakeExhausted };
  std::size_t peer = 0;
  std::uint64_t tick = 0;
  Reason reason = Reason::kLivenessTimeout;
};

/// Per-receiver session outcome: the diagnostic surface for "my sender
/// died" — completion state plus every session this receiver abandoned.
struct SessionResult {
  bool completed = false;
  std::uint64_t completion_tick = 0;
  std::vector<FailedPeer> failed_peers;
  /// Bytes of decoder/working-set state the peer currently pins (the
  /// per-peer half of the scale memory audit; see MemoryAudit). Defaulted
  /// so callers that only care about completion can keep brace-initing.
  std::size_t memory_bytes = 0;
  /// Solver op counters across both of the peer's peeling levels
  /// (substitution incidences, recoveries, redundant arrivals).
  codec::DecoderStats decoder_stats;
};

/// The mutable fault bookkeeping both engines embed: a cursor over the
/// plan's scheduled membership events (so each fires exactly once, at the
/// top of the first executed tick at or past its time) and the suspect
/// set fed by liveness expiries and handshake exhaustion. All calls are
/// coordinator-side; the phase workers only read the per-tick snapshots
/// the engines take from it.
class FaultTracker {
 public:
  FaultTracker() = default;
  explicit FaultTracker(std::shared_ptr<const FaultPlan> plan)
      : plan_(std::move(plan)) {
    if (plan_) {
      crash_applied_.assign(plan_->crashes.size(), false);
      join_applied_.assign(plan_->joins.size(), false);
    }
  }

  bool active() const { return plan_ && !plan_->empty(); }
  const FaultPlan* plan() const { return plan_.get(); }

  /// Crashed or stalled at `tick` (false without a plan).
  bool down(std::size_t peer, std::uint64_t tick) const {
    return plan_ && plan_->down_at(peer, tick);
  }
  bool blackout(std::size_t sender, std::size_t receiver,
                std::uint64_t tick) const {
    return plan_ && plan_->blackout_at(sender, receiver, tick);
  }
  bool any_blackouts() const { return plan_ && !plan_->blackouts.empty(); }

  /// Applies membership events due at or before `now` that have not fired
  /// yet: `on_crash(peer)` for each new crash (the engine tears the
  /// peer's downloads down), `on_join(count, origin_fed)` for each join.
  /// Within one call, crashes fire before joins, each in plan order —
  /// deterministic, and exact because fault boundaries are planning
  /// barriers (no two distinct fault ticks collapse into one call).
  template <typename OnCrash, typename OnJoin>
  void apply_until(std::uint64_t now, OnCrash&& on_crash, OnJoin&& on_join) {
    if (!plan_) return;
    for (std::size_t i = crash_cursor_; i < plan_->crashes.size(); ++i) {
      if (plan_->crashes[i].at > now) continue;
      if (!crash_applied_[i]) {
        crash_applied_[i] = true;
        on_crash(plan_->crashes[i].peer);
      }
    }
    for (std::size_t i = join_cursor_; i < plan_->joins.size(); ++i) {
      if (plan_->joins[i].at > now) continue;
      if (!join_applied_[i]) {
        join_applied_[i] = true;
        on_join(plan_->joins[i].count, plan_->joins[i].origin_fed);
      }
    }
    advance_cursors();
  }

  /// Marks `peer` suspect until `until` (exclusive) — excluded from
  /// admission candidate pools while suspect, then organically
  /// re-admitted (a still-dead peer just fails again).
  void mark_suspect(std::size_t peer, std::uint64_t until) {
    auto& expiry = suspects_[peer];
    expiry = std::max(expiry, until);
  }
  bool suspect(std::size_t peer, std::uint64_t tick) const {
    const auto it = suspects_.find(peer);
    return it != suspects_.end() && it->second > tick;
  }
  /// A peer admission should skip: down, or under suspicion.
  bool unavailable(std::size_t peer, std::uint64_t tick) const {
    return down(peer, tick) || suspect(peer, tick);
  }

  /// Joins not applied yet: run loops must not declare the swarm done (and
  /// planning must not close the event horizon) while a flash crowd is
  /// still scheduled to arrive.
  bool pending_joins() const { return join_cursor_ < join_applied_.size(); }

  /// Plan boundary for cross-tick planning (nullopt without a plan).
  std::optional<std::uint64_t> next_boundary_after(std::uint64_t tick) const {
    if (!plan_) return std::nullopt;
    return plan_->next_boundary_after(tick);
  }

 private:
  void advance_cursors() {
    while (crash_cursor_ < crash_applied_.size() &&
           crash_applied_[crash_cursor_]) {
      ++crash_cursor_;
    }
    while (join_cursor_ < join_applied_.size() &&
           join_applied_[join_cursor_]) {
      ++join_cursor_;
    }
  }

  std::shared_ptr<const FaultPlan> plan_;
  std::vector<bool> crash_applied_;
  std::vector<bool> join_applied_;
  std::size_t crash_cursor_ = 0;
  std::size_t join_cursor_ = 0;
  /// peer -> suspicion expiry tick (exclusive).
  std::map<std::size_t, std::uint64_t> suspects_;
};

}  // namespace icd::core

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codec/symbol.hpp"
#include "core/endpoint.hpp"
#include "core/peer.hpp"
#include "overlay/strategy.hpp"
#include "wire/transport.hpp"
#include "wire/udp.hpp"

/// Multi-process swarm runs and their simulator cross-check.
///
/// A swarm is N peers exchanging symbols pairwise over directed edges, each
/// peer a separate OS process speaking real UDP (examples/swarm_node.cpp).
/// The scientific claim of the real-network backend is *byte equivalence*:
/// because endpoints are substrate-agnostic, the exact control/data bytes a
/// real swarm puts on the wire are predictable by running the identical
/// protocol script over in-process Pipes. This header is where that claim
/// is made testable — one SwarmSpec, one deterministic initial condition
/// (SwarmWorld), one per-edge service script, consumed by both the
/// predictor (predict_swarm) and the per-process runtime (run_swarm_node),
/// so tools/swarm_harness can diff the two down to the byte.
///
/// What makes the prediction exact on a loss-free loopback (the reasoning
/// lives in DESIGN.md, "Real-network backend"):
///   * preloads are derived from the spec seed, never from live traffic —
///     every process regenerates the identical universe locally;
///   * each node serves uploads from a frozen preload-state replica of its
///     peer (one admission epoch), so nothing a sender puts on the wire
///     depends on arrival timing;
///   * flow control is off and each sender serves exactly the edge quota,
///     so data-plane totals are quota-bound, not timing-bound;
///   * handshake retry cadences are far above loopback RTT, so the control
///     plane is the minimal bundle + reply in both modes.
namespace icd::core {

/// One directed transfer edge: `receiver` downloads from `sender` over a
/// dedicated UDP socket pair (each half binds its own port).
struct SwarmEdge {
  std::size_t sender = 0;
  std::size_t receiver = 0;
  std::uint16_t sender_port = 0;
  std::uint16_t receiver_port = 0;
};

/// One named real-network access class (the scenario engine's LinkProfile,
/// in wall-clock units): inbound shaping applied at a node's own sockets —
/// socket-level loss injection plus a FIFO delay line — and mirrored by
/// the predictor as per-edge ChannelLink shaping. With any shaping active
/// the byte-equality cross-check degrades to completion + distributional
/// agreement (completion-tick and retry bands), the harness's shaped mode.
struct SwarmLinkProfile {
  std::string name;
  double loss = 0.0;  // inbound datagram loss probability
  std::uint64_t delay_us = 0;
  std::uint64_t jitter_us = 0;
};

/// The whole experiment in one small text config (`key value` lines plus
/// one `edge <sender> <receiver> <sender_port> <receiver_port>` line per
/// edge) shared verbatim by every process and the predictor.
struct SwarmSpec {
  std::size_t nodes = 4;
  std::size_t n = 120;          // blocks to recover
  std::size_t block_size = 64;  // bytes per block
  double stretch = 1.5;         // distinct symbols = stretch * n
  double correlation = 0.2;     // shared fraction of each preload
  std::uint64_t seed = 0x5aa77a11;
  overlay::Strategy strategy = overlay::Strategy::kRecodeBloom;
  std::size_t mtu = 1400;
  std::size_t batch_budget = 0;
  /// Data-frame send attempts per edge per tick (pacing only; totals are
  /// quota-bound).
  std::size_t symbols_per_tick = 16;
  /// Far above loopback RTT so neither mode ever retries the handshake.
  std::size_t handshake_retry_ticks = 2000;
  /// Decoding-overhead factor on each receiver's per-edge request. Higher
  /// than the delivery engines' 1.25 allowance because a swarm run is one
  /// frozen admission epoch: summaries never refresh and quotas never
  /// re-plan, so all decoding overhead must be provisioned up front.
  double request_overhead = 3.0;
  /// Socket-level inbound loss injected at every node's UdpTransport
  /// (UdpTransport::set_loss_injection). With loss the byte-equality
  /// cross-check no longer holds — the harness's --loss mode gates on
  /// completion and bounded retries instead. 0 = off.
  double loss_rate = 0.0;
  /// Handshake retry budget per receiver half
  /// (SessionOptions::max_handshake_retries): a receiver whose sender
  /// never answers fails its session instead of retrying forever, and the
  /// node's run loop abandons that half (reported, not hung). 0 =
  /// unbounded — the historical behavior.
  std::size_t max_handshake_retries = 0;
  /// Real-time tick period for swarm_node's wall-clock loop.
  std::uint64_t tick_us = 1000;
  /// Completion horizon, in ticks, for both modes.
  std::uint64_t max_ticks = 30000;
  std::string host = "127.0.0.1";
  std::vector<SwarmEdge> edges;

  /// Named access classes (`link_profile <name> <loss> <delay_us>
  /// <jitter_us>` lines) and the node -> class assignment (`access
  /// <node|default> <name>`, profiles must be declared first). Unassigned
  /// nodes are unshaped.
  std::vector<SwarmLinkProfile> link_profiles;
  std::map<std::size_t, std::size_t> access;
  std::optional<std::size_t> access_default;

  /// The access class shaping node `id`'s inbound sockets, if any.
  const SwarmLinkProfile* node_profile(std::size_t id) const;
  /// Any node carries non-trivial shaping (=> byte exactness is off).
  bool shaped() const;

  /// Every ordered pair exchanges: node r downloads from every other node,
  /// ports allocated consecutively from `base_port` (two per edge).
  void build_full_mesh(std::uint16_t base_port);

  std::string serialize() const;
  static SwarmSpec parse(std::istream& in);
  static SwarmSpec parse_text(const std::string& text);
  static SwarmSpec parse_file(const std::string& path);
};

/// Strategy <-> config-token mapping (the bench key names: "random",
/// "randombf", "recode", "recodebf", "recodemw").
std::string swarm_strategy_key(overlay::Strategy strategy);
std::optional<overlay::Strategy> parse_strategy_key(const std::string& key);

/// The deterministic initial condition every process regenerates locally
/// from the spec: the encoded-symbol universe, each node's preload id set
/// (indices into the universe), and the distinct-symbol decode target.
struct SwarmWorld {
  codec::CodeParameters params;
  /// Replaced by robust_soliton(n) in build_swarm_world (DegreeDistribution
  /// has no default state).
  codec::DegreeDistribution distribution{std::vector<double>{1.0}};
  std::vector<codec::EncodedSymbol> universe;
  std::vector<std::vector<std::uint64_t>> preload;  // per node
  std::size_t target = 0;
};

SwarmWorld build_swarm_world(const SwarmSpec& spec);

/// Node `id`'s peer, preloaded to its initial condition.
std::unique_ptr<Peer> make_swarm_peer(const SwarmSpec& spec,
                                      const SwarmWorld& world, std::size_t id,
                                      const std::string& name_suffix = "");

/// Symbols edge `e`'s sender serves: the receiver's remaining need times
/// the overhead factor, split across its in-degree (the session planner's
/// allowance rule). Quota-bound totals are what makes prediction exact.
std::size_t swarm_edge_quota(const SwarmSpec& spec, const SwarmWorld& world,
                             std::size_t edge_index);

/// Session options for edge `e` — identical in both modes by construction.
SessionOptions swarm_session_options(const SwarmSpec& spec,
                                     const SwarmWorld& world,
                                     std::size_t edge_index);

/// --- The shared per-edge service script ----------------------------------
/// One tick of each half. The predictor runs both halves of every edge in
/// lockstep; a swarm_node runs only the halves it owns, on the wall clock.
/// Everything a half *sends* is independent of when the other half runs
/// (bundles snapshot preload state, uploads serve a frozen replica, quotas
/// bound the data plane), which is exactly why the split is sound.

/// Sender half: drain + handshake bookkeeping, then serve up to
/// `budget_per_tick` symbols while the quota lasts, then flush the control
/// train (the per-tick batching boundary).
void service_sender_half(SenderEndpoint& sender, wire::Transport& transport,
                         std::size_t quota, std::size_t budget_per_tick);

/// Receiver half: advance the retry clock to `now`, drain and absorb.
void service_receiver_half(ReceiverEndpoint& receiver,
                           wire::Transport& transport, std::uint64_t now);

/// --- Prediction -----------------------------------------------------------

/// Per-edge wire totals (both halves summed) — the cross-check currency
/// between predictor and harness.
struct SwarmEdgeTotals {
  std::size_t control_bytes = 0;
  std::size_t control_frames = 0;
  std::size_t data_bytes = 0;
  std::size_t data_frames = 0;

  bool operator==(const SwarmEdgeTotals&) const = default;
};

struct SwarmPrediction {
  bool all_completed = false;
  std::uint64_t ticks = 0;  // lockstep ticks until everyone finished
  std::vector<bool> completed;                  // per node
  std::vector<std::uint64_t> completion_tick;   // per node (0 = never)
  std::vector<std::size_t> final_symbols;       // per node distinct symbols
  std::vector<SwarmEdgeTotals> edges;
  /// Receiver-half handshake retries summed over all edges (nonzero only
  /// under shaped links, where a lost bundle forces a retry).
  std::size_t handshake_retries = 0;
};

/// The simulator's answer for this spec: the same script over in-process
/// links, every edge in lockstep. Unshaped specs run over perfect Pipes
/// (byte-exact prediction); specs with access profiles run over
/// ChannelLinks carrying each receiving node's loss/delay shaping — the
/// completion-tick and retry figures become the *band centers* the shaped
/// real run is gated against, not byte-exact totals.
SwarmPrediction predict_swarm(const SwarmSpec& spec);

/// --- Real run (one process) ------------------------------------------------

/// Wire totals and backend counters of one locally-owned edge half.
struct SwarmHalfReport {
  std::size_t edge_index = 0;
  bool sender_half = false;
  wire::TransportStats stats;
  wire::UdpTransportStats udp;
  std::size_t symbols_sent = 0;       // sender halves
  std::size_t handshake_retries = 0;  // receiver halves
  /// Receiver half gave up: handshake retry budget exhausted with no
  /// reply (dead or unreachable sender). The node abandons the half and
  /// keeps serving its other edges.
  bool session_failed = false;
  double pool_hit_rate = 0.0;
};

struct SwarmNodeReport {
  std::size_t node = 0;
  bool completed = false;
  std::uint64_t completion_tick = 0;
  std::uint64_t end_tick = 0;
  std::uint64_t ticks_slept = 0;  // EventLoop::ticks_skipped
  double wall_ms = 0.0;
  std::vector<SwarmHalfReport> halves;
};

/// Runs node `id` of the swarm for real: binds one UDP socket per local
/// edge half, signals readiness by creating `ready_file`, blocks until
/// `go_file` exists (the harness's start barrier — bundles must never race
/// an unbound peer socket, or retries would diverge from the prediction),
/// then drives its halves on EventLoop's wall-clock poll loop until its
/// uploads exhaust their quotas and its download completes (or max_ticks).
/// A non-empty `progress_file` is rewritten periodically with `tick
/// <now> symbols <held> completed <0|1>` so the harness watchdog can tell
/// a slow node from a wedged one.
SwarmNodeReport run_swarm_node(const SwarmSpec& spec, std::size_t id,
                               const std::string& ready_file,
                               const std::string& go_file,
                               const std::string& progress_file = "");

}  // namespace icd::core

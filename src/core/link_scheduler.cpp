#include "core/link_scheduler.hpp"

#include <algorithm>
#include <functional>

#include "core/endpoint.hpp"

namespace icd::core {

void LinkScheduler::schedule(std::uint64_t at, std::uint64_t key) {
  heap_.emplace_back(at, key);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

std::optional<std::pair<std::uint64_t, std::uint64_t>> LinkScheduler::peek()
    const {
  if (heap_.empty()) return std::nullopt;
  return heap_.front();
}

std::optional<std::uint64_t> LinkScheduler::pop_due(std::uint64_t now) {
  if (heap_.empty() || heap_.front().first > now) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  const std::uint64_t key = heap_.back().second;
  heap_.pop_back();
  return key;
}

std::size_t data_frame_bytes_hint(std::size_t block_size) {
  // Frame header + symbol id/constituents prefix on top of one payload.
  return block_size + 64;
}

std::optional<std::uint64_t> next_service_time(const SenderEndpoint& sender,
                                               const ReceiverEndpoint& receiver,
                                               const LinkTimes& times,
                                               std::uint64_t now) {
  if (!times.timed) return now;
  // The handshake needs every tick: retry clocks count quiet ticks, and
  // bundle pieces may still be crossing the (delayed) link.
  if (!receiver.transfer_started() || !sender.transfer_active()) return now;
  std::optional<std::uint64_t> at = times.next_arrival;
  if (!sender.satisfied() && times.send_credit_at) {
    at = at ? std::min(*at, *times.send_credit_at) : *times.send_credit_at;
  }
  return at;
}

}  // namespace icd::core

#include "core/event_loop.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <tuple>

#include "core/endpoint.hpp"

namespace icd::core {

namespace {

/// Strict (at, kind, key) order; `after` = the min-heap comparator.
inline bool after(const Event& a, const Event& b) {
  return std::tie(a.at, a.kind, a.key) > std::tie(b.at, b.kind, b.key);
}

}  // namespace

void EventLoop::schedule(std::uint64_t at, EventKind kind, std::uint64_t key) {
  heap_.push_back(Event{at, kind, key});
  std::push_heap(heap_.begin(), heap_.end(), after);
}

std::optional<Event> EventLoop::peek() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.front();
}

std::optional<Event> EventLoop::pop_due(std::uint64_t now) {
  if (heap_.empty() || heap_.front().at > now) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), after);
  const Event event = heap_.back();
  heap_.pop_back();
  ++events_processed_;
  return event;
}

void EventLoop::enable_wall_clock(std::uint64_t ns_per_tick) {
  wall_enabled_ = true;
  wall_ns_per_tick_ = std::max<std::uint64_t>(1, ns_per_tick);
  wall_epoch_ = std::chrono::steady_clock::now();
}

std::uint64_t EventLoop::wall_now() const {
  if (!wall_enabled_) return now_;
  const auto elapsed = std::chrono::steady_clock::now() - wall_epoch_;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                      .count();
  return static_cast<std::uint64_t>(ns < 0 ? 0 : ns) / wall_ns_per_tick_;
}

void EventLoop::watch_fd(int fd) {
  if (std::find(watched_fds_.begin(), watched_fds_.end(), fd) ==
      watched_fds_.end()) {
    watched_fds_.push_back(fd);
  }
}

void EventLoop::unwatch_fd(int fd) {
  watched_fds_.erase(std::remove(watched_fds_.begin(), watched_fds_.end(), fd),
                     watched_fds_.end());
}

bool EventLoop::poll_wait(std::uint64_t max_wait_ticks) {
  const std::uint64_t start = wall_now();
  // The sleep deadline: the earliest scheduled virtual event, capped so a
  // deep queue can never park the loop indefinitely. An event already due
  // (or an empty cap) degrades to a non-blocking readability check.
  std::uint64_t due = start + max_wait_ticks;
  if (const auto next = peek(); next && next->at < due) {
    due = std::max(next->at, start);
  }
  int timeout_ms = 0;
  if (due > start) {
    // Round up: waking a fraction of a tick late is harmless, waking early
    // spins. Cap defensively at one minute per poll round.
    const std::uint64_t ns = (due - start) * wall_ns_per_tick_;
    timeout_ms = static_cast<int>(
        std::min<std::uint64_t>(ns / 1'000'000 + 1, 60'000));
  }
  std::vector<pollfd> fds;
  fds.reserve(watched_fds_.size());
  for (const int fd : watched_fds_) fds.push_back(pollfd{fd, POLLIN, 0});
  int ready = 0;
  do {
    ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  } while (ready < 0 && errno == EINTR);
  // Ticks slept across were provably empty for this process — the
  // wall-clock analogue of skip_to's jump accounting.
  const std::uint64_t wall = wall_now();
  if (wall > now_ + 1) ticks_skipped_ += wall - now_ - 1;
  advance_to(wall);
  return ready > 0;
}

namespace {

/// Same strict (at, kind, key) order as the EventLoop heap.
struct EntryAfter {
  template <typename Entry>
  bool operator()(const Entry& a, const Entry& b) const {
    return std::tie(a.event.at, a.event.kind, a.event.key) >
           std::tie(b.event.at, b.event.kind, b.event.key);
  }
};

}  // namespace

void PlanningQueue::ensure_keys(std::size_t count) {
  if (count <= stamps_.size()) return;
  stamps_.resize(count, 0);
  live_.resize(count, 0);
  live_event_.resize(count);
}

void PlanningQueue::begin_rebuild() {
  heap_.clear();
  std::fill(live_.begin(), live_.end(), 0);
  live_count_ = 0;
  pending_full_ = false;
  ++stats_.full_rebuilds;
}

void PlanningQueue::set(std::uint64_t key, const std::optional<Event>& event) {
  ensure_keys(key + 1);
  ++stamps_[key];  // invalidates any heap entry this key had
  if (!event) {
    if (live_[key]) {
      live_[key] = 0;
      --live_count_;
    }
    return;
  }
  if (!live_[key]) {
    live_[key] = 1;
    ++live_count_;
  }
  live_event_[key] = *event;
  heap_.push_back(Entry{*event, stamps_[key]});
  std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
  ++stats_.pushes;
  if (heap_.size() > 2 * live_count_ + 64) compact();
}

void PlanningQueue::drop_stale_front() {
  while (!heap_.empty() && !fresh(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
    ++stats_.stale_skipped;
  }
}

void PlanningQueue::take_due(std::uint64_t now,
                             std::vector<std::uint64_t>& out) {
  for (;;) {
    drop_stale_front();
    if (heap_.empty() || heap_.front().event.at >= now) return;
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    const std::uint64_t key = heap_.back().event.key;
    heap_.pop_back();
    live_[key] = 0;
    --live_count_;
    ++stats_.pops;
    out.push_back(key);
  }
}

std::optional<Event> PlanningQueue::peek() {
  drop_stale_front();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().event;
}

void PlanningQueue::compact() {
  heap_.clear();
  for (std::uint64_t key = 0; key < live_.size(); ++key) {
    if (live_[key]) heap_.push_back(Entry{live_event_[key], stamps_[key]});
  }
  std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
  ++stats_.compactions;
}

std::size_t data_frame_bytes_hint(std::size_t block_size) {
  // Frame header + symbol id/constituents prefix on top of one payload.
  return block_size + 64;
}

namespace {

inline void fold_min(std::optional<std::uint64_t>& at, std::uint64_t t) {
  at = at ? std::min(*at, t) : t;
}

}  // namespace

std::optional<std::uint64_t> next_service_time(const SenderEndpoint& sender,
                                               const ReceiverEndpoint& receiver,
                                               const LinkTimes& times,
                                               std::uint64_t now) {
  if (!times.timed) return now;
  // The handshake needs every tick: retry clocks count quiet ticks, and
  // bundle pieces may still be crossing the (delayed) link.
  if (!receiver.transfer_started() || !sender.transfer_active()) return now;
  std::optional<std::uint64_t> at = times.next_arrival;
  if (!times.sender_down && !sender.satisfied() && times.send_credit_at) {
    fold_min(at, *times.send_credit_at);
  }
  // Sender-liveness: the receiver must be serviced at its expiry tick even
  // if the link is silent — that service is what trips the suspect flag.
  if (const auto liveness = receiver.liveness_due_at()) {
    fold_min(at, *liveness);
  }
  return at;
}

std::optional<std::uint64_t> finish_event_planning(
    EventLoop& loop, std::uint64_t now, std::size_t refresh_interval,
    bool any_incomplete) {
  if (!any_incomplete) return std::nullopt;
  const std::size_t interval = std::max<std::size_t>(1, refresh_interval);
  loop.schedule(((now + interval - 1) / interval) * interval,
                EventKind::kRefresh, 0);
  const auto next = loop.peek();
  if (!next) return std::nullopt;
  return std::max(next->at, now);
}

void schedule_download_events(EventLoop& loop, const SenderEndpoint& sender,
                              const ReceiverEndpoint& receiver,
                              const LinkTimes& times, std::uint64_t now,
                              std::uint64_t key) {
  if (!times.timed) {
    // Event-clock link: one hop of residency advances with every tick, so
    // the download is genuinely due each tick — nothing to skip.
    loop.schedule(now, EventKind::kService, key);
    return;
  }
  if (times.next_arrival) {
    loop.schedule(std::max(*times.next_arrival, now), EventKind::kFrameArrival,
                  key);
  }
  if (!receiver.transfer_started() || !sender.transfer_active()) {
    // Handshaking: between arrivals the observable work is the receiver's
    // retry clock, which fires at a known virtual tick. A receiver that
    // has not yet been serviced under the virtual clock reports no
    // deadline and is conservatively due now. A receiver that exhausted
    // its retry budget (failed()) has no future retry — the engine tears
    // the session down; scheduling nothing is what lets the span close.
    if (!receiver.failed()) {
      const auto retry = receiver.retry_due_at();
      loop.schedule(std::max(retry.value_or(now), now),
                    EventKind::kHandshakeRetry, key);
    }
    // A sender already in transfer (its reply still crossing toward the
    // receiver) streams on every credit tick of this window, exactly as
    // the lockstep loop drives it.
    if (!times.sender_down && sender.transfer_active() &&
        !sender.satisfied() && times.send_credit_at) {
      loop.schedule(std::max(*times.send_credit_at, now),
                    EventKind::kSendCredit, key);
    }
    return;
  }
  if (!times.sender_down && !sender.satisfied() && times.send_credit_at) {
    loop.schedule(std::max(*times.send_credit_at, now), EventKind::kSendCredit,
                  key);
  }
  // Sender-liveness expiry is a real event: the service at that tick is
  // what declares the silent sender suspect, so a jumping driver must not
  // skip past it.
  if (const auto liveness = receiver.liveness_due_at()) {
    loop.schedule(std::max(*liveness, now), EventKind::kLivenessProbe, key);
  }
  // A drained link whose sender is satisfied schedules nothing: the
  // receiver's flow-control re-issues ride arrival services, so with no
  // arrivals pending there is provably nothing left to do.
}

}  // namespace icd::core

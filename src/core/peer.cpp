#include "core/peer.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "codec/block_source.hpp"
#include "util/hash.hpp"

namespace icd::core {

Peer::Peer(std::string name, codec::CodeParameters params,
           codec::DegreeDistribution distribution,
           std::size_t sketch_permutations)
    : name_(std::move(name)), params_(params),
      distribution_(std::move(distribution)),
      block_decoder_(params, distribution_),
      sketch_(kSymbolIdUniverse, sketch_permutations),
      next_fresh_id_(util::hash64(util::fnv1a(std::as_bytes(std::span(
                         name_.data(), name_.size()))),
                     params.session_seed) |
                     (std::uint64_t{1} << 62)) {}

std::size_t Peer::absorb_acquisitions() {
  const auto& log = recode_decoder_.acquisition_log();
  std::size_t fresh = 0;
  while (log_offset_ < log.size()) {
    const std::uint64_t id = log[log_offset_++];
    symbol_ids_.push_back(id);
    sketch_.update(id % kSymbolIdUniverse);
    // Span feed: the block decoder copies the payload into its own solver;
    // no intermediate EncodedSymbol is materialized.
    block_decoder_.add_symbol(id, recode_decoder_.payload(id));
    ++fresh;
  }
  return fresh;
}

std::size_t Peer::receive_encoded(const codec::EncodedSymbol& symbol) {
  recode_decoder_.add_held_symbol(symbol);
  return absorb_acquisitions();
}

std::size_t Peer::receive_recoded(const codec::RecodedSymbol& symbol) {
  recode_decoder_.add_recoded(symbol);
  return absorb_acquisitions();
}

std::size_t Peer::receive_encoded(const codec::EncodedSymbolView& symbol) {
  recode_decoder_.add_held_symbol(symbol);
  return absorb_acquisitions();
}

std::size_t Peer::receive_recoded(const codec::RecodedSymbolView& symbol) {
  recode_decoder_.add_recoded(symbol);
  return absorb_acquisitions();
}

std::vector<std::uint8_t> Peer::content(std::size_t content_size) const {
  return codec::BlockSource::restore(block_decoder_.blocks(), content_size);
}

filter::BloomFilter Peer::bloom_summary(double bits_per_element) const {
  auto filter = filter::BloomFilter::with_bits_per_element(
      std::max<std::size_t>(1, symbol_ids_.size()), bits_per_element);
  filter.insert_all(symbol_ids_);
  return filter;
}

art::ReconciliationTree Peer::reconciliation_tree() const {
  return art::ReconciliationTree(symbol_ids_);
}

art::ArtSummary Peer::art_summary(double leaf_bits_per_element,
                                  double internal_bits_per_element) const {
  return art::ArtSummary::build(reconciliation_tree(), leaf_bits_per_element,
                                internal_bits_per_element);
}

codec::EncodedSymbol Peer::encode_fresh() {
  if (!has_content()) {
    throw std::logic_error("Peer::encode_fresh: content not yet decoded");
  }
  if (!decoded_blocks_) decoded_blocks_ = block_decoder_.blocks();
  const std::uint64_t id = next_fresh_id_++;
  codec::EncodedSymbol symbol;
  symbol.id = id;
  for (const std::uint32_t b :
       codec::symbol_neighbors(params_, distribution_, id)) {
    codec::xor_into(symbol.payload, (*decoded_blocks_)[b]);
  }
  return symbol;
}

codec::RecodedSymbol Peer::recode(std::size_t degree,
                                  util::Xoshiro256& rng) const {
  codec::RecodedSymbol symbol;
  recode_into(symbol, degree, rng);
  return symbol;
}

codec::RecodedSymbol Peer::recode_from(
    const std::vector<std::uint64_t>& domain_ids, std::size_t degree,
    util::Xoshiro256& rng) const {
  codec::RecodedSymbol symbol;
  recode_from_into(symbol, domain_ids, degree, rng);
  return symbol;
}

void Peer::recode_into(codec::RecodedSymbol& out, std::size_t degree,
                       util::Xoshiro256& rng) const {
  // The whole working set is the domain and every id in it is held by
  // construction: sample symbol_ids_ directly, skipping the held filter.
  blend_recode(out, symbol_ids_, degree, rng);
}

void Peer::recode_from_into(codec::RecodedSymbol& out,
                            const std::vector<std::uint64_t>& domain_ids,
                            std::size_t degree, util::Xoshiro256& rng) const {
  recode_held_scratch_.clear();
  recode_held_scratch_.reserve(domain_ids.size());
  for (const std::uint64_t id : domain_ids) {
    if (recode_decoder_.has_symbol(id)) recode_held_scratch_.push_back(id);
  }
  blend_recode(out, recode_held_scratch_, degree, rng);
}

void Peer::blend_recode(codec::RecodedSymbol& out,
                        const std::vector<std::uint64_t>& held,
                        std::size_t degree, util::Xoshiro256& rng) const {
  if (held.empty()) {
    throw std::invalid_argument("Peer::recode_from: no held ids in domain");
  }
  const std::size_t d = std::min(std::max<std::size_t>(degree, 1), held.size());
  // Reserve to the degree cap (not just d): capacities then reach steady
  // state on the first call instead of whenever the degree distribution
  // happens to draw its maximum — which keeps the send path's
  // zero-allocation guarantee deterministic.
  const std::size_t hint = std::max(
      d, std::min(held.size(), codec::kDefaultRecodeDegreeLimit));
  recode_pick_scratch_.reserve(hint);
  util::sample_without_replacement_into(recode_pick_scratch_, held.size(), d,
                                        rng);
  out.constituents.clear();
  out.constituents.reserve(hint);
  out.payload.clear();
  for (const std::uint64_t pick : recode_pick_scratch_) {
    const std::uint64_t id = held[static_cast<std::size_t>(pick)];
    out.constituents.push_back(id);
    codec::xor_into(out.payload, recode_decoder_.payload(id));
  }
  std::sort(out.constituents.begin(), out.constituents.end());
}

}  // namespace icd::core

#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/swarm.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"

namespace icd::core {

namespace {

/// Parse-time error with the file origin and line number — every rejection
/// path in the parser routes through this so a malformed catalog entry
/// names its own location.
[[noreturn]] void fail(const std::string& origin, std::size_t line,
                       const std::string& why) {
  throw std::runtime_error(origin + " line " + std::to_string(line) + ": " +
                           why);
}

/// Probability fields must be actual probabilities; a rate of 1.5 is a
/// typo, not a request for certain loss.
double read_probability(std::istringstream& fields, const std::string& origin,
                        std::size_t line, const std::string& what) {
  double value = 0.0;
  if (!(fields >> value) || value < 0.0 || value > 1.0 || !std::isfinite(value)) {
    fail(origin, line, what + " must be a probability in [0, 1]");
  }
  return value;
}

double read_rate(std::istringstream& fields, const std::string& origin,
                 std::size_t line, const std::string& what) {
  double value = 0.0;
  if (!(fields >> value) || value < 0.0 || !std::isfinite(value)) {
    fail(origin, line, what + " must be a finite non-negative rate");
  }
  return value;
}

template <typename T>
T read_integer(std::istringstream& fields, const std::string& origin,
               std::size_t line, const std::string& what) {
  // istream would happily wrap "-5" into a huge unsigned count; peek at the
  // raw token so negative input is rejected with its own message.
  std::string token;
  if (!(fields >> token) || token.empty() || token[0] == '-') {
    fail(origin, line, what + " must be a non-negative integer");
  }
  std::istringstream value_in(token);
  T value{};
  if (!(value_in >> value) || !value_in.eof()) {
    fail(origin, line, what + " must be a non-negative integer");
  }
  return value;
}

void reject_trailing(std::istringstream& fields, const std::string& origin,
                     std::size_t line, const std::string& key) {
  std::string extra;
  if (fields >> extra) {
    fail(origin, line, "trailing tokens after '" + key + "': '" + extra + "'");
  }
}

/// Independent-loss composition: survive both legs.
double combine_loss(double a, double b) { return 1.0 - (1.0 - a) * (1.0 - b); }

}  // namespace

std::optional<std::size_t> Scenario::profile_index(std::size_t peer) const {
  const auto it = access.find(peer);
  if (it != access.end()) return it->second;
  return access_default;
}

Scenario Scenario::parse(std::istream& in, const std::string& origin) {
  Scenario scenario;
  scenario.profiles.clear();
  std::string line;
  std::size_t line_number = 0;
  std::set<std::string> seen_scalar;
  std::set<std::string> seen_gate;
  // Access lines may reference profiles defined later in the file; collect
  // (line, peer-or-default, profile-name) and resolve once everything is
  // read.
  struct AccessLine {
    std::size_t line = 0;
    bool is_default = false;
    std::size_t peer = 0;
    std::string profile;
  };
  std::vector<AccessLine> access_lines;

  const auto scalar_once = [&](const std::string& key) {
    if (!seen_scalar.insert(key).second) {
      fail(origin, line_number, "duplicate key '" + key + "'");
    }
  };

  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key) || key[0] == '#') continue;

    if (key == "name") {
      scalar_once(key);
      if (!(fields >> scenario.name)) fail(origin, line_number, "name missing");
      reject_trailing(fields, origin, line_number, key);
    } else if (key == "peers") {
      scalar_once(key);
      scenario.peers =
          read_integer<std::size_t>(fields, origin, line_number, key);
      reject_trailing(fields, origin, line_number, key);
    } else if (key == "fed") {
      scalar_once(key);
      scenario.fed =
          read_integer<std::size_t>(fields, origin, line_number, key);
      reject_trailing(fields, origin, line_number, key);
    } else if (key == "content_bytes") {
      scalar_once(key);
      scenario.content_bytes =
          read_integer<std::size_t>(fields, origin, line_number, key);
      reject_trailing(fields, origin, line_number, key);
    } else if (key == "block_size") {
      scalar_once(key);
      scenario.block_size =
          read_integer<std::size_t>(fields, origin, line_number, key);
      reject_trailing(fields, origin, line_number, key);
    } else if (key == "seed") {
      scalar_once(key);
      scenario.seed =
          read_integer<std::uint64_t>(fields, origin, line_number, key);
      reject_trailing(fields, origin, line_number, key);
    } else if (key == "strategy") {
      scalar_once(key);
      std::string name;
      if (!(fields >> name)) fail(origin, line_number, "strategy missing");
      const auto strategy = parse_strategy_key(name);
      if (!strategy) {
        fail(origin, line_number, "unknown strategy '" + name + "'");
      }
      scenario.strategy = *strategy;
      reject_trailing(fields, origin, line_number, key);
    } else if (key == "mtu" || key == "refresh_interval" ||
               key == "max_peer_sessions" || key == "handshake_retry_ticks" ||
               key == "liveness_timeout_ticks" ||
               key == "handshake_backoff_factor" ||
               key == "handshake_backoff_cap_ticks" ||
               key == "max_handshake_retries" || key == "suspect_ttl_ticks") {
      scalar_once(key);
      const auto value =
          read_integer<std::size_t>(fields, origin, line_number, key);
      reject_trailing(fields, origin, line_number, key);
      if (key == "mtu") scenario.mtu = value;
      else if (key == "refresh_interval") scenario.refresh_interval = value;
      else if (key == "max_peer_sessions") scenario.max_peer_sessions = value;
      else if (key == "handshake_retry_ticks") scenario.handshake_retry_ticks = value;
      else if (key == "liveness_timeout_ticks") scenario.liveness_timeout_ticks = value;
      else if (key == "handshake_backoff_factor") scenario.handshake_backoff_factor = value;
      else if (key == "handshake_backoff_cap_ticks") scenario.handshake_backoff_cap_ticks = value;
      else if (key == "max_handshake_retries") scenario.max_handshake_retries = value;
      else scenario.suspect_ttl_ticks = value;
    } else if (key == "flow_control") {
      scalar_once(key);
      const auto value =
          read_integer<std::size_t>(fields, origin, line_number, key);
      if (value > 1) fail(origin, line_number, "flow_control must be 0 or 1");
      scenario.flow_control = value == 1;
      reject_trailing(fields, origin, line_number, key);
    } else if (key == "max_ticks") {
      scalar_once(key);
      scenario.max_ticks =
          read_integer<std::uint64_t>(fields, origin, line_number, key);
      reject_trailing(fields, origin, line_number, key);
    } else if (key == "profile") {
      LinkProfile profile;
      if (!(fields >> profile.name)) {
        fail(origin, line_number, "profile needs a name");
      }
      for (const auto& existing : scenario.profiles) {
        if (existing.name == profile.name) {
          fail(origin, line_number,
               "duplicate profile '" + profile.name + "'");
        }
      }
      std::string attribute;
      while (fields >> attribute) {
        if (attribute == "up") {
          profile.up_rate = read_rate(fields, origin, line_number, "up");
        } else if (attribute == "down") {
          profile.down_rate = read_rate(fields, origin, line_number, "down");
        } else if (attribute == "delay") {
          profile.delay_ticks =
              read_integer<std::uint64_t>(fields, origin, line_number, "delay");
        } else if (attribute == "jitter") {
          profile.jitter_ticks = read_integer<std::uint64_t>(
              fields, origin, line_number, "jitter");
        } else if (attribute == "loss") {
          profile.loss_rate =
              read_probability(fields, origin, line_number, "loss");
        } else if (attribute == "ge") {
          profile.ge_loss_good =
              read_probability(fields, origin, line_number, "ge loss_good");
          profile.ge_loss_bad =
              read_probability(fields, origin, line_number, "ge loss_bad");
          profile.ge_p_good_bad =
              read_probability(fields, origin, line_number, "ge p_good_bad");
          profile.ge_p_bad_good =
              read_probability(fields, origin, line_number, "ge p_bad_good");
          if (profile.ge_loss_bad <= 0.0) {
            fail(origin, line_number,
                 "ge loss_bad must be > 0 (it enables the chain)");
          }
          if (profile.ge_p_bad_good <= 0.0) {
            fail(origin, line_number,
                 "ge p_bad_good must be > 0 (a permanent bad state never "
                 "recovers)");
          }
        } else {
          fail(origin, line_number,
               "unknown profile attribute '" + attribute + "'");
        }
      }
      scenario.profiles.push_back(std::move(profile));
    } else if (key == "access") {
      std::string who;
      if (!(fields >> who)) {
        fail(origin, line_number, "access needs a peer id or 'default'");
      }
      AccessLine entry;
      entry.line = line_number;
      if (who == "default") {
        entry.is_default = true;
      } else {
        std::istringstream who_in(who);
        if (who[0] == '-' || !(who_in >> entry.peer) || !who_in.eof()) {
          fail(origin, line_number,
               "access peer must be a non-negative id or 'default'");
        }
      }
      if (!(fields >> entry.profile)) {
        fail(origin, line_number, "access needs a profile name");
      }
      reject_trailing(fields, origin, line_number, key);
      access_lines.push_back(std::move(entry));
    } else if (key == "arrival") {
      std::string kind;
      if (!(fields >> kind)) {
        fail(origin, line_number, "arrival needs a kind (flash | poisson)");
      }
      ArrivalProcess arrival;
      if (kind == "flash") {
        arrival.kind = ArrivalProcess::Kind::kFlash;
        arrival.at =
            read_integer<std::uint64_t>(fields, origin, line_number, "at");
        arrival.count =
            read_integer<std::size_t>(fields, origin, line_number, "count");
        std::string extra;
        if (fields >> extra) {
          if (extra != "ramp") {
            fail(origin, line_number,
                 "trailing tokens after 'arrival flash': '" + extra + "'");
          }
          arrival.ramp_ticks = read_integer<std::uint64_t>(
              fields, origin, line_number, "ramp");
          reject_trailing(fields, origin, line_number, key);
        }
      } else if (kind == "poisson") {
        arrival.kind = ArrivalProcess::Kind::kPoisson;
        arrival.at =
            read_integer<std::uint64_t>(fields, origin, line_number, "from");
        arrival.count =
            read_integer<std::size_t>(fields, origin, line_number, "count");
        arrival.rate = read_rate(fields, origin, line_number, "rate");
        if (arrival.rate <= 0.0) {
          fail(origin, line_number, "poisson rate must be > 0");
        }
        arrival.seed =
            read_integer<std::uint64_t>(fields, origin, line_number, "seed");
        reject_trailing(fields, origin, line_number, key);
      } else {
        fail(origin, line_number, "unknown arrival kind '" + kind + "'");
      }
      if (arrival.count == 0) {
        fail(origin, line_number, "arrival count must be >= 1");
      }
      scenario.arrivals.push_back(arrival);
    } else if (key == "crash") {
      FaultPlan::Crash crash;
      crash.at = read_integer<std::uint64_t>(fields, origin, line_number, "at");
      crash.peer =
          read_integer<std::size_t>(fields, origin, line_number, "peer");
      reject_trailing(fields, origin, line_number, key);
      scenario.faults.crashes.push_back(crash);
    } else if (key == "restart") {
      FaultPlan::Restart restart;
      restart.at =
          read_integer<std::uint64_t>(fields, origin, line_number, "at");
      restart.peer =
          read_integer<std::size_t>(fields, origin, line_number, "peer");
      reject_trailing(fields, origin, line_number, key);
      scenario.faults.restarts.push_back(restart);
    } else if (key == "stall") {
      FaultPlan::Stall stall;
      stall.from =
          read_integer<std::uint64_t>(fields, origin, line_number, "from");
      stall.until =
          read_integer<std::uint64_t>(fields, origin, line_number, "until");
      stall.peer =
          read_integer<std::size_t>(fields, origin, line_number, "peer");
      reject_trailing(fields, origin, line_number, key);
      if (stall.until <= stall.from) {
        fail(origin, line_number, "stall window must have until > from");
      }
      scenario.faults.stalls.push_back(stall);
    } else if (key == "blackout") {
      FaultPlan::Blackout blackout;
      blackout.from =
          read_integer<std::uint64_t>(fields, origin, line_number, "from");
      blackout.until =
          read_integer<std::uint64_t>(fields, origin, line_number, "until");
      blackout.sender =
          read_integer<std::size_t>(fields, origin, line_number, "sender");
      blackout.receiver =
          read_integer<std::size_t>(fields, origin, line_number, "receiver");
      reject_trailing(fields, origin, line_number, key);
      if (blackout.until <= blackout.from) {
        fail(origin, line_number, "blackout window must have until > from");
      }
      if (blackout.sender == blackout.receiver) {
        fail(origin, line_number, "blackout edge must join distinct peers");
      }
      scenario.faults.blackouts.push_back(blackout);
    } else if (key == "gate") {
      std::string which;
      if (!(fields >> which)) {
        fail(origin, line_number,
             "gate needs a kind (deadline | max_failed_sessions | "
             "control_budget)");
      }
      if (!seen_gate.insert(which).second) {
        fail(origin, line_number, "duplicate gate '" + which + "'");
      }
      if (which == "deadline") {
        scenario.gates.deadline_ticks =
            read_integer<std::uint64_t>(fields, origin, line_number, which);
      } else if (which == "max_failed_sessions") {
        scenario.gates.max_failed_sessions =
            read_integer<std::size_t>(fields, origin, line_number, which);
      } else if (which == "control_budget") {
        scenario.gates.control_budget_bytes =
            read_integer<std::size_t>(fields, origin, line_number, which);
      } else {
        fail(origin, line_number, "unknown gate '" + which + "'");
      }
      reject_trailing(fields, origin, line_number, key);
    } else {
      fail(origin, line_number, "unknown key '" + key + "'");
    }
  }

  // --- Cross-line validation ----------------------------------------------
  if (scenario.peers < 2) {
    throw std::runtime_error(origin + ": peers must be >= 2");
  }
  if (scenario.fed == 0 || scenario.fed > scenario.peers) {
    throw std::runtime_error(origin + ": fed must be in [1, peers]");
  }
  if (scenario.block_size == 0 || scenario.content_bytes < scenario.block_size ||
      scenario.content_bytes % scenario.block_size != 0) {
    throw std::runtime_error(
        origin + ": content_bytes must be a positive multiple of block_size");
  }
  if (scenario.max_ticks == 0) {
    throw std::runtime_error(origin + ": max_ticks must be > 0");
  }
  std::size_t total_joins = 0;
  for (const auto& arrival : scenario.arrivals) total_joins += arrival.count;
  const std::size_t population = scenario.peers + total_joins;
  for (const auto& crash : scenario.faults.crashes) {
    if (crash.peer >= population) {
      throw std::runtime_error(origin + ": crash names peer " +
                               std::to_string(crash.peer) +
                               " beyond the swarm population");
    }
  }
  for (const auto& restart : scenario.faults.restarts) {
    if (restart.peer >= population) {
      throw std::runtime_error(origin + ": restart names peer " +
                               std::to_string(restart.peer) +
                               " beyond the swarm population");
    }
  }
  for (const auto& stall : scenario.faults.stalls) {
    if (stall.peer >= population) {
      throw std::runtime_error(origin + ": stall names peer " +
                               std::to_string(stall.peer) +
                               " beyond the swarm population");
    }
  }
  for (const auto& blackout : scenario.faults.blackouts) {
    if (blackout.sender >= population || blackout.receiver >= population) {
      throw std::runtime_error(origin +
                               ": blackout edge beyond the swarm population");
    }
  }
  for (const auto& entry : access_lines) {
    std::optional<std::size_t> index;
    for (std::size_t i = 0; i < scenario.profiles.size(); ++i) {
      if (scenario.profiles[i].name == entry.profile) index = i;
    }
    if (!index) {
      fail(origin, entry.line,
           "access references unknown profile '" + entry.profile + "'");
    }
    if (entry.is_default) {
      if (scenario.access_default) {
        fail(origin, entry.line, "duplicate 'access default'");
      }
      scenario.access_default = index;
    } else {
      if (entry.peer >= population) {
        fail(origin, entry.line,
             "access names peer " + std::to_string(entry.peer) +
                 " beyond the swarm population");
      }
      if (!scenario.access.emplace(entry.peer, *index).second) {
        fail(origin, entry.line,
             "duplicate access for peer " + std::to_string(entry.peer));
      }
    }
  }
  return scenario;
}

Scenario Scenario::parse_text(const std::string& text,
                              const std::string& origin) {
  std::istringstream in(text);
  return parse(in, origin);
}

Scenario Scenario::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Scenario: cannot open " + path);
  return parse(in, std::filesystem::path(path).filename().string());
}

wire::ChannelConfig compose_edge(const LinkProfile* sender,
                                 const LinkProfile* receiver,
                                 const wire::ChannelConfig& base) {
  wire::ChannelConfig config = base;
  const double up = sender ? sender->up_rate : 0.0;
  const double down = receiver ? receiver->down_rate : 0.0;
  if (up > 0.0 && down > 0.0) {
    config.rate_bytes_per_tick = std::min(up, down);
  } else {
    config.rate_bytes_per_tick = std::max(up, down);
  }
  config.delay_ticks = (sender ? sender->delay_ticks : 0) +
                       (receiver ? receiver->delay_ticks : 0);
  config.jitter_ticks = (sender ? sender->jitter_ticks : 0) +
                        (receiver ? receiver->jitter_ticks : 0);
  const double plain = combine_loss(sender ? sender->loss_rate : 0.0,
                                    receiver ? receiver->loss_rate : 0.0);
  // A Gilbert-Elliott chain on either side replaces the Bernoulli draw
  // (the channel's contract); the far end's plain loss folds into both of
  // its states so neither impairment is silently dropped. When both sides
  // carry a chain, the burstier one (larger stationary bad-state share)
  // wins — composing two Markov chains per frame is not worth the extra
  // machinery for an access-class model.
  const LinkProfile* ge = nullptr;
  const auto bad_share = [](const LinkProfile& p) {
    return p.ge_p_good_bad / (p.ge_p_good_bad + p.ge_p_bad_good);
  };
  if (sender && sender->ge_loss_bad > 0.0) ge = sender;
  if (receiver && receiver->ge_loss_bad > 0.0 &&
      (!ge || bad_share(*receiver) > bad_share(*ge))) {
    ge = receiver;
  }
  if (ge) {
    config.loss_rate = 0.0;
    config.ge_loss_good = combine_loss(ge->ge_loss_good, plain);
    config.ge_loss_bad = combine_loss(ge->ge_loss_bad, plain);
    config.ge_p_good_bad = ge->ge_p_good_bad;
    config.ge_p_bad_good = ge->ge_p_bad_good;
  } else {
    config.loss_rate = plain;
    config.ge_loss_good = config.ge_loss_bad = 0.0;
    config.ge_p_good_bad = config.ge_p_bad_good = 0.0;
  }
  return config;
}

std::vector<FaultPlan::Join> generate_arrivals(
    const std::vector<ArrivalProcess>& arrivals) {
  std::vector<FaultPlan::Join> joins;
  for (const auto& arrival : arrivals) {
    if (arrival.kind == ArrivalProcess::Kind::kFlash) {
      if (arrival.ramp_ticks == 0) {
        joins.push_back({arrival.at, arrival.count, false});
      } else {
        // Linear ramp: joiner i enters at at + floor(i * ramp / count), so
        // the crowd spreads evenly over the window with the first joiner at
        // the window start.
        for (std::size_t i = 0; i < arrival.count; ++i) {
          const std::uint64_t offset =
              (static_cast<std::uint64_t>(i) * arrival.ramp_ticks) /
              arrival.count;
          joins.push_back({arrival.at + offset, 1, false});
        }
      }
    } else {
      // Seeded Poisson process: exponential inter-arrival times at `rate`
      // joins per tick, reproducible from the process's own seed.
      util::Xoshiro256 rng(arrival.seed);
      double clock = static_cast<double>(arrival.at);
      for (std::size_t i = 0; i < arrival.count; ++i) {
        const double u = rng.next_double();
        clock += -std::log(1.0 - u) / arrival.rate;
        joins.push_back({static_cast<std::uint64_t>(clock), 1, false});
      }
    }
  }
  std::stable_sort(joins.begin(), joins.end(),
                   [](const FaultPlan::Join& a, const FaultPlan::Join& b) {
                     return a.at < b.at;
                   });
  return joins;
}

CompiledScenario compile_scenario(const Scenario& scenario) {
  CompiledScenario compiled;
  compiled.name = scenario.name;
  compiled.peers = scenario.peers;
  compiled.fed = scenario.fed;
  compiled.max_ticks = scenario.max_ticks;
  compiled.gates = scenario.gates;

  compiled.content.assign(scenario.content_bytes, 0);
  util::Xoshiro256 content_rng(util::mix64(scenario.seed ^ 0x5ce2a9c0));
  for (auto& byte : compiled.content) {
    byte = static_cast<std::uint8_t>(content_rng());
  }

  DeliveryOptions options;
  options.block_size = scenario.block_size;
  options.session_seed = util::mix64(scenario.seed ^ 0x5e551011);
  options.strategy = scenario.strategy;
  options.max_peer_sessions = scenario.max_peer_sessions;
  options.refresh_interval = scenario.refresh_interval;
  options.flow_control = scenario.flow_control;
  options.handshake_retry_ticks = scenario.handshake_retry_ticks;
  options.liveness_timeout_ticks = scenario.liveness_timeout_ticks;
  options.handshake_backoff_factor = scenario.handshake_backoff_factor;
  options.handshake_backoff_cap_ticks = scenario.handshake_backoff_cap_ticks;
  options.max_handshake_retries = scenario.max_handshake_retries;
  options.suspect_ttl_ticks = scenario.suspect_ttl_ticks;
  options.link.mtu = scenario.mtu;

  // The per-edge heterogeneous-link closure. DeliveryOptions is copied per
  // engine run, so the profile table rides in a shared immutable block
  // rather than being duplicated into every std::function copy.
  if (!scenario.profiles.empty()) {
    struct EdgeTable {
      std::vector<LinkProfile> profiles;
      std::map<std::size_t, std::size_t> access;
      std::optional<std::size_t> fallback;
      wire::ChannelConfig base;

      const LinkProfile* lookup(std::size_t peer) const {
        const auto it = access.find(peer);
        if (it != access.end()) return &profiles[it->second];
        if (fallback) return &profiles[*fallback];
        return nullptr;
      }
    };
    auto table = std::make_shared<const EdgeTable>(
        EdgeTable{scenario.profiles, scenario.access, scenario.access_default,
                  options.link});
    options.link_config = [table](std::size_t sender, std::size_t receiver) {
      return compose_edge(table->lookup(sender), table->lookup(receiver),
                          table->base);
    };
  }

  auto plan = std::make_shared<FaultPlan>(scenario.faults);
  plan->joins = generate_arrivals(scenario.arrivals);
  for (const auto& join : plan->joins) compiled.total_joins += join.count;
  if (!plan->empty()) options.faults = plan;

  for (const auto& crash : plan->crashes) {
    compiled.last_fault_tick = std::max(compiled.last_fault_tick, crash.at);
  }
  for (const auto& restart : plan->restarts) {
    compiled.last_fault_tick = std::max(compiled.last_fault_tick, restart.at);
  }
  for (const auto& stall : plan->stalls) {
    compiled.last_fault_tick = std::max(compiled.last_fault_tick, stall.until);
  }
  for (const auto& join : plan->joins) {
    compiled.last_fault_tick = std::max(compiled.last_fault_tick, join.at);
  }
  for (const auto& blackout : plan->blackouts) {
    compiled.last_fault_tick =
        std::max(compiled.last_fault_tick, blackout.until);
  }
  compiled.options = std::move(options);
  return compiled;
}

GateVerdict evaluate_gates(const ScenarioOutcome& outcome,
                           const CompiledScenario& compiled) {
  GateVerdict verdict;
  const std::uint64_t deadline = compiled.gates.deadline_ticks > 0
                                     ? compiled.gates.deadline_ticks
                                     : compiled.max_ticks;
  verdict.survivors_completed = true;
  verdict.deadline_met = true;
  for (std::size_t p = 0; p < outcome.peer_count; ++p) {
    if (outcome.down_at_end[p]) continue;  // crashed without restart
    if (outcome.completion_ticks[p] == 0) {
      verdict.survivors_completed = false;
      verdict.deadline_met = false;
    } else if (outcome.completion_ticks[p] > deadline) {
      verdict.deadline_met = false;
    }
  }
  verdict.failures_within_budget =
      outcome.failed_sessions <= compiled.gates.max_failed_sessions;
  verdict.control_within_budget =
      compiled.gates.control_budget_bytes == 0 ||
      outcome.control_bytes <= compiled.gates.control_budget_bytes;
  return verdict;
}

std::vector<std::string> list_scenario_files(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("scenario catalog directory not found: " + dir);
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      files.push_back(entry.path().string());
    }
  }
  if (files.empty()) {
    throw std::runtime_error("scenario catalog is empty: " + dir);
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace icd::core

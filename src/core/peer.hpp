#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "art/art_summary.hpp"
#include "art/reconciliation_tree.hpp"
#include "codec/decoder.hpp"
#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/recoder.hpp"
#include "filter/bloom.hpp"
#include "sketch/minwise.hpp"
#include "util/random.hpp"

/// A collaborating end-system (full-fidelity: real payloads, real decoding).
///
/// A Peer runs the paper's two peeling levels stacked:
///   * the recode decoder resolves incoming *recoded* symbols against the
///     encoded symbols already held, recovering fresh encoded symbols
///     (Section 5.4.2), and
///   * every encoded symbol — received directly or recovered above — feeds
///     the block decoder, which reconstructs the file by the substitution
///     rule (Section 5.4.1).
///
/// It also maintains the control-plane artifacts of Sections 4 and 5
/// incrementally: a min-wise sketch updated per arrival, and on-demand
/// Bloom-filter / ART summaries of the working set.
namespace icd::core {

/// Universe the min-wise permutations cover; symbol ids live below 2^63.
inline constexpr std::uint64_t kSymbolIdUniverse = std::uint64_t{1} << 63;

class Peer {
 public:
  Peer(std::string name, codec::CodeParameters params,
       codec::DegreeDistribution distribution,
       std::size_t sketch_permutations = sketch::MinwiseSketch::kDefaultPermutations);

  const std::string& name() const { return name_; }
  const codec::CodeParameters& parameters() const { return params_; }

  /// --- Receiving ---------------------------------------------------------

  /// Feeds a regular encoded symbol; returns the number of new encoded
  /// symbols it yielded (>= 1 when novel: the symbol itself plus any
  /// buffered recoded symbols it unblocked).
  std::size_t receive_encoded(const codec::EncodedSymbol& symbol);

  /// Feeds a recoded symbol; returns the number of new encoded symbols
  /// recovered (0 if it was redundant or had to be buffered).
  std::size_t receive_recoded(const codec::RecodedSymbol& symbol);

  /// View variants for symbols decoded in place from a transport frame:
  /// the payload is copied exactly once, into the recode decoder (the
  /// single-copy rule of the zero-copy receive path; see DESIGN.md).
  std::size_t receive_encoded(const codec::EncodedSymbolView& symbol);
  std::size_t receive_recoded(const codec::RecodedSymbolView& symbol);

  /// --- State -------------------------------------------------------------

  /// Distinct encoded symbols held (received or recovered).
  std::size_t symbol_count() const { return symbol_ids_.size(); }
  const std::vector<std::uint64_t>& symbol_ids() const { return symbol_ids_; }
  bool has_symbol(std::uint64_t id) const {
    return recode_decoder_.has_symbol(id);
  }

  /// Payload of a held symbol; throws if absent.
  const std::vector<std::uint8_t>& symbol_payload(std::uint64_t id) const {
    return recode_decoder_.payload(id);
  }

  /// Source blocks recovered so far / needed.
  std::size_t blocks_recovered() const {
    return block_decoder_.recovered_count();
  }
  double decode_progress() const {
    return static_cast<double>(blocks_recovered()) /
           static_cast<double>(params_.block_count);
  }
  /// True once the whole file is decodable.
  bool has_content() const { return block_decoder_.complete(); }

  /// The reconstructed content (strips block padding); requires
  /// has_content().
  std::vector<std::uint8_t> content(std::size_t content_size) const;

  /// --- Control plane (Sections 4 and 5) -----------------------------------

  /// The incrementally maintained min-wise sketch of the working set.
  const sketch::MinwiseSketch& sketch() const { return sketch_; }

  /// Bloom filter over the held symbol ids.
  filter::BloomFilter bloom_summary(double bits_per_element = 8.0) const;

  /// Approximate reconciliation tree over the held symbol ids, and its
  /// transmissible summary.
  art::ReconciliationTree reconciliation_tree() const;
  art::ArtSummary art_summary(double leaf_bits_per_element = 4.0,
                              double internal_bits_per_element = 4.0) const;

  /// --- Sending -----------------------------------------------------------

  /// Re-encoding (full content only): a fresh symbol of the shared code
  /// from this peer's own id stream. Once a peer "has decoded the entire
  /// content of the file ... the end-system can generate new encoded
  /// content at will."
  codec::EncodedSymbol encode_fresh();

  /// Recoded symbol of the given degree over the whole working set.
  codec::RecodedSymbol recode(std::size_t degree, util::Xoshiro256& rng) const;

  /// Recoded symbol over a restricted domain of held ids (e.g. the ids that
  /// missed the receiver's Bloom filter). Unknown ids are ignored; throws
  /// if none of `domain_ids` are held.
  codec::RecodedSymbol recode_from(const std::vector<std::uint64_t>& domain_ids,
                                   std::size_t degree,
                                   util::Xoshiro256& rng) const;

  /// In-place variants for the endpoint fast path: `out`'s vectors are
  /// reused (cleared, capacity kept), and the whole-working-set overload
  /// samples symbol_ids() directly, so a warm sender allocates nothing per
  /// recoded symbol. Same symbol (same rng consumption) as the returning
  /// overloads.
  void recode_into(codec::RecodedSymbol& out, std::size_t degree,
                   util::Xoshiro256& rng) const;
  void recode_from_into(codec::RecodedSymbol& out,
                        const std::vector<std::uint64_t>& domain_ids,
                        std::size_t degree, util::Xoshiro256& rng) const;

  /// --- Scale audit --------------------------------------------------------

  /// Heap bytes this peer pins: both decoders, the sketch, the id set,
  /// and any cached decoded blocks. The per-peer half of MemoryAudit.
  std::size_t memory_bytes() const {
    std::size_t bytes = recode_decoder_.memory_bytes() +
                        block_decoder_.memory_bytes() +
                        sketch_.memory_bytes() +
                        symbol_ids_.capacity() * sizeof(std::uint64_t) +
                        recode_held_scratch_.capacity() * sizeof(std::uint64_t) +
                        recode_pick_scratch_.capacity() * sizeof(std::uint64_t);
    if (decoded_blocks_) {
      for (const auto& block : *decoded_blocks_) bytes += block.capacity();
      bytes += decoded_blocks_->capacity() * sizeof(std::vector<std::uint8_t>);
    }
    return bytes;
  }

  /// Combined solver op counters of both peeling levels (recode + block),
  /// the decoder_stats surface of SessionResult.
  codec::DecoderStats decoder_stats() const {
    return recode_decoder_.stats() + block_decoder_.stats();
  }

  /// Releases solver-only storage once this peer has the full content and
  /// its last download link has been torn down (no further symbols can
  /// ever arrive): buffered equations and waiting indexes in both
  /// decoders. Everything the serving path reads — held payloads, the
  /// sketch, symbol ids, recovered blocks — survives untouched, so a
  /// compacted peer serves byte-identically. Idempotent; engines call it
  /// from teardown, never at the completion stamp (in-flight symbols
  /// delivered during teardown could still peel buffered equations and
  /// perturb what admission observes).
  void compact_on_complete() {
    recode_decoder_.release_solver_state();
    block_decoder_.release_solver_state();
  }

 private:
  /// Pulls newly acquired ids out of the recode decoder's log, updating the
  /// sketch and feeding the block decoder. Returns how many were new.
  std::size_t absorb_acquisitions();

  /// Shared recode core: XOR-blend `degree` distinct symbols sampled from
  /// `held` (all of which must be held) into `out`.
  void blend_recode(codec::RecodedSymbol& out,
                    const std::vector<std::uint64_t>& held, std::size_t degree,
                    util::Xoshiro256& rng) const;

  std::string name_;
  codec::CodeParameters params_;
  codec::DegreeDistribution distribution_;
  codec::RecodeDecoder recode_decoder_;
  codec::Decoder block_decoder_;
  sketch::MinwiseSketch sketch_;
  std::vector<std::uint64_t> symbol_ids_;
  std::size_t log_offset_ = 0;
  std::uint64_t next_fresh_id_;
  std::optional<std::vector<std::vector<std::uint8_t>>> decoded_blocks_;
  // recode_into scratch: held-id filter and sampled indices. Mutable so
  // the logically-const recode paths can reuse capacity across calls.
  mutable std::vector<std::uint64_t> recode_held_scratch_;
  mutable std::vector<std::uint64_t> recode_pick_scratch_;
};

}  // namespace icd::core

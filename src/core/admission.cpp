#include "core/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace icd::core {

AdmissionDecision evaluate_candidate(const sketch::MinwiseSketch& receiver,
                                     std::size_t receiver_size,
                                     const CandidateSender& candidate,
                                     const AdmissionPolicy& policy) {
  if (candidate.sketch == nullptr) {
    throw std::invalid_argument("evaluate_candidate: null sketch");
  }
  AdmissionDecision decision;
  decision.resemblance =
      sketch::MinwiseSketch::resemblance(receiver, *candidate.sketch);
  const double containment = sketch::containment_from_resemblance(
      decision.resemblance, receiver_size, candidate.working_set_size);
  decision.novelty = 1.0 - containment;
  decision.admitted = decision.resemblance <= policy.max_resemblance &&
                      decision.novelty >= policy.min_novelty;
  return decision;
}

AdmissionPolicy relax_policy_for_need(const AdmissionPolicy& policy,
                                      std::size_t needed_symbols,
                                      std::size_t target_symbols) {
  double need = target_symbols > 0
                    ? static_cast<double>(needed_symbols) /
                          static_cast<double>(target_symbols)
                    : 1.0;
  need = std::clamp(need, 0.0, 1.0);
  AdmissionPolicy relaxed = policy;
  // need -> 0 (near complete): cutoff -> 1, novelty floor -> 0.
  // need -> 1 (nothing yet):   the strict policy, unchanged.
  relaxed.max_resemblance =
      policy.max_resemblance + (1.0 - policy.max_resemblance) * (1.0 - need);
  relaxed.min_novelty = policy.min_novelty * need;
  return relaxed;
}

std::vector<std::size_t> select_senders(
    const sketch::MinwiseSketch& receiver, std::size_t receiver_size,
    const std::vector<CandidateSender>& candidates,
    const AdmissionPolicy& policy, std::size_t max_senders) {
  struct Scored {
    std::size_t id;
    std::size_t order;
    double novelty;
  };
  std::vector<Scored> admitted;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto decision =
        evaluate_candidate(receiver, receiver_size, candidates[i], policy);
    if (decision.admitted) {
      admitted.push_back(Scored{candidates[i].id, i, decision.novelty});
    }
  }
  std::stable_sort(admitted.begin(), admitted.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.novelty > b.novelty;
                   });
  std::vector<std::size_t> selected;
  for (const Scored& s : admitted) {
    if (selected.size() == max_senders) break;
    selected.push_back(s.id);
  }
  return selected;
}

double estimate_group_overlap(
    const std::vector<const sketch::MinwiseSketch*>& group) {
  if (group.size() < 2) return 0.0;
  for (const auto* sketch : group) {
    if (sketch == nullptr) {
      throw std::invalid_argument("estimate_group_overlap: null sketch");
    }
  }
  // Average pairwise resemblance, each pair estimated from the sketches.
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      total += sketch::MinwiseSketch::resemblance(*group[i], *group[j]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace icd::core

#include "core/session.hpp"

#include <stdexcept>

namespace icd::core {

InformedSession::InformedSession(Peer& sender, Peer& receiver,
                                 SessionOptions options)
    : pipe_(kSessionPipeMtu),
      sender_(sender, options, pipe_.a()),
      receiver_(receiver, options, pipe_.b()) {
  if (!(sender.parameters() == receiver.parameters())) {
    throw std::invalid_argument("InformedSession: peers use different codes");
  }
}

void InformedSession::handshake() {
  if (handshaken_) return;
  receiver_.start();
  // On a perfect pipe the whole exchange settles in one round trip; the
  // bound only guards against a future transport that needs retries.
  for (int i = 0; i < 64 && !receiver_.transfer_started(); ++i) {
    sender_.tick();
    receiver_.tick();
  }
  if (!receiver_.transfer_started()) {
    throw std::logic_error("InformedSession: handshake did not converge");
  }
  handshaken_ = true;
  refresh_stats();
}

std::size_t InformedSession::step() {
  if (!handshaken_) {
    throw std::logic_error("InformedSession::step before handshake");
  }
  sender_.tick();
  sender_.send_symbol();
  const std::size_t gained = receiver_.tick();
  refresh_stats();
  return gained;
}

const SessionStats& InformedSession::run(std::size_t target_symbols,
                                         std::size_t max_transmissions) {
  if (!handshaken_) handshake();
  // Bound on attempts, not symbols_sent: a transport refusing frames
  // (send_symbol() == false) must terminate the loop, not spin it.
  std::size_t attempts = 0;
  while (receiver_.peer().symbol_count() < target_symbols &&
         !receiver_.peer().has_content() && attempts < max_transmissions) {
    step();
    ++attempts;
  }
  return stats_;
}

void InformedSession::refresh_stats() {
  const auto& a = pipe_.a().stats();
  const auto& b = pipe_.b().stats();
  stats_.control_bytes = a.control_bytes_sent + b.control_bytes_sent;
  stats_.control_packets = a.control_frames_sent + b.control_frames_sent;
  stats_.estimated_containment = receiver_.estimated_containment();
  stats_.symbols_sent = sender_.symbols_sent();
  stats_.symbols_useful = receiver_.symbols_useful();
  stats_.new_encoded_symbols = receiver_.new_encoded_symbols();
}

}  // namespace icd::core

#include "core/session.hpp"

#include <algorithm>
#include <stdexcept>

#include "reconcile/set_difference.hpp"
#include "util/packet.hpp"

namespace icd::core {

namespace {

codec::DegreeDistribution make_recode_distribution(std::size_t domain_size,
                                                   std::size_t cap) {
  return codec::DegreeDistribution::robust_soliton(
             std::max<std::size_t>(domain_size, 2))
      .truncated(cap);
}

}  // namespace

InformedSession::InformedSession(Peer& sender, Peer& receiver,
                                 SessionOptions options)
    : sender_(sender), receiver_(receiver), options_(options),
      rng_(options.seed),
      recode_distribution_(make_recode_distribution(
          sender.symbol_count(), options.recode_degree_limit)) {
  if (!(sender.parameters() == receiver.parameters())) {
    throw std::invalid_argument(
        "InformedSession: peers use different codes");
  }
}

void InformedSession::handshake() {
  using overlay::Strategy;

  // Phase 1: sketch exchange (both directions; one 1 KB packet each way).
  const auto& receiver_sketch = receiver_.sketch();
  const auto& sender_sketch = sender_.sketch();
  stats_.control_bytes += receiver_sketch.serialize().size();
  stats_.control_bytes += sender_sketch.serialize().size();
  const double resemblance =
      sketch::MinwiseSketch::resemblance(receiver_sketch, sender_sketch);
  stats_.estimated_containment = sketch::containment_from_resemblance(
      resemblance, receiver_.symbol_count(), sender_.symbol_count());

  // Phase 2: fine-grained summary, for the strategies that use one.
  if (strategy_uses_bloom(options_.strategy)) {
    if (options_.summary == SummaryKind::kBloomFilter) {
      const auto filter =
          receiver_.bloom_summary(options_.bloom_bits_per_element);
      stats_.control_bytes += filter.serialize().size();
      domain_ = reconcile::bloom_set_difference(sender_.symbol_ids(), filter);
    } else {
      const auto summary =
          receiver_.art_summary(options_.art_leaf_bits_per_element,
                                options_.art_internal_bits_per_element);
      stats_.control_bytes += summary.serialize().size();
      domain_ = art::find_local_differences(sender_.reconciliation_tree(),
                                            summary, options_.art_correction);
    }
    // Recode/BF: restrict the recoding domain to the receiver's request
    // ("we restrict the recoding domain to an appropriate small size").
    if (options_.strategy == Strategy::kRecodeBloom &&
        options_.requested_symbols > 0 &&
        domain_.size() > options_.requested_symbols) {
      util::shuffle(domain_, rng_);
      domain_.resize(options_.requested_symbols);
      std::sort(domain_.begin(), domain_.end());
    }
    recode_distribution_ = make_recode_distribution(
        std::max<std::size_t>(domain_.size(), 2),
        options_.recode_degree_limit);
  }

  stats_.control_packets = util::packets_for(stats_.control_bytes);
  handshaken_ = true;
}

std::size_t InformedSession::step() {
  using overlay::Strategy;
  if (!handshaken_) {
    throw std::logic_error("InformedSession::step before handshake");
  }

  std::size_t gained = 0;
  switch (options_.strategy) {
    case Strategy::kRandom: {
      const auto& ids = sender_.symbol_ids();
      const std::uint64_t id = ids[rng_.next_below(ids.size())];
      gained = receiver_.receive_encoded(
          codec::EncodedSymbol{id, sender_.symbol_payload(id)});
      break;
    }
    case Strategy::kRandomBloom: {
      const auto& ids = domain_.empty() ? sender_.symbol_ids() : domain_;
      const std::uint64_t id = ids[rng_.next_below(ids.size())];
      gained = receiver_.receive_encoded(
          codec::EncodedSymbol{id, sender_.symbol_payload(id)});
      break;
    }
    case Strategy::kRecode:
    case Strategy::kRecodeMinwise: {
      std::size_t degree = recode_distribution_.sample(rng_);
      if (options_.strategy == Strategy::kRecodeMinwise) {
        degree = codec::minwise_recode_degree(degree,
                                              stats_.estimated_containment,
                                              options_.recode_degree_limit);
      }
      gained = receiver_.receive_recoded(sender_.recode(degree, rng_));
      break;
    }
    case Strategy::kRecodeBloom: {
      const std::size_t degree = recode_distribution_.sample(rng_);
      if (domain_.empty()) {
        gained = receiver_.receive_recoded(sender_.recode(degree, rng_));
      } else {
        gained = receiver_.receive_recoded(
            sender_.recode_from(domain_, degree, rng_));
      }
      break;
    }
  }

  ++stats_.symbols_sent;
  if (gained > 0) ++stats_.symbols_useful;
  stats_.new_encoded_symbols += gained;
  return gained;
}

const SessionStats& InformedSession::run(std::size_t target_symbols,
                                         std::size_t max_transmissions) {
  if (!handshaken_) handshake();
  while (receiver_.symbol_count() < target_symbols &&
         !receiver_.has_content() &&
         stats_.symbols_sent < max_transmissions) {
    step();
  }
  return stats_;
}

}  // namespace icd::core

#include "core/sharded_delivery.hpp"

#include <algorithm>
#include <chrono>

#include "core/session_plan.hpp"
#include "util/hash.hpp"

namespace icd::core {

ShardedDelivery::ShardedDelivery(std::vector<std::uint8_t> content,
                                 DeliveryOptions options,
                                 ShardOptions shard_options)
    : content_(std::move(content)), options_(options),
      shards_(std::max<std::size_t>(1, shard_options.shards)),
      batch_budget_(shard_options.batch_budget),
      rebalance_epochs_(shard_options.rebalance_epochs),
      shard_work_(shards_),
      next_session_seed_(util::mix64(options.session_seed ^ 0x5e551075ULL)),
      faults_(options.faults) {
  origins_.push_back(std::make_unique<OriginServer>(
      content_, options_.block_size,
      delivery_distribution(content_.size(), options_.block_size),
      options_.session_seed, /*stream_index=*/0));
  if (shards_ > 1) {
    pool_.emplace(shards_);
    send_fn_ = [this](std::size_t shard) { phase_send_multi(shard); };
    receive_fn_ = [this](std::size_t shard) { phase_receive_multi(shard); };
  }
}

void ShardedDelivery::add_mirror() {
  origins_.push_back(std::make_unique<OriginServer>(
      content_, options_.block_size,
      delivery_distribution(content_.size(), options_.block_size),
      options_.session_seed, /*stream_index=*/origins_.size()));
}

std::size_t ShardedDelivery::add_peer(const std::string& name,
                                      bool subscribe_origin) {
  PeerEntry entry;
  entry.peer = std::make_unique<Peer>(
      name, origins_.front()->parameters(),
      delivery_distribution(content_.size(), options_.block_size));
  entry.origin_fed = subscribe_origin;
  entry.origin_index = peers_.size() % origins_.size();
  peers_.push_back(std::move(entry));
  const std::size_t id = peers_.size() - 1;
  shard_assignment_.push_back(id % shards_);
  shard_work_[shard_of(id)].peers.push_back(id);
  planner_dirty_ = true;
  return id;
}

void ShardedDelivery::flush_batches(Download& download) {
  if (batch_budget_ == 0) return;
  download.sender_transport().flush_batch();
  download.receiver_transport().flush_batch();
}

void ShardedDelivery::release_pool_owners() {
  // The coordinator is about to stand in for the shard threads (teardown
  // ticks, handshake starts) or has just done so: unbind every link pool
  // so the next user — worker or coordinator — rebinds. Workers are parked
  // at a barrier, which orders the handoff.
  for (PeerEntry& entry : peers_) {
    for (auto& [sender_id, download] : entry.downloads) {
      download->sender_transport().pool_mutable().debug_release_owner();
      download->receiver_transport().pool_mutable().debug_release_owner();
    }
  }
}

void ShardedDelivery::refresh_sessions() {
  planner_dirty_ = true;
  release_pool_owners();
  // Cost rebalance rides the refresh boundary: every download is torn
  // down below and recreated against the *new* placement, so no live link
  // ever changes local/cross type, and the refresh is already a planning
  // barrier for the jump driver.
  if (rebalance_epochs_ > 0 && refresh_count_ > 0 &&
      refresh_count_ % rebalance_epochs_ == 0) {
    rebalance_shards();
  }
  ++refresh_count_;
  // The loop shape (and the planner's seed chain) is the shared
  // session_plan code, so with shards = 1 the sessions formed are
  // bit-for-bit identical to ContentDeliveryService's.
  const std::size_t target = static_cast<std::size_t>(
      1.07 * static_cast<double>(parameters().block_count));
  run_refresh_loop(
      peers_.size(), options_, target, next_session_seed_,
      /*teardown=*/
      [this](std::size_t me) {
        for (auto& [sender_id, download] : peers_[me].downloads) {
          teardown_download(*download);
        }
        peers_[me].downloads.clear();
        // Sessions are fully retired: a peer that finished since the last
        // refresh can safely shed its solver state (see
        // Peer::compact_on_complete for why this must not happen at the
        // completion stamp itself).
        if (peers_[me].peer->has_content()) {
          peers_[me].peer->compact_on_complete();
        }
      },
      /*is_complete=*/
      [this](std::size_t me) {
        // A down peer plans nothing this refresh — it rejoins (session
        // resumption with its surviving working set) at the first refresh
        // after its restart.
        return peers_[me].peer->has_content() || faults_.down(me, ticks_);
      },
      /*snapshot=*/
      [this](std::size_t j) {
        return PlanPeer{&peers_[j].peer->sketch(),
                        peers_[j].peer->symbol_count(),
                        !faults_.unavailable(j, ticks_)};
      },
      /*create=*/
      [this](std::size_t me, PlannedDownload& planned) {
        auto download = std::make_unique<Download>();
        download->sender_id = planned.sender_id;
        download->receiver_id = me;
        if (shard_of(planned.sender_id) == shard_of(me)) {
          download->local = std::make_unique<wire::ChannelLink>(planned.link);
        } else {
          download->cross = std::make_unique<wire::ShardLink>(planned.link);
        }
        if (batch_budget_ > 0) {
          download->sender_transport().set_batch_budget(batch_budget_);
          download->receiver_transport().set_batch_budget(batch_budget_);
        }
        download->sender.emplace(*peers_[planned.sender_id].peer,
                                 planned.session,
                                 download->sender_transport());
        download->receiver.emplace(*peers_[me].peer, planned.session,
                                   download->receiver_transport());
        // The handshake itself flows over the link and completes across
        // subsequent ticks.
        download->receiver->start();
        if (batch_budget_ > 0) {
          download->receiver_transport().flush_batch();
        }
        peers_[me].downloads.emplace(planned.sender_id,
                                     std::move(download));
      });

  // Rebuild the cross-sender worklists and hand the pools back to
  // whichever thread uses them next.
  rebuild_cross_senders();
  release_pool_owners();
}

void ShardedDelivery::rebuild_cross_senders() {
  // (receiver, sender) order, as the per-peer download maps iterate.
  for (ShardWork& work : shard_work_) work.cross_senders.clear();
  for (PeerEntry& entry : peers_) {
    for (auto& [sender_id, download] : entry.downloads) {
      if (download->cross) {
        shard_work_[shard_of(sender_id)].cross_senders.push_back(
            download.get());
      }
    }
  }
}

void ShardedDelivery::teardown_download(Download& download) {
  // Ship pending control trains first so their bytes are accounted, then
  // deliver frames still in flight and bank the link's costs. The
  // teardown tick may batch a retry bundle; ship that too so the retiring
  // link's accounting matches the unbatched engine.
  flush_batches(download);
  download.flush_link();
  download.receiver->tick();
  flush_batches(download);
  accumulate_link(download, retired_link_totals_);
}

void ShardedDelivery::apply_faults(std::uint64_t now) {
  bool any_crash = false;
  faults_.apply_until(
      now,
      /*on_crash=*/
      [this, &any_crash](std::size_t peer) {
        if (peer >= peers_.size()) return;
        any_crash = true;
        planner_dirty_ = true;
        // Coordinator stands in for the shard threads during the
        // teardown ticks; the workers are parked between pool runs.
        release_pool_owners();
        for (auto& [sender_id, download] : peers_[peer].downloads) {
          teardown_download(*download);
        }
        peers_[peer].downloads.clear();
        if (peers_[peer].peer->has_content()) {
          peers_[peer].peer->compact_on_complete();
        }
        release_pool_owners();
      },
      /*on_join=*/
      [this](std::size_t count, bool origin_fed) {
        for (std::size_t n = 0; n < count; ++n) {
          add_peer("join" + std::to_string(peers_.size()), origin_fed);
        }
      });
  // Crashed peers' downloads may have been cross-shard: drop the dangling
  // worklist entries.
  if (any_crash) rebuild_cross_senders();
}

void ShardedDelivery::sweep_failed_downloads(std::uint64_t now) {
  bool any_erased = false;
  for (PeerEntry& entry : peers_) {
    for (auto it = entry.downloads.begin(); it != entry.downloads.end();) {
      const ReceiverEndpoint& receiver = *it->second->receiver;
      if (!receiver.failed() && !receiver.sender_suspect()) {
        ++it;
        continue;
      }
      if (!any_erased) release_pool_owners();
      any_erased = true;
      planner_dirty_ = true;
      const auto reason = receiver.failed()
                              ? FailedPeer::Reason::kHandshakeExhausted
                              : FailedPeer::Reason::kLivenessTimeout;
      teardown_download(*it->second);
      entry.failed_peers.push_back(FailedPeer{it->first, now, reason});
      faults_.mark_suspect(it->first, now + suspect_ttl());
      it = entry.downloads.erase(it);
    }
  }
  if (any_erased) {
    rebuild_cross_senders();
    release_pool_owners();
  }
}

void ShardedDelivery::service_local_downloads(PeerEntry& entry,
                                              EventLoop& scheduler) {
  // Mirrors ContentDeliveryService::service_downloads (the shards=1
  // bit-for-bit contract): all-untimed peers keep the historical
  // lockstep loop with zero scheduling overhead; otherwise untimed links
  // are due every tick in sender order, timed links only when a frame
  // has arrived or the token bucket grants send credit.
  bool any_timed = false;
  for (auto& [sender_id, download] : entry.downloads) {
    if (download->local && download->local->timed()) {
      any_timed = true;
      break;
    }
  }
  if (!any_timed) {
    for (auto& [sender_id, download] : entry.downloads) {
      if (entry.peer->has_content()) break;
      if (!download->local) continue;  // cross: receiver phase handles it
      // Down sender: frozen endpoint, but the receiver keeps ticking so
      // its liveness clock runs (mirrors the legacy loop).
      if (!peers_[sender_id].faulted_at_tick_start) {
        download->sender->tick();
        download->sender->send_symbol();
      }
      download->receiver->tick();
      flush_batches(*download);
      entry.work_units += 2;  // both endpoint halves ran on this shard
    }
    return;
  }

  const std::uint64_t now = tick_now_;
  const std::size_t hint = data_frame_bytes_hint(options_.block_size);
  scheduler.clear();
  for (auto& [sender_id, download] : entry.downloads) {
    if (!download->local) continue;  // cross: receiver phase handles it
    download->local->advance_to(now);
    LinkTimes times;
    times.timed = download->local->timed();
    times.sender_down = peers_[sender_id].faulted_at_tick_start;
    if (times.timed) {
      times.next_arrival = download->local->next_arrival_at();
      times.send_credit_at = download->local->a_send_ready_at(hint);
    }
    if (auto at = next_service_time(*download->sender, *download->receiver,
                                    times, now)) {
      scheduler.schedule(*at, EventKind::kService, sender_id);
    }
  }
  while (auto event = scheduler.pop_due(now)) {
    if (entry.peer->has_content()) break;
    Download& download = *entry.downloads.at(event->key);
    if (!peers_[event->key].faulted_at_tick_start) {
      download.sender->tick();
      if (!download.local->timed() ||
          download.local->a_send_ready_at(hint) <= now) {
        download.sender->send_symbol();
      }
    }
    download.receiver->advance_to(now);
    download.receiver->tick();
    flush_batches(download);
    entry.work_units += 2;  // both endpoint halves ran on this shard
  }
}

void ShardedDelivery::phase_send(std::size_t shard) {
  ShardWork& work = shard_work_[shard];
  const std::size_t hint = data_frame_bytes_hint(options_.block_size);
  for (const std::size_t id : work.peers) {
    PeerEntry& entry = peers_[id];
    if (entry.peer->has_content()) {
      entry.pending_origin_id.reset();
      continue;
    }
    // A down peer is frozen this tick: no origin apply, no servicing.
    if (entry.faulted_at_tick_start) continue;
    // Origin feed: the coordinator reserved the id (the deterministic
    // stream order); the XOR-heavy encode runs here, in parallel across
    // shards — Encoder::encode is a const pure function of the id.
    if (entry.pending_origin_id) {
      entry.peer->receive_encoded(
          origins_[entry.origin_index]->encode(*entry.pending_origin_id));
      entry.pending_origin_id.reset();
      entry.work_units += 1;
    }
    // Fully-local downloads run end to end, exactly the legacy loop.
    service_local_downloads(entry, work.scheduler);
  }
  // Sender halves of outgoing cross-shard downloads: answer handshakes
  // and, credit permitting, put this tick's symbol on the ring (the
  // barrier after this phase is the cross-shard commit point; a timed
  // link's advance pushes newly arrived frames onto it too).
  for (Download* download : work.cross_senders) {
    if (peers_[download->receiver_id].complete_at_tick_start ||
        peers_[download->receiver_id].faulted_at_tick_start) {
      continue;
    }
    download->cross->advance_a_to(tick_now_);
    // A down sender goes silent: in-flight frames still cross (the
    // advance above), but its endpoint is frozen — the receiver's
    // liveness clock does the failure detection.
    if (peers_[download->sender_id].faulted_at_tick_start) continue;
    download->sender->tick();
    if (!download->cross->timed() ||
        (!download->sender->satisfied() &&
         download->cross->a_send_ready_at(hint) <= tick_now_)) {
      download->sender->send_symbol();
    }
    if (batch_budget_ > 0) download->sender_transport().flush_batch();
    // Charged to the sender: this half runs on (and loads) its shard.
    peers_[download->sender_id].work_units += 1;
  }
}

void ShardedDelivery::phase_receive(std::size_t shard) {
  for (const std::size_t id : shard_work_[shard].peers) {
    PeerEntry& entry = peers_[id];
    if (entry.complete_at_tick_start || entry.faulted_at_tick_start) continue;
    for (auto& [sender_id, download] : entry.downloads) {
      if (!download->cross) continue;
      if (entry.peer->has_content()) break;
      download->cross->advance_b_to(tick_now_);
      download->receiver->advance_to(tick_now_);
      download->receiver->tick();
      if (batch_budget_ > 0) download->receiver_transport().flush_batch();
      entry.work_units += 1;
    }
  }
}

void ShardedDelivery::phase_send_multi(std::size_t shard) {
  // Read-only over swarm state: sender halves draw from working sets that
  // nothing mutates until the barrier (origin applies and receives both
  // live in phase_receive_multi), so the iteration order — and therefore
  // peer placement — cannot leak into results. Local downloads get the
  // exact servicing the cross worklist below gives cross ones.
  ShardWork& work = shard_work_[shard];
  const std::size_t hint = data_frame_bytes_hint(options_.block_size);
  for (const std::size_t id : work.peers) {
    PeerEntry& entry = peers_[id];
    if (entry.complete_at_tick_start || entry.faulted_at_tick_start) continue;
    for (auto& [sender_id, download] : entry.downloads) {
      if (!download->local) continue;  // cross: sender's shard handles it
      download->local->advance_to(tick_now_);
      // A down sender goes silent: in-flight frames still arrive (the
      // advance above), but its endpoint is frozen — the receiver's
      // liveness clock does the failure detection.
      if (peers_[sender_id].faulted_at_tick_start) continue;
      download->sender->tick();
      if (!download->local->timed() ||
          (!download->sender->satisfied() &&
           download->local->a_send_ready_at(hint) <= tick_now_)) {
        download->sender->send_symbol();
      }
      if (batch_budget_ > 0) download->sender_transport().flush_batch();
      // The local sender half runs on (and loads) the receiver's shard.
      entry.work_units += 1;
    }
  }
  for (Download* download : work.cross_senders) {
    if (peers_[download->receiver_id].complete_at_tick_start ||
        peers_[download->receiver_id].faulted_at_tick_start) {
      continue;
    }
    // Surface the reverse direction's due frames before this half drains:
    // a local link's advance_to(now) does both in one call. Keyed off the
    // current tick (never a look-ahead stashed by a previous tick), so a
    // jumped run commits exactly what a lockstep run would have by now.
    // Phase-safe: the b owner only produces onto this ring in the receive
    // phase, behind the barrier.
    download->cross->commit_b_through(tick_now_);
    download->cross->advance_a_to(tick_now_);
    if (peers_[download->sender_id].faulted_at_tick_start) continue;
    download->sender->tick();
    if (!download->cross->timed() ||
        (!download->sender->satisfied() &&
         download->cross->a_send_ready_at(hint) <= tick_now_)) {
      download->sender->send_symbol();
    }
    if (batch_budget_ > 0) download->sender_transport().flush_batch();
    peers_[download->sender_id].work_units += 1;
  }
}

void ShardedDelivery::phase_receive_multi(std::size_t shard) {
  // All working-set mutations happen here, and each touches only the
  // iterated peer's own state: the origin apply the coordinator reserved
  // the id for (stream order is fixed at reservation, so where the
  // XOR-heavy encode runs is immaterial), then the receiver halves in
  // ascending sender order. Cross b-ends advance in a separate pass
  // *before* any completion can land mid-loop, mirroring the local
  // links' phase-send advance — so a peer's mid-tick completion leaves
  // every link in exactly the state a local placement would. (Their
  // timed reverse frames are committed by the consuming side at the top
  // of the next send phase; see phase_send_multi.)
  for (const std::size_t id : shard_work_[shard].peers) {
    PeerEntry& entry = peers_[id];
    if (entry.complete_at_tick_start || entry.faulted_at_tick_start) continue;
    for (auto& [sender_id, download] : entry.downloads) {
      if (download->cross) download->cross->advance_b_to(tick_now_);
    }
  }
  for (const std::size_t id : shard_work_[shard].peers) {
    PeerEntry& entry = peers_[id];
    if (entry.complete_at_tick_start || entry.faulted_at_tick_start) continue;
    if (entry.pending_origin_id) {
      entry.peer->receive_encoded(
          origins_[entry.origin_index]->encode(*entry.pending_origin_id));
      entry.pending_origin_id.reset();
      entry.work_units += 1;
    }
    for (auto& [sender_id, download] : entry.downloads) {
      if (entry.peer->has_content()) break;
      download->receiver->advance_to(tick_now_);
      download->receiver->tick();
      if (batch_budget_ > 0) download->receiver_transport().flush_batch();
      entry.work_units += 1;
    }
  }
}

std::size_t ShardedDelivery::tick() {
  // Fault application precedes the refresh so crashed peers are excluded
  // from (and flash-crowd joiners included in) a refresh due this tick.
  if (faults_.active()) apply_faults(ticks_);
  if (ticks_ % std::max<std::size_t>(1, options_.refresh_interval) == 0) {
    refresh_sessions();
  }
  // Virtual time of this tick (= its index), as in the legacy engine.
  tick_now_ = ticks_;
  ++ticks_;

  // Coordinator prologue: completion and fault snapshots (the phases read
  // these instead of cross-shard peer state) and origin draws in peer
  // order — the same symbol-to-peer assignment as the legacy engine,
  // which drew at each incomplete subscriber's turn (and skips down
  // peers, exactly as the legacy tick loop does).
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    PeerEntry& entry = peers_[i];
    entry.complete_at_tick_start = entry.peer->has_content();
    entry.faulted_at_tick_start =
        faults_.active() && faults_.down(i, tick_now_);
    if (entry.complete_at_tick_start || entry.faulted_at_tick_start) {
      continue;
    }
    if (entry.origin_fed) {
      // Reserve the id only; the owning shard encodes it in the send
      // phase. next() ≡ encode(take_next_id()), so the symbol each peer
      // sees is exactly what the serial draw produced.
      entry.pending_origin_id =
          origins_[entry.origin_index]->take_next_id();
    }
    if (faults_.any_blackouts()) {
      for (auto& [sender_id, download] : entry.downloads) {
        const bool dark = faults_.blackout(sender_id, i, tick_now_);
        if (download->local) {
          download->local->set_blackout(dark);
        } else {
          download->cross->set_blackout(dark);
        }
      }
    }
  }

  if (!pool_) {
    phase_send(0);
    phase_receive(0);
  } else {
    const auto start = std::chrono::steady_clock::now();
    pool_->run(send_fn_);
    pool_->run(receive_fn_);
    parallel_wall_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

  // Failure sweep before the completion stamps, as in the legacy engine;
  // the workers are parked again, so the coordinator owns all state.
  if (failure_detection_enabled()) sweep_failed_downloads(ticks_);

  std::size_t completed_now = 0;
  for (PeerEntry& entry : peers_) {
    if (!entry.complete_at_tick_start && entry.peer->has_content()) {
      ++completed_now;
    }
    if (entry.completed_tick == 0 && entry.peer->has_content()) {
      entry.completed_tick = ticks_;
    }
  }
  loop_.advance_to(ticks_);
  return completed_now;
}

std::optional<Event> ShardedDelivery::plan_peer_events(std::size_t i,
                                                       std::uint64_t now) {
  PeerEntry& entry = peers_[i];
  if (entry.peer->has_content()) return std::nullopt;
  // A down peer is frozen until a fault boundary wakes it — every
  // boundary forces a full planner rebuild, never a per-link event.
  if (faults_.active() && faults_.down(i, now)) return std::nullopt;
  // The origin fountain streams one symbol per tick to an incomplete
  // subscriber: every tick is an event while one exists.
  if (entry.origin_fed) return Event{now, EventKind::kOriginFeed, i};
  const std::size_t hint = data_frame_bytes_hint(options_.block_size);
  plan_scratch_.clear();
  for (auto& [sender_id, download] : entry.downloads) {
    LinkTimes times;
    times.timed = download->local ? download->local->timed()
                                  : download->cross->timed();
    times.sender_down = faults_.active() && faults_.down(sender_id, now);
    if (times.timed) {
      times.next_arrival = download->local
                               ? download->local->next_event_time()
                               : download->cross->next_event_time();
      times.send_credit_at =
          download->local ? download->local->a_send_ready_at(hint)
                          : download->cross->a_send_ready_at(hint);
    }
    schedule_download_events(plan_scratch_, *download->sender,
                             *download->receiver, times, now, sender_id);
  }
  const auto first = plan_scratch_.peek();
  if (!first) return std::nullopt;
  // Re-keyed to the receiving peer, as in the legacy planner: only the
  // entry's time feeds the jump target.
  return Event{first->at, first->kind, i};
}

void ShardedDelivery::replan_peer(std::size_t i, std::uint64_t now) {
  const char incomplete = peers_[i].peer->has_content() ? 0 : 1;
  if (plan_incomplete_[i] != incomplete) {
    plan_incomplete_[i] = incomplete;
    if (incomplete) {
      ++incomplete_peers_;
    } else {
      --incomplete_peers_;
    }
  }
  planner_.set(i, plan_peer_events(i, now));
}

std::optional<std::uint64_t> ShardedDelivery::next_event_time() {
  // Coordinator-only, between pool runs: the workers are parked, so every
  // shard's links and endpoints may be inspected (not mutated) here.
  // Incremental planning, exactly the legacy engine's scheme: one live
  // entry per peer; full rebuilds only when the download graph changed
  // shape, a fault boundary fell in the planning gap, or blackout windows
  // exist; otherwise only the peers whose entries came due are replanned.
  const std::uint64_t now = ticks_;
  planner_.ensure_keys(peers_.size());
  if (plan_incomplete_.size() < peers_.size()) {
    plan_incomplete_.resize(peers_.size(), 0);
  }
  bool full = planner_dirty_ || planner_.pending_full() ||
              faults_.any_blackouts();
  if (!full && faults_.active()) {
    const auto boundary = faults_.next_boundary_after(planned_through_);
    if (boundary && *boundary <= now) full = true;
  }
  if (full) {
    planner_.begin_rebuild();
    incomplete_peers_ = 0;
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      plan_incomplete_[i] = peers_[i].peer->has_content() ? 0 : 1;
      incomplete_peers_ += static_cast<std::size_t>(plan_incomplete_[i]);
      planner_.set(i, plan_peer_events(i, now));
    }
    planner_dirty_ = false;
  } else {
    plan_due_scratch_.clear();
    planner_.take_due(now, plan_due_scratch_);
    for (const std::uint64_t key : plan_due_scratch_) {
      replan_peer(key, now);
    }
  }
  planned_through_ = now;
  if (incomplete_peers_ == 0 && !faults_.pending_joins()) return std::nullopt;
  std::optional<std::uint64_t> at;
  if (const auto next = planner_.peek()) at = next->at;
  // Fault boundaries are planning barriers, as in the legacy engine.
  if (faults_.active()) {
    if (const auto boundary = faults_.next_boundary_after(now)) {
      at = at ? std::min(*at, *boundary) : *boundary;
    }
  }
  const std::size_t interval =
      std::max<std::size_t>(1, options_.refresh_interval);
  const std::uint64_t refresh = ((now + interval - 1) / interval) * interval;
  at = at ? std::min(*at, refresh) : refresh;
  return std::max(*at, now);
}

bool ShardedDelivery::run(std::size_t max_ticks) {
  return run_until(ticks_ + max_ticks);
}

bool ShardedDelivery::run_until(std::uint64_t deadline) {
  while (ticks_ < deadline) {
    tick();
    const bool all = std::all_of(
        peers_.begin(), peers_.end(),
        [](const PeerEntry& e) { return e.peer->has_content(); });
    // "All done" is only final once no flash crowd is still scheduled to
    // arrive — a pending join re-opens the swarm.
    if (all && !faults_.pending_joins()) return true;
    if (!options_.jump_empty_ticks) continue;
    // All-untimed swarms can never open a span (untimed downloads are
    // due every tick), so skip the planning rebuild outright and keep
    // the historical heap-free hot path. A link_config may hand out
    // timed configs per edge, so its presence keeps planning on.
    if (!options_.link.timed() && !options_.link_config) continue;
    // Jump straight to the next tick at which anything can happen —
    // sharded ticks barrier only at event times; the span in between
    // would have been all-shard no-ops.
    if (const auto next = next_event_time()) {
      const std::uint64_t target = std::min<std::uint64_t>(*next, deadline);
      loop_.skip_to(target);
      ticks_ = target;
    }
  }
  return std::all_of(peers_.begin(), peers_.end(), [](const PeerEntry& e) {
    return e.peer->has_content();
  });
}

std::uint64_t ShardedDelivery::events_processed() const {
  std::uint64_t total = 0;
  for (const ShardWork& work : shard_work_) {
    total += work.scheduler.events_processed();
  }
  return total;
}

std::vector<std::uint8_t> ShardedDelivery::peer_content(
    std::size_t id) const {
  return peers_.at(id).peer->content(content_.size());
}

void ShardedDelivery::accumulate_link(Download& download,
                                      LinkTotals& totals) {
  totals.add(download.sender_transport().stats())
      .add(download.receiver_transport().stats());
}

ShardedDelivery::LinkTotals ShardedDelivery::active_link_totals() const {
  LinkTotals totals;
  for (const PeerEntry& entry : peers_) {
    for (const auto& [sender_id, download] : entry.downloads) {
      accumulate_link(*download, totals);
    }
  }
  return totals;
}

ShardedDelivery::LinkTotals ShardedDelivery::link_totals() const {
  LinkTotals totals = retired_link_totals_;
  totals += active_link_totals();
  return totals;
}

std::vector<std::uint64_t> ShardedDelivery::shard_busy_ns() const {
  if (!pool_) return {};
  return pool_->busy_ns();
}

void ShardedDelivery::rebalance_shards() {
  // LPT over the deterministic work units (busy_ns is wall-machine noise;
  // the assignment must be identical across runs). Callers guarantee a
  // refresh boundary: every download is about to be torn down, so no live
  // link changes local/cross type under the new placement.
  std::vector<std::uint64_t> cost(peers_.size(), 0);
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    cost[i] = peers_[i].work_units;
  }
  shard_assignment_ = balance_by_cost(cost, shards_);
  for (ShardWork& work : shard_work_) work.peers.clear();
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    shard_work_[shard_assignment_[i]].peers.push_back(i);  // ascending
  }
  // Decay: half-life of one epoch, so placement tracks current load
  // instead of being pinned by ancient history.
  for (PeerEntry& entry : peers_) entry.work_units /= 2;
}

std::vector<std::uint64_t> ShardedDelivery::shard_cost_units() const {
  std::vector<std::uint64_t> cost(shards_, 0);
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    cost[shard_assignment_[i]] += peers_[i].work_units;
  }
  return cost;
}

MemoryAudit ShardedDelivery::memory_audit() const {
  MemoryAudit audit;
  audit.peers = peers_.size();
  for (const PeerEntry& entry : peers_) {
    audit.decoder_bytes += entry.peer->memory_bytes();
    for (const auto& [sender_id, download] : entry.downloads) {
      audit.endpoint_bytes += download->sender->memory_bytes() +
                              download->receiver->memory_bytes();
      // Each link counts its pool(s) exactly once; the transports exclude
      // them (see Transport::memory_bytes).
      audit.link_bytes += download->local ? download->local->memory_bytes()
                                          : download->cross->memory_bytes();
    }
  }
  return audit;
}

}  // namespace icd::core

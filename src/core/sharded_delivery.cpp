#include "core/sharded_delivery.hpp"

#include <algorithm>
#include <chrono>

#include "core/session_plan.hpp"
#include "util/hash.hpp"

namespace icd::core {

ShardedDelivery::ShardedDelivery(std::vector<std::uint8_t> content,
                                 DeliveryOptions options,
                                 ShardOptions shard_options)
    : content_(std::move(content)), options_(options),
      shards_(std::max<std::size_t>(1, shard_options.shards)),
      batch_budget_(shard_options.batch_budget),
      shard_work_(shards_),
      next_session_seed_(util::mix64(options.session_seed ^ 0x5e551075ULL)),
      faults_(options.faults) {
  origins_.push_back(std::make_unique<OriginServer>(
      content_, options_.block_size,
      delivery_distribution(content_.size(), options_.block_size),
      options_.session_seed, /*stream_index=*/0));
  if (shards_ > 1) {
    pool_.emplace(shards_);
    send_fn_ = [this](std::size_t shard) { phase_send(shard); };
    receive_fn_ = [this](std::size_t shard) { phase_receive(shard); };
  }
}

void ShardedDelivery::add_mirror() {
  origins_.push_back(std::make_unique<OriginServer>(
      content_, options_.block_size,
      delivery_distribution(content_.size(), options_.block_size),
      options_.session_seed, /*stream_index=*/origins_.size()));
}

std::size_t ShardedDelivery::add_peer(const std::string& name,
                                      bool subscribe_origin) {
  PeerEntry entry;
  entry.peer = std::make_unique<Peer>(
      name, origins_.front()->parameters(),
      delivery_distribution(content_.size(), options_.block_size));
  entry.origin_fed = subscribe_origin;
  entry.origin_index = peers_.size() % origins_.size();
  peers_.push_back(std::move(entry));
  const std::size_t id = peers_.size() - 1;
  shard_work_[shard_of(id)].peers.push_back(id);
  return id;
}

void ShardedDelivery::flush_batches(Download& download) {
  if (batch_budget_ == 0) return;
  download.sender_transport().flush_batch();
  download.receiver_transport().flush_batch();
}

void ShardedDelivery::release_pool_owners() {
  // The coordinator is about to stand in for the shard threads (teardown
  // ticks, handshake starts) or has just done so: unbind every link pool
  // so the next user — worker or coordinator — rebinds. Workers are parked
  // at a barrier, which orders the handoff.
  for (PeerEntry& entry : peers_) {
    for (auto& [sender_id, download] : entry.downloads) {
      download->sender_transport().pool_mutable().debug_release_owner();
      download->receiver_transport().pool_mutable().debug_release_owner();
    }
  }
}

void ShardedDelivery::refresh_sessions() {
  release_pool_owners();
  // The loop shape (and the planner's seed chain) is the shared
  // session_plan code, so with shards = 1 the sessions formed are
  // bit-for-bit identical to ContentDeliveryService's.
  const std::size_t target = static_cast<std::size_t>(
      1.07 * static_cast<double>(parameters().block_count));
  run_refresh_loop(
      peers_.size(), options_, target, next_session_seed_,
      /*teardown=*/
      [this](std::size_t me) {
        for (auto& [sender_id, download] : peers_[me].downloads) {
          teardown_download(*download);
        }
        peers_[me].downloads.clear();
      },
      /*is_complete=*/
      [this](std::size_t me) {
        // A down peer plans nothing this refresh — it rejoins (session
        // resumption with its surviving working set) at the first refresh
        // after its restart.
        return peers_[me].peer->has_content() || faults_.down(me, ticks_);
      },
      /*snapshot=*/
      [this](std::size_t j) {
        return PlanPeer{&peers_[j].peer->sketch(),
                        peers_[j].peer->symbol_count(),
                        !faults_.unavailable(j, ticks_)};
      },
      /*create=*/
      [this](std::size_t me, PlannedDownload& planned) {
        auto download = std::make_unique<Download>();
        download->sender_id = planned.sender_id;
        download->receiver_id = me;
        if (shard_of(planned.sender_id) == shard_of(me)) {
          download->local = std::make_unique<wire::ChannelLink>(planned.link);
        } else {
          download->cross = std::make_unique<wire::ShardLink>(planned.link);
        }
        if (batch_budget_ > 0) {
          download->sender_transport().set_batch_budget(batch_budget_);
          download->receiver_transport().set_batch_budget(batch_budget_);
        }
        download->sender.emplace(*peers_[planned.sender_id].peer,
                                 planned.session,
                                 download->sender_transport());
        download->receiver.emplace(*peers_[me].peer, planned.session,
                                   download->receiver_transport());
        // The handshake itself flows over the link and completes across
        // subsequent ticks.
        download->receiver->start();
        if (batch_budget_ > 0) {
          download->receiver_transport().flush_batch();
        }
        peers_[me].downloads.emplace(planned.sender_id,
                                     std::move(download));
      });

  // Rebuild the cross-sender worklists and hand the pools back to
  // whichever thread uses them next.
  rebuild_cross_senders();
  release_pool_owners();
}

void ShardedDelivery::rebuild_cross_senders() {
  // (receiver, sender) order, as the per-peer download maps iterate.
  for (ShardWork& work : shard_work_) work.cross_senders.clear();
  for (PeerEntry& entry : peers_) {
    for (auto& [sender_id, download] : entry.downloads) {
      if (download->cross) {
        shard_work_[shard_of(sender_id)].cross_senders.push_back(
            download.get());
      }
    }
  }
}

void ShardedDelivery::teardown_download(Download& download) {
  // Ship pending control trains first so their bytes are accounted, then
  // deliver frames still in flight and bank the link's costs. The
  // teardown tick may batch a retry bundle; ship that too so the retiring
  // link's accounting matches the unbatched engine.
  flush_batches(download);
  download.flush_link();
  download.receiver->tick();
  flush_batches(download);
  accumulate_link(download, retired_link_totals_);
}

void ShardedDelivery::apply_faults(std::uint64_t now) {
  bool any_crash = false;
  faults_.apply_until(
      now,
      /*on_crash=*/
      [this, &any_crash](std::size_t peer) {
        if (peer >= peers_.size()) return;
        any_crash = true;
        // Coordinator stands in for the shard threads during the
        // teardown ticks; the workers are parked between pool runs.
        release_pool_owners();
        for (auto& [sender_id, download] : peers_[peer].downloads) {
          teardown_download(*download);
        }
        peers_[peer].downloads.clear();
        release_pool_owners();
      },
      /*on_join=*/
      [this](std::size_t count, bool origin_fed) {
        for (std::size_t n = 0; n < count; ++n) {
          add_peer("join" + std::to_string(peers_.size()), origin_fed);
        }
      });
  // Crashed peers' downloads may have been cross-shard: drop the dangling
  // worklist entries.
  if (any_crash) rebuild_cross_senders();
}

void ShardedDelivery::sweep_failed_downloads(std::uint64_t now) {
  bool any_erased = false;
  for (PeerEntry& entry : peers_) {
    for (auto it = entry.downloads.begin(); it != entry.downloads.end();) {
      const ReceiverEndpoint& receiver = *it->second->receiver;
      if (!receiver.failed() && !receiver.sender_suspect()) {
        ++it;
        continue;
      }
      if (!any_erased) release_pool_owners();
      any_erased = true;
      const auto reason = receiver.failed()
                              ? FailedPeer::Reason::kHandshakeExhausted
                              : FailedPeer::Reason::kLivenessTimeout;
      teardown_download(*it->second);
      entry.failed_peers.push_back(FailedPeer{it->first, now, reason});
      faults_.mark_suspect(it->first, now + suspect_ttl());
      it = entry.downloads.erase(it);
    }
  }
  if (any_erased) {
    rebuild_cross_senders();
    release_pool_owners();
  }
}

void ShardedDelivery::service_local_downloads(PeerEntry& entry,
                                              EventLoop& scheduler) {
  // Mirrors ContentDeliveryService::service_downloads (the shards=1
  // bit-for-bit contract): all-untimed peers keep the historical
  // lockstep loop with zero scheduling overhead; otherwise untimed links
  // are due every tick in sender order, timed links only when a frame
  // has arrived or the token bucket grants send credit.
  bool any_timed = false;
  for (auto& [sender_id, download] : entry.downloads) {
    if (download->local && download->local->timed()) {
      any_timed = true;
      break;
    }
  }
  if (!any_timed) {
    for (auto& [sender_id, download] : entry.downloads) {
      if (entry.peer->has_content()) break;
      if (!download->local) continue;  // cross: receiver phase handles it
      // Down sender: frozen endpoint, but the receiver keeps ticking so
      // its liveness clock runs (mirrors the legacy loop).
      if (!peers_[sender_id].faulted_at_tick_start) {
        download->sender->tick();
        download->sender->send_symbol();
      }
      download->receiver->tick();
      flush_batches(*download);
    }
    return;
  }

  const std::uint64_t now = tick_now_;
  const std::size_t hint = data_frame_bytes_hint(options_.block_size);
  scheduler.clear();
  for (auto& [sender_id, download] : entry.downloads) {
    if (!download->local) continue;  // cross: receiver phase handles it
    download->local->advance_to(now);
    LinkTimes times;
    times.timed = download->local->timed();
    times.sender_down = peers_[sender_id].faulted_at_tick_start;
    if (times.timed) {
      times.next_arrival = download->local->next_arrival_at();
      times.send_credit_at = download->local->a_send_ready_at(hint);
    }
    if (auto at = next_service_time(*download->sender, *download->receiver,
                                    times, now)) {
      scheduler.schedule(*at, EventKind::kService, sender_id);
    }
  }
  while (auto event = scheduler.pop_due(now)) {
    if (entry.peer->has_content()) break;
    Download& download = *entry.downloads.at(event->key);
    if (!peers_[event->key].faulted_at_tick_start) {
      download.sender->tick();
      if (!download.local->timed() ||
          download.local->a_send_ready_at(hint) <= now) {
        download.sender->send_symbol();
      }
    }
    download.receiver->advance_to(now);
    download.receiver->tick();
    flush_batches(download);
  }
}

void ShardedDelivery::phase_send(std::size_t shard) {
  ShardWork& work = shard_work_[shard];
  const std::size_t hint = data_frame_bytes_hint(options_.block_size);
  for (const std::size_t id : work.peers) {
    PeerEntry& entry = peers_[id];
    if (entry.peer->has_content()) {
      entry.pending_origin.reset();
      continue;
    }
    // A down peer is frozen this tick: no origin apply, no servicing.
    if (entry.faulted_at_tick_start) continue;
    // Origin feed: the symbol the coordinator drew for this tick.
    if (entry.pending_origin) {
      entry.peer->receive_encoded(*entry.pending_origin);
      entry.pending_origin.reset();
    }
    // Fully-local downloads run end to end, exactly the legacy loop.
    service_local_downloads(entry, work.scheduler);
  }
  // Sender halves of outgoing cross-shard downloads: answer handshakes
  // and, credit permitting, put this tick's symbol on the ring (the
  // barrier after this phase is the cross-shard commit point; a timed
  // link's advance pushes newly arrived frames onto it too).
  for (Download* download : work.cross_senders) {
    if (peers_[download->receiver_id].complete_at_tick_start ||
        peers_[download->receiver_id].faulted_at_tick_start) {
      continue;
    }
    download->cross->advance_a_to(tick_now_);
    // A down sender goes silent: in-flight frames still cross (the
    // advance above), but its endpoint is frozen — the receiver's
    // liveness clock does the failure detection.
    if (peers_[download->sender_id].faulted_at_tick_start) continue;
    download->sender->tick();
    if (!download->cross->timed() ||
        (!download->sender->satisfied() &&
         download->cross->a_send_ready_at(hint) <= tick_now_)) {
      download->sender->send_symbol();
    }
    if (batch_budget_ > 0) download->sender_transport().flush_batch();
  }
}

void ShardedDelivery::phase_receive(std::size_t shard) {
  for (const std::size_t id : shard_work_[shard].peers) {
    PeerEntry& entry = peers_[id];
    if (entry.complete_at_tick_start || entry.faulted_at_tick_start) continue;
    for (auto& [sender_id, download] : entry.downloads) {
      if (!download->cross) continue;
      if (entry.peer->has_content()) break;
      download->cross->advance_b_to(tick_now_);
      download->receiver->advance_to(tick_now_);
      download->receiver->tick();
      if (batch_budget_ > 0) download->receiver_transport().flush_batch();
    }
  }
}

std::size_t ShardedDelivery::tick() {
  // Fault application precedes the refresh so crashed peers are excluded
  // from (and flash-crowd joiners included in) a refresh due this tick.
  if (faults_.active()) apply_faults(ticks_);
  if (ticks_ % std::max<std::size_t>(1, options_.refresh_interval) == 0) {
    refresh_sessions();
  }
  // Virtual time of this tick (= its index), as in the legacy engine.
  tick_now_ = ticks_;
  ++ticks_;

  // Coordinator prologue: completion and fault snapshots (the phases read
  // these instead of cross-shard peer state) and origin draws in peer
  // order — the same symbol-to-peer assignment as the legacy engine,
  // which drew at each incomplete subscriber's turn (and skips down
  // peers, exactly as the legacy tick loop does).
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    PeerEntry& entry = peers_[i];
    entry.complete_at_tick_start = entry.peer->has_content();
    entry.faulted_at_tick_start =
        faults_.active() && faults_.down(i, tick_now_);
    if (entry.complete_at_tick_start || entry.faulted_at_tick_start) {
      continue;
    }
    if (entry.origin_fed) {
      entry.pending_origin = origins_[entry.origin_index]->next();
    }
    if (faults_.any_blackouts()) {
      for (auto& [sender_id, download] : entry.downloads) {
        const bool dark = faults_.blackout(sender_id, i, tick_now_);
        if (download->local) {
          download->local->set_blackout(dark);
        } else {
          download->cross->set_blackout(dark);
        }
      }
    }
  }

  if (!pool_) {
    phase_send(0);
    phase_receive(0);
  } else {
    const auto start = std::chrono::steady_clock::now();
    pool_->run(send_fn_);
    pool_->run(receive_fn_);
    parallel_wall_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

  // Failure sweep before the completion stamps, as in the legacy engine;
  // the workers are parked again, so the coordinator owns all state.
  if (failure_detection_enabled()) sweep_failed_downloads(ticks_);

  std::size_t completed_now = 0;
  for (PeerEntry& entry : peers_) {
    if (!entry.complete_at_tick_start && entry.peer->has_content()) {
      ++completed_now;
    }
    if (entry.completed_tick == 0 && entry.peer->has_content()) {
      entry.completed_tick = ticks_;
    }
  }
  loop_.advance_to(ticks_);
  return completed_now;
}

std::optional<std::uint64_t> ShardedDelivery::next_event_time() {
  // Coordinator-only, between pool runs: the workers are parked, so every
  // shard's links and endpoints may be inspected (not mutated) here.
  loop_.clear();
  const std::uint64_t now = ticks_;
  const std::size_t hint = data_frame_bytes_hint(options_.block_size);
  bool any_incomplete = false;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    PeerEntry& entry = peers_[i];
    if (entry.peer->has_content()) continue;
    any_incomplete = true;
    // A down peer is frozen until a fault boundary (scheduled below as
    // kPeerFault) wakes it.
    if (faults_.active() && faults_.down(i, now)) continue;
    if (entry.origin_fed) {
      loop_.schedule(now, EventKind::kOriginFeed, i);
      continue;
    }
    for (auto& [sender_id, download] : entry.downloads) {
      LinkTimes times;
      times.timed = download->local ? download->local->timed()
                                    : download->cross->timed();
      times.sender_down = faults_.active() && faults_.down(sender_id, now);
      if (times.timed) {
        times.next_arrival = download->local
                                 ? download->local->next_event_time()
                                 : download->cross->next_event_time();
        times.send_credit_at =
            download->local ? download->local->a_send_ready_at(hint)
                            : download->cross->a_send_ready_at(hint);
      }
      schedule_download_events(loop_, *download->sender, *download->receiver,
                               times, now, sender_id);
    }
  }
  // Fault boundaries are planning barriers, as in the legacy engine.
  if (const auto boundary = faults_.next_boundary_after(now)) {
    loop_.schedule(*boundary, EventKind::kPeerFault, 0);
  }
  return finish_event_planning(loop_, now, options_.refresh_interval,
                               any_incomplete || faults_.pending_joins());
}

bool ShardedDelivery::run(std::size_t max_ticks) {
  return run_until(ticks_ + max_ticks);
}

bool ShardedDelivery::run_until(std::uint64_t deadline) {
  while (ticks_ < deadline) {
    tick();
    const bool all = std::all_of(
        peers_.begin(), peers_.end(),
        [](const PeerEntry& e) { return e.peer->has_content(); });
    // "All done" is only final once no flash crowd is still scheduled to
    // arrive — a pending join re-opens the swarm.
    if (all && !faults_.pending_joins()) return true;
    if (!options_.jump_empty_ticks) continue;
    // All-untimed swarms can never open a span (untimed downloads are
    // due every tick), so skip the planning rebuild outright and keep
    // the historical heap-free hot path. A link_config may hand out
    // timed configs per edge, so its presence keeps planning on.
    if (!options_.link.timed() && !options_.link_config) continue;
    // Jump straight to the next tick at which anything can happen —
    // sharded ticks barrier only at event times; the span in between
    // would have been all-shard no-ops.
    if (const auto next = next_event_time()) {
      const std::uint64_t target = std::min<std::uint64_t>(*next, deadline);
      loop_.skip_to(target);
      ticks_ = target;
    }
  }
  return std::all_of(peers_.begin(), peers_.end(), [](const PeerEntry& e) {
    return e.peer->has_content();
  });
}

std::uint64_t ShardedDelivery::events_processed() const {
  std::uint64_t total = 0;
  for (const ShardWork& work : shard_work_) {
    total += work.scheduler.events_processed();
  }
  return total;
}

std::vector<std::uint8_t> ShardedDelivery::peer_content(
    std::size_t id) const {
  return peers_.at(id).peer->content(content_.size());
}

void ShardedDelivery::accumulate_link(Download& download,
                                      LinkTotals& totals) {
  totals.add(download.sender_transport().stats())
      .add(download.receiver_transport().stats());
}

ShardedDelivery::LinkTotals ShardedDelivery::active_link_totals() const {
  LinkTotals totals;
  for (const PeerEntry& entry : peers_) {
    for (const auto& [sender_id, download] : entry.downloads) {
      accumulate_link(*download, totals);
    }
  }
  return totals;
}

ShardedDelivery::LinkTotals ShardedDelivery::link_totals() const {
  LinkTotals totals = retired_link_totals_;
  totals += active_link_totals();
  return totals;
}

std::vector<std::uint64_t> ShardedDelivery::shard_busy_ns() const {
  if (!pool_) return {};
  return pool_->busy_ns();
}

}  // namespace icd::core

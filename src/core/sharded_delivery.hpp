#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/delivery.hpp"
#include "core/endpoint.hpp"
#include "core/origin.hpp"
#include "core/peer.hpp"
#include "util/shard_pool.hpp"
#include "wire/shard_link.hpp"
#include "wire/transport.hpp"

/// ShardedDelivery: ContentDeliveryService partitioned across worker
/// shards.
///
/// Peers are assigned to shards by id (round-robin); each shard owns its
/// peers' decoders, endpoints and the links whose two peers it both owns,
/// so the per-tick hot work — recoding, XOR-heavy decoding, frame
/// encode/decode — runs on all shards concurrently. Downloads whose sender
/// and receiver live on different shards ride a wire::ShardLink: the only
/// state two shards ever share is SPSC rings of encoded frames (and
/// recycled buffers), exactly the "shards only exchange frames" property
/// the endpoint layering was built for.
///
/// A tick is two phases with barriers between them (see DESIGN.md,
/// "Threading model"):
///   send phase     — each shard feeds its peers' pending origin symbols,
///                    runs fully-local downloads end to end, and ticks the
///                    sender half of its outgoing cross-shard downloads;
///   receive phase  — each shard ticks the receiver half of its incoming
///                    cross-shard downloads.
/// Admission/refresh and origin symbol draws stay single-threaded on the
/// coordinator between phases, where they may touch any shard's state.
///
/// Determinism: every shard processes its own peers in ascending id order
/// with no shared RNG, so a run is reproducible for a given shard count;
/// and with shards = 1 (which runs inline, no worker threads) the engine
/// executes the legacy ContentDeliveryService loop order exactly —
/// per-peer results, completion ticks and wire byte accounting are
/// bit-for-bit identical (enforced by sharded_test).
///
/// `batch_budget` > 0 turns on per-tick control-frame batching on every
/// link (wire::Transport::set_batch_budget), with the engine flushing each
/// endpoint's train at its tick boundary.
namespace icd::core {

struct ShardOptions {
  /// Worker shards. 1 = run inline on the caller's thread (legacy
  /// semantics, bit-for-bit).
  std::size_t shards = 1;
  /// Control-frame batching budget in bytes per train (0 = off). Applied
  /// to every download link's two transports.
  std::size_t batch_budget = 0;
  /// Cost-balanced peer placement: every `rebalance_epochs` refreshes the
  /// coordinator reassigns peers to shards by measured per-peer work
  /// (longest-processing-time over deterministic work units) instead of
  /// the admission-time id % shards placement. 0 = off (historical).
  /// Placement is semantics-free — a download behaves identically over a
  /// local ChannelLink and a cross-shard ShardLink — and the rebalance
  /// runs at a refresh (itself a planning barrier, with every download
  /// torn down), so per-peer results are bit-for-bit unchanged; only
  /// which thread does the work moves.
  std::size_t rebalance_epochs = 0;
};

class ShardedDelivery {
 public:
  using LinkTotals = ContentDeliveryService::LinkTotals;

  ShardedDelivery(std::vector<std::uint8_t> content, DeliveryOptions options,
                  ShardOptions shard_options = {});

  void add_mirror();
  std::size_t add_peer(const std::string& name, bool subscribe_origin);

  /// Advances the whole service by one round (send phase, barrier, receive
  /// phase). Returns the number of peers that completed during this tick.
  std::size_t tick();
  /// Drives the service for up to `max_ticks` virtual ticks, jumping
  /// empty tick spans when DeliveryOptions::jump_empty_ticks is set.
  bool run(std::size_t max_ticks);
  /// Event-loop driver: see ContentDeliveryService::run_until. Sharded
  /// ticks barrier only at event times — the jump happens on the
  /// coordinator between pool runs, where it owns all state — and the
  /// two-phase barrier stays the cross-shard commit point unchanged.
  bool run_until(std::uint64_t deadline);

  std::size_t peer_count() const { return peers_.size(); }
  const Peer& peer(std::size_t id) const { return *peers_.at(id).peer; }
  bool peer_complete(std::size_t id) const {
    return peers_.at(id).peer->has_content();
  }
  /// Virtual tick at which the peer first held the content (the ticks()
  /// value observed right after the completing tick); 0 = not yet.
  std::size_t peer_completion_tick(std::size_t id) const {
    return peers_.at(id).completed_tick;
  }
  std::vector<std::uint8_t> peer_content(std::size_t id) const;

  /// Per-receiver session outcome (see ContentDeliveryService).
  SessionResult session_result(std::size_t id) const {
    const PeerEntry& entry = peers_.at(id);
    return SessionResult{entry.peer->has_content(), entry.completed_tick,
                         entry.failed_peers, entry.peer->memory_bytes(),
                         entry.peer->decoder_stats()};
  }
  /// Whether the peer is currently down (crashed or stalled) under the
  /// fault plan.
  bool peer_down(std::size_t id) const { return faults_.down(id, ticks_); }

  std::size_t ticks() const { return ticks_; }
  /// Scheduler-ordered link services executed across all shards (timed
  /// service path pops). Coordinator-only, between ticks.
  std::uint64_t events_processed() const;
  /// Virtual ticks run_until() jumped over without executing.
  std::uint64_t ticks_skipped() const { return loop_.ticks_skipped(); }
  const codec::CodeParameters& parameters() const {
    return origins_.front()->parameters();
  }
  std::size_t shards() const { return shards_; }
  /// Current shard owning `peer_id`. Admission places id % shards; a
  /// cost rebalance (ShardOptions::rebalance_epochs) may move it.
  std::size_t shard_of(std::size_t peer_id) const {
    return shard_assignment_[peer_id];
  }

  /// May be called between ticks only (the coordinator thread owns all
  /// state while the workers are parked).
  LinkTotals active_link_totals() const;
  LinkTotals link_totals() const;

  /// Per-peer memory audit across decoders, endpoints and links (scale
  /// budget). Coordinator-only, between ticks.
  MemoryAudit memory_audit() const;
  /// Incremental planning-queue counters (run_until's jump planner).
  const PlanningQueue::Stats& planner_stats() const {
    return planner_.stats();
  }
  /// Deterministic per-shard service cost: the sum of the owned peers'
  /// accumulated work units (halved at each rebalance so stale history
  /// decays). The rebalance input, exposed for tests/benches; unlike
  /// busy_ns it is identical across runs and machines.
  std::vector<std::uint64_t> shard_cost_units() const;

  /// Cumulative per-shard worker thread-CPU nanoseconds (empty when
  /// shards = 1 runs inline) and wall time spent inside the parallel
  /// phases — bench_delivery's critical-path scaling model.
  std::vector<std::uint64_t> shard_busy_ns() const;
  std::uint64_t parallel_wall_ns() const { return parallel_wall_ns_; }

 private:
  /// One admitted download. Exactly one of `local` (both peers on the same
  /// shard: a ChannelLink, identical to the legacy engine) and `cross` (a
  /// thread-crossing ShardLink) is set; the sender endpoint always drives
  /// the link's `a()` end.
  struct Download {
    std::size_t sender_id = 0;
    std::size_t receiver_id = 0;
    std::unique_ptr<wire::ChannelLink> local;
    std::unique_ptr<wire::ShardLink> cross;
    std::optional<SenderEndpoint> sender;
    std::optional<ReceiverEndpoint> receiver;

    wire::Transport& sender_transport() {
      return local ? local->a() : cross->a();
    }
    wire::Transport& receiver_transport() {
      return local ? local->b() : cross->b();
    }
    void flush_link() {
      if (local) {
        local->flush();
      } else {
        cross->flush();
      }
    }
  };

  struct PeerEntry {
    std::unique_ptr<Peer> peer;
    bool origin_fed = false;
    std::size_t origin_index = 0;
    /// Active downloads, keyed by the serving peer id.
    std::map<std::size_t, std::unique_ptr<Download>> downloads;
    /// Origin symbol id reserved by the coordinator this tick; the owning
    /// shard runs the (pure, const) encode in the send phase, so the
    /// XOR-heavy origin encoding parallelizes across the pool while the
    /// id sequence — and thus the symbol-to-peer assignment — stays the
    /// coordinator's deterministic draw order.
    std::optional<std::uint64_t> pending_origin_id;
    /// Deterministic service-cost accumulator (rebalance input): bumped by
    /// the owning shard only — local service 2, cross receive 1, cross
    /// send 1 (charged to the sender), origin apply 1.
    std::uint64_t work_units = 0;
    /// Snapshot the phases read instead of cross-shard peer state.
    bool complete_at_tick_start = false;
    /// Down (crashed or stalled) under the fault plan this tick — written
    /// by the coordinator prologue, read by the phase workers (the pool
    /// barrier orders the handoff).
    bool faulted_at_tick_start = false;
    /// Virtual tick of first completion (0 = incomplete).
    std::size_t completed_tick = 0;
    /// Download sessions abandoned for this receiver (diagnostics).
    std::vector<FailedPeer> failed_peers;
  };

  struct ShardWork {
    /// Owned peer ids, ascending.
    std::vector<std::size_t> peers;
    /// Cross-shard downloads whose *sender* this shard owns, in
    /// (receiver_id, sender_id) order. Rebuilt each refresh.
    std::vector<Download*> cross_senders;
    /// Per-shard service ordering for local downloads (shard-local: each
    /// worker thread touches only its own event queue).
    EventLoop scheduler;
  };

  void refresh_sessions();
  void release_pool_owners();
  /// Rebuilds the per-shard cross-sender worklists from the live download
  /// maps — required after any teardown that may have erased a cross
  /// download (refresh, crash, failure sweep), or the lists dangle.
  void rebuild_cross_senders();
  /// Coordinator-side fault application (see ContentDeliveryService).
  void apply_faults(std::uint64_t now);
  /// Coordinator-side end-of-tick failure sweep (see
  /// ContentDeliveryService); callers must have the workers parked.
  void sweep_failed_downloads(std::uint64_t now);
  void teardown_download(Download& download);
  bool failure_detection_enabled() const {
    return options_.liveness_timeout_ticks > 0 ||
           options_.max_handshake_retries > 0;
  }
  std::uint64_t suspect_ttl() const {
    return options_.suspect_ttl_ticks > 0
               ? options_.suspect_ttl_ticks
               : std::max<std::size_t>(1, options_.refresh_interval);
  }
  void phase_send(std::size_t shard);
  void phase_receive(std::size_t shard);
  /// Multi-shard (shards >= 2) phases: placement-independent two-phase
  /// servicing. The send phase only *reads* swarm state (sender halves of
  /// every download, local and cross alike, draw symbols from working
  /// sets nothing mutates until the barrier); the receive phase mutates
  /// only the iterated peer's own state (its origin apply, its receiver
  /// halves). No intra-tick ordering between peers can leak into results,
  /// so which shard a peer lives on — and hence the cost rebalance — is a
  /// planning concern, not a semantics one. shards == 1 keeps the legacy
  /// sequential phases above (the bit-for-bit contract with
  /// ContentDeliveryService).
  void phase_send_multi(std::size_t shard);
  void phase_receive_multi(std::size_t shard);
  /// Mirrors ContentDeliveryService::service_downloads for the fully-local
  /// downloads of one peer (the shards=1 bit-for-bit contract).
  void service_local_downloads(PeerEntry& entry, EventLoop& scheduler);
  /// Reassigns peers to shards by accumulated work units (LPT); called at
  /// a refresh boundary only, before the refresh loop rebuilds downloads.
  void rebalance_shards();
  /// One peer's earliest upcoming event, re-keyed to the peer id — the
  /// incremental planner's per-key value (see
  /// ContentDeliveryService::plan_peer_events); additionally covers the
  /// cross-shard ShardLinks (both directions' delay lines and rings).
  std::optional<Event> plan_peer_events(std::size_t i, std::uint64_t now);
  void replan_peer(std::size_t i, std::uint64_t now);
  /// See ContentDeliveryService::next_event_time — same incremental
  /// planning queue, same rebuild triggers; inspected by the coordinator
  /// while the workers are parked.
  std::optional<std::uint64_t> next_event_time();
  void flush_batches(Download& download);
  static void accumulate_link(Download& download, LinkTotals& totals);

  std::vector<std::uint8_t> content_;
  DeliveryOptions options_;
  std::size_t shards_;
  std::size_t batch_budget_;
  std::size_t rebalance_epochs_;
  /// Peer id -> owning shard (admission: id % shards; rebalance may move).
  std::vector<std::size_t> shard_assignment_;
  /// Refreshes executed (the rebalance epoch clock).
  std::size_t refresh_count_ = 0;
  std::vector<std::unique_ptr<OriginServer>> origins_;
  std::vector<PeerEntry> peers_;
  std::vector<ShardWork> shard_work_;
  std::size_t ticks_ = 0;
  /// Virtual time of the tick in progress (= its tick index), read by the
  /// phases on every shard; written only between pool runs.
  std::uint64_t tick_now_ = 0;
  std::uint64_t next_session_seed_;
  LinkTotals retired_link_totals_;
  /// Fault bookkeeping (inert when options_.faults is null). Mutated on
  /// the coordinator only; the phases read per-tick snapshots instead.
  FaultTracker faults_;
  /// Coordinator event loop: global clock and jump accounting. The
  /// per-shard service queues live in ShardWork (worker-thread-local).
  EventLoop loop_;
  /// Incremental cross-tick planning queue (see
  /// ContentDeliveryService): one live entry per peer, dirty-flag /
  /// boundary-triggered full rebuilds, due keys replanned per round.
  PlanningQueue planner_;
  EventLoop plan_scratch_;
  std::vector<std::uint64_t> plan_due_scratch_;
  bool planner_dirty_ = true;
  std::uint64_t planned_through_ = 0;
  std::vector<char> plan_incomplete_;
  std::size_t incomplete_peers_ = 0;
  /// Present only when shards > 1.
  std::optional<util::ShardPool> pool_;
  std::function<void(std::size_t)> send_fn_;
  std::function<void(std::size_t)> receive_fn_;
  std::uint64_t parallel_wall_ns_ = 0;
};

}  // namespace icd::core

#pragma once

#include <cstdint>
#include <vector>

#include "codec/block_source.hpp"
#include "codec/degree.hpp"
#include "codec/encoder.hpp"
#include "codec/symbol.hpp"

/// The content origin: a server holding the complete file, exposing it as a
/// digital fountain (Section 2.3). Any number of origins with different
/// stream seeds serve uncorrelated symbol streams ("fountain flows generated
/// by senders with different sources of randomness are uncorrelated"), so
/// parallel downloads from full senders need no orchestration.
namespace icd::core {

class OriginServer {
 public:
  /// Splits `content` into blocks of `block_size` bytes and prepares the
  /// fountain. `session_seed` defines the code all peers share;
  /// `stream_index` decorrelates the id streams of multiple origins of the
  /// same content.
  OriginServer(std::vector<std::uint8_t> content, std::size_t block_size,
               codec::DegreeDistribution distribution,
               std::uint64_t session_seed, std::uint64_t stream_index = 0);

  /// Produces the next symbol of this origin's stream.
  codec::EncodedSymbol next() { return encoder_.next(); }

  /// Produces the symbol with a specific id (any 64-bit id is valid).
  codec::EncodedSymbol encode(std::uint64_t id) const {
    return encoder_.encode(id);
  }

  /// Reserves the next stream id without encoding it: next() ≡
  /// encode(take_next_id()). The coordinator draws ids in deterministic
  /// order; shard workers encode them in parallel (encode() is const).
  std::uint64_t take_next_id() { return encoder_.take_next_id(); }

  const codec::CodeParameters& parameters() const {
    return encoder_.parameters();
  }
  const codec::DegreeDistribution& distribution() const {
    return encoder_.distribution();
  }
  std::size_t content_size() const { return content_.size(); }
  std::size_t block_count() const { return source_.block_count(); }
  std::size_t block_size() const { return source_.block_size(); }

 private:
  std::vector<std::uint8_t> content_;
  codec::BlockSource source_;
  codec::Encoder encoder_;
};

}  // namespace icd::core

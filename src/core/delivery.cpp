#include "core/delivery.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/session_plan.hpp"
#include "util/hash.hpp"

namespace icd::core {

ContentDeliveryService::ContentDeliveryService(
    std::vector<std::uint8_t> content, DeliveryOptions options)
    : content_(std::move(content)), options_(options),
      next_session_seed_(util::mix64(options.session_seed ^ 0x5e551075ULL)),
      faults_(options.faults) {
  origins_.push_back(std::make_unique<OriginServer>(
      content_, options_.block_size,
      delivery_distribution(content_.size(), options_.block_size),
      options_.session_seed, /*stream_index=*/0));
}

void ContentDeliveryService::add_mirror() {
  origins_.push_back(std::make_unique<OriginServer>(
      content_, options_.block_size,
      delivery_distribution(content_.size(), options_.block_size),
      options_.session_seed, /*stream_index=*/origins_.size()));
}

std::size_t ContentDeliveryService::add_peer(const std::string& name,
                                             bool subscribe_origin) {
  PeerEntry entry;
  entry.peer = std::make_unique<Peer>(
      name, origins_.front()->parameters(),
      delivery_distribution(content_.size(), options_.block_size));
  entry.origin_fed = subscribe_origin;
  entry.origin_index = peers_.size() % origins_.size();
  peers_.push_back(std::move(entry));
  planner_dirty_ = true;  // membership change: replan from scratch
  return peers_.size() - 1;
}

void ContentDeliveryService::refresh_sessions() {
  // Tear down finished/stale sessions, then give every incomplete peer up
  // to max_peer_sessions downloads from admission-ranked senders. The loop
  // shape, ranking, fallback and seed chain live in session_plan, shared
  // with ShardedDelivery so the two engines form identical sessions.
  const std::size_t target = static_cast<std::size_t>(
      1.07 * static_cast<double>(parameters().block_count));
  planner_dirty_ = true;  // every download link is about to be replaced
  run_refresh_loop(
      peers_.size(), options_, target, next_session_seed_,
      /*teardown=*/
      [this](std::size_t me) {
        // Graceful teardown (mirrors the simulator's reconfigure): flush
        // and deliver frames still in flight (nothing further will be sent
        // on the link, so the channel's one-hop clock would never release
        // them), then bank the wire costs of the links about to be retired
        // so cumulative accounting (link_totals) survives.
        for (auto& [sender_id, download] : peers_[me].downloads) {
          teardown_download(*download);
        }
        peers_[me].downloads.clear();
        // Past the last delivery this peer can ever see, a finished
        // decoder's solver state is dead weight — release it here (not at
        // the completion stamp, where in-flight symbols could still peel
        // held equations and perturb the sketch admission reads).
        if (peers_[me].peer->has_content()) {
          peers_[me].peer->compact_on_complete();
        }
      },
      /*is_complete=*/
      [this](std::size_t me) {
        // A down peer plans nothing this refresh — it rejoins (session
        // resumption with its surviving working set) at the first refresh
        // after its restart.
        return peers_[me].peer->has_content() || faults_.down(me, ticks_);
      },
      /*snapshot=*/
      [this](std::size_t j) {
        return PlanPeer{&peers_[j].peer->sketch(),
                        peers_[j].peer->symbol_count(),
                        !faults_.unavailable(j, ticks_)};
      },
      /*create=*/
      [this](std::size_t me, PlannedDownload& planned) {
        auto download = std::make_unique<DownloadLink>(
            *peers_[planned.sender_id].peer, *peers_[me].peer,
            planned.session, planned.link);
        // The handshake itself flows over the (possibly lossy) link and
        // completes across subsequent ticks.
        download->receiver.start();
        peers_[me].downloads.emplace(planned.sender_id, std::move(download));
      });
}

std::size_t ContentDeliveryService::tick() {
  // The tick index is the virtual time every timed link advances to.
  const std::uint64_t now = ticks_;
  // Fault application precedes the refresh so crashed peers are excluded
  // from (and flash-crowd joiners included in) a refresh due this tick.
  if (faults_.active()) apply_faults(now);
  if (ticks_ % std::max<std::size_t>(1, options_.refresh_interval) == 0) {
    refresh_sessions();
  }
  ++ticks_;

  std::size_t completed_now = 0;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    PeerEntry& entry = peers_[i];
    if (entry.peer->has_content()) continue;
    // A down (crashed or stalled) peer is frozen: no origin feed, and its
    // own downloads are not serviced. Its receivers-on-other-peers keep
    // running and discover the silence via their liveness timeouts.
    if (faults_.active() && faults_.down(i, now)) continue;
    // Origin feed: one fresh symbol per tick for subscribers.
    if (entry.origin_fed) {
      entry.peer->receive_encoded(origins_[entry.origin_index]->next());
    }
    if (faults_.any_blackouts()) {
      for (auto& [sender_id, download] : entry.downloads) {
        download->link.set_blackout(faults_.blackout(sender_id, i, now));
      }
    }
    service_downloads(entry, now);
    if (entry.peer->has_content()) ++completed_now;
  }
  // Failure sweep before the completion stamps: sessions whose receivers
  // flagged a dead sender this tick are retired at the tick they failed.
  if (failure_detection_enabled()) sweep_failed_downloads(ticks_);
  // Completion stamps (covers peers finished by a refresh teardown too);
  // the global clock follows the tick index.
  for (PeerEntry& entry : peers_) {
    if (entry.completed_tick == 0 && entry.peer->has_content()) {
      entry.completed_tick = ticks_;
    }
  }
  loop_.advance_to(ticks_);
  return completed_now;
}

void ContentDeliveryService::apply_faults(std::uint64_t now) {
  faults_.apply_until(
      now,
      /*on_crash=*/
      [this](std::size_t peer) {
        if (peer >= peers_.size()) return;
        // The crash kills the peer's live sessions (wire costs banked) but
        // not its decoded content: a later restart rejoins holding the
        // partial working set and re-handshakes with its current summary.
        planner_dirty_ = true;
        for (auto& [sender_id, download] : peers_[peer].downloads) {
          teardown_download(*download);
        }
        peers_[peer].downloads.clear();
        if (peers_[peer].peer->has_content()) {
          peers_[peer].peer->compact_on_complete();
        }
      },
      /*on_join=*/
      [this](std::size_t count, bool origin_fed) {
        for (std::size_t n = 0; n < count; ++n) {
          add_peer("join" + std::to_string(peers_.size()), origin_fed);
        }
      });
}

void ContentDeliveryService::sweep_failed_downloads(std::uint64_t now) {
  for (PeerEntry& entry : peers_) {
    for (auto it = entry.downloads.begin(); it != entry.downloads.end();) {
      const ReceiverEndpoint& receiver = it->second->receiver;
      if (!receiver.failed() && !receiver.sender_suspect()) {
        ++it;
        continue;
      }
      const auto reason = receiver.failed()
                              ? FailedPeer::Reason::kHandshakeExhausted
                              : FailedPeer::Reason::kLivenessTimeout;
      teardown_download(*it->second);
      entry.failed_peers.push_back(FailedPeer{it->first, now, reason});
      faults_.mark_suspect(it->first, now + suspect_ttl());
      it = entry.downloads.erase(it);
      planner_dirty_ = true;  // the erased download's events are gone
    }
  }
}

void ContentDeliveryService::teardown_download(DownloadLink& download) {
  download.link.flush();
  download.receiver.tick();
  accumulate_link(download, retired_link_totals_);
}

void ContentDeliveryService::service_downloads(PeerEntry& entry,
                                               std::uint64_t now) {
  // All-untimed peers (the default) keep the historical lockstep loop
  // with zero scheduling overhead — the scheduler path below reproduces
  // it bit for bit (ties at `now` pop in ascending sender order), but
  // there is no reason to pay the heap on the legacy hot path.
  bool any_timed = false;
  for (auto& [sender_id, download] : entry.downloads) {
    if (download->link.timed()) {
      any_timed = true;
      break;
    }
  }
  if (!any_timed) {
    // One symbol from each active download link: the serving endpoint
    // answers handshakes and streams, the receiving endpoint absorbs.
    // The channel's one-hop residency keeps adjacent data frames paired
    // for reorder_rate even though both sides drain every tick.
    for (auto& [sender_id, download] : entry.downloads) {
      if (entry.peer->has_content()) break;
      // A down sender goes silent mid-session: its endpoint is frozen
      // while the receiver keeps ticking, so the receiver's liveness
      // clock (and handshake retry budget) does the failure detection.
      const bool sender_down =
          faults_.active() && faults_.down(sender_id, now);
      if (!sender_down) {
        download->sender.tick();
        download->sender.send_symbol();
      }
      download->receiver.tick();
    }
    return;
  }

  // Schedule each download's next service event; untimed links (mixed
  // configs) are due now with sender-ascending ties, reproducing the
  // historical lockstep order exactly. A timed link's delay/jitter
  // schedule keeps adjacent data frames paired for reorder even though
  // due links drain every service.
  const std::size_t hint = data_frame_bytes_hint(options_.block_size);
  loop_.clear();
  for (auto& [sender_id, download] : entry.downloads) {
    download->link.advance_to(now);
    LinkTimes times;
    times.timed = download->link.timed();
    times.sender_down = faults_.active() && faults_.down(sender_id, now);
    if (times.timed) {
      times.next_arrival = download->link.next_arrival_at();
      times.send_credit_at = download->link.a_send_ready_at(hint);
    }
    if (auto at = next_service_time(download->sender, download->receiver,
                                    times, now)) {
      loop_.schedule(*at, EventKind::kService, sender_id);
    }
  }
  // One symbol from each due download link: the serving endpoint answers
  // handshakes and streams (token bucket permitting), the receiving
  // endpoint absorbs.
  while (auto event = loop_.pop_due(now)) {
    if (entry.peer->has_content()) break;
    DownloadLink& download = *entry.downloads.at(event->key);
    const bool sender_down =
        faults_.active() && faults_.down(event->key, now);
    if (!sender_down) {
      download.sender.tick();
      if (!download.link.timed() ||
          download.link.a_send_ready_at(hint) <= now) {
        download.sender.send_symbol();
      }
    }
    download.receiver.advance_to(now);
    download.receiver.tick();
  }
}

std::optional<Event> ContentDeliveryService::plan_peer_events(
    std::size_t i, std::uint64_t now) {
  PeerEntry& entry = peers_[i];
  if (entry.peer->has_content()) return std::nullopt;
  // A down peer is frozen until a fault boundary (restart / stall end)
  // wakes it — every boundary forces a full planner rebuild, never a
  // per-link event.
  if (faults_.active() && faults_.down(i, now)) return std::nullopt;
  // The origin fountain streams one symbol per tick to an incomplete
  // subscriber: every tick is an event while one exists.
  if (entry.origin_fed) return Event{now, EventKind::kOriginFeed, i};
  const std::size_t hint = data_frame_bytes_hint(options_.block_size);
  plan_scratch_.clear();
  for (auto& [sender_id, download] : entry.downloads) {
    LinkTimes times;
    times.timed = download->link.timed();
    times.sender_down = faults_.active() && faults_.down(sender_id, now);
    if (times.timed) {
      times.next_arrival = download->link.next_event_time();
      times.send_credit_at = download->link.a_send_ready_at(hint);
    }
    schedule_download_events(plan_scratch_, download->sender,
                             download->receiver, times, now, sender_id);
  }
  const auto first = plan_scratch_.peek();
  if (!first) return std::nullopt;
  // Re-keyed to the receiving peer: the planner holds one entry per peer,
  // and only the entry's *time* feeds the jump target (max(peek, now) —
  // exactly what the full rebuild's global min produced).
  return Event{first->at, first->kind, i};
}

void ContentDeliveryService::replan_peer(std::size_t i, std::uint64_t now) {
  const char incomplete = peers_[i].peer->has_content() ? 0 : 1;
  if (plan_incomplete_[i] != incomplete) {
    plan_incomplete_[i] = incomplete;
    if (incomplete) {
      ++incomplete_peers_;
    } else {
      --incomplete_peers_;
    }
  }
  planner_.set(i, plan_peer_events(i, now));
}

std::optional<std::uint64_t> ContentDeliveryService::next_event_time() {
  const std::uint64_t now = ticks_;
  planner_.ensure_keys(peers_.size());
  if (plan_incomplete_.size() < peers_.size()) {
    plan_incomplete_.resize(peers_.size(), 0);
  }
  // Full rebuild when the download graph changed shape (refresh, crash,
  // sweep, join), when a fault boundary fell inside the planning gap (a
  // stall window edge flips down() with no callback), or — conservatively
  // — while blackout windows exist (they mutate link delivery without
  // touching any planned state).
  bool full = planner_dirty_ || planner_.pending_full() ||
              faults_.any_blackouts();
  if (!full && faults_.active()) {
    const auto boundary = faults_.next_boundary_after(planned_through_);
    if (boundary && *boundary <= now) full = true;
  }
  if (full) {
    planner_.begin_rebuild();
    incomplete_peers_ = 0;
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      plan_incomplete_[i] = peers_[i].peer->has_content() ? 0 : 1;
      incomplete_peers_ += static_cast<std::size_t>(plan_incomplete_[i]);
      planner_.set(i, plan_peer_events(i, now));
    }
    planner_dirty_ = false;
  } else {
    // Incremental round: only peers whose stored entry came due (the
    // executed ticks may have perturbed exactly those) are replanned.
    // Entries with at >= now are untouched — every per-download time
    // source is an absolute-time function of state that no-op services
    // leave unchanged, so they are exactly what a rebuild would plan.
    plan_due_scratch_.clear();
    planner_.take_due(now, plan_due_scratch_);
    for (const std::uint64_t key : plan_due_scratch_) {
      replan_peer(key, now);
    }
  }
  planned_through_ = now;
  if (incomplete_peers_ == 0 && !faults_.pending_joins()) return std::nullopt;
  std::optional<std::uint64_t> at;
  if (const auto next = planner_.peek()) at = next->at;
  // Fault boundaries are planning barriers: the jump may never cross a
  // crash/restart/join tick or a stall/blackout window edge, so jumped
  // and lockstep runs apply faults at identical ticks.
  if (faults_.active()) {
    if (const auto boundary = faults_.next_boundary_after(now)) {
      at = at ? std::min(*at, *boundary) : *boundary;
    }
  }
  // The coordinator's next refresh tick (first multiple of the interval
  // at or after now — matching tick()'s pre-increment modulo check).
  const std::size_t interval =
      std::max<std::size_t>(1, options_.refresh_interval);
  const std::uint64_t refresh = ((now + interval - 1) / interval) * interval;
  at = at ? std::min(*at, refresh) : refresh;
  return std::max(*at, now);
}

bool ContentDeliveryService::run(std::size_t max_ticks) {
  return run_until(ticks_ + max_ticks);
}

bool ContentDeliveryService::run_until(std::uint64_t deadline) {
  while (ticks_ < deadline) {
    tick();
    const bool all = std::all_of(
        peers_.begin(), peers_.end(),
        [](const PeerEntry& e) { return e.peer->has_content(); });
    // "All done" is only final once no flash crowd is still scheduled to
    // arrive — a pending join re-opens the swarm.
    if (all && !faults_.pending_joins()) return true;
    if (!options_.jump_empty_ticks) continue;
    // All-untimed swarms can never open a span (untimed downloads are
    // due every tick), so skip the planning rebuild outright and keep
    // the historical heap-free hot path. A link_config may hand out
    // timed configs per edge, so its presence keeps planning on.
    if (!options_.link.timed() && !options_.link_config) continue;
    // Jump straight to the next tick at which anything can happen; every
    // tick in between is a no-op by construction and is counted, not run.
    if (const auto next = next_event_time()) {
      const std::uint64_t target = std::min<std::uint64_t>(*next, deadline);
      loop_.skip_to(target);
      ticks_ = target;
    }
  }
  return std::all_of(peers_.begin(), peers_.end(), [](const PeerEntry& e) {
    return e.peer->has_content();
  });
}

std::vector<std::uint8_t> ContentDeliveryService::peer_content(
    std::size_t id) const {
  return peers_.at(id).peer->content(content_.size());
}

void ContentDeliveryService::accumulate_link(const DownloadLink& download,
                                             LinkTotals& totals) {
  totals.add(download.sender.transport().stats())
      .add(download.receiver.transport().stats());
}

ContentDeliveryService::LinkTotals
ContentDeliveryService::active_link_totals() const {
  LinkTotals totals;
  for (const PeerEntry& entry : peers_) {
    for (const auto& [sender_id, download] : entry.downloads) {
      accumulate_link(*download, totals);
    }
  }
  return totals;
}

ContentDeliveryService::LinkTotals ContentDeliveryService::link_totals()
    const {
  LinkTotals totals = retired_link_totals_;
  totals += active_link_totals();
  return totals;
}

MemoryAudit ContentDeliveryService::memory_audit() const {
  MemoryAudit audit;
  audit.peers = peers_.size();
  for (const PeerEntry& entry : peers_) {
    audit.decoder_bytes += entry.peer->memory_bytes();
    for (const auto& [sender_id, download] : entry.downloads) {
      audit.endpoint_bytes += download->sender.memory_bytes() +
                              download->receiver.memory_bytes();
      // The link counts its shared buffer pool once here; the transports
      // deliberately exclude it (see Transport::memory_bytes).
      audit.link_bytes += download->link.memory_bytes();
    }
  }
  return audit;
}

}  // namespace icd::core

#include "core/delivery.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace icd::core {

namespace {

codec::DegreeDistribution make_distribution(std::size_t content_size,
                                            std::size_t block_size) {
  const std::size_t blocks =
      std::max<std::size_t>(1, (content_size + block_size - 1) / block_size);
  return codec::DegreeDistribution::robust_soliton(std::max<std::size_t>(
      blocks, 2));
}

}  // namespace

ContentDeliveryService::ContentDeliveryService(
    std::vector<std::uint8_t> content, DeliveryOptions options)
    : content_(std::move(content)), options_(options),
      next_session_seed_(util::mix64(options.session_seed ^ 0x5e551075ULL)) {
  origins_.push_back(std::make_unique<OriginServer>(
      content_, options_.block_size,
      make_distribution(content_.size(), options_.block_size),
      options_.session_seed, /*stream_index=*/0));
}

void ContentDeliveryService::add_mirror() {
  origins_.push_back(std::make_unique<OriginServer>(
      content_, options_.block_size,
      make_distribution(content_.size(), options_.block_size),
      options_.session_seed, /*stream_index=*/origins_.size()));
}

std::size_t ContentDeliveryService::add_peer(const std::string& name,
                                             bool subscribe_origin) {
  PeerEntry entry;
  entry.peer = std::make_unique<Peer>(
      name, origins_.front()->parameters(),
      make_distribution(content_.size(), options_.block_size));
  entry.origin_fed = subscribe_origin;
  entry.origin_index = peers_.size() % origins_.size();
  peers_.push_back(std::move(entry));
  return peers_.size() - 1;
}

void ContentDeliveryService::refresh_sessions() {
  // Tear down finished/stale sessions, then give every incomplete peer up
  // to max_peer_sessions downloads from admission-ranked senders.
  for (std::size_t me = 0; me < peers_.size(); ++me) {
    PeerEntry& entry = peers_[me];
    // Graceful teardown (mirrors the simulator's reconfigure): flush and
    // deliver frames still in flight (nothing further will be sent on the
    // link, so the channel's one-hop clock would never release them), then
    // bank the wire costs of the links about to be retired so cumulative
    // accounting (link_totals) survives.
    for (auto& [sender_id, download] : entry.downloads) {
      download->link.flush();
      download->receiver.tick();
      accumulate_link(*download, retired_link_totals_);
    }
    entry.downloads.clear();
    if (entry.peer->has_content()) continue;

    std::vector<CandidateSender> candidates;
    for (std::size_t j = 0; j < peers_.size(); ++j) {
      if (j == me || peers_[j].peer->symbol_count() == 0) continue;
      candidates.push_back(CandidateSender{
          j, &peers_[j].peer->sketch(), peers_[j].peer->symbol_count()});
    }
    auto selected = select_senders(
        entry.peer->sketch(), entry.peer->symbol_count(), candidates,
        options_.admission, options_.max_peer_sessions);
    // Starvation fallback: admission exists to skip identical-content
    // senders, but near the end of a download every candidate looks
    // near-identical (resemblance above the cutoff) while still holding
    // the few novel symbols the peer needs to finish. An incomplete peer
    // connects to the largest candidate rather than stalling forever —
    // unless peer sessions are disabled outright (max_peer_sessions 0).
    if (selected.empty() && !candidates.empty() &&
        options_.max_peer_sessions > 0) {
      const auto best = std::max_element(
          candidates.begin(), candidates.end(),
          [](const CandidateSender& a, const CandidateSender& b) {
            return a.working_set_size < b.working_set_size;
          });
      selected.push_back(best->id);
    }

    const std::size_t target = static_cast<std::size_t>(
        1.07 * static_cast<double>(parameters().block_count));
    const std::size_t have = entry.peer->symbol_count();
    const std::size_t needed = target > have ? target - have : 1;
    for (const std::size_t j : selected) {
      SessionOptions session_options;
      session_options.strategy = options_.strategy;
      session_options.requested_symbols = std::max<std::size_t>(
          1, (needed * 5 / 4) / std::max<std::size_t>(1, selected.size()));
      session_options.seed = next_session_seed_ =
          util::mix64(next_session_seed_);
      const wire::ChannelConfig link_config = wire::resolve_edge_config(
          options_.link_config, options_.link, j, me,
          util::mix64(next_session_seed_ ^ 0x11aacULL));
      auto download = std::make_unique<DownloadLink>(
          *peers_[j].peer, *entry.peer, session_options, link_config);
      // The handshake itself flows over the (possibly lossy) link and
      // completes across subsequent ticks.
      download->receiver.start();
      entry.downloads.emplace(j, std::move(download));
    }
  }
}

std::size_t ContentDeliveryService::tick() {
  if (ticks_ % std::max<std::size_t>(1, options_.refresh_interval) == 0) {
    refresh_sessions();
  }
  ++ticks_;

  std::size_t completed_now = 0;
  for (PeerEntry& entry : peers_) {
    if (entry.peer->has_content()) continue;
    // Origin feed: one fresh symbol per tick for subscribers.
    if (entry.origin_fed) {
      entry.peer->receive_encoded(origins_[entry.origin_index]->next());
    }
    // One symbol from each active download link: the serving endpoint
    // answers handshakes and streams, the receiving endpoint absorbs.
    // The channel's one-hop residency keeps adjacent data frames paired
    // for reorder_rate even though both sides drain every tick.
    for (auto& [sender_id, download] : entry.downloads) {
      if (entry.peer->has_content()) break;
      download->sender.tick();
      download->sender.send_symbol();
      download->receiver.tick();
    }
    if (entry.peer->has_content()) ++completed_now;
  }
  return completed_now;
}

bool ContentDeliveryService::run(std::size_t max_ticks) {
  for (std::size_t t = 0; t < max_ticks; ++t) {
    tick();
    const bool all = std::all_of(
        peers_.begin(), peers_.end(),
        [](const PeerEntry& e) { return e.peer->has_content(); });
    if (all) return true;
  }
  return false;
}

std::vector<std::uint8_t> ContentDeliveryService::peer_content(
    std::size_t id) const {
  return peers_.at(id).peer->content(content_.size());
}

void ContentDeliveryService::accumulate_link(const DownloadLink& download,
                                             LinkTotals& totals) {
  for (const wire::Transport* transport :
       {&download.sender.transport(), &download.receiver.transport()}) {
    const auto& stats = transport->stats();
    totals.control_bytes += stats.control_bytes_sent;
    totals.control_frames += stats.control_frames_sent;
    totals.data_bytes += stats.data_bytes_sent;
    totals.data_frames += stats.data_frames_sent;
    totals.frames_refused += stats.frames_refused;
  }
}

ContentDeliveryService::LinkTotals
ContentDeliveryService::active_link_totals() const {
  LinkTotals totals;
  for (const PeerEntry& entry : peers_) {
    for (const auto& [sender_id, download] : entry.downloads) {
      accumulate_link(*download, totals);
    }
  }
  return totals;
}

ContentDeliveryService::LinkTotals ContentDeliveryService::link_totals()
    const {
  LinkTotals totals = retired_link_totals_;
  totals += active_link_totals();
  return totals;
}

}  // namespace icd::core

#include "core/origin.hpp"

#include "util/hash.hpp"

namespace icd::core {

OriginServer::OriginServer(std::vector<std::uint8_t> content,
                           std::size_t block_size,
                           codec::DegreeDistribution distribution,
                           std::uint64_t session_seed,
                           std::uint64_t stream_index)
    : content_(std::move(content)), source_(content_, block_size),
      encoder_(source_, std::move(distribution), session_seed,
               util::mix64(stream_index + 1)) {}

}  // namespace icd::core

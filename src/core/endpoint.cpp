#include "core/endpoint.hpp"

#include <algorithm>
#include <stdexcept>

#include "reconcile/set_difference.hpp"

namespace icd::core {

namespace {

codec::DegreeDistribution make_recode_distribution(std::size_t domain_size,
                                                   std::size_t cap) {
  return codec::DegreeDistribution::robust_soliton(
             std::max<std::size_t>(domain_size, 2))
      .truncated(cap);
}

}  // namespace

// --- ReceiverEndpoint ------------------------------------------------------

ReceiverEndpoint::ReceiverEndpoint(Peer& peer, SessionOptions options,
                                   wire::Transport& transport)
    : peer_(peer), options_(options), transport_(transport) {}

void ReceiverEndpoint::start() {
  started_ = true;
  phase_ = EndpointPhase::kEstimate;
  send_bundle();
}

namespace {

/// (Re)fills a cached SketchMessage with the peer's current sketch —
/// copy-assignment into the cached minima vector reuses its capacity, so
/// only the very first bundle of a session allocates for the sketch.
const wire::Message& refresh_sketch_scratch(
    std::optional<wire::Message>& scratch, const Peer& peer) {
  if (!scratch) {
    scratch.emplace(wire::SketchMessage{peer.sketch()});
  } else {
    std::get<wire::SketchMessage>(*scratch).sketch = peer.sketch();
  }
  return *scratch;
}

}  // namespace

void ReceiverEndpoint::send_bundle() {
  const auto& params = peer_.parameters();
  transport_.send(wire::Hello{params.block_count, params.session_seed,
                              peer_.symbol_count()});
  transport_.send(refresh_sketch_scratch(sketch_scratch_, peer_));
  if (strategy_uses_bloom(options_.strategy)) {
    if (!summary_cache_) {
      if (options_.summary == SummaryKind::kBloomFilter) {
        summary_cache_ = wire::BloomSummaryMessage{
            peer_.bloom_summary(options_.bloom_bits_per_element)};
      } else {
        summary_cache_ = wire::ArtSummaryMessage{
            peer_.art_summary(options_.art_leaf_bits_per_element,
                              options_.art_internal_bits_per_element)};
      }
    }
    transport_.send(*summary_cache_);
  }
  // The Request closes the bundle: the sender replies only once it has
  // everything, so a re-sent Request re-triggers the reply.
  transport_.send(wire::Request{options_.requested_symbols});
}

std::size_t ReceiverEndpoint::tick() {
  if (!started_) {
    throw std::logic_error("ReceiverEndpoint::tick before start");
  }
  // Elapsed quiet credit for this service: one call on the call-counting
  // clock, the virtual span since the last service once advance_to() has
  // armed the virtual clock — identical under a lockstep driver, credited
  // in one step by a jumping driver whose skipped ticks were provably
  // quiet. Computed up front so both the handshake retry clock and the
  // transfer liveness clock share one definition of "elapsed".
  std::size_t elapsed = 1;
  if (clock_) {
    if (serviced_at_ && *clock_ > *serviced_at_) {
      elapsed = static_cast<std::size_t>(*clock_ - *serviced_at_);
    }
    serviced_at_ = *clock_;
  }
  std::size_t gained = 0;
  std::size_t frames_seen = 0;
  // Zero-copy drain: symbol frames arrive as views into the transport's
  // receive buffer and are copied exactly once, into the peer's decoder;
  // only control frames materialize owning Messages.
  while (auto frame = transport_.receive_frame()) {
    ++frames_seen;
    std::size_t got = 0;
    bool was_symbol = true;
    if (auto* encoded = std::get_if<codec::EncodedSymbolView>(&*frame)) {
      got = peer_.receive_encoded(*encoded);
    } else if (auto* recoded =
                   std::get_if<codec::RecodedSymbolView>(&*frame)) {
      got = peer_.receive_recoded(*recoded);
    } else {
      was_symbol = false;
      auto& message = std::get<wire::Message>(*frame);
      if (auto* hello = std::get_if<wire::Hello>(&message)) {
        if (hello->block_count != peer_.parameters().block_count ||
            hello->session_seed != peer_.parameters().session_seed) {
          throw std::invalid_argument(
              "ReceiverEndpoint: sender uses a different code");
        }
        sender_hello_ = *hello;
      } else if (auto* sketch = std::get_if<wire::SketchMessage>(&message)) {
        // Buffered: a reordered link can deliver the sketch before the
        // Hello that carries the working-set size the estimate needs.
        sender_sketch_ = std::move(sketch->sketch);
      } else if (auto* encoded_msg =
                     std::get_if<wire::EncodedSymbolMessage>(&message)) {
        // Symbols larger than the link MTU arrive fragment-reassembled as
        // owning messages instead of views.
        was_symbol = true;
        got = peer_.receive_encoded(encoded_msg->symbol);
      } else if (auto* recoded_msg =
                     std::get_if<wire::RecodedSymbolMessage>(&message)) {
        was_symbol = true;
        got = peer_.receive_recoded(recoded_msg->symbol);
      }
      // Anything else (stray Request/summary echoes) is ignored.
    }
    if (was_symbol) {
      ++symbols_received_;
      if (got > 0) ++symbols_useful_;
      new_encoded_symbols_ += got;
      gained += got;
    }
  }

  if (sender_hello_ && sender_sketch_) {
    if (!containment_estimated_) {
      const double resemblance = sketch::MinwiseSketch::resemblance(
          peer_.sketch(), *sender_sketch_);
      estimated_containment_ = sketch::containment_from_resemblance(
          resemblance, peer_.symbol_count(), sender_hello_->working_set_size);
      containment_estimated_ = true;
    }
    phase_ = EndpointPhase::kTransfer;
    // Transfer reached: the buffered sender sketch and the cached
    // handshake bundle (summary + sketch scratch) are never sent or read
    // again — retries only run pre-transfer. Freeing them here is what
    // keeps per-receiver memory flat at 10k+ peers; a duplicate sender
    // reply merely re-buffers the sketch until the next service.
    sender_sketch_.reset();
    summary_cache_.reset();
    sketch_scratch_.reset();
  }

  // Request/retry path: until the sender's reply lands, re-send the whole
  // bundle periodically — any piece of it may have been lost. The clock
  // deliberately ignores arriving traffic: symbols can already be
  // streaming while the (lost) reply is what keeps us out of kTransfer.
  // A service with a stale clock (teardown ticks) counts as one quiet
  // tick, as it always has. Each retry stretches the cadence by the
  // backoff factor (capped); an exhausted retry budget fails the session
  // instead of retrying forever against a permanently dead sender.
  if (phase_ != EndpointPhase::kTransfer && !failed_) {
    quiet_ticks_ += elapsed;
    if (quiet_ticks_ >= retry_interval()) {
      if (options_.max_handshake_retries > 0 &&
          handshake_retries_ >= options_.max_handshake_retries) {
        failed_ = true;
      } else {
        quiet_ticks_ = 0;
        ++handshake_retries_;
        send_bundle();
      }
    }
  }
  // Sender-liveness: in transfer, silence past the timeout flags the
  // sender suspect. Any arriving frame — data or control — is evidence of
  // life; a satisfied receiver expects silence and never suspects.
  if (options_.liveness_timeout_ticks > 0 &&
      phase_ == EndpointPhase::kTransfer && !satisfied()) {
    if (frames_seen > 0) {
      quiet_transfer_ticks_ = 0;
    } else {
      quiet_transfer_ticks_ += elapsed;
      if (quiet_transfer_ticks_ >= options_.liveness_timeout_ticks) {
        sender_suspect_ = true;
      }
    }
  }
  if (options_.flow_control && phase_ == EndpointPhase::kTransfer) {
    maybe_send_flow_update();
  }
  return gained;
}

void ReceiverEndpoint::maybe_send_flow_update() {
  // The closing update (zero remaining) stops the sender. It can be lost;
  // the retry signal is the data plane itself — while symbols keep
  // arriving the sender evidently has not heard, so the stop is re-issued
  // every flow_update_symbols further arrivals. Symbols already in flight
  // over the link's RTT cost at most a handful of redundant updates.
  if (satisfied()) {
    if (!satisfied_sent_ ||
        symbols_received_ - received_at_stop_ >= options_.flow_update_symbols) {
      transport_.send(wire::RequestUpdate{0});
      satisfied_sent_ = true;
      received_at_stop_ = symbols_received_;
      ++flow_updates_sent_;
    }
    return;
  }
  // Decrement-count re-issues only make sense against a bounded request.
  if (options_.requested_symbols == 0) return;
  if (new_encoded_symbols_ - acked_symbols_ < options_.flow_update_symbols) {
    return;
  }
  acked_symbols_ = new_encoded_symbols_;
  transport_.send(wire::RequestUpdate{options_.requested_symbols -
                                      new_encoded_symbols_});
  ++flow_updates_sent_;
}

// --- SenderEndpoint --------------------------------------------------------

SenderEndpoint::SenderEndpoint(Peer& peer, SessionOptions options,
                               wire::Transport& transport)
    : peer_(peer), options_(options), transport_(transport),
      rng_(options.seed),
      recode_distribution_(make_recode_distribution(
          peer.symbol_count(), options.recode_degree_limit)) {}

bool SenderEndpoint::bundle_complete() const {
  if (!receiver_hello_ || !receiver_sketch_ || !request_seen_) return false;
  if (strategy_uses_bloom(options_.strategy) && !receiver_bloom_ &&
      !receiver_art_) {
    return false;
  }
  return true;
}

void SenderEndpoint::tick() {
  while (auto frame = transport_.receive_frame()) {
    auto* message = std::get_if<wire::Message>(&*frame);
    if (!message) continue;  // stray symbol frames carry nothing for us
    if (auto* hello = std::get_if<wire::Hello>(&*message)) {
      if (hello->block_count != peer_.parameters().block_count ||
          hello->session_seed != peer_.parameters().session_seed) {
        throw std::invalid_argument(
            "SenderEndpoint: receiver uses a different code");
      }
      receiver_hello_ = *hello;
    } else if (auto* sketch = std::get_if<wire::SketchMessage>(&*message)) {
      receiver_sketch_ = sketch->sketch;
    } else if (auto* bloom =
                   std::get_if<wire::BloomSummaryMessage>(&*message)) {
      receiver_bloom_ = bloom->filter;
    } else if (auto* art = std::get_if<wire::ArtSummaryMessage>(&*message)) {
      receiver_art_ = art->summary;
    } else if (auto* request = std::get_if<wire::Request>(&*message)) {
      symbols_desired_ = request->symbols_desired;
      request_seen_ = true;
      reply_due_ = true;  // each (re)sent bundle earns a reply
    } else if (auto* update = std::get_if<wire::RequestUpdate>(&*message)) {
      receiver_remaining_ = update->symbols_remaining;
      if (update->symbols_remaining == 0) satisfied_ = true;
    }
  }

  // Transfer first: once the handshake is digested the buffered summaries
  // are released (finish_handshake), so bundle_complete() no longer holds
  // — but in transfer the only work left is answering re-sent bundles.
  // Pre-release this ordering is equivalent to checking bundle_complete()
  // first, because the buffered pieces were sticky once transfer began.
  if (phase_ == EndpointPhase::kTransfer) {
    if (reply_due_) send_reply();
    reply_due_ = false;
    release_handshake_summaries();  // drop any re-buffered duplicates
    return;
  }
  if (!bundle_complete()) {
    if (receiver_hello_ || receiver_sketch_) {
      phase_ = strategy_uses_bloom(options_.strategy)
                   ? EndpointPhase::kSummarize
                   : EndpointPhase::kEstimate;
    }
    return;
  }
  finish_handshake();
  reply_due_ = false;
}

void SenderEndpoint::finish_handshake() {
  using overlay::Strategy;

  // Estimate: containment of the receiver's working set in ours.
  const double resemblance = sketch::MinwiseSketch::resemblance(
      *receiver_sketch_, peer_.sketch());
  estimated_containment_ = sketch::containment_from_resemblance(
      resemblance, receiver_hello_->working_set_size, peer_.symbol_count());

  // Summarize: digest the Bloom/ART summary into the filtered domain.
  if (strategy_uses_bloom(options_.strategy)) {
    if (receiver_bloom_) {
      domain_ =
          reconcile::bloom_set_difference(peer_.symbol_ids(), *receiver_bloom_);
    } else {
      domain_ = art::find_local_differences(peer_.reconciliation_tree(),
                                            *receiver_art_,
                                            options_.art_correction);
    }
    // Recode/BF: restrict the recoding domain to the receiver's request
    // ("we restrict the recoding domain to an appropriate small size").
    if (options_.strategy == Strategy::kRecodeBloom && symbols_desired_ > 0 &&
        domain_.size() > symbols_desired_) {
      util::shuffle(domain_, rng_);
      domain_.resize(symbols_desired_);
      std::sort(domain_.begin(), domain_.end());
    }
    recode_distribution_ = make_recode_distribution(
        std::max<std::size_t>(domain_.size(), 2), options_.recode_degree_limit);
  } else {
    recode_distribution_ = make_recode_distribution(
        peer_.symbol_count(), options_.recode_degree_limit);
  }

  phase_ = EndpointPhase::kTransfer;
  send_reply();
  // The sketch and summary are fully digested into estimated_containment_
  // and domain_; free the per-session copies (the dominant sender-side
  // cost at scale). sketch_scratch_ stays — send_reply reuses it for
  // every re-sent bundle's reply.
  release_handshake_summaries();
}

void SenderEndpoint::send_reply() {
  const auto& params = peer_.parameters();
  transport_.send(wire::Hello{params.block_count, params.session_seed,
                              peer_.symbol_count()});
  transport_.send(refresh_sketch_scratch(sketch_scratch_, peer_));
}

bool SenderEndpoint::send_symbol() {
  using overlay::Strategy;
  if (phase_ != EndpointPhase::kTransfer) return false;
  // Flow control: a satisfied receiver has said stop; serve nothing more.
  if (satisfied_) return false;
  // An empty working set has nothing to serve — every strategy below
  // would otherwise throw from sampling/recoding over zero held symbols.
  if (peer_.symbol_count() == 0) return false;

  // A false from the transport means the frame could not be put on the
  // wire at all (e.g. the MTU cannot fit even one fragment) — distinct
  // from channel loss, which the transport reports as sent.
  //
  // Every branch serializes straight from borrowed storage (the peer's
  // decoder for encoded symbols, recode_scratch_ for recoded ones) into a
  // pooled transport buffer: the steady-state send allocates nothing.
  bool sent = false;
  switch (options_.strategy) {
    case Strategy::kRandom: {
      const auto& ids = peer_.symbol_ids();
      const std::uint64_t id = ids[rng_.next_below(ids.size())];
      sent = transport_.send(
          codec::EncodedSymbolView{id, peer_.symbol_payload(id)});
      break;
    }
    case Strategy::kRandomBloom: {
      const auto& ids = domain_.empty() ? peer_.symbol_ids() : domain_;
      const std::uint64_t id = ids[rng_.next_below(ids.size())];
      sent = transport_.send(
          codec::EncodedSymbolView{id, peer_.symbol_payload(id)});
      break;
    }
    case Strategy::kRecode:
    case Strategy::kRecodeMinwise: {
      std::size_t degree = recode_distribution_.sample(rng_);
      if (options_.strategy == Strategy::kRecodeMinwise) {
        degree = codec::minwise_recode_degree(degree, estimated_containment_,
                                              options_.recode_degree_limit);
      }
      peer_.recode_into(recode_scratch_, degree, rng_);
      sent = transport_.send(codec::RecodedSymbolView(recode_scratch_));
      break;
    }
    case Strategy::kRecodeBloom: {
      const std::size_t degree = recode_distribution_.sample(rng_);
      if (domain_.empty()) {
        peer_.recode_into(recode_scratch_, degree, rng_);
      } else {
        peer_.recode_from_into(recode_scratch_, domain_, degree, rng_);
      }
      sent = transport_.send(codec::RecodedSymbolView(recode_scratch_));
      break;
    }
  }
  if (!sent) return false;
  ++symbols_sent_;
  return true;
}

}  // namespace icd::core

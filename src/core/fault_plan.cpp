#include "core/fault_plan.hpp"

#include <algorithm>

namespace icd::core {

bool FaultPlan::crashed_at(std::size_t peer, std::uint64_t tick) const {
  // Down iff the latest crash at or before `tick` is later than every
  // restart at or before `tick`. Plans are tiny (a handful of entries per
  // scenario), so linear scans beat any index.
  std::optional<std::uint64_t> last_crash;
  for (const Crash& crash : crashes) {
    if (crash.peer == peer && crash.at <= tick) {
      last_crash = last_crash ? std::max(*last_crash, crash.at) : crash.at;
    }
  }
  if (!last_crash) return false;
  for (const Restart& restart : restarts) {
    if (restart.peer == peer && restart.at <= tick &&
        restart.at >= *last_crash) {
      return false;
    }
  }
  return true;
}

bool FaultPlan::stalled_at(std::size_t peer, std::uint64_t tick) const {
  for (const Stall& stall : stalls) {
    if (stall.peer == peer && stall.from <= tick && tick < stall.until) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::blackout_at(std::size_t sender, std::size_t receiver,
                            std::uint64_t tick) const {
  for (const Blackout& window : blackouts) {
    if (window.sender == sender && window.receiver == receiver &&
        window.from <= tick && tick < window.until) {
      return true;
    }
  }
  return false;
}

std::optional<std::uint64_t> FaultPlan::next_boundary_after(
    std::uint64_t tick) const {
  std::optional<std::uint64_t> next;
  const auto consider = [&](std::uint64_t at) {
    if (at > tick) next = next ? std::min(*next, at) : at;
  };
  for (const Crash& crash : crashes) consider(crash.at);
  for (const Restart& restart : restarts) consider(restart.at);
  for (const Join& join : joins) consider(join.at);
  for (const Stall& stall : stalls) {
    consider(stall.from);
    consider(stall.until);
  }
  for (const Blackout& window : blackouts) {
    consider(window.from);
    consider(window.until);
  }
  return next;
}

}  // namespace icd::core

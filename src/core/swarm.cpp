#include "core/swarm.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/event_loop.hpp"
#include "core/origin.hpp"
#include "overlay/scenario.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"

namespace icd::core {

namespace {

/// `count` distinct encoded symbols from one origin stream (the
/// bench_latency universe rule; every process reproduces it bit for bit).
std::vector<codec::EncodedSymbol> build_universe(OriginServer& origin,
                                                 std::size_t count) {
  std::vector<codec::EncodedSymbol> universe;
  std::map<std::uint64_t, bool> seen;
  while (universe.size() < count) {
    auto symbol = origin.next();
    if (seen.emplace(symbol.id, true).second) {
      universe.push_back(std::move(symbol));
    }
  }
  return universe;
}

std::size_t edge_indegree(const SwarmSpec& spec, std::size_t receiver) {
  std::size_t indegree = 0;
  for (const auto& edge : spec.edges) {
    if (edge.receiver == receiver) ++indegree;
  }
  return indegree;
}

}  // namespace

void SwarmSpec::build_full_mesh(std::uint16_t base_port) {
  edges.clear();
  std::uint16_t port = base_port;
  for (std::size_t receiver = 0; receiver < nodes; ++receiver) {
    for (std::size_t sender = 0; sender < nodes; ++sender) {
      if (sender == receiver) continue;
      SwarmEdge edge;
      edge.sender = sender;
      edge.receiver = receiver;
      edge.sender_port = port++;
      edge.receiver_port = port++;
      edges.push_back(edge);
    }
  }
}

std::string swarm_strategy_key(overlay::Strategy strategy) {
  switch (strategy) {
    case overlay::Strategy::kRandom: return "random";
    case overlay::Strategy::kRandomBloom: return "randombf";
    case overlay::Strategy::kRecode: return "recode";
    case overlay::Strategy::kRecodeBloom: return "recodebf";
    case overlay::Strategy::kRecodeMinwise: return "recodemw";
  }
  return "unknown";
}

std::optional<overlay::Strategy> parse_strategy_key(const std::string& key) {
  for (const auto strategy : overlay::kAllStrategies) {
    if (swarm_strategy_key(strategy) == key) return strategy;
  }
  return std::nullopt;
}

const SwarmLinkProfile* SwarmSpec::node_profile(std::size_t id) const {
  const auto it = access.find(id);
  if (it != access.end()) return &link_profiles[it->second];
  if (access_default) return &link_profiles[*access_default];
  return nullptr;
}

bool SwarmSpec::shaped() const {
  for (std::size_t i = 0; i < nodes; ++i) {
    const SwarmLinkProfile* profile = node_profile(i);
    if (profile && (profile->loss > 0.0 || profile->delay_us > 0 ||
                    profile->jitter_us > 0)) {
      return true;
    }
  }
  return false;
}

std::string SwarmSpec::serialize() const {
  std::ostringstream out;
  out << "nodes " << nodes << "\n";
  out << "n " << n << "\n";
  out << "block_size " << block_size << "\n";
  out << "stretch " << stretch << "\n";
  out << "correlation " << correlation << "\n";
  out << "seed " << seed << "\n";
  out << "strategy " << swarm_strategy_key(strategy) << "\n";
  out << "mtu " << mtu << "\n";
  out << "batch_budget " << batch_budget << "\n";
  out << "symbols_per_tick " << symbols_per_tick << "\n";
  out << "handshake_retry_ticks " << handshake_retry_ticks << "\n";
  out << "request_overhead " << request_overhead << "\n";
  out << "loss_rate " << loss_rate << "\n";
  out << "max_handshake_retries " << max_handshake_retries << "\n";
  out << "tick_us " << tick_us << "\n";
  out << "max_ticks " << max_ticks << "\n";
  out << "host " << host << "\n";
  for (const auto& profile : link_profiles) {
    out << "link_profile " << profile.name << " " << profile.loss << " "
        << profile.delay_us << " " << profile.jitter_us << "\n";
  }
  for (const auto& [node, index] : access) {
    out << "access " << node << " " << link_profiles[index].name << "\n";
  }
  if (access_default) {
    out << "access default " << link_profiles[*access_default].name << "\n";
  }
  for (const auto& edge : edges) {
    out << "edge " << edge.sender << " " << edge.receiver << " "
        << edge.sender_port << " " << edge.receiver_port << "\n";
  }
  return out.str();
}

SwarmSpec SwarmSpec::parse(std::istream& in) {
  SwarmSpec spec;
  spec.edges.clear();
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key) || key[0] == '#') continue;
    const auto bad = [&](const std::string& why) -> std::runtime_error {
      return std::runtime_error("SwarmSpec line " +
                                std::to_string(line_number) + ": " + why);
    };
    if (key == "nodes") fields >> spec.nodes;
    else if (key == "n") fields >> spec.n;
    else if (key == "block_size") fields >> spec.block_size;
    else if (key == "stretch") fields >> spec.stretch;
    else if (key == "correlation") fields >> spec.correlation;
    else if (key == "seed") fields >> spec.seed;
    else if (key == "strategy") {
      std::string name;
      fields >> name;
      const auto strategy = parse_strategy_key(name);
      if (!strategy) throw bad("unknown strategy '" + name + "'");
      spec.strategy = *strategy;
    } else if (key == "mtu") fields >> spec.mtu;
    else if (key == "batch_budget") fields >> spec.batch_budget;
    else if (key == "symbols_per_tick") fields >> spec.symbols_per_tick;
    else if (key == "handshake_retry_ticks") fields >> spec.handshake_retry_ticks;
    else if (key == "request_overhead") fields >> spec.request_overhead;
    else if (key == "loss_rate") fields >> spec.loss_rate;
    else if (key == "max_handshake_retries") fields >> spec.max_handshake_retries;
    else if (key == "tick_us") fields >> spec.tick_us;
    else if (key == "max_ticks") fields >> spec.max_ticks;
    else if (key == "host") fields >> spec.host;
    else if (key == "edge") {
      SwarmEdge edge;
      fields >> edge.sender >> edge.receiver >> edge.sender_port >>
          edge.receiver_port;
      spec.edges.push_back(edge);
    } else if (key == "link_profile") {
      SwarmLinkProfile profile;
      fields >> profile.name >> profile.loss >> profile.delay_us >>
          profile.jitter_us;
      if (fields.fail()) throw bad("bad value for 'link_profile'");
      if (profile.loss < 0.0 || profile.loss > 1.0) {
        throw bad("link_profile loss must be in [0, 1]");
      }
      for (const auto& existing : spec.link_profiles) {
        if (existing.name == profile.name) {
          throw bad("duplicate link_profile '" + profile.name + "'");
        }
      }
      spec.link_profiles.push_back(std::move(profile));
    } else if (key == "access") {
      std::string who, name;
      fields >> who >> name;
      if (fields.fail()) throw bad("access needs <node|default> <profile>");
      std::optional<std::size_t> index;
      for (std::size_t i = 0; i < spec.link_profiles.size(); ++i) {
        if (spec.link_profiles[i].name == name) index = i;
      }
      if (!index) {
        throw bad("access references unknown link_profile '" + name +
                  "' (declare profiles before access lines)");
      }
      if (who == "default") {
        spec.access_default = index;
      } else {
        std::istringstream who_in(who);
        std::size_t node = 0;
        if (!(who_in >> node) || !who_in.eof()) {
          throw bad("access node must be an id or 'default'");
        }
        spec.access[node] = *index;
      }
    } else {
      throw bad("unknown key '" + key + "'");
    }
    if (fields.fail()) throw bad("bad value for '" + key + "'");
  }
  if (spec.nodes < 2) throw std::runtime_error("SwarmSpec: nodes must be >= 2");
  for (const auto& [node, index] : spec.access) {
    if (node >= spec.nodes) {
      throw std::runtime_error("SwarmSpec: access names node " +
                               std::to_string(node) + " >= nodes");
    }
    (void)index;
  }
  for (const auto& edge : spec.edges) {
    if (edge.sender >= spec.nodes || edge.receiver >= spec.nodes ||
        edge.sender == edge.receiver) {
      throw std::runtime_error("SwarmSpec: bad edge endpoints");
    }
  }
  return spec;
}

SwarmSpec SwarmSpec::parse_text(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

SwarmSpec SwarmSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("SwarmSpec: cannot open " + path);
  return parse(in);
}

SwarmWorld build_swarm_world(const SwarmSpec& spec) {
  SwarmWorld world;
  std::vector<std::uint8_t> content(spec.n * spec.block_size, 0);
  util::Xoshiro256 content_rng(spec.seed);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(content_rng());
  world.distribution = codec::DegreeDistribution::robust_soliton(spec.n);
  OriginServer origin(std::move(content), spec.block_size, world.distribution,
                      spec.seed ^ 0x0815);
  world.params = origin.parameters();
  const auto distinct =
      static_cast<std::size_t>(spec.stretch * static_cast<double>(spec.n));
  world.universe = build_universe(origin, distinct);
  // Node 0 takes the scenario's receiver set, node i the (i-1)th sender
  // set: every node holds a same-sized partial with the spec'd shared
  // fraction, the Figure 7/8 initial condition.
  util::Xoshiro256 scenario_rng(util::mix64(spec.seed ^ 0x5ce0a210));
  const auto scenario = overlay::make_multi_scenario(
      spec.n, spec.stretch, spec.correlation, spec.nodes - 1, scenario_rng);
  world.preload.push_back(scenario.receiver);
  for (const auto& set : scenario.senders) world.preload.push_back(set);
  world.target =
      static_cast<std::size_t>(1.07 * static_cast<double>(spec.n) + 0.999);
  return world;
}

std::unique_ptr<Peer> make_swarm_peer(const SwarmSpec& spec,
                                      const SwarmWorld& world, std::size_t id,
                                      const std::string& name_suffix) {
  auto peer = std::make_unique<Peer>("node" + std::to_string(id) + name_suffix,
                                     world.params, world.distribution);
  (void)spec;
  for (const std::uint64_t index : world.preload[id]) {
    peer->receive_encoded(world.universe[static_cast<std::size_t>(index)]);
  }
  return peer;
}

std::size_t swarm_edge_quota(const SwarmSpec& spec, const SwarmWorld& world,
                             std::size_t edge_index) {
  const SwarmEdge& edge = spec.edges[edge_index];
  const std::size_t preloaded = world.preload[edge.receiver].size();
  const std::size_t needed =
      world.target > preloaded ? world.target - preloaded : 1;
  const std::size_t indegree = std::max<std::size_t>(
      1, edge_indegree(spec, edge.receiver));
  const auto scaled = static_cast<std::size_t>(
      static_cast<double>(needed) * spec.request_overhead);
  return std::max<std::size_t>(1, scaled / indegree);
}

SessionOptions swarm_session_options(const SwarmSpec& spec,
                                     const SwarmWorld& world,
                                     std::size_t edge_index) {
  SessionOptions options;
  options.strategy = spec.strategy;
  options.requested_symbols = swarm_edge_quota(spec, world, edge_index);
  options.handshake_retry_ticks = spec.handshake_retry_ticks;
  options.max_handshake_retries = spec.max_handshake_retries;
  // Off: quota-bound serving is what makes real totals predictable; a
  // timing-dependent stop would make them a race.
  options.flow_control = false;
  options.seed = util::mix64(spec.seed ^ (0xab5 + 7 * edge_index));
  return options;
}

void service_sender_half(SenderEndpoint& sender, wire::Transport& transport,
                         std::size_t quota, std::size_t budget_per_tick) {
  sender.tick();
  if (sender.transfer_active()) {
    for (std::size_t i = 0;
         i < budget_per_tick && sender.symbols_sent() < quota; ++i) {
      if (!sender.send_symbol()) break;
    }
  }
  transport.flush_batch();
}

void service_receiver_half(ReceiverEndpoint& receiver,
                           wire::Transport& transport, std::uint64_t now) {
  receiver.advance_to(now);
  receiver.tick();
  transport.flush_batch();
}

namespace {

/// The predictor's model of one node's inbound socket shaping (loss
/// injection + FIFO delay line) as a ChannelConfig, wall-clock microseconds
/// converted to ticks at the spec's tick period.
wire::ChannelConfig inbound_shaping(const SwarmSpec& spec,
                                    const SwarmLinkProfile* profile,
                                    std::uint64_t seed) {
  wire::ChannelConfig config;
  config.mtu = spec.mtu;
  config.seed = seed;
  if (profile) {
    const std::uint64_t tick_us = std::max<std::uint64_t>(1, spec.tick_us);
    config.loss_rate = profile->loss;
    config.delay_ticks = profile->delay_us / tick_us;
    config.jitter_ticks = profile->jitter_us / tick_us;
  }
  return config;
}

}  // namespace

SwarmPrediction predict_swarm(const SwarmSpec& spec) {
  const SwarmWorld world = build_swarm_world(spec);
  const bool shaped = spec.shaped();

  std::vector<std::unique_ptr<Peer>> live;
  std::vector<std::unique_ptr<Peer>> frozen;
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    live.push_back(make_swarm_peer(spec, world, i));
    frozen.push_back(make_swarm_peer(spec, world, i, ".frozen"));
  }

  struct PredictEdge {
    std::unique_ptr<wire::Pipe> pipe;           // unshaped: perfect link
    std::unique_ptr<wire::ChannelLink> link;    // shaped: modeled losses
    wire::Transport* a = nullptr;               // sender side
    wire::Transport* b = nullptr;               // receiver side
    std::unique_ptr<SenderEndpoint> sender;
    std::unique_ptr<ReceiverEndpoint> receiver;
    std::size_t quota = 0;
  };
  std::vector<PredictEdge> lanes;
  for (std::size_t e = 0; e < spec.edges.size(); ++e) {
    const SwarmEdge& edge = spec.edges[e];
    PredictEdge lane;
    if (shaped) {
      // Each direction carries the *receiving* node's inbound shaping —
      // the same placement as the real run, where every node shapes its
      // own sockets. Seeds decorrelate per edge and direction.
      lane.link = std::make_unique<wire::ChannelLink>(
          inbound_shaping(spec, spec.node_profile(edge.receiver),
                          util::mix64(spec.seed ^ (0x51a9ULL + 2 * e))),
          inbound_shaping(spec, spec.node_profile(edge.sender),
                          util::mix64(spec.seed ^ (0x51a9ULL + 2 * e + 1))));
      lane.a = &lane.link->a();
      lane.b = &lane.link->b();
    } else {
      lane.pipe = std::make_unique<wire::Pipe>(spec.mtu);
      lane.a = &lane.pipe->a();
      lane.b = &lane.pipe->b();
    }
    lane.a->set_batch_budget(spec.batch_budget);
    lane.b->set_batch_budget(spec.batch_budget);
    const SessionOptions options = swarm_session_options(spec, world, e);
    lane.quota = swarm_edge_quota(spec, world, e);
    lane.sender = std::make_unique<SenderEndpoint>(*frozen[edge.sender],
                                                   options, *lane.a);
    lane.receiver = std::make_unique<ReceiverEndpoint>(*live[edge.receiver],
                                                       options, *lane.b);
    lanes.push_back(std::move(lane));
  }
  for (auto& lane : lanes) lane.receiver->start();

  SwarmPrediction prediction;
  prediction.completed.assign(spec.nodes, false);
  prediction.completion_tick.assign(spec.nodes, 0);
  std::uint64_t t = 0;
  for (; t < spec.max_ticks; ++t) {
    for (auto& lane : lanes) {
      if (lane.link) lane.link->advance_to(t);
      service_sender_half(*lane.sender, *lane.a, lane.quota,
                          spec.symbols_per_tick);
      service_receiver_half(*lane.receiver, *lane.b, t);
    }
    for (std::size_t i = 0; i < spec.nodes; ++i) {
      // The figures' completion rule (bench_latency): decoded, or the
      // distinct-symbol decoding target reached. Both are functions of
      // the received symbol *set*, not its arrival order, so the real
      // swarm reproduces the flag exactly.
      if (!prediction.completed[i] &&
          (live[i]->has_content() ||
           live[i]->symbol_count() >= world.target)) {
        prediction.completed[i] = true;
        prediction.completion_tick[i] = t;
      }
    }
    const bool everyone = std::all_of(prediction.completed.begin(),
                                      prediction.completed.end(),
                                      [](bool c) { return c; });
    const bool quotas_served =
        std::all_of(lanes.begin(), lanes.end(), [](const PredictEdge& lane) {
          return lane.sender->symbols_sent() >= lane.quota;
        });
    if (everyone && quotas_served) {
      ++t;
      break;
    }
  }
  prediction.ticks = t;
  prediction.all_completed =
      std::all_of(prediction.completed.begin(), prediction.completed.end(),
                  [](bool c) { return c; });
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    prediction.final_symbols.push_back(live[i]->symbol_count());
  }
  for (auto& lane : lanes) {
    const auto& sent_a = lane.a->stats();
    const auto& sent_b = lane.b->stats();
    SwarmEdgeTotals totals;
    totals.control_bytes = sent_a.control_bytes_sent + sent_b.control_bytes_sent;
    totals.control_frames =
        sent_a.control_frames_sent + sent_b.control_frames_sent;
    totals.data_bytes = sent_a.data_bytes_sent + sent_b.data_bytes_sent;
    totals.data_frames = sent_a.data_frames_sent + sent_b.data_frames_sent;
    prediction.edges.push_back(totals);
    prediction.handshake_retries += lane.receiver->handshake_retries();
  }
  return prediction;
}

namespace {

/// One locally-owned edge half of a running swarm node.
struct Half {
  std::size_t edge_index = 0;
  std::size_t quota = 0;
  std::unique_ptr<wire::UdpTransport> transport;
  std::unique_ptr<SenderEndpoint> sender;      // sender halves
  std::unique_ptr<ReceiverEndpoint> receiver;  // receiver halves
};

/// Atomically rewrites the watchdog heartbeat (write-then-rename, so the
/// harness never reads a torn line).
void write_progress(const std::string& path, std::uint64_t now,
                    std::size_t symbols, bool completed) {
  if (path.empty()) return;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << "tick " << now << " symbols " << symbols << " completed "
        << (completed ? 1 : 0) << "\n";
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

void wait_for_file(const std::string& path, std::chrono::seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!std::filesystem::exists(path)) {
    if (std::chrono::steady_clock::now() > deadline) {
      throw std::runtime_error("swarm barrier timed out waiting for " + path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

SwarmNodeReport run_swarm_node(const SwarmSpec& spec, std::size_t id,
                               const std::string& ready_file,
                               const std::string& go_file,
                               const std::string& progress_file) {
  if (id >= spec.nodes) throw std::invalid_argument("swarm node id out of range");
  const SwarmWorld world = build_swarm_world(spec);
  const SwarmLinkProfile* profile = spec.node_profile(id);
  auto live = make_swarm_peer(spec, world, id);
  auto frozen = make_swarm_peer(spec, world, id, ".frozen");

  std::vector<Half> halves;
  for (std::size_t e = 0; e < spec.edges.size(); ++e) {
    const SwarmEdge& edge = spec.edges[e];
    if (edge.sender != id && edge.receiver != id) continue;
    const bool sender_half = edge.sender == id;
    auto socket = wire::UdpSocket::bind(
        spec.host, sender_half ? edge.sender_port : edge.receiver_port);
    socket.connect(spec.host,
                   sender_half ? edge.receiver_port : edge.sender_port);
    Half half;
    half.edge_index = e;
    half.quota = swarm_edge_quota(spec, world, e);
    half.transport =
        std::make_unique<wire::UdpTransport>(std::move(socket), spec.mtu);
    half.transport->set_batch_budget(spec.batch_budget);
    // Inbound shaping: the global loss_rate composed with this node's own
    // access-class loss (independent drops), plus the class's delay line.
    // Deterministic per (spec seed, edge, direction) so reruns of a lossy
    // swarm drop the same inbound datagrams.
    double inbound_loss = spec.loss_rate;
    if (profile && profile->loss > 0.0) {
      inbound_loss = 1.0 - (1.0 - inbound_loss) * (1.0 - profile->loss);
    }
    if (inbound_loss > 0.0) {
      half.transport->set_loss_injection(
          inbound_loss,
          util::mix64(spec.seed ^ (0x10c5ULL + 2 * e + (sender_half ? 1 : 0))));
    }
    if (profile && (profile->delay_us > 0 || profile->jitter_us > 0)) {
      half.transport->set_delay_shaping(
          profile->delay_us, profile->jitter_us,
          util::mix64(spec.seed ^ (0xde1aULL + 2 * e + (sender_half ? 1 : 0))));
    }
    const SessionOptions options = swarm_session_options(spec, world, e);
    if (sender_half) {
      half.sender = std::make_unique<SenderEndpoint>(*frozen, options,
                                                     *half.transport);
    } else {
      half.receiver = std::make_unique<ReceiverEndpoint>(*live, options,
                                                         *half.transport);
    }
    halves.push_back(std::move(half));
  }

  // Start barrier: all sockets of all processes must be bound before the
  // first bundle flies, or an early bundle dies to ICMP unreachable and
  // the retry diverges the control-byte totals from the prediction.
  if (!ready_file.empty()) {
    std::ofstream ready(ready_file);
    ready << "ready\n";
  }
  if (!go_file.empty()) wait_for_file(go_file, std::chrono::seconds(60));

  EventLoop loop;
  loop.enable_wall_clock(spec.tick_us * 1000);
  for (auto& half : halves) loop.watch_fd(half.transport->fd());
  for (auto& half : halves) {
    if (half.receiver) half.receiver->start();
  }

  SwarmNodeReport report;
  report.node = id;
  const auto wall_start = std::chrono::steady_clock::now();
  auto next_heartbeat = wall_start;
  std::uint64_t now = 0;
  std::uint64_t last_serviced = 0;
  bool first_service = true;
  while (true) {
    now = loop.wall_now();
    if (!progress_file.empty() &&
        std::chrono::steady_clock::now() >= next_heartbeat) {
      write_progress(progress_file, now, live->symbol_count(),
                     report.completed);
      next_heartbeat =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
    }
    // Catch-up credit: ticks slept or stalled across grant their data
    // budget in one round (capped — totals are quota-bound anyway).
    const std::uint64_t credit = std::min<std::uint64_t>(
        std::max<std::uint64_t>(1, now - last_serviced), 64);
    // Receiver halves are serviced at most once per wall tick: a readable
    // socket can wake the poll loop many times inside one tick (especially
    // with a delay line holding datagrams back), and every same-tick
    // service would count one quiet tick on the handshake retry clock —
    // inflating retries far beyond what the lockstep predictor (one
    // service per tick, by construction) would ever fire.
    const bool rx_due = first_service || now != last_serviced;
    first_service = false;
    last_serviced = now;
    for (auto& half : halves) {
      half.transport->pump();
      if (half.sender) {
        service_sender_half(*half.sender, *half.transport, half.quota,
                            spec.symbols_per_tick * credit);
      } else if (rx_due) {
        service_receiver_half(*half.receiver, *half.transport, now);
      }
    }
    if (!report.completed && (live->has_content() ||
                              live->symbol_count() >= world.target)) {
      report.completed = true;
      report.completion_tick = now;
    }

    bool uploads_done = true;
    bool tx_idle = true;
    bool downloads_drained = true;
    for (const auto& half : halves) {
      if (!half.transport->tx_idle()) tx_idle = false;
      if (half.sender && half.sender->symbols_sent() < half.quota) {
        uploads_done = false;
      }
      // A failed receiver half (handshake budget exhausted, sender dead)
      // is abandoned: it can make no further progress and must not keep
      // the node alive until max_ticks.
      if (half.receiver && !half.receiver->failed() &&
          half.receiver->symbols_received() < half.quota) {
        downloads_drained = false;
      }
    }
    // Exit when everything this node owes the swarm is on the wire and its
    // own download can make no further progress: decoded, or every quota
    // datagram arrived (UDP loss of the tail is caught by max_ticks).
    const bool downloads_done = report.completed || downloads_drained;
    if ((uploads_done && tx_idle && downloads_done) || now >= spec.max_ticks) {
      break;
    }

    // Plan the wake-up: the next virtual event among this node's halves —
    // the next data-budget tick, an unfinished handshake's retry deadline,
    // a backlogged transmit — then sleep in poll until it is due or a
    // socket turns readable.
    loop.clear();
    for (const auto& half : halves) {
      if (half.sender && half.sender->transfer_active() &&
          half.sender->symbols_sent() < half.quota) {
        loop.schedule(now + 1, EventKind::kSendCredit, half.edge_index);
      }
      if (half.receiver && !half.receiver->transfer_started() &&
          !half.receiver->failed()) {
        const auto retry = half.receiver->retry_due_at();
        loop.schedule(std::max(retry.value_or(now + 1), now + 1),
                      EventKind::kHandshakeRetry, half.edge_index);
      }
      if (!half.transport->tx_idle()) {
        loop.schedule(now + 1, EventKind::kService, half.edge_index);
      }
    }
    loop.poll_wait(/*max_wait_ticks=*/64);
  }

  // Teardown grace: flush any transmit backlog so the last datagrams the
  // accounting already counted actually depart.
  for (int round = 0; round < 64; ++round) {
    bool idle = true;
    for (auto& half : halves) idle = half.transport->pump() && idle;
    if (idle) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  write_progress(progress_file, now, live->symbol_count(), report.completed);

  report.end_tick = now;
  report.ticks_slept = loop.ticks_skipped();
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  for (const auto& half : halves) {
    SwarmHalfReport half_report;
    half_report.edge_index = half.edge_index;
    half_report.sender_half = half.sender != nullptr;
    half_report.stats = half.transport->stats();
    half_report.udp = half.transport->udp_stats();
    if (half.sender) half_report.symbols_sent = half.sender->symbols_sent();
    if (half.receiver) {
      half_report.handshake_retries = half.receiver->handshake_retries();
      half_report.session_failed = half.receiver->failed();
    }
    half_report.pool_hit_rate = half.transport->pool().stats().hit_rate();
    report.halves.push_back(half_report);
  }
  return report;
}

}  // namespace icd::core

#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sketch/minwise.hpp"

/// Sketch-based admission control and sender selection (end of Section 4):
/// "Such methods are suitable for simple admission control, allowing
/// receivers to immediately reject candidate senders whose content is
/// identical to their own. The receivers will also be able to distribute
/// the load among the senders whose content is identical ... overlay
/// management may explicitly avoid connecting nodes with identical
/// content."
namespace icd::core {

struct CandidateSender {
  /// Caller-assigned identifier (index into its own peer table).
  std::size_t id = 0;
  /// The candidate's calling-card sketch.
  const sketch::MinwiseSketch* sketch = nullptr;
  /// The candidate's advertised working-set size.
  std::size_t working_set_size = 0;
};

struct AdmissionPolicy {
  /// Reject candidates whose estimated resemblance to the receiver exceeds
  /// this ("reject candidate senders whose content is identical").
  double max_resemblance = 0.95;
  /// Reject candidates that rate to supply fewer than this fraction of
  /// novel symbols (estimated 1 - containment of candidate in receiver).
  double min_novelty = 0.0;
};

struct AdmissionDecision {
  bool admitted = false;
  double resemblance = 0.0;
  /// Estimated fraction of the candidate's set that is new to the receiver.
  double novelty = 0.0;
};

/// Evaluates a single candidate against the receiver's sketch.
AdmissionDecision evaluate_candidate(const sketch::MinwiseSketch& receiver,
                                     std::size_t receiver_size,
                                     const CandidateSender& candidate,
                                     const AdmissionPolicy& policy);

/// Starvation relaxation: when strict admission rejects every candidate,
/// the cutoffs relax in proportion to how *little* the receiver still
/// needs. Near the end of a download every candidate resembles the
/// receiver above max_resemblance while still holding the few novel
/// symbols it lacks — so as the remaining need `needed / target` shrinks,
/// max_resemblance relaxes toward 1 and min_novelty scales down with the
/// need. A peer with most of the download ahead keeps (nearly) the strict
/// policy: senders that look identical to it genuinely offer nothing, and
/// relaxing for them would admit useless sessions.
AdmissionPolicy relax_policy_for_need(const AdmissionPolicy& policy,
                                      std::size_t needed_symbols,
                                      std::size_t target_symbols);

/// Ranks admitted candidates by descending estimated novelty; among
/// near-identical candidates, position in `candidates` breaks ties, so a
/// caller can rotate the input order to spread load ("distribute the load
/// among the senders whose content is identical").
std::vector<std::size_t> select_senders(const sketch::MinwiseSketch& receiver,
                                        std::size_t receiver_size,
                                        const std::vector<CandidateSender>& candidates,
                                        const AdmissionPolicy& policy,
                                        std::size_t max_senders);

/// Estimated overlap of a *group* of candidates with each other, computed
/// from sketches alone via coordinate-wise-min union combination — the
/// paper's "to estimate the overlap of a third peer's working set C with
/// the combined working set A ∪ B can be done with v(A), v(B), and v(C)".
double estimate_group_overlap(const std::vector<const sketch::MinwiseSketch*>& group);

}  // namespace icd::core

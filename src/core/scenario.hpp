#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/delivery.hpp"
#include "core/fault_plan.hpp"
#include "overlay/strategy.hpp"
#include "wire/channel.hpp"

/// Declarative stress scenarios: the robustness layer every workload plugs
/// into.
///
/// A scenario is one small text file (see docs/SCENARIOS.md and the
/// `scenarios/` catalog) describing a heterogeneous swarm under adverse
/// conditions: per-peer *access-link profiles* (named classes — dsl, fiber,
/// mobile — mapping to rate/delay/jitter/burst-loss mixes), *arrival
/// processes* (seeded Poisson trickles and flash-crowd ramps compiled into
/// FaultPlan join events), explicit fault windows, and per-scenario *pass
/// gates* (completion deadline, failed-session budget, control-byte
/// budget). compile_scenario() lowers one file into the DeliveryOptions +
/// FaultPlan both delivery engines consume, so the identical adversity runs
/// through legacy lockstep, the event-loop jump driver, and the sharded
/// engine — and bench_scenarios re-proves the determinism contracts per
/// catalog entry.
///
/// The paper's claims live on heterogeneous, adverse conditions (access
/// mixes are where adaptation is actually stressed; reliable delivery must
/// be judged on survival under diverse loss/delay regimes, not one clean
/// configuration) — this subsystem is how those conditions are named,
/// versioned, and gated instead of hard-coded per bench.
namespace icd::core {

/// One named access-link class. Rates are bytes per virtual tick with the
/// repo's token-bucket semantics (0 = unlimited); delay/jitter are per-hop
/// virtual ticks; loss composes with the far end's when an edge is formed.
struct LinkProfile {
  std::string name;
  double up_rate = 0.0;    // uplink bytes/tick (serving direction)
  double down_rate = 0.0;  // downlink bytes/tick (receiving direction)
  std::uint64_t delay_ticks = 0;
  std::uint64_t jitter_ticks = 0;
  double loss_rate = 0.0;  // independent Bernoulli loss contribution
  /// Gilbert-Elliott burst loss (off unless ge_loss_bad > 0); folded with
  /// the far end's plain loss when the edge is composed.
  double ge_loss_good = 0.0;
  double ge_loss_bad = 0.0;
  double ge_p_good_bad = 0.0;
  double ge_p_bad_good = 0.0;
};

/// One join-arrival generator, compiled into FaultPlan::Join events.
struct ArrivalProcess {
  enum class Kind : std::uint8_t {
    kFlash,   // `count` joins at `at`, optionally ramped over `ramp_ticks`
    kPoisson  // seeded exponential inter-arrivals from `at`, `rate` joins/tick
  };
  Kind kind = Kind::kFlash;
  std::uint64_t at = 0;
  std::size_t count = 1;
  std::uint64_t ramp_ticks = 0;  // flash only; 0 = all at once
  double rate = 0.0;             // poisson only
  std::uint64_t seed = 1;        // poisson only
};

/// Per-scenario pass gates. 0 disables a gate (deadline falls back to
/// max_ticks — a scenario must always finish inside its horizon).
struct ScenarioGates {
  std::uint64_t deadline_ticks = 0;
  std::size_t max_failed_sessions = 0;
  std::size_t control_budget_bytes = 0;
};

/// The parsed scenario file: swarm shape, engine knobs, link classes,
/// arrivals, faults, gates.
struct Scenario {
  std::string name = "unnamed";
  std::size_t peers = 4;
  std::size_t fed = 1;  // origin-fed peers (ids 0..fed-1)
  std::size_t content_bytes = 1536;
  std::size_t block_size = 64;
  std::uint64_t seed = 0x5ce11a01;
  overlay::Strategy strategy = overlay::Strategy::kRecodeBloom;
  std::size_t mtu = 1400;
  std::size_t refresh_interval = 50;
  std::size_t max_peer_sessions = 2;
  bool flow_control = true;
  std::size_t handshake_retry_ticks = 24;
  std::size_t liveness_timeout_ticks = 0;
  std::size_t handshake_backoff_factor = 1;
  std::size_t handshake_backoff_cap_ticks = 0;
  std::size_t max_handshake_retries = 0;
  std::size_t suspect_ttl_ticks = 0;
  std::uint64_t max_ticks = 30000;

  std::vector<LinkProfile> profiles;
  /// peer id -> index into `profiles`. Unmapped peers (including joiners)
  /// fall back to `access_default`, or an unshaped link when unset.
  std::map<std::size_t, std::size_t> access;
  std::optional<std::size_t> access_default;

  std::vector<ArrivalProcess> arrivals;
  /// Explicit crash/stall/restart/blackout lines (joins come from
  /// `arrivals`).
  FaultPlan faults;
  ScenarioGates gates;

  /// Profile index assigned to `peer` (access map, then default).
  std::optional<std::size_t> profile_index(std::size_t peer) const;

  /// Parses the key/value scenario format. Throws std::runtime_error with
  /// `origin` and the offending line number on any malformed, duplicate,
  /// out-of-range, or unresolvable input — never UB, never a silent
  /// default.
  static Scenario parse(std::istream& in, const std::string& origin);
  static Scenario parse_text(const std::string& text,
                             const std::string& origin = "scenario");
  static Scenario parse_file(const std::string& path);
};

/// The edge-composition rule: a directed download edge sender -> receiver
/// is shaped by the sender's *uplink* and the receiver's *downlink* — rate
/// is the bottleneck of the two (0 = unlimited), delay/jitter accumulate,
/// independent losses compose, and a Gilbert-Elliott chain on either side
/// carries over with the far end's plain loss folded into both of its
/// states. `base` supplies the MTU and any scenario-wide defaults.
wire::ChannelConfig compose_edge(const LinkProfile* sender,
                                 const LinkProfile* receiver,
                                 const wire::ChannelConfig& base);

/// Expands arrival processes into deterministic, time-sorted join events.
/// Poisson draws are reproducible from each process's own seed.
std::vector<FaultPlan::Join> generate_arrivals(
    const std::vector<ArrivalProcess>& arrivals);

/// A scenario lowered into what a delivery engine consumes: options (with
/// the per-edge link_config closure and the full fault plan, arrivals
/// included), deterministic content, and the run horizon.
struct CompiledScenario {
  DeliveryOptions options;
  std::vector<std::uint8_t> content;
  std::size_t peers = 0;
  std::size_t fed = 0;
  std::uint64_t max_ticks = 0;
  /// Latest fault boundary (crash/restart/join/stall/blackout edge) —
  /// reported for deadline calibration; the run drivers stop on the same
  /// all-complete rule as ContentDeliveryService::run_until.
  std::uint64_t last_fault_tick = 0;
  /// Joiners the arrival processes add on top of `peers`.
  std::size_t total_joins = 0;
  ScenarioGates gates;
  std::string name;
};

CompiledScenario compile_scenario(const Scenario& scenario);

/// One engine run's harvested trajectory — the determinism-comparison and
/// gate-evaluation currency shared by bench_scenarios and the tests.
struct ScenarioOutcome {
  std::size_t peer_count = 0;
  std::vector<std::size_t> completion_ticks;  // 0 = never
  std::vector<bool> down_at_end;              // crashed/stalled at the end
  std::size_t control_bytes = 0;
  std::size_t data_bytes = 0;
  std::size_t data_frames = 0;
  std::size_t failed_sessions = 0;
  std::uint64_t end_tick = 0;
  std::uint64_t ticks_skipped = 0;

  /// Trajectory equality for the determinism gates (wall-clock fields —
  /// end_tick, ticks_skipped — excluded by design).
  bool same_trajectory(const ScenarioOutcome& other) const {
    return peer_count == other.peer_count &&
           completion_ticks == other.completion_ticks &&
           control_bytes == other.control_bytes &&
           data_bytes == other.data_bytes &&
           data_frames == other.data_frames &&
           failed_sessions == other.failed_sessions;
  }
};

/// Gate verdict: every surviving peer completed inside the deadline, the
/// failed-session count stayed within budget, and the control plane stayed
/// within its byte budget.
struct GateVerdict {
  bool survivors_completed = false;
  bool deadline_met = false;
  bool failures_within_budget = false;
  bool control_within_budget = false;
  bool pass() const {
    return survivors_completed && deadline_met && failures_within_budget &&
           control_within_budget;
  }
};

GateVerdict evaluate_gates(const ScenarioOutcome& outcome,
                           const CompiledScenario& compiled);

/// Harvests one finished engine run (works for ContentDeliveryService and
/// ShardedDelivery — the shared read surface).
template <typename Service>
ScenarioOutcome harvest_scenario(Service& service) {
  ScenarioOutcome outcome;
  outcome.peer_count = service.peer_count();
  for (std::size_t p = 0; p < outcome.peer_count; ++p) {
    outcome.completion_ticks.push_back(service.peer_completion_tick(p));
    outcome.down_at_end.push_back(service.peer_down(p));
    outcome.failed_sessions += service.session_result(p).failed_peers.size();
  }
  const auto totals = service.link_totals();
  outcome.control_bytes = totals.control_bytes;
  outcome.data_bytes = totals.data_bytes;
  outcome.data_frames = totals.data_frames;
  outcome.end_tick = service.ticks();
  outcome.ticks_skipped = service.ticks_skipped();
  return outcome;
}

/// Adds the scenario's initial peers (ids 0..fed-1 origin-fed) to a fresh
/// engine; joiners arrive through the fault plan.
template <typename Service>
void seed_scenario_peers(Service& service, const CompiledScenario& compiled) {
  for (std::size_t p = 0; p < compiled.peers; ++p) {
    service.add_peer("peer" + std::to_string(p), p < compiled.fed);
  }
}

/// Lockstep driver: plain tick() with the exact exit rule of
/// ContentDeliveryService::run_until — stop once every peer (including all
/// arrival-process joiners, once they exist) holds the content — so the
/// jump drivers must reproduce this trajectory bit for bit.
template <typename Service>
void drive_scenario_lockstep(Service& service,
                             const CompiledScenario& compiled) {
  const std::size_t expected = compiled.peers + compiled.total_joins;
  for (std::uint64_t t = 0; t < compiled.max_ticks; ++t) {
    service.tick();
    if (service.peer_count() < expected) continue;
    bool all = true;
    for (std::size_t p = 0; p < service.peer_count(); ++p) {
      all = all && service.peer_complete(p);
    }
    if (all) return;
  }
}

/// Sorted scenario files (`*.scn`) under `dir`; throws when the directory
/// does not exist or holds no scenarios (a silently empty catalog would
/// pass every gate).
std::vector<std::string> list_scenario_files(const std::string& dir);

}  // namespace icd::core

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/peer.hpp"
#include "overlay/strategy.hpp"
#include "util/random.hpp"
#include "wire/transport.hpp"

/// Message-driven protocol endpoints.
///
/// SenderEndpoint and ReceiverEndpoint are the two halves of the paper's
/// informed-transfer protocol (Sections 3-6) as state machines that
/// communicate *only* through wire::Message frames over a Transport:
///
///   handshake  — the receiver ships Hello + its min-wise sketch, the
///                fine-grained summary its strategy calls for, and a
///                symbols-desired Request;
///   estimate   — the sender answers with its own Hello + sketch, and both
///                sides turn resemblance into a containment estimate;
///   summarize  — the sender digests the Bloom/ART summary into a filtered
///                send/recoding domain;
///   transfer   — the sender streams (re)coded symbols, the receiver's
///                stacked decoders absorb them.
///
/// Because no call crosses the pair except via frames, the endpoints run
/// identically over a perfect in-process Pipe and over a LossyChannel with
/// loss and reordering: the receiver re-sends its handshake bundle until
/// the sender's reply arrives (the Request/retry path), and symbol loss is
/// absorbed by the fountain code itself. All control/data byte accounting
/// is exact, measured from the encoded frames by the Transport.
namespace icd::core {

/// Which fine-grained summary the BF-flavored strategies ship.
enum class SummaryKind { kBloomFilter, kArt };

struct SessionOptions {
  overlay::Strategy strategy = overlay::Strategy::kRecodeBloom;
  SummaryKind summary = SummaryKind::kBloomFilter;
  double bloom_bits_per_element = 8.0;
  /// ART budget split and correction level (Table 4 defaults).
  double art_leaf_bits_per_element = 4.0;
  double art_internal_bits_per_element = 4.0;
  int art_correction = 5;
  /// Degree cap for recoded symbols.
  std::size_t recode_degree_limit = codec::kDefaultRecodeDegreeLimit;
  /// Number of symbols the receiver requests (0 = sender's full domain);
  /// the Recode/BF recoding domain is restricted to this size.
  std::size_t requested_symbols = 0;
  /// Receiver re-sends its handshake bundle after this many quiet ticks
  /// until the sender's reply lands (loss tolerance). On high-RTT timed
  /// links, set this above the round-trip delay or every in-flight reply
  /// triggers a redundant retry (harmless but wasteful).
  std::size_t handshake_retry_ticks = 8;
  /// Capped exponential backoff on the retry cadence: retry k waits
  /// handshake_retry_ticks * factor^k quiet ticks (clamped to
  /// handshake_backoff_cap_ticks when that is nonzero). 1 = the
  /// historical fixed cadence, bit-for-bit.
  std::size_t handshake_backoff_factor = 1;
  /// Upper bound on one backoff interval (0 = uncapped growth).
  std::size_t handshake_backoff_cap_ticks = 0;
  /// Retry budget: after this many handshake retries without a reply the
  /// receiver declares the session failed() and stops re-sending —
  /// a permanently dead sender can no longer hold a receiver forever.
  /// 0 = retry indefinitely (historical).
  std::size_t max_handshake_retries = 0;
  /// Sender-liveness timeout: in transfer, if no frame arrives within
  /// this many (virtual) ticks the receiver flags its sender suspect
  /// (sender_suspect()) so the engine can tear the session down and
  /// reroute. 0 = disabled (historical).
  std::size_t liveness_timeout_ticks = 0;
  /// Flow control: when true the receiver re-issues its request as
  /// wire::RequestUpdate frames with the decremented remaining count every
  /// `flow_update_symbols` new encoded symbols, plus a final
  /// zero-remaining update at satisfaction — so the sender stops at
  /// satisfaction instead of relying on the driver loop. Off by default:
  /// the updates are extra control frames, and the historical byte
  /// accounting must stay bit-for-bit reproducible.
  bool flow_control = false;
  /// New encoded symbols between flow-control updates.
  std::size_t flow_update_symbols = 8;
  std::uint64_t seed = 0x5e5510a5eedULL;
};

struct SessionStats {
  /// Control-plane cost, measured from the actual encoded frames the
  /// transports carried (both directions): total bytes and frame count.
  std::size_t control_bytes = 0;
  std::size_t control_packets = 0;
  /// Estimated containment |receiver ∩ sender| / |sender| from sketches.
  double estimated_containment = 0.0;
  /// Data-plane counters.
  std::size_t symbols_sent = 0;
  std::size_t symbols_useful = 0;  // yielded >= 1 new encoded symbol
  std::size_t new_encoded_symbols = 0;
};

/// Heap bytes a cached handshake message pins (scale audit): the sketch,
/// Bloom, or ART payload held inside the wire::Message variant. Other
/// message kinds (and an empty optional) cost nothing worth charging.
inline std::size_t cached_message_bytes(
    const std::optional<wire::Message>& message) {
  if (!message) return 0;
  if (const auto* s = std::get_if<wire::SketchMessage>(&*message)) {
    return s->sketch.memory_bytes();
  }
  if (const auto* b = std::get_if<wire::BloomSummaryMessage>(&*message)) {
    return b->filter.memory_bytes();
  }
  if (const auto* a = std::get_if<wire::ArtSummaryMessage>(&*message)) {
    return a->summary.memory_bytes();
  }
  return 0;
}

/// Protocol progress of one endpoint.
enum class EndpointPhase : std::uint8_t {
  kHandshake,  // nothing exchanged yet
  kEstimate,   // sketches in flight / being compared
  kSummarize,  // sender: waiting for or digesting the summary
  kTransfer,   // symbols flowing
};

/// The downloading half. Drives the handshake (it speaks first) and feeds
/// arriving symbols into its Peer's stacked decoders.
class ReceiverEndpoint {
 public:
  /// The peer and transport must outlive the endpoint.
  ReceiverEndpoint(Peer& peer, SessionOptions options,
                   wire::Transport& transport);

  /// Sends the handshake bundle (Hello, sketch, summary, Request). Must be
  /// called once before tick().
  void start();

  /// Drains the transport, absorbs symbols, advances the state machine and
  /// re-sends the handshake bundle on stall. Returns the number of new
  /// encoded symbols gained this tick.
  std::size_t tick();

  /// Timer hook for event-driven drivers: tells the endpoint the virtual
  /// time of the next tick() call (monotonic). Once called, the handshake
  /// retry clock counts *virtual ticks between services* instead of
  /// service calls — on a lockstep driver (one service per tick) the two
  /// are identical, and on a jumping driver the skipped span is credited
  /// in one step, so the retry fires at exactly the same virtual tick the
  /// lockstep run would have fired it. Drivers that never call this (Pipe
  /// rounds, untimed engines) keep the historical call-counting clock.
  void advance_to(std::uint64_t now) {
    clock_ = clock_ ? std::max(*clock_, now) : now;
  }

  /// The virtual tick at which the handshake retry will fire if nothing
  /// arrives — the event a jumping driver must wake for. nullopt while
  /// in transfer (no retries), after retry exhaustion (failed() — no
  /// further retries ever), before the first virtual-clock service
  /// (no baseline yet — treat as due now), or on the call-counting clock.
  std::optional<std::uint64_t> retry_due_at() const {
    if (phase_ == EndpointPhase::kTransfer || failed_ || !serviced_at_) {
      return std::nullopt;
    }
    const std::size_t interval = retry_interval();
    return *serviced_at_ +
           (interval > quiet_ticks_ ? interval - quiet_ticks_ : 1);
  }

  /// The virtual tick at which the sender-liveness timeout expires if the
  /// link stays silent — the kLivenessProbe event. nullopt when liveness
  /// is disabled, outside transfer, already satisfied, already flagged,
  /// or on the call-counting clock (no virtual baseline).
  std::optional<std::uint64_t> liveness_due_at() const {
    if (options_.liveness_timeout_ticks == 0 ||
        phase_ != EndpointPhase::kTransfer || sender_suspect_ ||
        satisfied() || !serviced_at_) {
      return std::nullopt;
    }
    return *serviced_at_ +
           (options_.liveness_timeout_ticks > quiet_transfer_ticks_
                ? options_.liveness_timeout_ticks - quiet_transfer_ticks_
                : 1);
  }

  /// The sender has been silent past liveness_timeout_ticks mid-transfer:
  /// the engine should treat it as departed and reroute this receiver.
  bool sender_suspect() const { return sender_suspect_; }
  /// The handshake retry budget (max_handshake_retries) is exhausted: the
  /// session can never establish and should be failed with a diagnostic.
  bool failed() const { return failed_; }

  EndpointPhase phase() const { return phase_; }
  bool transfer_started() const { return phase_ == EndpointPhase::kTransfer; }
  bool complete() const { return peer_.has_content(); }

  /// Containment estimated from the sketch exchange (0 until estimated).
  double estimated_containment() const { return estimated_containment_; }

  Peer& peer() { return peer_; }
  const Peer& peer() const { return peer_; }
  const wire::Transport& transport() const { return transport_; }

  /// Cumulative data-plane counters (symbol messages that arrived).
  std::size_t symbols_received() const { return symbols_received_; }
  std::size_t symbols_useful() const { return symbols_useful_; }
  std::size_t new_encoded_symbols() const { return new_encoded_symbols_; }
  /// Handshake bundle (re)transmissions after the first.
  std::size_t handshake_retries() const { return handshake_retries_; }

  /// Flow control: the request is satisfied — the content decoded, or
  /// (with a nonzero requested_symbols) the requested count of new
  /// encoded symbols has landed.
  bool satisfied() const {
    return complete() ||
           (options_.requested_symbols > 0 &&
            new_encoded_symbols_ >= options_.requested_symbols);
  }
  /// RequestUpdate frames issued (flow_control sessions only).
  std::size_t flow_updates_sent() const { return flow_updates_sent_; }

  /// Heap bytes this endpoint pins beyond its Peer: the buffered sender
  /// sketch plus the cached handshake bundle pieces (scale audit). The
  /// handshake caches are released on the transfer transition, so a
  /// completed session charges ~0 here.
  std::size_t memory_bytes() const {
    return (sender_sketch_ ? sender_sketch_->memory_bytes() : 0) +
           cached_message_bytes(summary_cache_) +
           cached_message_bytes(sketch_scratch_);
  }

 private:
  void send_bundle();
  void maybe_send_flow_update();
  /// Current retry interval under the capped exponential backoff: the
  /// base cadence times factor^retries, clamped to the cap. Factor 1
  /// (default) reproduces the historical fixed cadence exactly.
  std::size_t retry_interval() const {
    std::size_t interval = options_.handshake_retry_ticks;
    if (options_.handshake_backoff_factor > 1) {
      const std::size_t cap = options_.handshake_backoff_cap_ticks;
      for (std::size_t k = 0; k < handshake_retries_; ++k) {
        interval *= options_.handshake_backoff_factor;
        if (cap > 0 && interval >= cap) return cap;
      }
    }
    return interval;
  }

  Peer& peer_;
  SessionOptions options_;
  wire::Transport& transport_;
  EndpointPhase phase_ = EndpointPhase::kHandshake;
  bool started_ = false;
  std::optional<wire::Hello> sender_hello_;
  std::optional<sketch::MinwiseSketch> sender_sketch_;
  /// Summary built on the first send_bundle(); handshake retries re-send
  /// it instead of reconstructing it. The working set can grow during the
  /// handshake (origin feed, concurrent links), so a retried summary may
  /// be slightly stale — accepted: the sender only over-sends symbols the
  /// receiver since acquired, exactly as with a loss-delayed summary.
  std::optional<wire::Message> summary_cache_;
  /// Sketch message scratch: each (re)send copy-assigns the current sketch
  /// into it, reusing the minima vector's capacity, so retries allocate
  /// nothing (the remaining handshake-allocation item; frame bytes already
  /// come from the link's BufferPool).
  std::optional<wire::Message> sketch_scratch_;
  bool containment_estimated_ = false;
  double estimated_containment_ = 0.0;
  std::size_t quiet_ticks_ = 0;
  /// Liveness clock: quiet (virtual) ticks in transfer since the last
  /// arriving frame; any frame resets it.
  std::size_t quiet_transfer_ticks_ = 0;
  bool sender_suspect_ = false;
  bool failed_ = false;
  /// Virtual clock (advance_to): time of the upcoming tick(), and the time
  /// of the last tick() that ran — their difference is how many lockstep
  /// services a jumping driver skipped, all provably quiet.
  std::optional<std::uint64_t> clock_;
  std::optional<std::uint64_t> serviced_at_;
  std::size_t handshake_retries_ = 0;
  std::size_t symbols_received_ = 0;
  std::size_t symbols_useful_ = 0;
  std::size_t new_encoded_symbols_ = 0;
  /// Flow-control state: symbols acknowledged by the last update, whether
  /// the zero-remaining stop has been sent, and the arrival count at the
  /// last stop (arrivals past it mean the stop was lost — re-issue).
  std::size_t acked_symbols_ = 0;
  bool satisfied_sent_ = false;
  std::size_t received_at_stop_ = 0;
  std::size_t flow_updates_sent_ = 0;
};

/// The uploading half. Waits for the receiver's bundle, digests sketch and
/// summary into a containment estimate and a filtered domain, then serves
/// symbols under the configured strategy, one per send_symbol() call.
class SenderEndpoint {
 public:
  /// The peer and transport must outlive the endpoint.
  SenderEndpoint(Peer& peer, SessionOptions options,
                 wire::Transport& transport);

  /// Drains the transport and advances the handshake; replies to (re)sent
  /// bundles with Hello + sketch.
  void tick();

  /// Sends one strategy-selected symbol if the handshake has completed.
  /// Returns false (and sends nothing) before that.
  bool send_symbol();

  EndpointPhase phase() const { return phase_; }
  bool transfer_active() const { return phase_ == EndpointPhase::kTransfer; }

  /// Flow control: the receiver declared itself satisfied (RequestUpdate
  /// with zero remaining) — send_symbol() serves nothing further.
  bool satisfied() const { return satisfied_; }
  /// Remaining count from the receiver's latest RequestUpdate, if any.
  std::optional<std::uint64_t> receiver_remaining() const {
    return receiver_remaining_;
  }

  double estimated_containment() const { return estimated_containment_; }
  std::size_t symbols_sent() const { return symbols_sent_; }

  /// Send/recoding domain after summary filtering (empty when the strategy
  /// uses the whole working set).
  const std::vector<std::uint64_t>& domain() const { return domain_; }

  Peer& peer() { return peer_; }
  const Peer& peer() const { return peer_; }
  const wire::Transport& transport() const { return transport_; }

  /// Heap bytes this endpoint pins beyond its Peer: buffered handshake
  /// summaries (released once digested), the filtered domain, the recode
  /// scratch, and the cached reply sketch (scale audit).
  std::size_t memory_bytes() const {
    return (receiver_sketch_ ? receiver_sketch_->memory_bytes() : 0) +
           (receiver_bloom_ ? receiver_bloom_->memory_bytes() : 0) +
           (receiver_art_ ? receiver_art_->memory_bytes() : 0) +
           domain_.capacity() * sizeof(std::uint64_t) +
           recode_scratch_.constituents.capacity() * sizeof(std::uint64_t) +
           recode_scratch_.payload.capacity() +
           cached_message_bytes(sketch_scratch_);
  }

 private:
  bool bundle_complete() const;
  void finish_handshake();
  void send_reply();
  /// Frees the buffered handshake summaries once digested into domain_ and
  /// the containment estimate — at 10k+ peers the per-session Bloom/ART
  /// copies dominate sender-side memory. A duplicate bundle from a lossy
  /// link re-buffers them; the transfer branch re-releases after replying.
  void release_handshake_summaries() {
    receiver_sketch_.reset();
    receiver_bloom_.reset();
    receiver_art_.reset();
  }

  Peer& peer_;
  SessionOptions options_;
  wire::Transport& transport_;
  util::Xoshiro256 rng_;
  EndpointPhase phase_ = EndpointPhase::kHandshake;
  std::optional<wire::Hello> receiver_hello_;
  std::optional<sketch::MinwiseSketch> receiver_sketch_;
  std::optional<filter::BloomFilter> receiver_bloom_;
  std::optional<art::ArtSummary> receiver_art_;
  bool request_seen_ = false;
  bool reply_due_ = false;
  bool satisfied_ = false;
  std::optional<std::uint64_t> receiver_remaining_;
  std::size_t symbols_desired_ = 0;
  double estimated_containment_ = 0.0;
  std::vector<std::uint64_t> domain_;
  codec::DegreeDistribution recode_distribution_;
  std::size_t symbols_sent_ = 0;
  /// Reused by send_symbol so a warm transfer builds every recoded symbol
  /// in place (no per-symbol vectors); serialized from a view.
  codec::RecodedSymbol recode_scratch_;
  /// Sketch message scratch for handshake replies (see ReceiverEndpoint).
  std::optional<wire::Message> sketch_scratch_;
};

}  // namespace icd::core

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/admission.hpp"
#include "core/endpoint.hpp"
#include "wire/channel.hpp"

/// Session planning shared by the delivery engines.
///
/// ContentDeliveryService (single-threaded) and ShardedDelivery (worker
/// shards) must form *identical* sessions from identical peer state — the
/// sharded engine's shards=1 mode is contractually bit-for-bit equal to the
/// legacy service — so the admission ranking, starvation fallback, request
/// sizing and the seed-chain evolution live here, in one function both call
/// in the same per-peer order.
namespace icd::core {

struct DeliveryOptions;

/// One peer's view for planning: its sketch and working-set size.
struct PlanPeer {
  const sketch::MinwiseSketch* sketch = nullptr;
  std::size_t symbol_count = 0;
  /// False when the peer may not serve right now — crashed, stalled, or
  /// under liveness suspicion (see core::FaultTracker). Unavailable peers
  /// are skipped as candidates but still plan their own downloads.
  bool available = true;
};

/// One download the plan tells the engine to create.
struct PlannedDownload {
  std::size_t sender_id = 0;
  SessionOptions session;
  wire::ChannelConfig link;
};

/// Plans receiver `me`'s downloads: admission-ranked senders (with the
/// largest-candidate starvation fallback), per-sender requested-symbol
/// shares toward `target_symbols`, and one session seed plus link config
/// per download drawn from `session_seed_chain` — which this call advances
/// exactly as ContentDeliveryService::refresh_sessions always has, so
/// callers iterating peers in ascending order reproduce the historical
/// seed sequence.
std::vector<PlannedDownload> plan_peer_downloads(
    std::size_t me, const std::vector<PlanPeer>& peers,
    const DeliveryOptions& options, std::size_t target_symbols,
    std::uint64_t& session_seed_chain);

/// The degree distribution both delivery engines give their origins and
/// peers for a piece of content.
codec::DegreeDistribution delivery_distribution(std::size_t content_size,
                                                std::size_t block_size);

/// Longest-processing-time assignment of per-peer costs to `shards` bins:
/// peers in descending cost (id ascending on ties) each go to the
/// currently lightest bin (lowest index on ties). Deterministic — the
/// sharded engine's cost rebalance and its tests both call this.
std::vector<std::size_t> balance_by_cost(
    const std::vector<std::uint64_t>& cost, std::size_t shards);

/// The full refresh loop both engines must execute in the same shape for
/// the bit-for-bit contract to hold: per peer in ascending order —
/// teardown, skip if complete, snapshot *all* peers (an earlier peer's
/// teardown tick may have grown its working set this refresh), plan,
/// create. Only teardown and create are engine-specific (they own the
/// link/endpoint types); everything that orders the seed chain lives
/// here. Not a hot path: runs once per refresh_interval ticks.
void run_refresh_loop(
    std::size_t peer_count, const DeliveryOptions& options,
    std::size_t target_symbols, std::uint64_t& session_seed_chain,
    const std::function<void(std::size_t)>& teardown,
    const std::function<bool(std::size_t)>& is_complete,
    const std::function<PlanPeer(std::size_t)>& snapshot,
    const std::function<void(std::size_t, PlannedDownload&)>& create);

}  // namespace icd::core

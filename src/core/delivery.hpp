#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/origin.hpp"
#include "core/peer.hpp"
#include "core/session.hpp"

/// ContentDeliveryService: the application-level entry point.
///
/// Owns one piece of content, any number of origin mirrors, and a registry
/// of peers; each service "tick" advances every download by one round —
/// origins stream fresh symbols to their subscribers, and peer-to-peer
/// sessions (formed via sketch-based admission control, re-formed on
/// demand) move filtered/recoded symbols across the overlay. This is the
/// façade a downstream application would embed; the lower-level pieces
/// remain available for custom architectures.
namespace icd::core {

struct DeliveryOptions {
  std::size_t block_size = 1024;
  std::uint64_t session_seed = 0x1cdULL;
  /// Peer-to-peer strategy for informed sessions.
  overlay::Strategy strategy = overlay::Strategy::kRecodeBloom;
  /// Maximum concurrent upload sessions a peer serves / download sessions
  /// a peer consumes.
  std::size_t max_peer_sessions = 2;
  /// Re-run admission control and rebuild sessions every this many ticks.
  std::size_t refresh_interval = 50;
  AdmissionPolicy admission;
};

class ContentDeliveryService {
 public:
  /// Registers the content and creates the primary origin.
  ContentDeliveryService(std::vector<std::uint8_t> content,
                         DeliveryOptions options);

  /// Adds another full mirror with an uncorrelated symbol stream.
  void add_mirror();

  /// Registers a new peer; `subscribe_origin` connects it to a round-robin
  /// origin feed (one symbol per tick). Returns the peer's id.
  std::size_t add_peer(const std::string& name, bool subscribe_origin);

  /// Advances the whole service by one round. Returns the number of peers
  /// that completed during this tick.
  std::size_t tick();

  /// Drives tick() until all peers have the content or `max_ticks` pass.
  /// Returns true if everyone finished.
  bool run(std::size_t max_ticks);

  std::size_t peer_count() const { return peers_.size(); }
  const Peer& peer(std::size_t id) const { return *peers_.at(id).peer; }
  bool peer_complete(std::size_t id) const {
    return peers_.at(id).peer->has_content();
  }
  /// Reconstructed content for a finished peer.
  std::vector<std::uint8_t> peer_content(std::size_t id) const;

  std::size_t ticks() const { return ticks_; }
  const codec::CodeParameters& parameters() const {
    return origins_.front()->parameters();
  }

 private:
  struct PeerEntry {
    std::unique_ptr<Peer> peer;
    bool origin_fed = false;
    std::size_t origin_index = 0;
    /// Active download sessions, keyed by the serving peer id.
    std::map<std::size_t, std::unique_ptr<InformedSession>> downloads;
  };

  void refresh_sessions();

  std::vector<std::uint8_t> content_;
  DeliveryOptions options_;
  std::vector<std::unique_ptr<OriginServer>> origins_;
  std::vector<PeerEntry> peers_;
  std::size_t ticks_ = 0;
  std::uint64_t next_session_seed_;
};

}  // namespace icd::core

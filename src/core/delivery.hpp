#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/endpoint.hpp"
#include "core/event_loop.hpp"
#include "core/fault_plan.hpp"
#include "core/origin.hpp"
#include "core/peer.hpp"
#include "wire/transport.hpp"

/// ContentDeliveryService: the application-level entry point.
///
/// Owns one piece of content, any number of origin mirrors, and a registry
/// of peers; each service "tick" advances every download by one round —
/// origins stream fresh symbols to their subscribers, and peer-to-peer
/// endpoint sessions (formed via sketch-based admission control, re-formed
/// on demand) move filtered/recoded symbols across the overlay. Every
/// peer-to-peer download runs over its own bidirectional ChannelLink, so
/// scenarios can shape each edge with loss, reordering and an MTU. This is
/// the façade a downstream application would embed; the lower-level pieces
/// remain available for custom architectures.
namespace icd::core {

struct DeliveryOptions {
  std::size_t block_size = 1024;
  std::uint64_t session_seed = 0x1cdULL;
  /// Peer-to-peer strategy for informed sessions.
  overlay::Strategy strategy = overlay::Strategy::kRecodeBloom;
  /// Maximum concurrent upload sessions a peer serves / download sessions
  /// a peer consumes.
  std::size_t max_peer_sessions = 2;
  /// Re-run admission control and rebuild sessions every this many ticks.
  std::size_t refresh_interval = 50;
  AdmissionPolicy admission;
  /// Complementary sender-group selection (end of Section 4: "overlay
  /// management may explicitly avoid connecting nodes with identical
  /// content"). When set, planning ranks the *whole* admitted pool and
  /// then picks the max_peer_sessions group greedily, anchored at the
  /// most novel candidate and at each step adding the candidate that
  /// minimizes estimate_group_overlap of the group so far — so two
  /// near-identical senders are demoted in favor of a complementary one
  /// even when each looks equally novel against the receiver alone. Off
  /// by default: the historical plan (top novelty ranks, input order on
  /// ties) stays bit-for-bit.
  bool overlap_aware_selection = false;
  /// Massive-swarm admission: when nonzero, each refresh plans every
  /// receiver against a deterministic sample of this many candidate
  /// senders (seeded rejection draws off the session seed chain) instead
  /// of ranking the entire swarm — O(n·k²) per refresh instead of O(n²).
  /// 0 (default) keeps the historical full-pool plan bit-for-bit.
  std::size_t admission_sample = 0;
  /// Channel shaping (loss, reorder, MTU) applied to every peer-to-peer
  /// link. Perfect by default. An unset seed is replaced with a fresh
  /// per-link draw to decorrelate links; an explicit seed is honored
  /// verbatim.
  wire::ChannelConfig link;
  /// Optional per-edge override: (sender_id, receiver_id) -> config. When
  /// set it replaces `link` for that edge; the unset-seed rule above
  /// applies to the returned config too. Timing knobs (delay_ticks,
  /// jitter_ticks, hops, rate_bytes_per_tick) switch the edge to the
  /// virtual clock and the engines to scheduler-driven servicing.
  std::function<wire::ChannelConfig(std::size_t, std::size_t)> link_config;
  /// Closed-loop flow control (SessionOptions::flow_control) on every
  /// download session: receivers re-issue their request with decremented
  /// counts as symbols land, and senders stop at satisfaction instead of
  /// streaming until the next refresh. Off by default (extra control
  /// frames; historical byte accounting stays bit-for-bit).
  bool flow_control = false;
  /// Handshake retry cadence for every download session
  /// (SessionOptions::handshake_retry_ticks). On timed links set this
  /// above the worst round-trip delay, or every in-flight reply triggers
  /// a redundant bundle re-send.
  std::size_t handshake_retry_ticks = 8;

  // --- Fault tolerance (all inert by default; see DESIGN.md, "Failure
  // model") ----------------------------------------------------------------
  /// Declarative fault schedule (peer crash/stall/restart, flash-crowd
  /// joins, link blackout windows), honored identically by both engines.
  /// Null = no faults, all machinery bypassed on the hot path.
  std::shared_ptr<const FaultPlan> faults;
  /// Sender-liveness timeout for every download session: mid-transfer
  /// silence past this many ticks flags the sender suspect; the engine
  /// tears the session down, records it in SessionResult::failed_peers,
  /// and excludes the sender from admission for suspect_ttl_ticks.
  /// 0 = disabled.
  std::size_t liveness_timeout_ticks = 0;
  /// Capped exponential backoff on handshake retries (see
  /// SessionOptions). factor 1 = historical fixed cadence.
  std::size_t handshake_backoff_factor = 1;
  std::size_t handshake_backoff_cap_ticks = 0;
  /// Handshake retry budget per session; on exhaustion the session fails
  /// with a diagnostic instead of retrying forever. 0 = unbounded.
  std::size_t max_handshake_retries = 0;
  /// How long a suspect peer stays excluded from admission candidate
  /// pools. 0 = one refresh_interval.
  std::size_t suspect_ttl_ticks = 0;
  /// run()/run_until() jump the virtual clock across tick spans in which
  /// provably nothing can happen (no refresh due, no origin feed, no
  /// frame arrival, send credit, or handshake retry on any active link).
  /// The jumped trajectory is bit-for-bit identical to ticking through
  /// the span — skipped ticks are no-ops by construction — so this is on
  /// by default; turn it off to measure the lockstep loop (benches) or
  /// when an external driver needs every tick surfaced.
  bool jump_empty_ticks = true;
};

/// Per-peer memory accounting for the scale audit: how many bytes of
/// decoder, endpoint, and link state one simulated peer pins, so a 10k-1M
/// swarm's RAM footprint is a measured number instead of a guess. Shared
/// by both delivery engines; see DESIGN.md, "Scale model".
struct MemoryAudit {
  std::size_t peers = 0;
  /// Peer-held codec state: block + recode decoders, sketch, symbol ids.
  std::size_t decoder_bytes = 0;
  /// Active endpoint pairs (handshake caches, reconciliation domains,
  /// scratch).
  std::size_t endpoint_bytes = 0;
  /// Link state: channel queues, delay lines, transports, buffer pools.
  std::size_t link_bytes = 0;

  std::size_t total() const {
    return decoder_bytes + endpoint_bytes + link_bytes;
  }
  double bytes_per_peer() const {
    return peers == 0 ? 0.0
                      : static_cast<double>(total()) /
                            static_cast<double>(peers);
  }
};

class ContentDeliveryService {
 public:
  /// Registers the content and creates the primary origin.
  ContentDeliveryService(std::vector<std::uint8_t> content,
                         DeliveryOptions options);

  /// Adds another full mirror with an uncorrelated symbol stream.
  void add_mirror();

  /// Registers a new peer; `subscribe_origin` connects it to a round-robin
  /// origin feed (one symbol per tick). Returns the peer's id.
  std::size_t add_peer(const std::string& name, bool subscribe_origin);

  /// Advances the whole service by one round. Returns the number of peers
  /// that completed during this tick.
  std::size_t tick();

  /// Drives the service until all peers have the content or `max_ticks`
  /// virtual ticks pass, jumping empty tick spans when
  /// DeliveryOptions::jump_empty_ticks is set. Returns true if everyone
  /// finished.
  bool run(std::size_t max_ticks);

  /// Event-loop driver: advances until every peer holds the content or
  /// the virtual clock reaches `deadline`, executing only ticks at which
  /// an event (refresh, origin feed, frame arrival, send credit,
  /// handshake retry) can occur. Returns true when everyone finished.
  bool run_until(std::uint64_t deadline);

  std::size_t peer_count() const { return peers_.size(); }
  const Peer& peer(std::size_t id) const { return *peers_.at(id).peer; }
  bool peer_complete(std::size_t id) const {
    return peers_.at(id).peer->has_content();
  }
  /// Virtual tick at which the peer first held the content (the ticks()
  /// value observed right after the completing tick); 0 = not yet.
  std::size_t peer_completion_tick(std::size_t id) const {
    return peers_.at(id).completed_tick;
  }
  /// Reconstructed content for a finished peer.
  std::vector<std::uint8_t> peer_content(std::size_t id) const;

  std::size_t ticks() const { return ticks_; }
  const codec::CodeParameters& parameters() const {
    return origins_.front()->parameters();
  }
  /// Per-receiver session outcome: completion plus every download session
  /// the engine abandoned for this receiver (liveness timeout, handshake
  /// retry exhaustion) — the "my sender died" diagnostic surface.
  SessionResult session_result(std::size_t id) const {
    const PeerEntry& entry = peers_.at(id);
    return SessionResult{entry.peer->has_content(), entry.completed_tick,
                         entry.failed_peers, entry.peer->memory_bytes(),
                         entry.peer->decoder_stats()};
  }
  /// Decoder + endpoint + link bytes currently pinned, per layer and per
  /// peer — the scale audit both engines surface identically.
  MemoryAudit memory_audit() const;
  /// Incremental cross-tick planner counters (queue-ops-per-tick bench).
  const PlanningQueue::Stats& planner_stats() const {
    return planner_.stats();
  }
  /// Whether the peer is currently down (crashed or stalled) under the
  /// fault plan.
  bool peer_down(std::size_t id) const { return faults_.down(id, ticks_); }
  /// Scheduler-ordered link services executed (timed service path pops).
  std::uint64_t events_processed() const { return loop_.events_processed(); }
  /// Virtual ticks run_until() jumped over without executing.
  std::uint64_t ticks_skipped() const { return loop_.ticks_skipped(); }

  /// Aggregate wire-level stats over download links.
  struct LinkTotals {
    std::size_t control_bytes = 0;
    std::size_t control_frames = 0;
    std::size_t data_bytes = 0;
    std::size_t data_frames = 0;
    /// Frames the transports refused to carry (MTU too small to fit even
    /// one fragment). Nonzero while nothing completes means the link
    /// config, not the protocol, is blocking delivery.
    std::size_t frames_refused = 0;

    LinkTotals& operator+=(const LinkTotals& other) {
      control_bytes += other.control_bytes;
      control_frames += other.control_frames;
      data_bytes += other.data_bytes;
      data_frames += other.data_frames;
      frames_refused += other.frames_refused;
      return *this;
    }

    /// Banks one transport's send-side counters. The single place the
    /// TransportStats -> LinkTotals field mapping lives: both delivery
    /// engines accumulate through this, so a new counter can't land in
    /// one engine and silently skew the other's accounting.
    LinkTotals& add(const wire::TransportStats& stats) {
      control_bytes += stats.control_bytes_sent;
      control_frames += stats.control_frames_sent;
      data_bytes += stats.data_bytes_sent;
      data_frames += stats.data_frames_sent;
      frames_refused += stats.frames_refused;
      return *this;
    }
  };
  /// Stats over currently active links only; resets to near zero after
  /// every refresh_interval teardown. Use link_totals() for cumulative
  /// cost accounting.
  LinkTotals active_link_totals() const;
  /// Cumulative wire-level stats over the whole delivery: links retired by
  /// session refreshes plus the currently active ones. Monotonic across
  /// ticks.
  LinkTotals link_totals() const;

 private:
  /// One admitted download: a lossy bidirectional link plus the endpoint
  /// pair driving the protocol over it (sender side = link.a()).
  struct DownloadLink {
    DownloadLink(Peer& sender, Peer& receiver, const SessionOptions& options,
                 wire::ChannelConfig config)
        : link(config), sender(sender, options, link.a()),
          receiver(receiver, options, link.b()) {}

    wire::ChannelLink link;
    SenderEndpoint sender;
    ReceiverEndpoint receiver;
  };

  struct PeerEntry {
    std::unique_ptr<Peer> peer;
    bool origin_fed = false;
    std::size_t origin_index = 0;
    /// Active downloads, keyed by the serving peer id.
    std::map<std::size_t, std::unique_ptr<DownloadLink>> downloads;
    /// Virtual tick of first completion (0 = incomplete).
    std::size_t completed_tick = 0;
    /// Download sessions abandoned for this receiver (diagnostics).
    std::vector<FailedPeer> failed_peers;
  };

  void refresh_sessions();
  /// Top-of-tick fault application: due crashes tear the crashed peer's
  /// own downloads down (banking wire costs; its decoded content
  /// survives for rejoin), due joins add fresh peers, and blackout
  /// windows toggle on the affected links.
  void apply_faults(std::uint64_t now);
  /// End-of-tick sweep: downloads whose receiver flagged its sender
  /// suspect (liveness) or exhausted its retry budget are torn down,
  /// recorded in failed_peers, and the sender marked suspect for
  /// admission. Runs only when liveness/retry bounding is enabled.
  void sweep_failed_downloads(std::uint64_t now);
  /// Graceful single-download teardown shared by refresh, crash, and the
  /// failure sweep: flush in-flight frames, final receiver drain, bank
  /// wire costs.
  void teardown_download(DownloadLink& download);
  bool failure_detection_enabled() const {
    return options_.liveness_timeout_ticks > 0 ||
           options_.max_handshake_retries > 0;
  }
  std::uint64_t suspect_ttl() const {
    return options_.suspect_ttl_ticks > 0
               ? options_.suspect_ttl_ticks
               : std::max<std::size_t>(1, options_.refresh_interval);
  }
  /// The earliest virtual tick >= ticks_ at which a lockstep tick would
  /// not be a no-op: the next refresh, an origin feed (every tick while a
  /// fed peer is incomplete), or any active download's next frame
  /// arrival / send credit / handshake retry. nullopt when every peer is
  /// complete. Served by the incremental planner: only peers whose stored
  /// entry came due (or a structural invalidation) are replanned; stored
  /// entries with at >= now are exactly what a full rebuild would plan
  /// (see DESIGN.md, "Scale model").
  std::optional<std::uint64_t> next_event_time();
  /// One peer's earliest upcoming event, re-keyed to the receiving peer
  /// id — the planner entry. nullopt for complete, down, or fully drained
  /// peers (a down peer is woken by the fault-boundary rebuild).
  std::optional<Event> plan_peer_events(std::size_t i, std::uint64_t now);
  /// Re-derives one peer's planner entry and incomplete accounting.
  void replan_peer(std::size_t i, std::uint64_t now);
  /// Services one peer's downloads in event order at virtual time
  /// `now` (= the tick index): untimed links every tick in sender order
  /// (the historical lockstep), timed links only when a frame has arrived
  /// or the token bucket grants send credit.
  void service_downloads(PeerEntry& entry, std::uint64_t now);
  static void accumulate_link(const DownloadLink& download,
                              LinkTotals& totals);

  std::vector<std::uint8_t> content_;
  DeliveryOptions options_;
  std::vector<std::unique_ptr<OriginServer>> origins_;
  std::vector<PeerEntry> peers_;
  std::size_t ticks_ = 0;
  std::uint64_t next_session_seed_;
  /// Wire stats of links already torn down by refresh_sessions().
  LinkTotals retired_link_totals_;
  /// Fault bookkeeping (inert when options_.faults is null).
  FaultTracker faults_;
  /// The discrete-event core: global virtual clock + (time, kind, key)
  /// queue, reused for per-tick service ordering (rebuilt per peer).
  EventLoop loop_;
  /// The always-on incremental cross-tick planner: one live entry per
  /// peer (its earliest upcoming event), lazily invalidated by stamp.
  PlanningQueue planner_;
  /// Scratch queue plan_peer_events builds one peer's events into.
  EventLoop plan_scratch_;
  /// Keys handed back by PlanningQueue::take_due each planning round.
  std::vector<std::uint64_t> plan_due_scratch_;
  /// Structural invalidation: session refresh, fault application, failure
  /// sweep, membership change — the next planning round rebuilds fully.
  bool planner_dirty_ = true;
  /// The `now` of the last planning round (fault-boundary gap detection).
  std::uint64_t planned_through_ = 0;
  /// Per-peer incompleteness mirror + count, so planning needn't rescan
  /// every peer to decide whether the swarm is done.
  std::vector<char> plan_incomplete_;
  std::size_t incomplete_peers_ = 0;
};

}  // namespace icd::core

#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

/// The discrete-event core of simulated time.
///
/// PR 4 gave every link a virtual clock but both delivery engines still
/// iterated tick by tick, asking a per-tick scheduler who was due — a
/// high-RTT rate-limited swarm burned thousands of empty iterations
/// between frame arrivals. EventLoop promotes that per-tick LinkScheduler
/// into a true event queue: a global virtual clock plus a deterministic
/// (time, kind, key) min-queue holding *all* time-driven work — frame
/// arrivals, token-bucket send-credit refills, handshake retry timers,
/// flow-control re-issues, and the coordinator's admission/refresh
/// cadence. Drivers that know every pending event can jump the clock
/// straight to the next one (`skip_to`), executing only ticks where
/// something happens; ticks proven empty are counted, never run.
///
/// Determinism: events pop in strict (time, kind, key) order. Kinds are
/// ordered to match the execution order inside one tick (coordinator
/// refresh before origin feeds before link servicing), and equal
/// (time, kind) pairs tie-break by ascending key — for service events the
/// key is the serving peer id, which reproduces the historical lockstep
/// per-sender map iteration exactly. That tie-break is what keeps the
/// shards=1 / legacy-engine bit-for-bit gates intact under both the
/// per-tick scheduler and the jumping loop. See DESIGN.md, "Time and
/// scheduling model".
namespace icd::core {

class SenderEndpoint;
class ReceiverEndpoint;

/// What a scheduled event means. The numeric order is the intra-tick
/// execution order, so equal-time events pop in the order a lockstep tick
/// would have performed them.
enum class EventKind : std::uint8_t {
  kRefresh = 0,         // admission/session refresh cadence (coordinator)
  kOriginFeed = 1,      // origin fountain streams one symbol per tick
  kHandshakeRetry = 2,  // receiver re-sends its handshake bundle
  kFrameArrival = 3,    // a queued frame's arrival time passes
  kSendCredit = 4,      // the token bucket grants one data frame
  kFlowUpdate = 5,      // RequestUpdate re-issue (rides arrival services)
  kService = 6,         // per-tick link service slot (engines' pop loop)
  // Appended after kService so historical intra-tick tie-breaks are
  // untouched; both kinds are cross-tick planning barriers, executed at
  // the top of the tick they land on.
  kPeerFault = 7,       // a FaultPlan boundary (crash/stall/restart/join/
                        // blackout edge) falls on this tick
  kLivenessProbe = 8,   // a receiver's sender-liveness timeout expires
};

struct Event {
  std::uint64_t at = 0;
  EventKind kind = EventKind::kService;
  std::uint64_t key = 0;
};

/// A deterministic min-queue of (time, kind, key) events plus the global
/// virtual clock and the jump accounting. Engines reuse one instance both
/// ways: rebuilt per scheduling round (clear + schedule + pop_due) for
/// intra-tick service ordering, and rebuilt after each tick to find the
/// next tick at which anything can happen.
class EventLoop {
 public:
  // --- Event queue ---------------------------------------------------------
  void clear() { heap_.clear(); }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Registers one event. Duplicate (time, kind, key) triples are allowed;
  /// callers that reschedule simply clear() and rebuild.
  void schedule(std::uint64_t at, EventKind kind, std::uint64_t key);

  /// The earliest event, if any.
  std::optional<Event> peek() const;

  /// Pops and returns the earliest event if its time is <= now; nullopt
  /// when the queue is empty or everything lies in the future. Counts the
  /// pop in events_processed().
  std::optional<Event> pop_due(std::uint64_t now);

  // --- Global virtual clock ------------------------------------------------
  std::uint64_t now() const { return now_; }

  /// Advances the clock (monotonic; a smaller t is ignored).
  void advance_to(std::uint64_t t) { now_ = std::max(now_, t); }

  /// Jumps the clock across a span of provably empty ticks: every tick in
  /// [now, t) is counted as skipped, never executed. Monotonic like
  /// advance_to.
  void skip_to(std::uint64_t t) {
    if (t > now_) {
      ticks_skipped_ += t - now_;
      now_ = t;
    }
  }

  // --- Accounting ----------------------------------------------------------
  /// Events popped due (service slots executed).
  std::uint64_t events_processed() const { return events_processed_; }
  /// Virtual ticks jumped over without executing.
  std::uint64_t ticks_skipped() const { return ticks_skipped_; }

  // --- Wall-clock mode -----------------------------------------------------
  // The real-network driver (examples/swarm_node): virtual ticks are bound
  // to real time, tick i falling at epoch + i * ns_per_tick with the epoch
  // recorded here. Instead of jumping the clock across empty spans, a
  // run loop built on poll_wait() *sleeps* across them — blocking in
  // ::poll on the watched sockets with a timeout derived from the next
  // scheduled virtual event (handshake retry, flow-update cadence, service
  // slot), so the same endpoint state machines run unmodified against real
  // sockets. See DESIGN.md, "Real-network backend".

  /// Enters wall-clock mode: tick 0 is now, ticks last `ns_per_tick`.
  void enable_wall_clock(std::uint64_t ns_per_tick);
  bool wall_clock() const { return wall_enabled_; }
  std::uint64_t ns_per_tick() const { return wall_ns_per_tick_; }

  /// The current wall time, expressed in virtual ticks since the epoch.
  std::uint64_t wall_now() const;

  /// Registers / removes a socket watched for readability by poll_wait().
  void watch_fd(int fd);
  void unwatch_fd(int fd);

  /// Blocks until a watched fd turns readable or the earliest scheduled
  /// event (capped at now + max_wait_ticks) comes due on the wall clock,
  /// then advances now() to the wall tick. Ticks slept across count as
  /// skipped — the wall-clock analogue of skip_to. Returns true when at
  /// least one watched fd is readable. Requires enable_wall_clock.
  bool poll_wait(std::uint64_t max_wait_ticks = 1000);

 private:
  /// std::push_heap/pop_heap min-heap ordered by (at, kind, key).
  std::vector<Event> heap_;
  std::uint64_t now_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t ticks_skipped_ = 0;
  /// Wall-clock mode state (enable_wall_clock / poll_wait).
  bool wall_enabled_ = false;
  std::uint64_t wall_ns_per_tick_ = 1'000'000;  // 1 ms
  std::chrono::steady_clock::time_point wall_epoch_{};
  std::vector<int> watched_fds_;
};

/// The always-on incremental cross-tick planner. The engines used to
/// rebuild the whole planning queue after every executed tick (clear +
/// re-schedule every incomplete peer's downloads) — quadratic-ish on huge
/// swarms, since one executed tick usually perturbs a handful of peers.
/// PlanningQueue keeps one live entry per *key* (the receiving peer id):
/// that peer's earliest upcoming event, re-keyed to the peer. Replacing a
/// key's entry does not search the heap; it bumps the key's stamp and
/// pushes a fresh entry, and stale entries (stamp mismatch) are skimmed
/// lazily at peek/pop time. A compaction bound (heap > 2*live + 64)
/// keeps the garbage linear in the live set.
///
/// Correctness contract (see DESIGN.md, "Scale model"): a stored entry
/// with at >= now is exactly what a full rebuild at `now` would plan for
/// that peer, because every per-download time source (frame arrival,
/// send credit, retry/liveness deadlines) is an absolute-time function of
/// state that only changes when the peer is serviced or flagged — and
/// take_due() hands every entry with at < now back for replanning before
/// the round's answer is folded.
class PlanningQueue {
 public:
  struct Stats {
    std::uint64_t pushes = 0;         // entries pushed (set with a value)
    std::uint64_t pops = 0;           // live entries handed back by take_due
    std::uint64_t stale_skipped = 0;  // lazily discarded invalidated entries
    std::uint64_t full_rebuilds = 0;  // begin_rebuild rounds
    std::uint64_t compactions = 0;    // garbage-bound heap rebuilds

    /// Total heap operations — the bench's queue-ops metric.
    std::uint64_t ops() const { return pushes + pops + stale_skipped; }
  };

  /// Grows the per-key tables (new keys start with no live entry).
  void ensure_keys(std::size_t count);

  /// Requests a full rebuild at the next planning round (engine-side
  /// invalidation: refresh, fault application, membership change).
  void invalidate_all() { pending_full_ = true; }
  bool pending_full() const { return pending_full_; }

  /// Starts a full rebuild: drops every entry. The caller re-sets every
  /// key it still cares about.
  void begin_rebuild();

  /// Replaces `key`'s entry. nullopt = the key has no upcoming event
  /// (complete, down, or drained+satisfied peers). The old entry, if any,
  /// is invalidated by stamp, not searched for.
  void set(std::uint64_t key, const std::optional<Event>& event);

  /// Pops every live entry with at < `now` — peers whose stored plan an
  /// executed tick may have perturbed — into `out` in (at, kind, key)
  /// order, marking them planless. Entries at exactly `now` stay: they
  /// are this round's answer, not history.
  void take_due(std::uint64_t now, std::vector<std::uint64_t>& out);

  /// The earliest live entry (lazily skimming stale ones).
  std::optional<Event> peek();

  std::size_t live() const { return live_count_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    Event event;
    std::uint64_t stamp = 0;
  };

  bool fresh(const Entry& entry) const {
    return live_[entry.event.key] != 0 &&
           entry.stamp == stamps_[entry.event.key];
  }
  void drop_stale_front();
  void compact();

  /// Min-heap by (at, kind, key); stale entries skimmed lazily.
  std::vector<Entry> heap_;
  std::vector<std::uint64_t> stamps_;  // per key: current stamp
  std::vector<char> live_;             // per key: a live entry exists
  std::vector<Event> live_event_;      // per key: that entry (compaction)
  std::size_t live_count_ = 0;
  bool pending_full_ = true;  // first round always builds from scratch
  Stats stats_;
};

/// Link-derived inputs to the service decision, gathered by the engine
/// from whichever link type carries the download (ChannelLink locally,
/// ShardLink across shards).
struct LinkTimes {
  /// False = legacy event-clock link: service every tick.
  bool timed = false;
  /// Earliest arrival of a queued frame in either direction.
  std::optional<std::uint64_t> next_arrival;
  /// Earliest departure credit for one data frame (token bucket).
  std::optional<std::uint64_t> send_credit_at;
  /// The serving peer is crashed or stalled (FaultPlan): the engine will
  /// not run the sender half, so send-credit events are meaningless; the
  /// receiver is serviced for arrivals, retries, and liveness expiry only.
  bool sender_down = false;
};

/// Estimated wire size of one data-plane frame, used for the send-credit
/// probe (the exact size depends on strategy and degree; pacing itself is
/// enforced by the channel's token bucket, so the hint only shapes attempt
/// cadence).
std::size_t data_frame_bytes_hint(std::size_t block_size);

/// When the download next needs service *within the current tick's
/// scheduling round*: now for untimed links and during the handshake
/// (retry clocks must keep counting), the earliest of frame arrival /
/// send credit during transfer, and nullopt — skip entirely — for a
/// drained link whose sender is satisfied. Cross-tick planning uses
/// next_download_event() instead, which replaces the handshake's "now"
/// with the receiver's retry deadline.
std::optional<std::uint64_t> next_service_time(const SenderEndpoint& sender,
                                               const ReceiverEndpoint& receiver,
                                               const LinkTimes& times,
                                               std::uint64_t now);

/// Finishes one cross-tick planning round shared by both delivery
/// engines: schedules the coordinator's next refresh tick (the first
/// multiple of `refresh_interval` at or after `now` — matching tick()'s
/// pre-increment modulo check exactly) and returns the earliest planned
/// event, clamped to `now`. nullopt when no peer is incomplete (the
/// refresh would be dead work) — callers stop running instead of
/// jumping.
std::optional<std::uint64_t> finish_event_planning(EventLoop& loop,
                                                   std::uint64_t now,
                                                   std::size_t refresh_interval,
                                                   bool any_incomplete);

/// Cross-tick planning: schedules one download's future events (frame
/// arrival, handshake retry, send credit) into `loop`, keyed by `key`.
/// Mirrors next_service_time's decision tree exactly, except that a
/// handshaking download is due at its retry deadline rather than every
/// tick — empty handshake ticks are no-ops once the retry clock is
/// virtual-time-based, which is precisely what makes the span skippable.
/// Untimed links are due `now` (the event clock advances every tick).
void schedule_download_events(EventLoop& loop, const SenderEndpoint& sender,
                              const ReceiverEndpoint& receiver,
                              const LinkTimes& times, std::uint64_t now,
                              std::uint64_t key);

}  // namespace icd::core

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

/// Reusable frame buffers for the zero-allocation symbol path.
///
/// Every frame a Transport puts on the wire is a std::vector<uint8_t>; in
/// steady state the same handful of buffers cycle sender -> queue ->
/// receiver -> pool -> sender, so after warmup no send allocates. See
/// DESIGN.md ("Buffer ownership and lifetimes") for who borrows what and
/// when spans into these buffers are invalidated.
namespace icd::wire {

class BufferPool {
 public:
  /// Buffers retained beyond this are freed on release() — bounds the
  /// memory a bursty phase (handshake fragment trains) can pin forever.
  static constexpr std::size_t kMaxPooled = 64;

  struct Stats {
    std::size_t acquires = 0;  // total acquire() calls
    std::size_t hits = 0;      // acquires served from the freelist
    std::size_t releases = 0;  // buffers returned (kept or freed)

    double hit_rate() const {
      return acquires == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(acquires);
    }
  };

  /// An empty buffer, recycled (capacity retained) when one is available.
  std::vector<std::uint8_t> acquire() {
    ++stats_.acquires;
    if (free_.empty()) return {};
    ++stats_.hits;
    std::vector<std::uint8_t> buffer = std::move(free_.back());
    free_.pop_back();
    return buffer;
  }

  /// Returns a buffer to the freelist. Contents are cleared here so a
  /// recycled buffer can never leak a previous frame's bytes.
  void release(std::vector<std::uint8_t> buffer) {
    ++stats_.releases;
    if (free_.size() >= kMaxPooled) return;  // freed by destruction
    buffer.clear();
    free_.push_back(std::move(buffer));
  }

  std::size_t pooled() const { return free_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  Stats stats_;
};

}  // namespace icd::wire

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#if !defined(NDEBUG) && !defined(ICD_POOL_OWNER_CHECKS)
#define ICD_POOL_OWNER_CHECKS 1
#endif

#if defined(ICD_POOL_OWNER_CHECKS)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#endif

/// Reusable frame buffers for the zero-allocation symbol path.
///
/// Every frame a Transport puts on the wire is a std::vector<uint8_t>; in
/// steady state the same handful of buffers cycle sender -> queue ->
/// receiver -> pool -> sender, so after warmup no send allocates. See
/// DESIGN.md ("Buffer ownership and lifetimes") for who borrows what and
/// when spans into these buffers are invalidated.
///
/// A BufferPool is deliberately NOT thread-safe: the shard-local ownership
/// rule (DESIGN.md, "Threading model") says every pool belongs to exactly
/// one shard at a time, and cross-shard buffer traffic goes through
/// wire::ShardLink's SPSC recycling rings instead. Builds with owner checks
/// enabled (debug builds, or any build defining ICD_POOL_OWNER_CHECKS)
/// enforce the rule: the first acquire/release binds the pool to the
/// calling thread and any call from a different thread aborts loudly,
/// so a cross-shard buffer leak fails at the offending call site instead
/// of corrupting a freelist. Coordinators that legitimately hand a pool
/// between phases (session refresh runs single-threaded while workers are
/// parked) call debug_release_owner() so the next user rebinds.
namespace icd::wire {

class BufferPool {
 public:
  /// Buffers retained beyond this are freed on release() — bounds the
  /// memory a bursty phase (handshake fragment trains) can pin forever.
  static constexpr std::size_t kMaxPooled = 64;

  struct Stats {
    std::size_t acquires = 0;  // total acquire() calls
    std::size_t hits = 0;      // acquires served from the freelist
    std::size_t releases = 0;  // buffers returned (kept or freed)

    double hit_rate() const {
      return acquires == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(acquires);
    }
  };

  /// An empty buffer, recycled (capacity retained) when one is available.
  std::vector<std::uint8_t> acquire() {
    check_owner("acquire");
    ++stats_.acquires;
    if (free_.empty()) return {};
    ++stats_.hits;
    std::vector<std::uint8_t> buffer = std::move(free_.back());
    free_.pop_back();
    return buffer;
  }

  /// Returns a buffer to the freelist. Contents are cleared here so a
  /// recycled buffer can never leak a previous frame's bytes.
  void release(std::vector<std::uint8_t> buffer) {
    check_owner("release");
    ++stats_.releases;
    if (free_.size() >= kMaxPooled) return;  // freed by destruction
    buffer.clear();
    free_.push_back(std::move(buffer));
  }

  /// Unbinds the pool from its owning thread (owner-checking builds only;
  /// a no-op otherwise). The next acquire/release rebinds to its caller.
  /// Call this only at a synchronization point that orders the old owner's
  /// accesses before the new owner's — e.g. the coordinator between tick
  /// phases, while all workers are parked at a barrier.
  void debug_release_owner() {
#if defined(ICD_POOL_OWNER_CHECKS)
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
#endif
  }

  std::size_t pooled() const { return free_.size(); }
  const Stats& stats() const { return stats_; }

  /// Heap bytes the freelist pins (scale audit; counted once per link).
  std::size_t memory_bytes() const {
    std::size_t bytes = free_.capacity() * sizeof(std::vector<std::uint8_t>);
    for (const auto& buffer : free_) bytes += buffer.capacity();
    return bytes;
  }

 private:
  void check_owner(const char* op) {
#if defined(ICD_POOL_OWNER_CHECKS)
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first use (or first after debug_release_owner) binds
    }
    if (expected != self) {
      std::fprintf(stderr,
                   "BufferPool::%s from a non-owner thread: pools are "
                   "shard-local (see DESIGN.md, Threading model)\n",
                   op);
      std::abort();
    }
#else
    (void)op;
#endif
  }

  std::vector<std::vector<std::uint8_t>> free_;
  Stats stats_;
#if defined(ICD_POOL_OWNER_CHECKS)
  std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace icd::wire

#include "wire/channel.hpp"

#include <stdexcept>
#include <utility>

namespace icd::wire {

LossyChannel::LossyChannel(ChannelConfig config)
    : config_(config), rng_(config.seed.value_or(kDefaultChannelSeed)) {}

bool LossyChannel::send(std::vector<std::uint8_t> frame) {
  if (frame.size() > config_.mtu) {
    ++oversized_;
    return false;
  }
  ++sent_;
  sent_bytes_ += frame.size();
  if (rng_.next_bool(config_.loss_rate)) {
    ++dropped_;
    return true;  // sent, but the network ate it
  }
  // The arriving frame pushes its predecessor out of flight and into the
  // deliverable queue; the two may swap (adjacent reordering).
  if (in_flight_) {
    queue_.push_back(std::move(*in_flight_));
    in_flight_.reset();
  }
  in_flight_ = std::move(frame);
  if (!queue_.empty() && rng_.next_bool(config_.reorder_rate)) {
    std::swap(queue_.back(), *in_flight_);
  }
  return true;
}

std::vector<std::uint8_t> LossyChannel::receive() {
  if (queue_.empty()) {
    // The empty observation is the channel's clock: the in-flight frame
    // completes its hop and is deliverable to the *next* receive().
    flush();
    return {};
  }
  auto frame = queue_.pop_front();
  delivered_bytes_ += frame.size();
  return frame;
}

Message LossyChannel::receive_message() {
  if (!pending()) {
    throw std::logic_error("LossyChannel::receive_message: queue empty");
  }
  auto frame = receive();
  if (frame.empty()) frame = receive();  // first call released the hop
  return decode_frame(frame);
}

void LossyChannel::flush() {
  if (in_flight_) {
    queue_.push_back(std::move(*in_flight_));
    in_flight_.reset();
  }
}

}  // namespace icd::wire

#include "wire/channel.hpp"

#include <stdexcept>

namespace icd::wire {

LossyChannel::LossyChannel(ChannelConfig config)
    : config_(config), rng_(config.seed.value_or(kDefaultChannelSeed)) {}

bool LossyChannel::send(std::vector<std::uint8_t> frame) {
  if (frame.size() > config_.mtu) {
    ++oversized_;
    return false;
  }
  ++sent_;
  sent_bytes_ += frame.size();
  if (rng_.next_bool(config_.loss_rate)) {
    ++dropped_;
    return true;  // sent, but the network ate it
  }
  queue_.push_back(std::move(frame));
  if (queue_.size() >= 2 && rng_.next_bool(config_.reorder_rate)) {
    std::swap(queue_[queue_.size() - 1], queue_[queue_.size() - 2]);
  }
  return true;
}

std::vector<std::uint8_t> LossyChannel::receive() {
  if (queue_.empty()) return {};
  auto frame = std::move(queue_.front());
  queue_.pop_front();
  delivered_bytes_ += frame.size();
  return frame;
}

Message LossyChannel::receive_message() {
  if (queue_.empty()) {
    throw std::logic_error("LossyChannel::receive_message: queue empty");
  }
  return decode_frame(receive());
}

}  // namespace icd::wire

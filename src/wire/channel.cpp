#include "wire/channel.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace icd::wire {

// --- TimedFrameQueue --------------------------------------------------------

void TimedFrameQueue::place(TimedFrame frame) {
  auto at = queue_.end();
  while (at != queue_.begin()) {
    auto prev = std::prev(at);
    if (prev->arrival < frame.arrival ||
        (prev->arrival == frame.arrival && prev->seq < frame.seq)) {
      break;
    }
    at = prev;
  }
  queue_.insert(at, std::move(frame));
}

void TimedFrameQueue::insert(TimedFrame frame, bool swap_with_last) {
  if (swap_with_last && !queue_.empty()) {
    // Adjacent reorder: the new frame and the latest-scheduled queued one
    // exchange arrival times; both are re-placed so the (arrival, seq)
    // sort — and next_arrival() — stay correct.
    TimedFrame last = std::move(queue_.back());
    queue_.pop_back();
    std::swap(last.arrival, frame.arrival);
    place(std::move(last));
  }
  place(std::move(frame));
}

std::optional<std::vector<std::uint8_t>> TimedFrameQueue::pop_due(
    std::uint64_t now) {
  if (queue_.empty() || queue_.front().arrival > now) return std::nullopt;
  return pop_any();
}

std::optional<std::vector<std::uint8_t>> TimedFrameQueue::pop_any() {
  if (queue_.empty()) return std::nullopt;
  auto frame = std::move(queue_.front().frame);
  queue_.pop_front();
  return frame;
}

void TimedFrameQueue::collapse_to(std::uint64_t now) {
  for (TimedFrame& timed_frame : queue_) {
    timed_frame.arrival = std::min(timed_frame.arrival, now);
  }
}

// --- LinkShaper ------------------------------------------------------------

std::uint64_t LinkShaper::pace_bucket(Bucket& bucket, std::uint64_t at,
                                      std::size_t size) const {
  const double rate = config_.rate_bytes_per_tick;
  const double burst = config_.burst();
  // A backlog leaves bucket.time in the future (the fill is known at the
  // last scheduled departure); earlier frames must not refill from a
  // wrapped "negative" elapsed time.
  const std::uint64_t base = std::max(at, bucket.time);
  bucket.tokens = std::min(
      burst, bucket.tokens + rate * static_cast<double>(base - bucket.time));
  bucket.time = base;
  const double need = static_cast<double>(size);
  if (bucket.tokens >= need) {
    bucket.tokens -= need;
    return base;
  }
  // Depart once the deficit has refilled; the wait's own refill is spent
  // on this frame (leftover fractions stay in the bucket).
  const auto wait =
      static_cast<std::uint64_t>(std::ceil((need - bucket.tokens) / rate));
  bucket.tokens =
      std::min(burst, bucket.tokens + rate * static_cast<double>(wait)) - need;
  bucket.time = base + wait;
  return base + wait;
}

std::uint64_t LinkShaper::pace_departure(std::size_t size) {
  if (config_.rate_bytes_per_tick <= 0.0) return now_;
  const std::uint64_t depart = pace_bucket(egress_, now_, size);
  if (depart > now_) ++throttled_;
  return depart;
}

std::uint64_t LinkShaper::send_ready_at(std::size_t bytes) const {
  if (config_.rate_bytes_per_tick <= 0.0) return now_;
  const double rate = config_.rate_bytes_per_tick;
  const std::uint64_t base = std::max(now_, egress_.time);
  const double available = std::min(
      config_.burst(),
      egress_.tokens + rate * static_cast<double>(base - egress_.time));
  // A frame larger than the bucket departs on a full bucket (the pacer
  // lets the bucket go into debt for it); without this clamp the probe
  // would name a time that never satisfies itself and starve the link.
  const double need =
      std::min(static_cast<double>(bytes), config_.burst());
  if (available >= need) return base;
  return base + static_cast<std::uint64_t>(
                    std::ceil((need - available) / rate));
}

std::uint64_t LinkShaper::schedule_arrival(std::uint64_t depart,
                                           std::size_t size,
                                           util::Xoshiro256& rng) {
  // Per hop: re-pace through that hop's own bucket (hops beyond the
  // sender egress, which pace_departure already charged), then
  // propagation delay plus one jitter draw. The jitter draw order is
  // identical to the historical flat formula, so single-hop and unpaced
  // trajectories are bit-for-bit unchanged. Frames whose jitter inverts
  // their arrival order at an intermediate hop are paced in schedule
  // order — a FIFO approximation of the hop's queue.
  std::uint64_t at = depart;
  for (std::uint64_t hop = 0; hop < config_.hop_count(); ++hop) {
    if (hop > 0 && !hop_buckets_.empty()) {
      at = pace_bucket(hop_buckets_[hop - 1], at, size);
    }
    at += config_.delay_ticks;
    if (config_.jitter_ticks > 0) {
      at += rng.next_below(config_.jitter_ticks + 1);
    }
  }
  return at;
}

// --- LossyChannel ----------------------------------------------------------

LossyChannel::LossyChannel(ChannelConfig config)
    : config_(config), rng_(config.seed.value_or(kDefaultChannelSeed)),
      shaper_(config) {
  if (config_.gilbert_elliott()) ge_.emplace(config_);
}

bool LossyChannel::send(std::vector<std::uint8_t> frame) {
  if (frame.size() > config_.mtu) {
    ++oversized_;
    return false;
  }
  ++sent_;
  sent_bytes_ += frame.size();
  // Blackout windows eat the frame before any RNG draw: the loss/reorder
  // stream is untouched, so trajectories outside the window are identical
  // to a run without the blackout.
  if (blackout_) {
    ++dropped_;
    ++blackout_drops_;
    return true;
  }
  if (!timed()) {
    if (ge_ ? ge_->drop(rng_) : rng_.next_bool(config_.loss_rate)) {
      ++dropped_;
      return true;  // sent, but the network ate it
    }
    // The arriving frame pushes its predecessor out of flight and into the
    // deliverable queue; the two may swap (adjacent reordering).
    if (in_flight_) {
      queue_.push_back(std::move(*in_flight_));
      in_flight_.reset();
    }
    in_flight_ = std::move(frame);
    if (!queue_.empty() && rng_.next_bool(config_.reorder_rate)) {
      std::swap(queue_.back(), *in_flight_);
    }
    return true;
  }

  // Virtual clock: pace the departure (lost frames consumed the sender's
  // egress capacity too — the network ate them downstream), then schedule
  // the arrival across the path's hops (per-hop pacing + delay + jitter).
  const std::size_t size = frame.size();
  const std::uint64_t depart = shaper_.pace_departure(size);
  if (ge_ ? ge_->drop(rng_) : rng_.next_bool(config_.loss_rate)) {
    ++dropped_;
    return true;
  }
  const bool reorder = config_.reorder_rate > 0.0 &&
                       rng_.next_bool(config_.reorder_rate);
  timed_queue_.insert(
      TimedFrame{shaper_.schedule_arrival(depart, size, rng_), next_seq_++,
                 std::move(frame)},
      reorder);
  return true;
}

std::optional<std::uint64_t> LossyChannel::next_arrival_at() const {
  return timed_queue_.next_arrival();
}

std::vector<std::uint8_t> LossyChannel::receive() {
  if (timed()) {
    auto frame = timed_queue_.pop_due(now());
    if (!frame) return {};
    delivered_bytes_ += frame->size();
    return std::move(*frame);
  }
  if (queue_.empty()) {
    // The empty observation is the channel's clock: the in-flight frame
    // completes its hop and is deliverable to the *next* receive().
    flush();
    return {};
  }
  auto frame = queue_.pop_front();
  delivered_bytes_ += frame.size();
  return frame;
}

Message LossyChannel::receive_message() {
  if (!pending()) {
    throw std::logic_error("LossyChannel::receive_message: queue empty");
  }
  if (const auto arrival = timed_queue_.next_arrival()) {
    advance_to(*arrival);  // wait out the path
  }
  auto frame = receive();
  if (frame.empty()) frame = receive();  // first call released the hop
  return decode_frame(frame);
}

void LossyChannel::flush() {
  if (in_flight_) {
    queue_.push_back(std::move(*in_flight_));
    in_flight_.reset();
  }
  // Teardown of a timed link: arrivals collapse to now, preserving order.
  timed_queue_.collapse_to(now());
}

}  // namespace icd::wire

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/random.hpp"
#include "wire/transport.hpp"

/// Real-network backend: the wire::Transport contract over non-blocking UDP.
///
/// Everything above this layer — endpoints, fragmentation, control-frame
/// trains, byte accounting — is inherited unchanged from Transport, so a
/// SenderEndpoint speaking through a UdpTransport produces byte-for-byte the
/// same datagram stream as the same endpoint over an in-process Pipe with the
/// same MTU and batch budget. That equivalence is what lets the multi-process
/// swarm harness cross-check real runs against the simulator's prediction
/// (see DESIGN.md, "Real-network backend").
///
/// The backend maps the repo's frame-train batching onto syscall batching:
/// receive drains the socket with recvmmsg-sized bursts into pooled buffers,
/// and sends the kernel refused with EAGAIN are queued and flushed with
/// sendmmsg on the next pump(). Loopback smoke runs never hit either slow
/// path, but a congested or netem-shaped link exercises both.
namespace icd::wire {

/// RAII wrapper for one non-blocking, connected UDP socket.
///
/// UDP "connect" only pins the default destination and filters inbound
/// datagrams by source — there is no handshake — so bind-then-connect is
/// safe before the far process exists. The price is asynchronous
/// ECONNREFUSED from ICMP port-unreachable, which UdpTransport absorbs as
/// link loss.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Creates a non-blocking socket bound to address:port (port 0 picks an
  /// ephemeral port; read it back with local_port). Throws std::system_error
  /// on failure.
  static UdpSocket bind(const std::string& address, std::uint16_t port);

  /// Pins the default peer for send() and filters inbound datagrams.
  void connect(const std::string& address, std::uint16_t port);

  /// Grows SO_RCVBUF/SO_SNDBUF (best effort; the kernel may clamp).
  void set_buffer_sizes(int bytes);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  std::uint16_t local_port() const;

  void close();

 private:
  int fd_ = -1;
};

/// Backend-level counters, beneath the exact frame/byte accounting the base
/// Transport keeps. Datagrams, not frames: one datagram may carry a train.
struct UdpTransportStats {
  std::size_t datagrams_sent = 0;
  std::size_t datagrams_received = 0;
  /// recvmmsg-style bursts that returned at least one datagram.
  std::size_t recv_batches = 0;
  /// Sends the kernel refused with EAGAIN, queued for a later pump().
  std::size_t deferred_sends = 0;
  /// Backlogged datagrams dropped oldest-first when the deferred queue hit
  /// its cap — the link "lost" them, the same contract as a LossyChannel
  /// drop (sent and byte-counted above).
  std::size_t backlog_dropped = 0;
  /// Sends the network stack swallowed (ICMP port-unreachable from a peer
  /// not yet bound, or already gone) — also charged as link loss.
  std::size_t refused_sends = 0;
  /// Inbound datagrams larger than the MTU, dropped before decode.
  std::size_t truncated_datagrams = 0;
  /// Inbound datagrams dropped by set_loss_injection (fault testing).
  std::size_t injected_drops = 0;
  /// Inbound datagrams held back by set_delay_shaping before delivery.
  std::size_t delayed_datagrams = 0;
};

/// wire::Transport over one connected UDP socket.
///
/// Single-threaded like every Transport: drain(), pump() and the inherited
/// send/receive surface must be called from the owning thread. The pooled
/// receive path mirrors Pipe's: drain() resizes a pooled buffer to mtu+1
/// (the extra byte detects truncation), recv()s into it, shrinks it to the
/// datagram length and queues it; receive_frame() slices trains out of it
/// and returns it to the pool on the next take.
class UdpTransport : public Transport {
 public:
  /// Takes ownership of a bound (and usually connected) socket. A null pool
  /// gets a private one — UDP ends live in different processes, so unlike
  /// Pipe there is no pool to share across the link.
  UdpTransport(UdpSocket socket, std::size_t mtu,
               std::shared_ptr<BufferPool> pool = nullptr);
  ~UdpTransport() override;

  /// The fd for poll()/EventLoop::watch_fd.
  int fd() const { return socket_.fd(); }
  std::uint16_t local_port() const { return socket_.local_port(); }

  /// Pulls every deliverable datagram out of the socket into the receive
  /// queue (bursts of kBurst at a time). Returns how many arrived. Safe to
  /// call opportunistically; next_datagram() also drains on demand.
  std::size_t drain();

  /// Retries EAGAIN-deferred datagrams with one sendmmsg-style burst.
  /// Returns true when the backlog is empty afterwards.
  bool pump();

  /// No deferred sends waiting on the kernel.
  bool tx_idle() const { return tx_backlog_.empty(); }

  /// Socket-level loss injection: each inbound datagram is independently
  /// dropped with probability `rate` before it reaches the receive queue —
  /// real-network fault testing without netem privileges. Deterministic
  /// per (rate, seed); 0 disables.
  void set_loss_injection(double rate, std::uint64_t seed) {
    rx_loss_rate_ = rate;
    rx_loss_rng_ = util::Xoshiro256(seed);
  }

  /// Socket-level delay shaping: each inbound datagram is held for
  /// `delay_us` plus a uniform jitter draw in [0, jitter_us] microseconds
  /// of wall time before next_datagram() will surface it. Release times
  /// are kept monotone (a FIFO delay line, not a reorderer). Scenario
  /// link-profile emulation without netem privileges; 0/0 disables.
  void set_delay_shaping(std::uint64_t delay_us, std::uint64_t jitter_us,
                         std::uint64_t seed) {
    rx_delay_us_ = delay_us;
    rx_jitter_us_ = jitter_us;
    rx_delay_rng_ = util::Xoshiro256(seed);
  }

  /// Caps the EAGAIN-deferred send queue (drop-oldest on overflow, counted
  /// in backlog_dropped). Clamped to >= 1; defaults to kMaxBacklog.
  void set_max_backlog(std::size_t cap) {
    max_backlog_ = cap > 0 ? cap : std::size_t{1};
  }
  std::size_t max_backlog() const { return max_backlog_; }

  /// Test seam: the next `n` datagram transmissions (direct sends and
  /// pump() retries alike) fail as if the kernel returned EAGAIN, forcing
  /// the deferred-send backlog path without needing a saturated socket.
  void debug_force_eagain(std::size_t n) { debug_eagain_sends_ = n; }

  const UdpTransportStats& udp_stats() const { return udp_stats_; }

  /// Datagrams recv() may burst per drain() round and sends per pump().
  static constexpr std::size_t kBurst = 16;
  /// Deferred datagrams kept before the oldest is dropped as link loss.
  static constexpr std::size_t kMaxBacklog = 1024;

 protected:
  bool send_datagram(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> next_datagram() override;

 private:
  bool transmit(const std::vector<std::uint8_t>& frame);
  /// Queues one arrived datagram, stamping its shaped release time.
  void admit_rx(std::vector<std::uint8_t> frame);

  struct RxEntry {
    /// Wall-clock release deadline in steady-clock microseconds; 0 when
    /// shaping is off (deliverable immediately).
    std::uint64_t release_us = 0;
    std::vector<std::uint8_t> frame;
  };

  UdpSocket socket_;
  std::deque<RxEntry> rx_;
  std::deque<std::vector<std::uint8_t>> tx_backlog_;
  UdpTransportStats udp_stats_;
  std::size_t max_backlog_ = kMaxBacklog;
  double rx_loss_rate_ = 0.0;
  util::Xoshiro256 rx_loss_rng_{0};
  std::uint64_t rx_delay_us_ = 0;
  std::uint64_t rx_jitter_us_ = 0;
  std::uint64_t rx_last_release_us_ = 0;
  util::Xoshiro256 rx_delay_rng_{0};
  std::size_t debug_eagain_sends_ = 0;
};

}  // namespace icd::wire

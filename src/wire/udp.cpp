#include "wire/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace icd::wire {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("UdpSocket: bad IPv4 address: " + address);
  }
  return addr;
}

/// The kernel swallowed the datagram (ICMP unreachable from a peer that is
/// not bound yet, or already gone). To the protocol this is link loss.
bool is_unreachable(int error) {
  return error == ECONNREFUSED || error == EHOSTUNREACH ||
         error == ENETUNREACH;
}

/// Transient refusal: worth queueing the datagram and retrying.
bool is_again(int error) {
  return error == EAGAIN || error == EWOULDBLOCK || error == ENOBUFS ||
         error == EINTR;
}

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

UdpSocket::~UdpSocket() { close(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UdpSocket UdpSocket::bind(const std::string& address, std::uint16_t port) {
  UdpSocket socket;
  socket.fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (socket.fd_ < 0) throw_errno("UdpSocket: socket");
  const int flags = ::fcntl(socket.fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(socket.fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("UdpSocket: fcntl(O_NONBLOCK)");
  }
  const sockaddr_in addr = make_addr(address, port);
  if (::bind(socket.fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("UdpSocket: bind");
  }
  return socket;
}

void UdpSocket::connect(const std::string& address, std::uint16_t port) {
  const sockaddr_in addr = make_addr(address, port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    throw_errno("UdpSocket: connect");
  }
}

void UdpSocket::set_buffer_sizes(int bytes) {
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
}

std::uint16_t UdpSocket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("UdpSocket: getsockname");
  }
  return ntohs(addr.sin_port);
}

UdpTransport::UdpTransport(UdpSocket socket, std::size_t mtu,
                           std::shared_ptr<BufferPool> pool)
    : Transport(mtu, std::move(pool)), socket_(std::move(socket)) {
  if (!socket_.valid()) {
    throw std::invalid_argument("UdpTransport: socket not bound");
  }
  // One burst of full datagrams in each direction, with headroom: the
  // default buffers on some kernels hold only a handful of 1400-byte
  // datagrams, which turns loopback into a lossy link.
  socket_.set_buffer_sizes(static_cast<int>(mtu + 64) * 4 * kBurst);
}

UdpTransport::~UdpTransport() {
  // Give queued datagrams one last chance to depart; anything still stuck
  // is link loss, which the accounting already recorded at send time.
  pump();
}

bool UdpTransport::transmit(const std::vector<std::uint8_t>& frame) {
  if (debug_eagain_sends_ > 0) {
    --debug_eagain_sends_;
    errno = EAGAIN;
    return false;
  }
  while (true) {
    const auto n = ::send(socket_.fd(), frame.data(), frame.size(), 0);
    if (n >= 0) {
      ++udp_stats_.datagrams_sent;
      return true;
    }
    if (errno == EINTR) continue;
    return false;
  }
}

bool UdpTransport::send_datagram(std::vector<std::uint8_t> frame) {
  // Queued datagrams must depart first to preserve frame order.
  if (!tx_backlog_.empty()) pump();
  if (tx_backlog_.empty() && transmit(frame)) {
    release_buffer(std::move(frame));
    return true;
  }
  const int error = errno;
  if (tx_backlog_.empty() && is_unreachable(error)) {
    // The network stack ate it — indistinguishable from channel loss, so
    // the frame counts as sent (the same contract as LossyChannel drops).
    ++udp_stats_.refused_sends;
    release_buffer(std::move(frame));
    return true;
  }
  if (!tx_backlog_.empty() || is_again(error)) {
    ++udp_stats_.deferred_sends;
    if (tx_backlog_.size() >= max_backlog_) {
      ++udp_stats_.backlog_dropped;
      release_buffer(std::move(tx_backlog_.front()));
      tx_backlog_.pop_front();
    }
    tx_backlog_.push_back(std::move(frame));
    return true;  // handed to the link; a later drop is link loss
  }
  // EMSGSIZE and friends: the backend cannot carry this datagram at all.
  release_buffer(std::move(frame));
  return false;
}

bool UdpTransport::pump() {
#ifdef __linux__
  // The sendmmsg fast path bypasses transmit(), so the EAGAIN test seam
  // routes through the portable per-datagram loop below instead.
  while (debug_eagain_sends_ == 0 && !tx_backlog_.empty()) {
    mmsghdr msgs[kBurst]{};
    iovec iovs[kBurst]{};
    const std::size_t want = std::min(tx_backlog_.size(), kBurst);
    for (std::size_t i = 0; i < want; ++i) {
      auto& frame = tx_backlog_[i];
      iovs[i].iov_base = frame.data();
      iovs[i].iov_len = frame.size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int sent = ::sendmmsg(socket_.fd(), msgs,
                                static_cast<unsigned>(want), 0);
    if (sent > 0) {
      udp_stats_.datagrams_sent += static_cast<std::size_t>(sent);
      for (int i = 0; i < sent; ++i) {
        release_buffer(std::move(tx_backlog_.front()));
        tx_backlog_.pop_front();
      }
      if (static_cast<std::size_t>(sent) == want) continue;
    }
    const int error = errno;
    if (sent <= 0 && is_unreachable(error)) {
      ++udp_stats_.refused_sends;
      release_buffer(std::move(tx_backlog_.front()));
      tx_backlog_.pop_front();
      continue;
    }
    break;  // EAGAIN or partial burst: the kernel is full, try later
  }
  if (debug_eagain_sends_ == 0) return tx_backlog_.empty();
#endif
  // Portable per-datagram loop (and the seam-armed path on Linux).
  while (!tx_backlog_.empty()) {
    if (transmit(tx_backlog_.front())) {
      release_buffer(std::move(tx_backlog_.front()));
      tx_backlog_.pop_front();
      continue;
    }
    if (is_unreachable(errno)) {
      ++udp_stats_.refused_sends;
      release_buffer(std::move(tx_backlog_.front()));
      tx_backlog_.pop_front();
      continue;
    }
    break;
  }
  return tx_backlog_.empty();
}

std::size_t UdpTransport::drain() {
  std::size_t arrived = 0;
#ifdef __linux__
  while (true) {
    // Stage a burst of pooled buffers, each one byte over the MTU so an
    // oversized datagram is detectable (and dropped) instead of silently
    // truncated into a malformed frame.
    std::vector<std::uint8_t> buffers[kBurst];
    mmsghdr msgs[kBurst]{};
    iovec iovs[kBurst]{};
    for (std::size_t i = 0; i < kBurst; ++i) {
      buffers[i] = acquire_buffer();
      buffers[i].resize(mtu() + 1);
      iovs[i].iov_base = buffers[i].data();
      iovs[i].iov_len = buffers[i].size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int got = ::recvmmsg(socket_.fd(), msgs,
                               static_cast<unsigned>(kBurst), 0, nullptr);
    const int error = errno;
    if (got > 0) {
      ++udp_stats_.recv_batches;
      for (int i = 0; i < got; ++i) {
        const std::size_t length = msgs[i].msg_len;
        if (length > mtu()) {
          ++udp_stats_.truncated_datagrams;
          release_buffer(std::move(buffers[i]));
          continue;
        }
        if (rx_loss_rate_ > 0.0 && rx_loss_rng_.next_bool(rx_loss_rate_)) {
          ++udp_stats_.injected_drops;
          release_buffer(std::move(buffers[i]));
          continue;
        }
        buffers[i].resize(length);
        admit_rx(std::move(buffers[i]));
        ++udp_stats_.datagrams_received;
        ++arrived;
      }
      for (std::size_t i = static_cast<std::size_t>(got); i < kBurst; ++i) {
        release_buffer(std::move(buffers[i]));
      }
      if (static_cast<std::size_t>(got) == kBurst) continue;
      return arrived;
    }
    for (auto& buffer : buffers) release_buffer(std::move(buffer));
    // ICMP unreachable surfaces here on connected sockets: consume it and
    // keep draining — real datagrams may be queued behind it.
    if (got < 0 && (is_unreachable(error) || error == EINTR)) continue;
    return arrived;
  }
#else
  while (true) {
    auto buffer = acquire_buffer();
    buffer.resize(mtu() + 1);
    const auto n = ::recv(socket_.fd(), buffer.data(), buffer.size(), 0);
    if (n < 0) {
      release_buffer(std::move(buffer));
      if (is_unreachable(errno) || errno == EINTR) continue;
      return arrived;
    }
    ++udp_stats_.recv_batches;
    if (static_cast<std::size_t>(n) > mtu()) {
      ++udp_stats_.truncated_datagrams;
      release_buffer(std::move(buffer));
      continue;
    }
    if (rx_loss_rate_ > 0.0 && rx_loss_rng_.next_bool(rx_loss_rate_)) {
      ++udp_stats_.injected_drops;
      release_buffer(std::move(buffer));
      continue;
    }
    buffer.resize(static_cast<std::size_t>(n));
    admit_rx(std::move(buffer));
    ++udp_stats_.datagrams_received;
    ++arrived;
  }
#endif
}

void UdpTransport::admit_rx(std::vector<std::uint8_t> frame) {
  RxEntry entry;
  if (rx_delay_us_ > 0 || rx_jitter_us_ > 0) {
    const std::uint64_t now = steady_now_us();
    std::uint64_t hold = rx_delay_us_;
    if (rx_jitter_us_ > 0) {
      hold += rx_delay_rng_.next_below(rx_jitter_us_ + 1);
    }
    // A FIFO delay line: release times never reorder, the head of the
    // queue is always the next deliverable datagram.
    entry.release_us = std::max(now + hold, rx_last_release_us_);
    rx_last_release_us_ = entry.release_us;
    ++udp_stats_.delayed_datagrams;
  }
  entry.frame = std::move(frame);
  rx_.push_back(std::move(entry));
}

std::optional<std::vector<std::uint8_t>> UdpTransport::next_datagram() {
  if (rx_.empty()) drain();
  if (rx_.empty()) return std::nullopt;
  if (rx_.front().release_us > 0 &&
      rx_.front().release_us > steady_now_us()) {
    return std::nullopt;  // shaped datagram still in flight
  }
  auto frame = std::move(rx_.front().frame);
  rx_.pop_front();
  return frame;
}

}  // namespace icd::wire

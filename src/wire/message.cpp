#include "wire/message.hpp"

#include <stdexcept>

#include "util/buffer.hpp"

namespace icd::wire {

namespace {

void write_payload(util::ByteWriter& writer, const Hello& hello) {
  writer.u32(hello.block_count);
  writer.u64(hello.session_seed);
  writer.varint(hello.working_set_size);
}

Hello read_hello(util::ByteReader& reader) {
  Hello hello;
  hello.block_count = reader.u32();
  hello.session_seed = reader.u64();
  hello.working_set_size = reader.varint();
  return hello;
}

void write_payload(util::ByteWriter& writer, const Request& request) {
  writer.varint(request.symbols_desired);
}

Request read_request(util::ByteReader& reader) {
  return Request{reader.varint()};
}

void write_payload(util::ByteWriter& writer,
                   const EncodedSymbolMessage& message) {
  writer.u64(message.symbol.id);
  writer.varint(message.symbol.payload.size());
  writer.raw(message.symbol.payload);
}

EncodedSymbolMessage read_encoded(util::ByteReader& reader) {
  EncodedSymbolMessage message;
  message.symbol.id = reader.u64();
  message.symbol.payload = reader.raw(reader.varint());
  return message;
}

void write_payload(util::ByteWriter& writer,
                   const RecodedSymbolMessage& message) {
  writer.varint(message.symbol.constituents.size());
  for (const std::uint64_t id : message.symbol.constituents) writer.u64(id);
  writer.varint(message.symbol.payload.size());
  writer.raw(message.symbol.payload);
}

RecodedSymbolMessage read_recoded(util::ByteReader& reader) {
  RecodedSymbolMessage message;
  const std::size_t degree = reader.varint();
  // Bound the reserve by what the payload can actually hold (8 bytes per
  // constituent): a corrupt degree must fail like any truncation, not
  // attempt a giant allocation first.
  if (degree > reader.remaining() / 8) {
    throw std::out_of_range("wire: recoded degree exceeds payload");
  }
  message.symbol.constituents.reserve(degree);
  for (std::size_t i = 0; i < degree; ++i) {
    message.symbol.constituents.push_back(reader.u64());
  }
  message.symbol.payload = reader.raw(reader.varint());
  return message;
}

void write_payload(util::ByteWriter& writer, const Fragment& fragment) {
  writer.u32(fragment.sequence);
  writer.u16(fragment.index);
  writer.u16(fragment.total);
  writer.varint(fragment.data.size());
  writer.raw(fragment.data);
}

Fragment read_fragment(util::ByteReader& reader) {
  Fragment fragment;
  fragment.sequence = reader.u32();
  fragment.index = reader.u16();
  fragment.total = reader.u16();
  fragment.data = reader.raw(reader.varint());
  return fragment;
}

void write_blob(util::ByteWriter& writer, const std::vector<std::uint8_t>& b) {
  writer.varint(b.size());
  writer.raw(b);
}

std::vector<std::uint8_t> read_blob(util::ByteReader& reader) {
  return reader.raw(reader.varint());
}

}  // namespace

MessageType message_type(const Message& message) {
  struct Visitor {
    MessageType operator()(const Hello&) { return MessageType::kHello; }
    MessageType operator()(const SketchMessage&) {
      return MessageType::kSketch;
    }
    MessageType operator()(const BloomSummaryMessage&) {
      return MessageType::kBloomSummary;
    }
    MessageType operator()(const ArtSummaryMessage&) {
      return MessageType::kArtSummary;
    }
    MessageType operator()(const Request&) { return MessageType::kRequest; }
    MessageType operator()(const EncodedSymbolMessage&) {
      return MessageType::kEncodedSymbol;
    }
    MessageType operator()(const RecodedSymbolMessage&) {
      return MessageType::kRecodedSymbol;
    }
    MessageType operator()(const Fragment&) { return MessageType::kFragment; }
  };
  return std::visit(Visitor{}, message);
}

std::vector<std::uint8_t> encode_frame(const Message& message) {
  util::ByteWriter payload;
  struct Visitor {
    util::ByteWriter& writer;
    void operator()(const Hello& m) { write_payload(writer, m); }
    void operator()(const SketchMessage& m) {
      write_blob(writer, m.sketch.serialize());
    }
    void operator()(const BloomSummaryMessage& m) {
      write_blob(writer, m.filter.serialize());
    }
    void operator()(const ArtSummaryMessage& m) {
      write_blob(writer, m.summary.serialize());
    }
    void operator()(const Request& m) { write_payload(writer, m); }
    void operator()(const EncodedSymbolMessage& m) {
      write_payload(writer, m);
    }
    void operator()(const RecodedSymbolMessage& m) {
      write_payload(writer, m);
    }
    void operator()(const Fragment& m) { write_payload(writer, m); }
  };
  std::visit(Visitor{payload}, message);

  util::ByteWriter frame;
  frame.u16(kMagic);
  frame.u8(kVersion);
  frame.u8(static_cast<std::uint8_t>(message_type(message)));
  frame.varint(payload.size());
  frame.raw(payload.bytes());
  return frame.take();
}

namespace {

Message decode_from_reader(util::ByteReader& reader) {
  if (reader.u16() != kMagic) {
    throw std::invalid_argument("wire: bad magic");
  }
  if (reader.u8() != kVersion) {
    throw std::invalid_argument("wire: unsupported version");
  }
  const auto type = static_cast<MessageType>(reader.u8());
  const std::size_t length = reader.varint();
  const auto payload_bytes = reader.raw(length);
  util::ByteReader payload(payload_bytes);

  Message message = [&]() -> Message {
    switch (type) {
      case MessageType::kHello:
        return read_hello(payload);
      case MessageType::kSketch:
        return SketchMessage{
            sketch::MinwiseSketch::deserialize(read_blob(payload))};
      case MessageType::kBloomSummary:
        return BloomSummaryMessage{
            filter::BloomFilter::deserialize(read_blob(payload))};
      case MessageType::kArtSummary:
        return ArtSummaryMessage{
            art::ArtSummary::deserialize(read_blob(payload))};
      case MessageType::kRequest:
        return read_request(payload);
      case MessageType::kEncodedSymbol:
        return read_encoded(payload);
      case MessageType::kRecodedSymbol:
        return read_recoded(payload);
      case MessageType::kFragment:
        return read_fragment(payload);
    }
    throw std::invalid_argument("wire: unknown message type");
  }();
  if (!payload.done()) {
    throw std::invalid_argument("wire: trailing bytes in payload");
  }
  return message;
}

}  // namespace

Message decode_frame(const std::vector<std::uint8_t>& frame) {
  try {
    util::ByteReader reader(frame);
    Message message = decode_from_reader(reader);
    if (!reader.done()) {
      throw std::invalid_argument("wire: trailing bytes after frame");
    }
    return message;
  } catch (const std::out_of_range&) {
    // Buffer underruns from any nested deserializer mean one thing at this
    // layer: a truncated or corrupt frame.
    throw std::invalid_argument("wire: truncated frame");
  }
}

std::vector<std::uint8_t> encode_stream(const std::vector<Message>& messages) {
  std::vector<std::uint8_t> bytes;
  for (const Message& message : messages) {
    const auto frame = encode_frame(message);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  return bytes;
}

std::vector<Message> decode_stream(const std::vector<std::uint8_t>& bytes) {
  try {
    std::vector<Message> messages;
    util::ByteReader reader(bytes);
    while (!reader.done()) {
      messages.push_back(decode_from_reader(reader));
    }
    return messages;
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("wire: truncated stream");
  }
}

}  // namespace icd::wire

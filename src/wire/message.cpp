#include "wire/message.hpp"

#include <stdexcept>

#include "util/buffer.hpp"

namespace icd::wire {

namespace {

void write_payload(util::ByteWriter& writer, const Hello& hello) {
  writer.u32(hello.block_count);
  writer.u64(hello.session_seed);
  writer.varint(hello.working_set_size);
}

Hello read_hello(util::ByteReader& reader) {
  Hello hello;
  hello.block_count = reader.u32();
  hello.session_seed = reader.u64();
  hello.working_set_size = reader.varint();
  return hello;
}

void write_payload(util::ByteWriter& writer, const Request& request) {
  writer.varint(request.symbols_desired);
}

Request read_request(util::ByteReader& reader) {
  return Request{reader.varint()};
}

void write_payload(util::ByteWriter& writer, const RequestUpdate& update) {
  writer.varint(update.symbols_remaining);
}

RequestUpdate read_request_update(util::ByteReader& reader) {
  return RequestUpdate{reader.varint()};
}

EncodedSymbolMessage read_encoded(util::ByteReader& reader) {
  EncodedSymbolMessage message;
  message.symbol.id = reader.u64();
  message.symbol.payload = reader.raw(reader.varint());
  return message;
}

RecodedSymbolMessage read_recoded(util::ByteReader& reader) {
  RecodedSymbolMessage message;
  const std::size_t degree = reader.varint();
  // Bound the reserve by what the payload can actually hold (8 bytes per
  // constituent): a corrupt degree must fail like any truncation, not
  // attempt a giant allocation first.
  if (degree > reader.remaining() / 8) {
    throw std::out_of_range("wire: recoded degree exceeds payload");
  }
  message.symbol.constituents.reserve(degree);
  for (std::size_t i = 0; i < degree; ++i) {
    message.symbol.constituents.push_back(reader.u64());
  }
  message.symbol.payload = reader.raw(reader.varint());
  return message;
}

void write_payload(util::ByteWriter& writer, const Fragment& fragment) {
  writer.u32(fragment.sequence);
  writer.u16(fragment.index);
  writer.u16(fragment.total);
  writer.varint(fragment.data.size());
  writer.raw(fragment.data);
}

Fragment read_fragment(util::ByteReader& reader) {
  Fragment fragment;
  fragment.sequence = reader.u32();
  fragment.index = reader.u16();
  fragment.total = reader.u16();
  fragment.data = reader.raw(reader.varint());
  return fragment;
}

std::vector<std::uint8_t> read_blob(util::ByteReader& reader) {
  return reader.raw(reader.varint());
}

}  // namespace

MessageType message_type(const Message& message) {
  struct Visitor {
    MessageType operator()(const Hello&) { return MessageType::kHello; }
    MessageType operator()(const SketchMessage&) {
      return MessageType::kSketch;
    }
    MessageType operator()(const BloomSummaryMessage&) {
      return MessageType::kBloomSummary;
    }
    MessageType operator()(const ArtSummaryMessage&) {
      return MessageType::kArtSummary;
    }
    MessageType operator()(const Request&) { return MessageType::kRequest; }
    MessageType operator()(const EncodedSymbolMessage&) {
      return MessageType::kEncodedSymbol;
    }
    MessageType operator()(const RecodedSymbolMessage&) {
      return MessageType::kRecodedSymbol;
    }
    MessageType operator()(const Fragment&) { return MessageType::kFragment; }
    MessageType operator()(const RequestUpdate&) {
      return MessageType::kRequestUpdate;
    }
  };
  return std::visit(Visitor{}, message);
}

namespace {

void write_frame_header(util::ByteWriter& out, MessageType type,
                        std::size_t payload_size) {
  out.u16(kMagic);
  out.u8(kVersion);
  out.u8(static_cast<std::uint8_t>(type));
  out.varint(payload_size);
}

}  // namespace

void encode_frame_into(util::ByteWriter& out, const Message& message) {
  util::ByteWriter payload;
  encode_frame_into(out, message, payload);
}

void encode_frame_into(util::ByteWriter& out, const Message& message,
                       util::ByteWriter& payload_scratch) {
  // The symbol types have computable payload sizes and serialize straight
  // into `out`; everything else (control plane) stages its payload in the
  // scratch writer because the length prefix precedes bytes whose size only
  // serialization reveals. The summaries serialize_into the scratch
  // directly (size-prefixed like any blob), so nothing here allocates
  // beyond the two writers' storage.
  if (const auto* encoded = std::get_if<EncodedSymbolMessage>(&message)) {
    encode_frame_into(out, codec::EncodedSymbolView(encoded->symbol));
    return;
  }
  if (const auto* recoded = std::get_if<RecodedSymbolMessage>(&message)) {
    encode_frame_into(out, codec::RecodedSymbolView(recoded->symbol));
    return;
  }

  util::ByteWriter payload(payload_scratch.take());
  struct Visitor {
    util::ByteWriter& writer;
    void operator()(const Hello& m) { write_payload(writer, m); }
    void operator()(const SketchMessage& m) {
      writer.varint(m.sketch.serialized_size());
      m.sketch.serialize_into(writer);
    }
    void operator()(const BloomSummaryMessage& m) {
      writer.varint(m.filter.serialized_size());
      m.filter.serialize_into(writer);
    }
    void operator()(const ArtSummaryMessage& m) {
      writer.varint(m.summary.serialized_size());
      m.summary.serialize_into(writer);
    }
    void operator()(const Request& m) { write_payload(writer, m); }
    void operator()(const EncodedSymbolMessage&) {}  // handled above
    void operator()(const RecodedSymbolMessage&) {}  // handled above
    void operator()(const Fragment& m) { write_payload(writer, m); }
    void operator()(const RequestUpdate& m) { write_payload(writer, m); }
  };
  std::visit(Visitor{payload}, message);

  write_frame_header(out, message_type(message), payload.size());
  out.raw(payload.bytes());
  payload_scratch = util::ByteWriter(payload.take());
}

void encode_frame_into(util::ByteWriter& out,
                       const codec::EncodedSymbolView& symbol) {
  const std::size_t payload_size =
      8 + util::varint_size(symbol.payload.size()) + symbol.payload.size();
  write_frame_header(out, MessageType::kEncodedSymbol, payload_size);
  out.u64(symbol.id);
  out.varint(symbol.payload.size());
  out.raw(symbol.payload);
}

void encode_frame_into(util::ByteWriter& out,
                       const codec::RecodedSymbolView& symbol) {
  const std::size_t payload_size =
      util::varint_size(symbol.constituents.size()) +
      8 * symbol.constituents.size() +
      util::varint_size(symbol.payload.size()) + symbol.payload.size();
  write_frame_header(out, MessageType::kRecodedSymbol, payload_size);
  out.varint(symbol.constituents.size());
  for (const std::uint64_t id : symbol.constituents) out.u64(id);
  out.varint(symbol.payload.size());
  out.raw(symbol.payload);
}

std::vector<std::uint8_t> encode_frame(const Message& message) {
  util::ByteWriter frame;
  encode_frame_into(frame, message);
  return frame.take();
}

namespace {

Message decode_from_reader(util::ByteReader& reader) {
  if (reader.u16() != kMagic) {
    throw std::invalid_argument("wire: bad magic");
  }
  if (reader.u8() != kVersion) {
    throw std::invalid_argument("wire: unsupported version");
  }
  const auto type = static_cast<MessageType>(reader.u8());
  const std::size_t length = reader.varint();
  const auto payload_bytes = reader.raw(length);
  util::ByteReader payload(payload_bytes);

  Message message = [&]() -> Message {
    switch (type) {
      case MessageType::kHello:
        return read_hello(payload);
      case MessageType::kSketch:
        return SketchMessage{
            sketch::MinwiseSketch::deserialize(read_blob(payload))};
      case MessageType::kBloomSummary:
        return BloomSummaryMessage{
            filter::BloomFilter::deserialize(read_blob(payload))};
      case MessageType::kArtSummary:
        return ArtSummaryMessage{
            art::ArtSummary::deserialize(read_blob(payload))};
      case MessageType::kRequest:
        return read_request(payload);
      case MessageType::kEncodedSymbol:
        return read_encoded(payload);
      case MessageType::kRecodedSymbol:
        return read_recoded(payload);
      case MessageType::kFragment:
        return read_fragment(payload);
      case MessageType::kRequestUpdate:
        return read_request_update(payload);
    }
    throw std::invalid_argument("wire: unknown message type");
  }();
  if (!payload.done()) {
    throw std::invalid_argument("wire: trailing bytes in payload");
  }
  return message;
}

}  // namespace

std::size_t frame_size(std::span<const std::uint8_t> bytes) {
  try {
    util::ByteReader reader(bytes);
    if (reader.u16() != kMagic) {
      throw std::invalid_argument("wire: bad magic");
    }
    if (reader.u8() != kVersion) {
      throw std::invalid_argument("wire: unsupported version");
    }
    reader.u8();  // type; validated when the frame is decoded
    const std::uint64_t length = reader.varint();
    if (length > reader.remaining()) {
      throw std::invalid_argument("wire: truncated frame");
    }
    return bytes.size() - reader.remaining() + static_cast<std::size_t>(length);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("wire: truncated frame");
  }
}

Message decode_frame(std::span<const std::uint8_t> frame) {
  try {
    util::ByteReader reader(frame);
    Message message = decode_from_reader(reader);
    if (!reader.done()) {
      throw std::invalid_argument("wire: trailing bytes after frame");
    }
    return message;
  } catch (const std::out_of_range&) {
    // Buffer underruns from any nested deserializer mean one thing at this
    // layer: a truncated or corrupt frame.
    throw std::invalid_argument("wire: truncated frame");
  }
}

std::optional<SymbolFrameView> decode_symbol_frame(
    std::span<const std::uint8_t> frame,
    std::vector<std::uint64_t>& constituent_scratch) {
  try {
    util::ByteReader reader(frame);
    if (reader.u16() != kMagic) {
      throw std::invalid_argument("wire: bad magic");
    }
    if (reader.u8() != kVersion) {
      throw std::invalid_argument("wire: unsupported version");
    }
    const auto type = static_cast<MessageType>(reader.u8());
    if (type != MessageType::kEncodedSymbol &&
        type != MessageType::kRecodedSymbol) {
      return std::nullopt;  // control frame: caller uses decode_frame
    }
    const std::size_t length = reader.varint();
    util::ByteReader payload(reader.view(length));
    if (!reader.done()) {
      throw std::invalid_argument("wire: trailing bytes after frame");
    }

    SymbolFrameView view;
    if (type == MessageType::kEncodedSymbol) {
      const std::uint64_t id = payload.u64();
      view.encoded.emplace(id, payload.view(payload.varint()));
    } else {
      const std::size_t degree = payload.varint();
      // Same corrupt-degree bound as read_recoded: reject before reserving.
      if (degree > payload.remaining() / 8) {
        throw std::invalid_argument("wire: recoded degree exceeds payload");
      }
      constituent_scratch.clear();
      constituent_scratch.reserve(degree);
      for (std::size_t i = 0; i < degree; ++i) {
        constituent_scratch.push_back(payload.u64());
      }
      view.recoded.emplace(constituent_scratch,
                           payload.view(payload.varint()));
    }
    if (!payload.done()) {
      throw std::invalid_argument("wire: trailing bytes in payload");
    }
    return view;
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("wire: truncated frame");
  }
}

void encode_stream_into(util::ByteWriter& out,
                        const std::vector<Message>& messages) {
  for (const Message& message : messages) encode_frame_into(out, message);
}

std::vector<std::uint8_t> encode_stream(const std::vector<Message>& messages) {
  util::ByteWriter bytes;
  encode_stream_into(bytes, messages);
  return bytes.take();
}

std::vector<Message> decode_stream(std::span<const std::uint8_t> bytes) {
  try {
    std::vector<Message> messages;
    util::ByteReader reader(bytes);
    while (!reader.done()) {
      messages.push_back(decode_from_reader(reader));
    }
    return messages;
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("wire: truncated stream");
  }
}

}  // namespace icd::wire

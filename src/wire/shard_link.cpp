#include "wire/shard_link.hpp"

#include "util/hash.hpp"

namespace icd::wire {

namespace {

ChannelConfig decorrelated(ChannelConfig config) {
  config.seed = util::mix64(config.seed.value_or(kDefaultChannelSeed) ^
                            0x9e3779b97f4a7c15ULL);
  return config;
}

}  // namespace

ShardLink::ShardLink(ChannelConfig both_ways)
    : ShardLink(both_ways, decorrelated(both_ways)) {}

ShardLink::ShardLink(ChannelConfig a_to_b, ChannelConfig b_to_a)
    : a_to_b_(kRingFrames), b_to_a_(kRingFrames),
      a_(a_to_b, a_to_b_, b_to_a_), b_(b_to_a, b_to_a_, a_to_b_) {}

void ShardLink::flush() {
  a_.flush_held();
  b_.flush_held();
}

ShardLink::End::End(ChannelConfig config, Direction& out, Direction& in)
    : Transport(config.mtu, /*pool=*/nullptr), out_(out), in_(in),
      config_(config),
      rng_(config.seed.value_or(kDefaultChannelSeed)), shaper_(config) {
  if (config_.gilbert_elliott()) ge_.emplace(config_);
}

void ShardLink::End::enqueue(std::vector<std::uint8_t> frame) {
  if (!out_.frames_ring.try_push(frame)) {
    ++overflow_drops_;
    release_buffer(std::move(frame));
  }
}

bool ShardLink::End::send_datagram(std::vector<std::uint8_t> frame) {
  if (frame.size() > config_.mtu) return false;
  // Blackout (fault injection) eats the frame before any RNG draw,
  // exactly as LossyChannel does, so both engines drop the same frames.
  if (blackout_) {
    release_buffer(std::move(frame));
    return true;
  }
  if (config_.timed()) {
    // Timed shaping mirrors LossyChannel's virtual clock — including its
    // RNG draw pattern (an unconditional loss draw per frame), so a
    // download shaped by either link type consumes identical draw
    // sequences: pace the departure (lost frames consumed link capacity
    // too), schedule the arrival (reorder draws swap adjacent arrivals),
    // and hold the frame in the sender-local delay line until its tick —
    // advance_to()/commit_through() is what commits it to the ring.
    const std::size_t size = frame.size();
    const std::uint64_t depart = shaper_.pace_departure(size);
    if (ge_ ? ge_->drop(rng_) : rng_.next_bool(config_.loss_rate)) {
      release_buffer(std::move(frame));
      return true;
    }
    const bool reorder = config_.reorder_rate > 0.0 &&
                         rng_.next_bool(config_.reorder_rate);
    delayed_.insert(
        TimedFrame{shaper_.schedule_arrival(depart, size, rng_), next_seq_++,
                   std::move(frame)},
        reorder);
    release_arrived();
    return true;
  }
  // Loss and reordering are drawn sender-side (single-threaded per
  // direction); a dropped frame still counted as sent by the base class,
  // matching LossyChannel's "handed to the link" semantics.
  if (ge_ ? ge_->drop(rng_) : rng_.next_bool(config_.loss_rate)) {
    release_buffer(std::move(frame));
    return true;
  }
  // One-hop residency, mirroring LossyChannel's event clock: the new
  // frame pushes its predecessor out of flight and onto the ring (the two
  // may swap — adjacent reordering); the frame itself stays in flight
  // until displaced or until the owner's next advance completes the hop.
  if (held_) {
    std::vector<std::uint8_t> predecessor = std::move(*held_);
    held_ = std::move(frame);
    if (config_.reorder_rate > 0.0 && rng_.next_bool(config_.reorder_rate)) {
      std::swap(predecessor, *held_);
    }
    enqueue(std::move(predecessor));
  } else {
    held_ = std::move(frame);
  }
  held_tick_ = shaper_.now();
  return true;
}

void ShardLink::End::flush_held() {
  if (held_) {
    std::vector<std::uint8_t> delayed = std::move(*held_);
    held_.reset();
    enqueue(std::move(delayed));
  }
  // Teardown: the delay line empties regardless of arrival ticks (nothing
  // will advance the clock again).
  while (auto frame = delayed_.pop_any()) {
    enqueue(std::move(*frame));
  }
}

void ShardLink::End::release_arrived() {
  while (auto frame = delayed_.pop_due(shaper_.now())) {
    enqueue(std::move(*frame));
  }
}

void ShardLink::End::advance_to(std::uint64_t t) {
  shaper_.advance_to(t);
  if (held_ && t > held_tick_) {
    // The hop completes: LossyChannel's "an empty receive advances the
    // event clock", decided producer-side from the tick alone (the
    // consuming phase drains to empty every tick it runs).
    std::vector<std::uint8_t> frame = std::move(*held_);
    held_.reset();
    enqueue(std::move(frame));
  }
  release_arrived();
}

void ShardLink::End::commit_through(std::uint64_t t) {
  // Push-only look-ahead (the clock stays put): frames whose arrival is
  // due by t cross the ring now so the peer end can drain them in its
  // next phase — see ShardLink::commit_b_through.
  while (auto frame = delayed_.pop_due(t)) {
    enqueue(std::move(*frame));
  }
}

std::optional<std::vector<std::uint8_t>> ShardLink::End::next_datagram() {
  return in_.frames_ring.try_pop();
}

std::vector<std::uint8_t> ShardLink::End::acquire_buffer() {
  // Prefer a buffer the peer shard recycled from our earlier frames; the
  // shard-local pool is the cold-start (and overflow) fallback.
  if (auto buffer = out_.recycle.try_pop()) {
    buffer->clear();
    return std::move(*buffer);
  }
  return Transport::acquire_buffer();
}

void ShardLink::End::release_buffer(std::vector<std::uint8_t> buffer) {
  // Spent buffers travel back toward the shard that allocated the frames
  // we consume; a full recycle ring falls back to the local pool.
  if (in_.recycle.try_push(buffer)) return;
  Transport::release_buffer(std::move(buffer));
}

}  // namespace icd::wire

#include "wire/transport.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/hash.hpp"

namespace icd::wire {

bool Transport::send(const Message& message) {
  // Symbol messages take the view fast path (byte-identical frames, same
  // accounting) — it needs no payload scratch.
  if (const auto* encoded = std::get_if<EncodedSymbolMessage>(&message)) {
    return send(codec::EncodedSymbolView(encoded->symbol));
  }
  if (const auto* recoded = std::get_if<RecodedSymbolMessage>(&message)) {
    return send(codec::RecodedSymbolView(recoded->symbol));
  }
  util::ByteWriter writer(acquire_buffer());
  util::ByteWriter payload_scratch(acquire_buffer());
  encode_frame_into(writer, message, payload_scratch);
  release_buffer(payload_scratch.take());
  auto frame = writer.take();
  const bool control = !is_data_type(message_type(message));
  if (frame.size() > mtu_) return send_oversized(std::move(frame), control);
  if (control && batch_budget_ > 0 &&
      frame.size() <= std::min(batch_budget_, mtu_)) {
    append_to_train(std::move(frame));
    ++stats_.messages_sent;
    return true;
  }
  // Unbatched frames overtake nothing: ship the pending train first.
  flush_batch();
  if (!send_frame(std::move(frame), control)) return false;
  ++stats_.messages_sent;
  return true;
}

bool Transport::send(const codec::EncodedSymbolView& symbol) {
  flush_batch();
  util::ByteWriter writer(acquire_buffer());
  encode_frame_into(writer, symbol);
  auto frame = writer.take();
  if (frame.size() > mtu_) return send_oversized(std::move(frame), false);
  if (!send_frame(std::move(frame), false)) return false;
  ++stats_.messages_sent;
  return true;
}

bool Transport::send(const codec::RecodedSymbolView& symbol) {
  flush_batch();
  util::ByteWriter writer(acquire_buffer());
  encode_frame_into(writer, symbol);
  auto frame = writer.take();
  if (frame.size() > mtu_) return send_oversized(std::move(frame), false);
  if (!send_frame(std::move(frame), false)) return false;
  ++stats_.messages_sent;
  return true;
}

void Transport::append_to_train(std::vector<std::uint8_t> frame) {
  const std::size_t limit = std::min(batch_budget_, mtu_);
  if (train_live_ && train_.size() + frame.size() > limit) flush_batch();
  if (!train_live_) {
    train_ = acquire_buffer();
    train_.clear();
    train_live_ = true;
  }
  train_.insert(train_.end(), frame.begin(), frame.end());
  release_buffer(std::move(frame));
}

bool Transport::flush_batch() {
  if (!train_live_) return true;
  train_live_ = false;
  std::vector<std::uint8_t> train = std::move(train_);
  train_ = {};
  return send_frame(std::move(train), /*control=*/true);
}

bool Transport::send_oversized(std::vector<std::uint8_t> frame, bool control) {
  // Fragments are MTU-sized already, so they travel unbatched — but the
  // pending train must depart first to preserve frame order.
  flush_batch();
  // Packetize: slice the oversized frame into Fragment messages, each of
  // which fits the MTU with room for its own header.
  if (mtu_ <= kFragmentOverhead) {
    ++stats_.frames_refused;
    release_buffer(std::move(frame));
    return false;
  }
  const std::size_t chunk = mtu_ - kFragmentOverhead;
  const std::size_t count = (frame.size() + chunk - 1) / chunk;
  if (count > std::numeric_limits<std::uint16_t>::max()) {
    ++stats_.frames_refused;
    release_buffer(std::move(frame));
    return false;
  }
  const std::uint32_t sequence = next_sequence_++;
  for (std::size_t i = 0; i < count; ++i) {
    Fragment fragment;
    fragment.sequence = sequence;
    fragment.index = static_cast<std::uint16_t>(i);
    fragment.total = static_cast<std::uint16_t>(count);
    const std::size_t begin = i * chunk;
    const std::size_t end = std::min(frame.size(), begin + chunk);
    fragment.data.assign(frame.begin() + static_cast<std::ptrdiff_t>(begin),
                         frame.begin() + static_cast<std::ptrdiff_t>(end));
    util::ByteWriter writer(acquire_buffer());
    encode_frame_into(writer, Message{std::move(fragment)});
    if (!send_frame(writer.take(), control)) {
      release_buffer(std::move(frame));
      return false;
    }
  }
  release_buffer(std::move(frame));
  ++stats_.messages_sent;
  return true;
}

bool Transport::send_frame(std::vector<std::uint8_t> frame, bool control) {
  const std::size_t size = frame.size();
  if (observer_) observer_(frame, control);
  if (!send_datagram(std::move(frame))) {
    ++stats_.frames_refused;
    return false;
  }
  ++stats_.frames_sent;
  stats_.bytes_sent += size;
  if (control) {
    ++stats_.control_frames_sent;
    stats_.control_bytes_sent += size;
  } else {
    ++stats_.data_frames_sent;
    stats_.data_bytes_sent += size;
  }
  return true;
}

bool Transport::take_datagram() {
  // Views handed out by the previous receive die here: the frame they
  // borrow goes back to the pool for the sender to recycle.
  if (rx_frame_live_) {
    release_buffer(std::move(rx_frame_));
    rx_frame_ = {};
    rx_frame_live_ = false;
  }
  auto datagram = next_datagram();
  if (!datagram) return false;
  rx_frame_ = std::move(*datagram);
  rx_frame_live_ = true;
  rx_offset_ = 0;
  ++stats_.frames_received;
  stats_.bytes_received += rx_frame_.size();
  return true;
}

std::optional<Transport::ReceivedFrame> Transport::receive_frame() {
  while (true) {
    // A datagram may be a batched train of several frames: slice the next
    // frame off it, taking a fresh datagram once this one is consumed.
    if (!rx_frame_live_ || rx_offset_ >= rx_frame_.size()) {
      if (!take_datagram()) return std::nullopt;
    }
    const std::span<const std::uint8_t> rest(
        rx_frame_.data() + rx_offset_, rx_frame_.size() - rx_offset_);
    std::span<const std::uint8_t> frame;
    try {
      frame = rest.first(frame_size(rest));
    } catch (const std::invalid_argument&) {
      // Can't even delimit the next frame: drop the rest of the datagram.
      ++stats_.malformed_frames;
      rx_offset_ = rx_frame_.size();
      continue;
    }
    rx_offset_ += frame.size();
    // Symbol frames (the overwhelming majority in transfer) decode in
    // place; only control frames take the owning decode_frame path.
    try {
      if (auto symbol = decode_symbol_frame(frame, rx_constituents_)) {
        ++stats_.messages_received;
        if (symbol->encoded) return ReceivedFrame{*symbol->encoded};
        return ReceivedFrame{*symbol->recoded};
      }
    } catch (const std::invalid_argument&) {
      ++stats_.malformed_frames;
      continue;
    }
    Message message;
    try {
      message = decode_frame(frame);
    } catch (const std::invalid_argument&) {
      ++stats_.malformed_frames;
      continue;
    }
    if (auto* fragment = std::get_if<Fragment>(&message)) {
      if (auto whole = absorb_fragment(std::move(*fragment))) {
        ++stats_.messages_received;
        return ReceivedFrame{std::move(*whole)};
      }
      continue;
    }
    ++stats_.messages_received;
    return ReceivedFrame{std::move(message)};
  }
}

std::optional<Message> Transport::receive() {
  auto frame = receive_frame();
  if (!frame) return std::nullopt;
  if (auto* message = std::get_if<Message>(&*frame)) {
    return std::move(*message);
  }
  if (auto* encoded = std::get_if<codec::EncodedSymbolView>(&*frame)) {
    return EncodedSymbolMessage{codec::EncodedSymbol{
        encoded->id,
        {encoded->payload.begin(), encoded->payload.end()}}};
  }
  const auto& recoded = std::get<codec::RecodedSymbolView>(*frame);
  return RecodedSymbolMessage{codec::RecodedSymbol{
      {recoded.constituents.begin(), recoded.constituents.end()},
      {recoded.payload.begin(), recoded.payload.end()}}};
}

std::optional<Message> Transport::absorb_fragment(Fragment fragment) {
  if (fragment.total == 0 || fragment.index >= fragment.total) {
    ++stats_.malformed_frames;
    return std::nullopt;
  }
  // Bound reassembly memory before inserting a new sequence: evict the
  // oldest partial (its siblings were lost or hopelessly delayed; the
  // endpoints' retry path re-sends). Evicting first guarantees the entry
  // we are about to use is never the one destroyed.
  if (partials_.size() >= kMaxPartialReassemblies &&
      !partials_.contains(fragment.sequence)) {
    auto oldest = partials_.begin();
    stats_.stale_fragments += oldest->second.received;
    partials_.erase(oldest);
  }
  auto [it, inserted] = partials_.try_emplace(fragment.sequence);
  Partial& partial = it->second;
  if (inserted) {
    partial.parts.resize(fragment.total);
  } else if (partial.parts.size() != fragment.total) {
    ++stats_.malformed_frames;
    return std::nullopt;
  }
  auto& slot = partial.parts[fragment.index];
  if (!slot.empty()) return std::nullopt;  // duplicate
  slot = std::move(fragment.data);
  if (slot.empty()) {
    // An empty slice can never complete; treat as malformed.
    ++stats_.malformed_frames;
    partials_.erase(it);
    return std::nullopt;
  }
  if (++partial.received < partial.parts.size()) return std::nullopt;

  std::vector<std::uint8_t> whole;
  for (const auto& part : partial.parts) {
    whole.insert(whole.end(), part.begin(), part.end());
  }
  partials_.erase(it);
  try {
    return decode_frame(whole);
  } catch (const std::invalid_argument&) {
    ++stats_.malformed_frames;
    return std::nullopt;
  }
}

Pipe::Pipe(std::size_t mtu)
    : pool_(std::make_shared<BufferPool>()),
      a_(mtu, pool_, a_to_b_, b_to_a_), b_(mtu, pool_, b_to_a_, a_to_b_) {}

bool Pipe::End::send_datagram(std::vector<std::uint8_t> frame) {
  tx_.push_back(std::move(frame));
  return true;
}

std::optional<std::vector<std::uint8_t>> Pipe::End::next_datagram() {
  if (rx_.empty()) return std::nullopt;
  return rx_.pop_front();
}

ChannelTransport::ChannelTransport(LossyChannel& tx, LossyChannel& rx,
                                   std::shared_ptr<BufferPool> pool)
    : Transport(tx.config().mtu, std::move(pool)), tx_(tx), rx_(rx) {}

bool ChannelTransport::send_datagram(std::vector<std::uint8_t> frame) {
  return tx_.send(std::move(frame));
}

std::optional<std::vector<std::uint8_t>> ChannelTransport::next_datagram() {
  // An empty receive is the channel's clock: the frame in flight becomes
  // deliverable on the *next* drain (one-hop minimum queue residency).
  auto frame = rx_.receive();
  if (frame.empty()) return std::nullopt;
  return frame;
}

namespace {

ChannelConfig decorrelated(ChannelConfig config) {
  config.seed = util::mix64(config.seed.value_or(kDefaultChannelSeed) ^
                            0x9e3779b97f4a7c15ULL);
  return config;
}

}  // namespace

ChannelLink::ChannelLink(ChannelConfig both_ways)
    : ChannelLink(both_ways, decorrelated(both_ways)) {}

ChannelLink::ChannelLink(ChannelConfig a_to_b, ChannelConfig b_to_a)
    : a_to_b_(a_to_b), b_to_a_(b_to_a), pool_(std::make_shared<BufferPool>()),
      a_(a_to_b_, b_to_a_, pool_), b_(b_to_a_, a_to_b_, pool_) {}

}  // namespace icd::wire

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "util/random.hpp"
#include "util/spsc.hpp"
#include "wire/transport.hpp"

/// A bidirectional link whose two ends live on different shard threads.
///
/// Same role as ChannelLink, but thread-crossing: each direction is a pair
/// of SPSC rings — a frame ring carrying datagrams toward the peer shard,
/// and a recycle ring carrying spent buffers back so the steady-state send
/// path stays allocation-free even though the two ends own separate
/// BufferPools (pools are shard-local; see DESIGN.md, "Threading model").
/// The concurrency contract is exactly SPSC per ring: end A's owning thread
/// is the only producer of the A->B frame ring and the only consumer of the
/// B->A one; a coordinator may stand in for either thread while the workers
/// are parked at a barrier (session refresh, teardown).
///
/// Channel shaping is applied on the sending side, single-threaded per
/// direction: Bernoulli loss and an adjacent-swap reorder (one frame held
/// back, with probability reorder_rate it departs behind its successor)
/// from the direction's own ChannelConfig-seeded RNG. LossyChannel's
/// one-hop residency clock is emulated producer-side: the most recently
/// sent frame stays held until the next send displaces it or the owning
/// end's next advance_*_to() completes the hop — which, through the
/// engine's two-phase tick pattern, reproduces the exact per-tick
/// delivery schedule a local ChannelLink gives the same download. That
/// schedule equivalence is what lets the sharded engine treat peer
/// placement (and hence the cost rebalance) as a planning concern: with
/// deterministic shaping (no loss/jitter/reorder draws) a download's
/// trajectory is bit-for-bit identical over either link type. Stochastic
/// shaping stays deterministic per placement but draws its RNG streams in
/// link-local order, so moving a peer re-rolls them — exactly like
/// changing the edge seed. A full frame ring drops the frame (counted;
/// the protocol absorbs it as loss).
///
/// Timed configs (ChannelConfig delay/jitter/rate) are shaped sender-side
/// too: frames are paced through a wire::LinkShaper token bucket, held in
/// a sender-local delay line until their arrival tick, and pushed onto the
/// frame ring by the owning shard's advance_*_to() call — so the two-phase
/// barrier remains the commit point for every cross-shard event, and the
/// consuming shard only ever sees frames that have "arrived". In timed
/// mode reorder_rate draws swap adjacent arrival times in the delay line
/// (exactly LossyChannel's timed semantics; jitter reorders organically
/// on top) instead of using the event-clock holdback.
namespace icd::wire {

class ShardLink {
 public:
  /// Same shaping in both directions; the reverse direction gets a
  /// decorrelated seed (mirroring ChannelLink).
  explicit ShardLink(ChannelConfig both_ways);
  ShardLink(ChannelConfig a_to_b, ChannelConfig b_to_a);

  /// The ends hold references into this object's rings: copying or moving
  /// would silently alias (then dangle) them.
  ShardLink(const ShardLink&) = delete;
  ShardLink& operator=(const ShardLink&) = delete;

  Transport& a() { return a_; }
  Transport& b() { return b_; }

  /// Makes both directions' held-back (reorder) and delay-line frames
  /// deliverable — the teardown analogue of ChannelLink::flush(). Caller
  /// must hold both sides' SPSC roles (i.e. run while the workers are
  /// parked).
  void flush();

  // --- Virtual clock (timed configs; no-ops otherwise) --------------------

  /// Either direction carries simulated-time shaping.
  bool timed() const { return a_.timed() || b_.timed(); }

  /// Advances one end's virtual clock, pushing frames whose arrival tick
  /// has passed onto the ring. Each call belongs to that end's owning
  /// shard thread (it produces onto the end's outgoing frame ring).
  void advance_a_to(std::uint64_t t) { a_.advance_to(t); }
  void advance_b_to(std::uint64_t t) { b_.advance_to(t); }

  /// Send-credit probe for the serving (a -> b) direction.
  std::uint64_t a_send_ready_at(std::size_t bytes) const {
    return a_.send_ready_at(bytes);
  }

  /// Timed reverse-direction commit: pushes b's delay-line frames with
  /// arrival <= t onto the ring *without* advancing b's clock. The b end
  /// acts in the receive phase, after the a end's drain — so the a-side
  /// owner calls this at the top of its send phase with t = now, making
  /// a frame arriving at tick T drainable in phase T, exactly when a
  /// local ChannelLink's advance_to(T) would surface it. Keying off the
  /// draining tick (not a look-ahead from the previous one) keeps jumped
  /// runs identical to lockstep. Phase-safe despite the a-side call: the
  /// b owner only produces onto this ring in the receive phase, behind
  /// the barrier. No-op for untimed directions (their residency holdback
  /// releases through advance_b_to instead).
  void commit_b_through(std::uint64_t t) { b_.commit_through(t); }

  /// The earliest virtual time at which either direction can deliver
  /// anything — the event-loop planning surface, mirroring
  /// ChannelLink::next_event_time(). Frames already committed to a ring
  /// ("arrived", awaiting the consumer's drain) report 0 (due
  /// immediately); otherwise the earliest delay-line arrival in either
  /// direction; nullopt = provably drained. Coordinator-only, like every
  /// between-ticks inspection: the workers must be parked at a barrier.
  std::optional<std::uint64_t> next_event_time() const {
    if (!a_to_b_.frames_ring.empty() || !b_to_a_.frames_ring.empty()) {
      return 0;
    }
    const auto forward = a_.delayed_next_arrival();
    const auto reverse = b_.delayed_next_arrival();
    if (!forward) return reverse;
    if (!reverse) return forward;
    return std::min(*forward, *reverse);
  }

  /// Frames dropped because a frame ring was full (distinct from the
  /// configured Bernoulli loss).
  std::size_t overflow_drops() const {
    return a_.overflow_drops() + b_.overflow_drops();
  }

  /// Link blackout (fault injection): while set, both directions eat every
  /// send before any RNG draw — mirroring ChannelLink::set_blackout so the
  /// sharded engine drops the identical frame set. Coordinator-only, like
  /// every cross-shard configuration call (workers parked at a barrier).
  void set_blackout(bool active) {
    a_.set_blackout(active);
    b_.set_blackout(active);
  }

  /// Heap bytes the whole edge pins: both ends (transport scratch, private
  /// per-end pool, delay line, holdback) plus the four fixed SPSC slot
  /// arrays. Frame payloads momentarily inside a ring are in transit
  /// between shards and cannot be inspected from one thread; at rest the
  /// rings are empty, so the slot arrays are the steady-state cost.
  /// Coordinator-only, like every between-ticks inspection.
  std::size_t memory_bytes() const {
    const std::size_t ring_bytes =
        (a_to_b_.frames_ring.capacity() + a_to_b_.recycle.capacity() +
         b_to_a_.frames_ring.capacity() + b_to_a_.recycle.capacity()) *
        sizeof(std::vector<std::uint8_t>);
    return a_.memory_bytes() + b_.memory_bytes() + ring_bytes;
  }

  /// Frames per direction a burst can queue before overflow; handshake
  /// fragment trains (multi-KB ART summaries) set the floor.
  static constexpr std::size_t kRingFrames = 1024;

 private:
  using Ring = util::SpscRing<std::vector<std::uint8_t>>;

  struct Direction {
    explicit Direction(std::size_t frames)
        : frames_ring(frames), recycle(frames) {}
    Ring frames_ring;
    Ring recycle;
  };

  class End : public Transport {
   public:
    End(ChannelConfig config, Direction& out, Direction& in);

    std::size_t overflow_drops() const { return overflow_drops_; }
    void flush_held();
    void set_blackout(bool active) { blackout_ = active; }

    bool timed() const { return config_.timed(); }
    void advance_to(std::uint64_t t);
    void commit_through(std::uint64_t t);
    std::uint64_t send_ready_at(std::size_t bytes) const {
      return shaper_.send_ready_at(bytes);
    }
    /// Earliest arrival still waiting in this end's outgoing delay line.
    /// The event-clock residency holdback completes its hop at the owning
    /// end's first advance past the hold tick.
    std::optional<std::uint64_t> delayed_next_arrival() const {
      if (held_) return held_tick_ + 1;
      return delayed_.next_arrival();
    }

    /// Heap bytes this end pins beyond the base Transport accounting: its
    /// private BufferPool (ends do not share pools across the thread
    /// seam, so each end charges its own), the reorder holdback, and the
    /// timed delay line.
    std::size_t memory_bytes() const {
      return Transport::memory_bytes() + pool().memory_bytes() +
             (held_ ? held_->capacity() : 0) + delayed_.memory_bytes();
    }

   protected:
    bool send_datagram(std::vector<std::uint8_t> frame) override;
    std::optional<std::vector<std::uint8_t>> next_datagram() override;
    std::vector<std::uint8_t> acquire_buffer() override;
    void release_buffer(std::vector<std::uint8_t> buffer) override;

   private:
    void enqueue(std::vector<std::uint8_t> frame);
    /// Pushes delay-line frames whose arrival tick has passed to the ring.
    void release_arrived();

    Direction& out_;
    Direction& in_;
    ChannelConfig config_;
    util::Xoshiro256 rng_;
    LinkShaper shaper_;
    /// Gilbert-Elliott chain replacing the Bernoulli loss draw when the
    /// config enables it (see wire::GilbertElliott).
    std::optional<GilbertElliott> ge_;
    bool blackout_ = false;
    /// One-hop residency holdback (event-clock configs only; timed
    /// configs pace through the delay line instead): the most recently
    /// sent frame, "in flight" until the next send displaces it or the
    /// owner's next advance completes the hop — LossyChannel's event
    /// clock, seen from the producing side of the ring. Reorder swaps the
    /// departing predecessor with the frame replacing it.
    std::optional<std::vector<std::uint8_t>> held_;
    std::uint64_t held_tick_ = 0;
    /// Timed configs: sender-local delay line, sorted by (arrival, seq).
    TimedFrameQueue delayed_;
    std::uint64_t next_seq_ = 0;
    std::size_t overflow_drops_ = 0;
  };

  Direction a_to_b_;
  Direction b_to_a_;
  End a_;
  End b_;
};

}  // namespace icd::wire

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "wire/channel.hpp"
#include "wire/message.hpp"

/// Message transports: the seam between protocol endpoints and the network.
///
/// A Transport carries typed wire::Message frames in one direction pair of a
/// point-to-point link. It owns the two substrate concerns the endpoints
/// must not care about:
///
///   * Packetization — frames larger than the link MTU (Bloom/ART control
///     summaries, big sketches) are split into Fragment messages and
///     reassembled on the far side; a lost fragment loses the whole message,
///     which the endpoints' retry path absorbs.
///   * Accounting — every frame that hits the wire is classified as control
///     or data and counted in bytes and frames, so sessions can report
///     *exact* (not estimated) control-plane costs.
///
/// Two implementations: an in-process perfect Pipe (lossless, in-order) and
/// an adapter over the simulated LossyChannel (loss, reordering, MTU). See
/// DESIGN.md for the layering.
namespace icd::wire {

/// Data plane = symbols; everything else (hello, sketch, summaries,
/// requests) is the control plane. Fragments inherit the class of the frame
/// they slice.
constexpr bool is_data_type(MessageType type) {
  return type == MessageType::kEncodedSymbol ||
         type == MessageType::kRecodedSymbol;
}

struct TransportStats {
  /// Frames / bytes actually handed to the link (including ones the network
  /// later drops), split by plane. Fragments count toward the plane of the
  /// message they carry.
  std::size_t frames_sent = 0;
  std::size_t control_frames_sent = 0;
  std::size_t data_frames_sent = 0;
  std::size_t bytes_sent = 0;
  std::size_t control_bytes_sent = 0;
  std::size_t data_bytes_sent = 0;
  /// Whole messages accepted for sending / delivered after reassembly.
  std::size_t messages_sent = 0;
  std::size_t messages_received = 0;
  /// Frames / bytes that arrived from the link.
  std::size_t frames_received = 0;
  std::size_t bytes_received = 0;
  /// Received frames that failed to decode (corruption) — dropped.
  std::size_t malformed_frames = 0;
  /// Fragments evicted before their message completed (a sibling was lost).
  std::size_t stale_fragments = 0;
  /// Frames the backend refused to carry (MTU too small to fit even one
  /// fragment) — never transmitted, never byte-counted. Nonzero while a
  /// session makes no progress is the tiny-MTU diagnostic.
  std::size_t frames_refused = 0;
};

/// Worst-case frame + Fragment header bytes; fragments carry
/// mtu - kFragmentOverhead payload bytes each.
inline constexpr std::size_t kFragmentOverhead = 24;

/// Incomplete reassemblies kept per transport before the oldest is evicted.
inline constexpr std::size_t kMaxPartialReassemblies = 8;

class Transport {
 public:
  /// Observes every frame at the moment it is handed to the link; lets
  /// tests and benchmarks independently audit the byte accounting.
  using FrameObserver =
      std::function<void(const std::vector<std::uint8_t>& frame,
                         bool is_control)>;

  virtual ~Transport() = default;

  /// Sends one message, fragmenting if its frame exceeds the MTU. Returns
  /// false when the message was not fully handed to the link: an MTU too
  /// small to carry even one fragment payload byte, or a backend refusing
  /// a datagram. A refusal mid-fragment-train leaves the earlier fragments
  /// transmitted and byte-counted — to the peer that is indistinguishable
  /// from fragment loss (the partial reassembly is evicted, the message
  /// retried by the protocol); messages_sent counts only complete sends.
  bool send(const Message& message);

  /// Delivers the next fully reassembled message, if any. Malformed frames
  /// are counted and skipped, never thrown.
  std::optional<Message> receive();

  std::size_t mtu() const { return mtu_; }
  const TransportStats& stats() const { return stats_; }
  void set_frame_observer(FrameObserver observer) {
    observer_ = std::move(observer);
  }

 protected:
  explicit Transport(std::size_t mtu) : mtu_(mtu) {}

  /// One datagram to / from the underlying link.
  virtual bool send_datagram(std::vector<std::uint8_t> frame) = 0;
  virtual std::optional<std::vector<std::uint8_t>> next_datagram() = 0;

 private:
  bool send_frame(std::vector<std::uint8_t> frame, bool control);
  std::optional<Message> absorb_fragment(Fragment fragment);

  struct Partial {
    std::vector<std::vector<std::uint8_t>> parts;
    std::size_t received = 0;
  };

  std::size_t mtu_;
  TransportStats stats_;
  FrameObserver observer_;
  std::uint32_t next_sequence_ = 1;
  std::map<std::uint32_t, Partial> partials_;
};

/// A perfect in-process link: lossless, in-order, but still MTU-bounded so
/// byte accounting (and fragmentation of oversized summaries) matches what
/// a real datagram network would carry.
class Pipe {
 public:
  explicit Pipe(std::size_t mtu = 1500);

  /// The ends hold references into this object: copying or moving would
  /// silently alias (then dangle) the source's queues.
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  /// The two endpoint views. `a()` sends toward `b()` and vice versa.
  Transport& a() { return a_; }
  Transport& b() { return b_; }

 private:
  class End : public Transport {
   public:
    End(std::size_t mtu, std::deque<std::vector<std::uint8_t>>& tx,
        std::deque<std::vector<std::uint8_t>>& rx)
        : Transport(mtu), tx_(tx), rx_(rx) {}

   protected:
    bool send_datagram(std::vector<std::uint8_t> frame) override;
    std::optional<std::vector<std::uint8_t>> next_datagram() override;

   private:
    std::deque<std::vector<std::uint8_t>>& tx_;
    std::deque<std::vector<std::uint8_t>>& rx_;
  };

  std::deque<std::vector<std::uint8_t>> a_to_b_;
  std::deque<std::vector<std::uint8_t>> b_to_a_;
  End a_;
  End b_;
};

/// Transport view over one direction pair of LossyChannels. The channels
/// must outlive the transport.
class ChannelTransport : public Transport {
 public:
  /// MTU is taken from the outbound channel's config.
  ChannelTransport(LossyChannel& tx, LossyChannel& rx);

 protected:
  bool send_datagram(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> next_datagram() override;

 private:
  LossyChannel& tx_;
  LossyChannel& rx_;
};

/// A bidirectional lossy link: two LossyChannels plus the two endpoint
/// transports over them, bundled so callers can stand up a per-edge link
/// from a pair of ChannelConfigs in one line.
class ChannelLink {
 public:
  /// Same shaping in both directions; the reverse channel gets a
  /// decorrelated seed.
  explicit ChannelLink(ChannelConfig both_ways);
  ChannelLink(ChannelConfig a_to_b, ChannelConfig b_to_a);

  /// The transports hold references into this object's channels: copying
  /// or moving would silently alias (then dangle) them.
  ChannelLink(const ChannelLink&) = delete;
  ChannelLink& operator=(const ChannelLink&) = delete;

  Transport& a() { return a_; }
  Transport& b() { return b_; }
  const LossyChannel& a_to_b() const { return a_to_b_; }
  const LossyChannel& b_to_a() const { return b_to_a_; }

 private:
  LossyChannel a_to_b_;
  LossyChannel b_to_a_;
  ChannelTransport a_;
  ChannelTransport b_;
};

}  // namespace icd::wire

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "util/ring.hpp"
#include "wire/buffer_pool.hpp"
#include "wire/channel.hpp"
#include "wire/message.hpp"

/// Message transports: the seam between protocol endpoints and the network.
///
/// A Transport carries typed wire::Message frames in one direction pair of a
/// point-to-point link. It owns the two substrate concerns the endpoints
/// must not care about:
///
///   * Packetization — frames larger than the link MTU (Bloom/ART control
///     summaries, big sketches) are split into Fragment messages and
///     reassembled on the far side; a lost fragment loses the whole message,
///     which the endpoints' retry path absorbs.
///   * Accounting — every frame that hits the wire is classified as control
///     or data and counted in bytes and frames, so sessions can report
///     *exact* (not estimated) control-plane costs.
///
/// Frames are plain byte vectors recycled through a BufferPool shared by the
/// two ends of a link, and symbol frames are encoded from / decoded into
/// non-owning views, so the steady-state symbol path allocates nothing (see
/// DESIGN.md, "Buffer ownership and lifetimes").
///
/// Two implementations: an in-process perfect Pipe (lossless, in-order) and
/// an adapter over the simulated LossyChannel (loss, reordering, MTU). See
/// DESIGN.md for the layering.
namespace icd::wire {

/// Data plane = symbols; everything else (hello, sketch, summaries,
/// requests) is the control plane. Fragments inherit the class of the frame
/// they slice.
constexpr bool is_data_type(MessageType type) {
  return type == MessageType::kEncodedSymbol ||
         type == MessageType::kRecodedSymbol;
}

struct TransportStats {
  /// Frames / bytes actually handed to the link (including ones the network
  /// later drops), split by plane. Fragments count toward the plane of the
  /// message they carry.
  std::size_t frames_sent = 0;
  std::size_t control_frames_sent = 0;
  std::size_t data_frames_sent = 0;
  std::size_t bytes_sent = 0;
  std::size_t control_bytes_sent = 0;
  std::size_t data_bytes_sent = 0;
  /// Whole messages accepted for sending / delivered after reassembly.
  std::size_t messages_sent = 0;
  std::size_t messages_received = 0;
  /// Frames / bytes that arrived from the link.
  std::size_t frames_received = 0;
  std::size_t bytes_received = 0;
  /// Received frames that failed to decode (corruption) — dropped.
  std::size_t malformed_frames = 0;
  /// Fragments evicted before their message completed (a sibling was lost).
  std::size_t stale_fragments = 0;
  /// Frames the backend refused to carry (MTU too small to fit even one
  /// fragment) — never transmitted, never byte-counted. Nonzero while a
  /// session makes no progress is the tiny-MTU diagnostic.
  std::size_t frames_refused = 0;
};

/// Worst-case frame + Fragment header bytes; fragments carry
/// mtu - kFragmentOverhead payload bytes each.
inline constexpr std::size_t kFragmentOverhead = 24;

/// Incomplete reassemblies kept per transport before the oldest is evicted.
inline constexpr std::size_t kMaxPartialReassemblies = 8;

class Transport {
 public:
  /// Observes every frame at the moment it is handed to the link; lets
  /// tests and benchmarks independently audit the byte accounting.
  using FrameObserver =
      std::function<void(const std::vector<std::uint8_t>& frame,
                         bool is_control)>;

  /// One received item: an owning control Message, or a symbol decoded in
  /// place. The views' spans borrow transport-owned storage (the receive
  /// buffer and the constituent scratch) and are invalidated by the next
  /// receive()/receive_frame() call on this transport.
  using ReceivedFrame = std::variant<Message, codec::EncodedSymbolView,
                                     codec::RecodedSymbolView>;

  virtual ~Transport() = default;

  /// Sends one message, fragmenting if its frame exceeds the MTU. Returns
  /// false when the message was not fully handed to the link: an MTU too
  /// small to carry even one fragment payload byte, or a backend refusing
  /// a datagram. A refusal mid-fragment-train leaves the earlier fragments
  /// transmitted and byte-counted — to the peer that is indistinguishable
  /// from fragment loss (the partial reassembly is evicted, the message
  /// retried by the protocol); messages_sent counts only complete sends.
  bool send(const Message& message);

  /// Zero-allocation sends for the symbol fast path: the frame is encoded
  /// straight from the view into a pooled buffer. Wire bytes are identical
  /// to send(EncodedSymbolMessage{...}) / send(RecodedSymbolMessage{...}).
  bool send(const codec::EncodedSymbolView& symbol);
  bool send(const codec::RecodedSymbolView& symbol);

  /// Delivers the next fully reassembled message, if any, decoding symbol
  /// frames in place (payload spans borrow the transport's receive buffer
  /// until the next receive call — the single-copy receive rule). Malformed
  /// frames are counted and skipped, never thrown.
  std::optional<ReceivedFrame> receive_frame();

  /// Owning variant of receive_frame(): symbol views are materialized into
  /// EncodedSymbolMessage/RecodedSymbolMessage. Control paths and tests.
  std::optional<Message> receive();

  /// Per-tick control-frame batching. With a nonzero budget, control
  /// frames no longer depart one datagram each: they accumulate in a
  /// pooled train buffer (self-describing frames concatenated back to
  /// back, exactly the encode_stream layout) that is handed to the link as
  /// one datagram when appending the next frame would exceed
  /// min(budget, mtu), when a data or oversized frame must depart (frame
  /// order is preserved), or at flush_batch() — the per-tick boundary the
  /// driving engine calls. Wire *bytes* are unchanged (each frame keeps
  /// its header); what drops is the per-datagram cost: a handshake bundle
  /// that took 4 frames travels as 1, and control_frames_sent counts
  /// datagrams, so the control-packet accounting reflects the saving. A
  /// train lost by the channel loses all its frames, which the endpoints'
  /// retry path absorbs — same failure mode as a lost fragment. Budget 0
  /// (the default) disables batching and reproduces the historical
  /// one-frame-per-datagram behavior bit for bit.
  void set_batch_budget(std::size_t bytes) { batch_budget_ = bytes; }
  std::size_t batch_budget() const { return batch_budget_; }
  /// Sends the pending control train, if any. Returns false only when the
  /// backend refused the train datagram (counted in frames_refused).
  bool flush_batch();

  std::size_t mtu() const { return mtu_; }
  const TransportStats& stats() const { return stats_; }
  const BufferPool& pool() const { return *pool_; }
  /// Heap bytes this transport pins: reassembly partials, the live
  /// receive frame, the control train, and decode scratch. The shared
  /// BufferPool is deliberately EXCLUDED — both ends of a link share one
  /// pool, so the owning link counts it exactly once (see
  /// ChannelLink::memory_bytes / MemoryAudit).
  std::size_t memory_bytes() const {
    std::size_t bytes = rx_frame_.capacity() + train_.capacity() +
                        rx_constituents_.capacity() * sizeof(std::uint64_t);
    for (const auto& [sequence, partial] : partials_) {
      bytes += sizeof(Partial) + 4 * sizeof(void*);
      for (const auto& part : partial.parts) bytes += part.capacity();
      bytes += partial.parts.capacity() * sizeof(std::vector<std::uint8_t>);
    }
    return bytes;
  }
  /// Mutable pool access for engines that re-home a pool across tick
  /// phases (BufferPool::debug_release_owner).
  BufferPool& pool_mutable() { return *pool_; }
  void set_frame_observer(FrameObserver observer) {
    observer_ = std::move(observer);
  }

 protected:
  /// Transports at the two ends of one link share `pool` so buffers cycle
  /// sender -> link -> receiver -> pool -> sender; a null pool gets a
  /// private one.
  Transport(std::size_t mtu, std::shared_ptr<BufferPool> pool)
      : mtu_(mtu),
        pool_(pool ? std::move(pool) : std::make_shared<BufferPool>()) {}

  /// One datagram to / from the underlying link.
  virtual bool send_datagram(std::vector<std::uint8_t> frame) = 0;
  virtual std::optional<std::vector<std::uint8_t>> next_datagram() = 0;

  /// Buffer recycling seam. The defaults go through the link-shared pool;
  /// cross-shard transports (wire::ShardLink) override them to route spent
  /// receive buffers back to the sending shard through an SPSC ring, since
  /// a BufferPool itself is shard-local (see buffer_pool.hpp).
  virtual std::vector<std::uint8_t> acquire_buffer() {
    return pool_->acquire();
  }
  virtual void release_buffer(std::vector<std::uint8_t> buffer) {
    pool_->release(std::move(buffer));
  }

 private:
  bool send_frame(std::vector<std::uint8_t> frame, bool control);
  bool send_oversized(std::vector<std::uint8_t> frame, bool control);
  void append_to_train(std::vector<std::uint8_t> frame);
  bool take_datagram();
  std::optional<Message> absorb_fragment(Fragment fragment);

  struct Partial {
    std::vector<std::vector<std::uint8_t>> parts;
    std::size_t received = 0;
  };

  std::size_t mtu_;
  std::shared_ptr<BufferPool> pool_;
  TransportStats stats_;
  FrameObserver observer_;
  std::uint32_t next_sequence_ = 1;
  std::map<std::uint32_t, Partial> partials_;
  /// The last datagram taken from the link: views handed out by
  /// receive_frame() borrow it; released to the pool on the next take.
  /// A batched train datagram carries several frames; rx_offset_ tracks
  /// how far it has been sliced.
  std::vector<std::uint8_t> rx_frame_;
  bool rx_frame_live_ = false;
  std::size_t rx_offset_ = 0;
  /// Control-frame batching state (see set_batch_budget).
  std::size_t batch_budget_ = 0;
  std::vector<std::uint8_t> train_;
  bool train_live_ = false;
  /// Decoded recoded-symbol ids; RecodedSymbolView borrows this.
  std::vector<std::uint64_t> rx_constituents_;
};

/// A perfect in-process link: lossless, in-order, but still MTU-bounded so
/// byte accounting (and fragmentation of oversized summaries) matches what
/// a real datagram network would carry.
class Pipe {
 public:
  explicit Pipe(std::size_t mtu = 1500);

  /// The ends hold references into this object: copying or moving would
  /// silently alias (then dangle) the source's queues.
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  /// The two endpoint views. `a()` sends toward `b()` and vice versa.
  Transport& a() { return a_; }
  Transport& b() { return b_; }

 private:
  using Queue = util::RingBuffer<std::vector<std::uint8_t>>;

  class End : public Transport {
   public:
    End(std::size_t mtu, std::shared_ptr<BufferPool> pool, Queue& tx,
        Queue& rx)
        : Transport(mtu, std::move(pool)), tx_(tx), rx_(rx) {}

   protected:
    bool send_datagram(std::vector<std::uint8_t> frame) override;
    std::optional<std::vector<std::uint8_t>> next_datagram() override;

   private:
    Queue& tx_;
    Queue& rx_;
  };

  Queue a_to_b_;
  Queue b_to_a_;
  /// Shared by both ends so a buffer sent by `a` returns to the pool when
  /// `b` consumes it, ready for `a`'s next send. Declared before the ends.
  std::shared_ptr<BufferPool> pool_;
  End a_;
  End b_;
};

/// Transport view over one direction pair of LossyChannels. The channels
/// must outlive the transport.
class ChannelTransport : public Transport {
 public:
  /// MTU is taken from the outbound channel's config.
  ChannelTransport(LossyChannel& tx, LossyChannel& rx,
                   std::shared_ptr<BufferPool> pool = nullptr);

 protected:
  bool send_datagram(std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> next_datagram() override;

 private:
  LossyChannel& tx_;
  LossyChannel& rx_;
};

/// A bidirectional lossy link: two LossyChannels plus the two endpoint
/// transports over them, bundled so callers can stand up a per-edge link
/// from a pair of ChannelConfigs in one line.
class ChannelLink {
 public:
  /// Same shaping in both directions; the reverse channel gets a
  /// decorrelated seed.
  explicit ChannelLink(ChannelConfig both_ways);
  ChannelLink(ChannelConfig a_to_b, ChannelConfig b_to_a);

  /// The transports hold references into this object's channels: copying
  /// or moving would silently alias (then dangle) them.
  ChannelLink(const ChannelLink&) = delete;
  ChannelLink& operator=(const ChannelLink&) = delete;

  Transport& a() { return a_; }
  Transport& b() { return b_; }
  const LossyChannel& a_to_b() const { return a_to_b_; }
  const LossyChannel& b_to_a() const { return b_to_a_; }

  /// Makes both directions' in-flight frames deliverable immediately
  /// (teardown: nothing further will be sent, so neither the one-hop clock
  /// nor the virtual clock would ever release them).
  void flush() {
    a_to_b_.flush();
    b_to_a_.flush();
  }

  // --- Virtual clock (timed configs; no-ops otherwise) --------------------

  /// Either direction carries simulated-time shaping.
  bool timed() const { return a_to_b_.timed() || b_to_a_.timed(); }

  /// Advances both directions' virtual clocks (monotonic).
  void advance_to(std::uint64_t t) {
    a_to_b_.advance_to(t);
    b_to_a_.advance_to(t);
  }

  /// Earliest queued frame arrival in either direction — the link's next
  /// deliverable-frame event for the scheduler.
  std::optional<std::uint64_t> next_arrival_at() const {
    const auto forward = a_to_b_.next_arrival_at();
    const auto reverse = b_to_a_.next_arrival_at();
    if (!forward) return reverse;
    if (!reverse) return forward;
    return std::min(*forward, *reverse);
  }

  /// Send-credit probe for the serving (a -> b) direction.
  std::uint64_t a_send_ready_at(std::size_t bytes) const {
    return a_to_b_.send_ready_at(bytes);
  }

  /// The earliest virtual time at which either direction can deliver
  /// anything — the event-loop planning surface (see
  /// LossyChannel::next_event_time). nullopt = both directions provably
  /// drained.
  std::optional<std::uint64_t> next_event_time() const {
    const auto forward = a_to_b_.next_event_time();
    const auto reverse = b_to_a_.next_event_time();
    if (!forward) return reverse;
    if (!reverse) return forward;
    return std::min(*forward, *reverse);
  }

  /// Link blackout (fault injection): while set, both directions eat every
  /// send before any RNG draw — a full partition of this edge. Frames
  /// already in flight still arrive.
  void set_blackout(bool active) {
    a_to_b_.set_blackout(active);
    b_to_a_.set_blackout(active);
  }

  /// Heap bytes the whole edge pins: both channels' queued frames, both
  /// transports' reassembly/scratch state, and the shared BufferPool
  /// charged exactly once (the transports exclude it; see
  /// Transport::memory_bytes).
  std::size_t memory_bytes() const {
    return a_to_b_.memory_bytes() + b_to_a_.memory_bytes() +
           pool_->memory_bytes() + a_.memory_bytes() + b_.memory_bytes();
  }

 private:
  LossyChannel a_to_b_;
  LossyChannel b_to_a_;
  /// Shared pool, as in Pipe; frames the channels drop are simply freed.
  std::shared_ptr<BufferPool> pool_;
  ChannelTransport a_;
  ChannelTransport b_;
};

}  // namespace icd::wire

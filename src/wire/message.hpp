#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "art/art_summary.hpp"
#include "codec/symbol.hpp"
#include "filter/bloom.hpp"
#include "sketch/minwise.hpp"
#include "util/buffer.hpp"

/// Wire protocol for the control and data planes.
///
/// Every message that flows between collaborating peers — the calling-card
/// sketch, the fine-grained summaries, the symbols-desired request and the
/// symbols themselves — has a typed, versioned, length-prefixed wire form
/// here, so that implementations can interoperate and the simulator can
/// charge exact byte counts.
///
/// Frame layout:  magic(2) version(1) type(1) length(varint) payload.
namespace icd::wire {

inline constexpr std::uint16_t kMagic = 0x1CD0;
inline constexpr std::uint8_t kVersion = 1;

enum class MessageType : std::uint8_t {
  kHello = 1,          // session setup: code parameters + working set size
  kSketch = 2,         // min-wise sketch (Section 4)
  kBloomSummary = 3,   // Bloom filter of the working set (Section 5.2)
  kArtSummary = 4,     // approximate reconciliation tree summary (Section 5.3)
  kRequest = 5,        // symbols desired from this sender (Section 6.1)
  kEncodedSymbol = 6,  // one regular encoded symbol
  kRecodedSymbol = 7,  // one recoded symbol (Section 5.4.2)
  kFragment = 8,       // one MTU-sized slice of a larger frame
  kRequestUpdate = 9,  // flow control: symbols still wanted (0 = satisfied)
};

/// Session hello: advertises the code and the sender's working-set size
/// (the optional extra datum Section 4 mentions peers may exchange).
struct Hello {
  std::uint32_t block_count = 0;
  std::uint64_t session_seed = 0;
  std::uint64_t working_set_size = 0;

  bool operator==(const Hello&) const = default;
};

/// Symbols-desired request: "the receiver may specify the number of symbols
/// desired from each sender with appropriate allowances for decoding
/// overhead".
struct Request {
  std::uint64_t symbols_desired = 0;

  bool operator==(const Request&) const = default;
};

/// Flow-control update: the receiver re-issues its request as symbols
/// land, carrying the decremented count still wanted from this sender.
/// Zero means satisfied — the sender stops serving. Kept distinct from
/// Request because there a zero count means "the sender's full domain".
struct RequestUpdate {
  std::uint64_t symbols_remaining = 0;

  bool operator==(const RequestUpdate&) const = default;
};

struct SketchMessage {
  sketch::MinwiseSketch sketch;
};

struct BloomSummaryMessage {
  filter::BloomFilter filter;
};

struct ArtSummaryMessage {
  art::ArtSummary summary;
};

struct EncodedSymbolMessage {
  codec::EncodedSymbol symbol;

  bool operator==(const EncodedSymbolMessage&) const = default;
};

struct RecodedSymbolMessage {
  codec::RecodedSymbol symbol;

  bool operator==(const RecodedSymbolMessage&) const = default;
};

/// One slice of a frame too large for the link MTU (control summaries can
/// exceed it). `sequence` identifies the fragmented frame, `index`/`total`
/// place the slice; the transport layer reassembles and re-decodes.
struct Fragment {
  std::uint32_t sequence = 0;
  std::uint16_t index = 0;
  std::uint16_t total = 0;
  std::vector<std::uint8_t> data;

  bool operator==(const Fragment&) const = default;
};

using Message =
    std::variant<Hello, SketchMessage, BloomSummaryMessage, ArtSummaryMessage,
                 Request, EncodedSymbolMessage, RecodedSymbolMessage,
                 Fragment, RequestUpdate>;

/// The wire type tag of a message.
MessageType message_type(const Message& message);

/// Appends one self-describing frame for `message` to `out`. This is the
/// in-place API behind encode_frame: hand it a writer over a recycled
/// buffer (wire::BufferPool) and nothing on the frame path allocates.
/// Control payloads whose length prefix precedes bytes of unknown size are
/// staged in `payload_scratch` when given (cleared first; hand it a writer
/// over a second pooled buffer and control sends stop allocating too);
/// without one, a frame-local writer is used.
void encode_frame_into(util::ByteWriter& out, const Message& message);
void encode_frame_into(util::ByteWriter& out, const Message& message,
                       util::ByteWriter& payload_scratch);

/// Symbol fast path: serializes a frame straight from non-owning views, so
/// a sender can put a held payload on the wire without materializing an
/// EncodedSymbolMessage/RecodedSymbolMessage first. Byte-identical to the
/// Message overload for the equivalent owning symbol.
void encode_frame_into(util::ByteWriter& out,
                       const codec::EncodedSymbolView& symbol);
void encode_frame_into(util::ByteWriter& out,
                       const codec::RecodedSymbolView& symbol);

/// Serializes a message into one self-describing frame.
std::vector<std::uint8_t> encode_frame(const Message& message);

/// Parses one frame. Throws std::invalid_argument on malformed input
/// (bad magic, unknown version/type, truncation, trailing bytes).
Message decode_frame(std::span<const std::uint8_t> frame);

/// Size in bytes of the first frame in `bytes` (header + declared payload
/// length), without decoding the payload. Lets a receiver slice a batched
/// train — several frames concatenated in one datagram — into individual
/// frames for decode_frame/decode_symbol_frame. Throws std::invalid_argument
/// on bad magic/version or when the declared frame extends past `bytes`.
std::size_t frame_size(std::span<const std::uint8_t> bytes);

/// In-place decode of a symbol frame. Exactly one of the views is engaged;
/// its payload span borrows `frame` (valid only while the frame bytes
/// live), and recoded constituent ids are decoded into
/// `constituent_scratch`, which the view then borrows. Returns nullopt for
/// well-formed non-symbol frames (callers fall back to decode_frame);
/// throws std::invalid_argument on malformed input like decode_frame.
struct SymbolFrameView {
  std::optional<codec::EncodedSymbolView> encoded;
  std::optional<codec::RecodedSymbolView> recoded;
};
std::optional<SymbolFrameView> decode_symbol_frame(
    std::span<const std::uint8_t> frame,
    std::vector<std::uint64_t>& constituent_scratch);

/// Encodes a sequence of messages back-to-back into one byte stream, and
/// splits a byte stream back into frames. Enables batching several control
/// messages into one packet. encode_stream_into appends to a (possibly
/// recycled) buffer via the writer.
void encode_stream_into(util::ByteWriter& out,
                        const std::vector<Message>& messages);
std::vector<std::uint8_t> encode_stream(const std::vector<Message>& messages);
std::vector<Message> decode_stream(std::span<const std::uint8_t> bytes);

}  // namespace icd::wire

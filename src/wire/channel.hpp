#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "util/random.hpp"
#include "wire/message.hpp"

/// Simulated unreliable datagram channels.
///
/// This is the substrate substitution documented in DESIGN.md: the paper's
/// prototype ran over real sockets; here a channel carries wire frames
/// between two in-process endpoints with configurable Bernoulli loss,
/// reordering and an MTU, preserving everything the evaluation measures
/// (byte counts, packet counts, loss tolerance).
namespace icd::wire {

struct ChannelConfig {
  /// Probability an enqueued datagram is silently dropped.
  double loss_rate = 0.0;
  /// Probability a delivered datagram is swapped with its successor.
  double reorder_rate = 0.0;
  /// Frames larger than this are rejected (send() returns false) — symbols
  /// are sized to fit; control messages are packetized above this layer.
  std::size_t mtu = 1500;
  std::uint64_t seed = 0xc0de;
};

class LossyChannel {
 public:
  explicit LossyChannel(ChannelConfig config);

  /// Enqueues one frame. Returns false (and sends nothing) if the frame
  /// exceeds the MTU.
  bool send(std::vector<std::uint8_t> frame);

  /// Convenience: encode + send a typed message.
  bool send_message(const Message& message) {
    return send(encode_frame(message));
  }

  /// Whether a datagram is ready for delivery.
  bool pending() const { return !queue_.empty(); }

  /// Pops the next delivered datagram; empty when none pending.
  std::vector<std::uint8_t> receive();

  /// Pops and decodes the next datagram; throws if none pending.
  Message receive_message();

  /// Statistics.
  std::size_t sent() const { return sent_; }
  std::size_t dropped() const { return dropped_; }
  std::size_t oversized() const { return oversized_; }
  std::size_t delivered_bytes() const { return delivered_bytes_; }

 private:
  ChannelConfig config_;
  util::Xoshiro256 rng_;
  std::deque<std::vector<std::uint8_t>> queue_;
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
  std::size_t oversized_ = 0;
  std::size_t delivered_bytes_ = 0;
};

}  // namespace icd::wire

#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "util/random.hpp"
#include "util/ring.hpp"
#include "wire/message.hpp"

/// Simulated unreliable datagram channels.
///
/// This is the substrate substitution documented in DESIGN.md: the paper's
/// prototype ran over real sockets; here a channel carries wire frames
/// between two in-process endpoints with configurable Bernoulli loss,
/// reordering and an MTU, preserving everything the evaluation measures
/// (byte counts, packet counts, loss tolerance).
///
/// Two clocks, one channel:
///
///   * The **event clock** (default): the channel models a minimum queue
///     residency of one hop — the most recently sent frame is "in flight"
///     and becomes deliverable only once a later frame arrives behind it or
///     a receive attempt finds the queue empty (which advances the
///     channel's clock). This is what makes reorder_rate bite for *every*
///     driver without alternate-drain rules, and it reproduces the
///     historical behavior bit for bit.
///   * The **virtual clock** (any timing knob set — delay_ticks,
///     jitter_ticks, or rate_bytes_per_tick): the channel keeps
///     its own simulated time, advanced by the driving engine
///     (advance_to). Each frame's departure is paced by a token bucket
///     (rate_bytes_per_tick / burst_bytes) and its arrival is scheduled at
///     departure + hops * delay_ticks + one uniform jitter draw per hop;
///     receive() delivers only frames whose arrival time has passed. See
///     DESIGN.md, "Time and scheduling model".
namespace icd::wire {

/// Seed a LossyChannel falls back to when none is set.
inline constexpr std::uint64_t kDefaultChannelSeed = 0xc0de;

struct ChannelConfig {
  /// Probability an enqueued datagram is silently dropped.
  double loss_rate = 0.0;
  /// Probability a delivered datagram is swapped with its successor. Event
  /// clock: the swap happens when a new frame arrives behind one still in
  /// the queue; the one-hop minimum residency guarantees such pairs form
  /// even under drivers that drain after every send. Virtual clock: the
  /// frame's arrival time is swapped with the previously queued frame's
  /// (jitter produces additional, organic reordering).
  double reorder_rate = 0.0;
  /// Frames larger than this are rejected (send() returns false) — symbols
  /// are sized to fit; control messages are packetized above this layer.
  std::size_t mtu = 1500;
  /// Loss/reorder randomness. Unset means "let the service pick": the
  /// per-edge drivers (delivery, overlay simulator) substitute a fresh
  /// decorrelating draw via with_edge_seed; a standalone channel falls
  /// back to kDefaultChannelSeed. Any explicitly set value — including
  /// kDefaultChannelSeed itself — is honored verbatim.
  std::optional<std::uint64_t> seed;

  // --- Simulated-time shaping (all zero = the legacy event clock) --------
  /// Per-hop propagation delay in virtual ticks. A frame sent at tick t
  /// (after pacing) becomes deliverable at t + hops * delay_ticks + jitter.
  std::uint64_t delay_ticks = 0;
  /// Per-hop jitter: each of the path's hops adds an independent uniform
  /// draw from [0, jitter_ticks] to the frame's arrival time. Jitter can
  /// invert adjacent arrivals, so it is also a reordering source.
  std::uint64_t jitter_ticks = 0;
  /// Store-and-forward hops the path crosses (multi-hop queue residency).
  /// Each hop contributes delay_ticks plus one jitter draw. 0 and 1 both
  /// mean a single hop; hops only scales delay/jitter, so on its own
  /// (without delay/jitter/rate) it does not enable the virtual clock.
  std::uint64_t hops = 1;
  /// Token-bucket rate limit in bytes per virtual tick (0 = unlimited).
  /// The rate is **per hop**: every store-and-forward hop of the path
  /// meters independently at this rate, so a multi-hop path still carries
  /// rate_bytes_per_tick end to end (the bottleneck is any one hop) while
  /// bursts admitted by an earlier hop's bucket are re-paced downstream.
  /// A frame departs a hop when that hop's bucket holds its size in
  /// tokens and queues behind the bucket otherwise, so a saturating
  /// sender is paced to the link rate. Lost frames still consume the
  /// first hop's tokens (they were transmitted; the network ate them
  /// downstream of the sender's bottleneck — downstream hops never see
  /// them).
  double rate_bytes_per_tick = 0.0;
  /// Token-bucket capacity in bytes; 0 defaults to max(mtu, rate) so any
  /// MTU-sized frame can always eventually depart (no starvation).
  std::size_t burst_bytes = 0;

  // --- Gilbert-Elliott burst loss (off unless ge_loss_bad > 0) -----------
  /// Two-state Markov loss: the channel flips between a good state (loss
  /// ge_loss_good) and a bad state (loss ge_loss_bad) with per-frame
  /// transition probabilities ge_p_good_bad / ge_p_bad_good. Correlated
  /// loss is where informed summaries should beat Random hardest (SRM's
  /// lesson: loss-recovery protocols are only proven under burst loss).
  /// When enabled the GE draws *replace* the Bernoulli loss_rate draw;
  /// every channel starts in the good state. Mean burst length is
  /// 1 / ge_p_bad_good frames; stationary bad-state share is
  /// ge_p_good_bad / (ge_p_good_bad + ge_p_bad_good).
  double ge_loss_good = 0.0;
  double ge_loss_bad = 0.0;
  double ge_p_good_bad = 0.0;
  double ge_p_bad_good = 0.0;

  /// Whether the Gilbert-Elliott chain replaces the Bernoulli loss draw.
  bool gilbert_elliott() const { return ge_loss_bad > 0.0; }

  /// Whether any knob requests the virtual clock. `hops` alone does not:
  /// it multiplies delay/jitter and is inert without them.
  bool timed() const {
    return delay_ticks > 0 || jitter_ticks > 0 || rate_bytes_per_tick > 0.0;
  }
  /// Effective bucket capacity.
  double burst() const {
    if (burst_bytes > 0) return static_cast<double>(burst_bytes);
    return std::max(static_cast<double>(mtu), rate_bytes_per_tick);
  }
  /// Effective hop count (at least one).
  std::uint64_t hop_count() const { return hops == 0 ? 1 : hops; }
};

/// The per-edge seed rule the services share: an unset seed is replaced
/// by `draw` so edges decorrelate; an explicit seed (pinning one edge's
/// loss realization) is honored verbatim.
inline ChannelConfig with_edge_seed(ChannelConfig config,
                                    std::uint64_t draw) {
  if (!config.seed) config.seed = draw;
  return config;
}

/// Resolves one edge's shaping the way every per-edge service does it:
/// the (sender, receiver) override callback replaces `fallback` when set,
/// then the unset-seed rule applies.
inline ChannelConfig resolve_edge_config(
    const std::function<ChannelConfig(std::size_t, std::size_t)>& override_fn,
    const ChannelConfig& fallback, std::size_t sender, std::size_t receiver,
    std::uint64_t draw) {
  return with_edge_seed(
      override_fn ? override_fn(sender, receiver) : fallback, draw);
}

/// The per-direction Gilbert-Elliott chain shared by LossyChannel and
/// wire::ShardLink. Each frame advances the state (one transition draw)
/// and then draws loss at the state's rate, so both draws come from the
/// owning link's RNG stream — deterministic per (config, seed) exactly
/// like the Bernoulli path it replaces.
class GilbertElliott {
 public:
  explicit GilbertElliott(const ChannelConfig& config) : config_(config) {}

  /// True when this frame is lost. Advances the chain.
  bool drop(util::Xoshiro256& rng) {
    if (bad_) {
      if (rng.next_bool(config_.ge_p_bad_good)) bad_ = false;
    } else {
      if (rng.next_bool(config_.ge_p_good_bad)) bad_ = true;
    }
    return rng.next_bool(bad_ ? config_.ge_loss_bad : config_.ge_loss_good);
  }

  bool in_bad_state() const { return bad_; }

 private:
  ChannelConfig config_;
  bool bad_ = false;
};

/// A frame scheduled on a timed link direction.
struct TimedFrame {
  std::uint64_t arrival = 0;
  std::uint64_t seq = 0;  // send order; arrival ties deliver in send order
  std::vector<std::uint8_t> frame;
};

/// The (arrival, seq)-sorted delay line shared by LossyChannel and
/// wire::ShardLink: earliest arrival at the front, near-sorted insertion
/// scanned from the back (frames are scheduled in roughly increasing
/// arrival order, so the scan is short).
class TimedFrameQueue {
 public:
  bool empty() const { return queue_.empty(); }

  /// Arrival time of the earliest queued frame, if any.
  std::optional<std::uint64_t> next_arrival() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.front().arrival;
  }

  /// Inserts preserving the sort. With `swap_with_last` (an adjacent
  /// reorder draw), the new frame first exchanges arrival times with the
  /// latest-scheduled queued frame and both are re-placed, so the
  /// invariant — and next_arrival() — stay correct.
  void insert(TimedFrame frame, bool swap_with_last);

  /// Pops the earliest frame if its arrival is <= now.
  std::optional<std::vector<std::uint8_t>> pop_due(std::uint64_t now);

  /// Pops the earliest frame regardless of arrival (teardown drains).
  std::optional<std::vector<std::uint8_t>> pop_any();

  /// Teardown: clamps every arrival to `now`, preserving order.
  void collapse_to(std::uint64_t now);

  /// Heap bytes the delay line pins (frames + per-entry bookkeeping).
  std::size_t memory_bytes() const {
    std::size_t bytes = queue_.size() * sizeof(TimedFrame);
    for (const TimedFrame& entry : queue_) bytes += entry.frame.capacity();
    return bytes;
  }

 private:
  void place(TimedFrame frame);

  std::deque<TimedFrame> queue_;
};

/// Sender-side simulated-time shaping shared by LossyChannel and
/// wire::ShardLink: a virtual clock, per-hop token-bucket pacing, and
/// delay/jitter arrival scheduling. Loss/reorder draws stay with the
/// owning link (they share its RNG stream).
class LinkShaper {
 public:
  explicit LinkShaper(const ChannelConfig& config)
      : config_(config), egress_{config.burst(), 0} {
    if (config_.rate_bytes_per_tick > 0.0 && config_.hop_count() > 1) {
      hop_buckets_.assign(config_.hop_count() - 1,
                          Bucket{config_.burst(), 0});
    }
  }

  std::uint64_t now() const { return now_; }
  void advance_to(std::uint64_t t) { now_ = std::max(now_, t); }

  /// First-hop token-bucket departure time for a frame of `size` bytes
  /// sent at now(); consumes the tokens.
  std::uint64_t pace_departure(std::size_t size);

  /// Earliest virtual time a frame of `bytes` could depart the *first*
  /// hop given its bucket's current fill, without consuming anything.
  /// Downstream hop queueing shows up in the arrival time instead — the
  /// send-credit probe stays a sender-egress question.
  std::uint64_t send_ready_at(std::size_t bytes) const;

  /// Arrival time for a frame of `size` bytes departing the first hop at
  /// `depart`: per hop, a token-bucket re-pacing (hops beyond the first;
  /// each hop meters rate_bytes_per_tick independently), one delay_ticks,
  /// and one uniform [0, jitter_ticks] draw from `rng`. With one hop or
  /// no rate limit this is exactly delay + jitter per hop.
  std::uint64_t schedule_arrival(std::uint64_t depart, std::size_t size,
                                 util::Xoshiro256& rng);

  /// Frames whose first-hop departure the token bucket pushed past their
  /// send tick.
  std::size_t throttled() const { return throttled_; }

 private:
  /// One hop's token bucket: fill level at `time`.
  struct Bucket {
    double tokens;
    std::uint64_t time;
  };

  /// Departure time through one bucket for `size` bytes offered at `at`;
  /// consumes the tokens (the wait's own refill is spent on this frame,
  /// leftover fractions stay in the bucket).
  std::uint64_t pace_bucket(Bucket& bucket, std::uint64_t at,
                            std::size_t size) const;

  ChannelConfig config_;
  std::uint64_t now_ = 0;
  /// First-hop (sender egress) bucket.
  Bucket egress_;
  /// Hops 2..N meter independently; empty when unpaced or single-hop.
  std::vector<Bucket> hop_buckets_;
  std::size_t throttled_ = 0;
};

class LossyChannel {
 public:
  explicit LossyChannel(ChannelConfig config);

  /// Enqueues one frame. Returns false (and sends nothing) if the frame
  /// exceeds the MTU. Event clock: the frame is in flight (not yet
  /// deliverable) until the next send or an empty receive advances the
  /// clock. Virtual clock: the frame is paced through the token bucket and
  /// scheduled for arrival delay + jitter ticks after departure.
  bool send(std::vector<std::uint8_t> frame);

  /// Convenience: encode + send a typed message.
  bool send_message(const Message& message) {
    return send(encode_frame(message));
  }

  /// Whether any frame is queued or still in flight (deliverable or not).
  bool pending() const {
    return !queue_.empty() || in_flight_.has_value() || !timed_queue_.empty();
  }

  /// Pops the next deliverable datagram. Empty when nothing is deliverable
  /// right now. Event clock: an empty result with pending() still true
  /// means the in-flight frame just completed its hop and the next
  /// receive() gets it. Virtual clock: frames become deliverable when
  /// now() reaches their arrival time (advance_to).
  std::vector<std::uint8_t> receive();

  /// Receives the next pending datagram and decodes it; throws if nothing
  /// is pending. Waits out the in-flight hop (event clock) or advances
  /// now() to the next arrival (virtual clock) if needed.
  Message receive_message();

  /// Teardown: makes every queued frame deliverable immediately (nothing
  /// further will be sent, so neither clock would ever release them).
  void flush();

  // --- Virtual clock (timed() configs; no-ops otherwise) ------------------

  /// True when the config requests simulated-time shaping.
  bool timed() const { return config_.timed(); }

  /// Current virtual time. Starts at 0; never moves backwards.
  std::uint64_t now() const { return shaper_.now(); }

  /// Advances the virtual clock (monotonic; a smaller t is ignored).
  void advance_to(std::uint64_t t) { shaper_.advance_to(t); }

  /// Arrival time of the earliest queued frame, if any — the event the
  /// scheduler orders link servicing by. Already-due frames report their
  /// (past) arrival time, not now().
  std::optional<std::uint64_t> next_arrival_at() const;

  /// The earliest virtual time at which this direction can deliver
  /// anything — the event-loop planning surface. Timed: the next queued
  /// arrival. Untimed: 0 (due immediately) while a frame is queued or in
  /// flight, because the event clock advances with every tick and can
  /// release the hop at any receive. nullopt = provably nothing pending.
  std::optional<std::uint64_t> next_event_time() const {
    if (timed()) return next_arrival_at();
    return pending() ? std::optional<std::uint64_t>{0} : std::nullopt;
  }

  /// Earliest virtual time a frame of `bytes` could *depart* given the
  /// token bucket's current fill — the scheduler's send-credit probe.
  /// Returns now() when unpaced or when the bucket already holds enough.
  std::uint64_t send_ready_at(std::size_t bytes) const {
    return shaper_.send_ready_at(bytes);
  }

  // --- Fault injection -----------------------------------------------------

  /// Link blackout: while set, every send is eaten whole *before* any
  /// loss/reorder RNG draw — no randomness is consumed, so a blackout
  /// window perturbs nothing outside itself and both delivery engines
  /// drop the identical frame set. Frames already in flight still arrive
  /// (the partition cuts the wire, not the queue).
  void set_blackout(bool active) { blackout_ = active; }
  bool blackout() const { return blackout_; }
  /// Frames eaten by blackout windows (also counted in dropped()).
  std::size_t blackout_drops() const { return blackout_drops_; }

  /// Statistics.
  std::size_t sent() const { return sent_; }
  std::size_t dropped() const { return dropped_; }
  std::size_t oversized() const { return oversized_; }
  std::size_t sent_bytes() const { return sent_bytes_; }
  std::size_t delivered_bytes() const { return delivered_bytes_; }
  /// Frames whose departure the token bucket pushed past their send tick.
  std::size_t throttled() const { return shaper_.throttled(); }

  /// Heap bytes this direction pins: queued / in-flight frame buffers plus
  /// the timed-queue entries (scale audit; the shared BufferPool is charged
  /// once by the owning link, not here).
  std::size_t memory_bytes() const {
    std::size_t bytes = in_flight_ ? in_flight_->capacity() : 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      bytes += queue_[i].capacity() + sizeof(std::vector<std::uint8_t>);
    }
    return bytes + timed_queue_.memory_bytes();
  }

  const ChannelConfig& config() const { return config_; }

 private:
  ChannelConfig config_;
  util::Xoshiro256 rng_;
  LinkShaper shaper_;
  /// Present only for Gilbert-Elliott configs; replaces the Bernoulli
  /// loss draw (the RNG stream is shared, consumed two draws per frame).
  std::optional<GilbertElliott> ge_;
  bool blackout_ = false;
  std::size_t blackout_drops_ = 0;
  util::RingBuffer<std::vector<std::uint8_t>> queue_;
  /// Event clock: the most recently sent frame, one hop from deliverable.
  std::optional<std::vector<std::uint8_t>> in_flight_;
  /// Virtual clock: frames ordered by (arrival, seq).
  TimedFrameQueue timed_queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
  std::size_t oversized_ = 0;
  std::size_t sent_bytes_ = 0;
  std::size_t delivered_bytes_ = 0;
};

}  // namespace icd::wire

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/random.hpp"
#include "util/ring.hpp"
#include "wire/message.hpp"

/// Simulated unreliable datagram channels.
///
/// This is the substrate substitution documented in DESIGN.md: the paper's
/// prototype ran over real sockets; here a channel carries wire frames
/// between two in-process endpoints with configurable Bernoulli loss,
/// reordering and an MTU, preserving everything the evaluation measures
/// (byte counts, packet counts, loss tolerance).
///
/// The channel models a minimum queue residency of one hop: the most
/// recently sent frame is "in flight" and becomes deliverable only once a
/// later frame arrives behind it or a receive attempt finds the queue empty
/// (which advances the channel's clock). This is what makes reorder_rate
/// bite for *every* driver — adjacent frames genuinely coexist in the
/// queue — without drivers hand-rolling alternate-drain rules.
namespace icd::wire {

/// Seed a LossyChannel falls back to when none is set.
inline constexpr std::uint64_t kDefaultChannelSeed = 0xc0de;

struct ChannelConfig {
  /// Probability an enqueued datagram is silently dropped.
  double loss_rate = 0.0;
  /// Probability a delivered datagram is swapped with its successor. The
  /// swap happens when a new frame arrives behind one still in the queue;
  /// the one-hop minimum residency guarantees such pairs form even under
  /// drivers that drain after every send.
  double reorder_rate = 0.0;
  /// Frames larger than this are rejected (send() returns false) — symbols
  /// are sized to fit; control messages are packetized above this layer.
  std::size_t mtu = 1500;
  /// Loss/reorder randomness. Unset means "let the service pick": the
  /// per-edge drivers (delivery, overlay simulator) substitute a fresh
  /// decorrelating draw via with_edge_seed; a standalone channel falls
  /// back to kDefaultChannelSeed. Any explicitly set value — including
  /// kDefaultChannelSeed itself — is honored verbatim.
  std::optional<std::uint64_t> seed;
};

/// The per-edge seed rule the services share: an unset seed is replaced
/// by `draw` so edges decorrelate; an explicit seed (pinning one edge's
/// loss realization) is honored verbatim.
inline ChannelConfig with_edge_seed(ChannelConfig config,
                                    std::uint64_t draw) {
  if (!config.seed) config.seed = draw;
  return config;
}

/// Resolves one edge's shaping the way every per-edge service does it:
/// the (sender, receiver) override callback replaces `fallback` when set,
/// then the unset-seed rule applies.
inline ChannelConfig resolve_edge_config(
    const std::function<ChannelConfig(std::size_t, std::size_t)>& override_fn,
    const ChannelConfig& fallback, std::size_t sender, std::size_t receiver,
    std::uint64_t draw) {
  return with_edge_seed(
      override_fn ? override_fn(sender, receiver) : fallback, draw);
}

class LossyChannel {
 public:
  explicit LossyChannel(ChannelConfig config);

  /// Enqueues one frame. Returns false (and sends nothing) if the frame
  /// exceeds the MTU. The frame is in flight (not yet deliverable) until
  /// the next send or an empty receive advances the clock.
  bool send(std::vector<std::uint8_t> frame);

  /// Convenience: encode + send a typed message.
  bool send_message(const Message& message) {
    return send(encode_frame(message));
  }

  /// Whether any frame is queued or still in flight.
  bool pending() const { return !queue_.empty() || in_flight_.has_value(); }

  /// Pops the next deliverable datagram. Empty when nothing is deliverable
  /// *this hop* — an empty result with pending() still true means the
  /// in-flight frame just completed its hop and the next receive() gets it.
  std::vector<std::uint8_t> receive();

  /// Receives the next pending datagram, waiting out the in-flight hop if
  /// needed, and decodes it; throws if nothing is pending.
  Message receive_message();

  /// Teardown: makes the in-flight frame deliverable immediately (nothing
  /// further will be sent, so the clock would never release it).
  void flush();

  /// Statistics.
  std::size_t sent() const { return sent_; }
  std::size_t dropped() const { return dropped_; }
  std::size_t oversized() const { return oversized_; }
  std::size_t sent_bytes() const { return sent_bytes_; }
  std::size_t delivered_bytes() const { return delivered_bytes_; }

  const ChannelConfig& config() const { return config_; }

 private:
  ChannelConfig config_;
  util::Xoshiro256 rng_;
  util::RingBuffer<std::vector<std::uint8_t>> queue_;
  /// The most recently sent frame, one hop away from deliverable.
  std::optional<std::vector<std::uint8_t>> in_flight_;
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
  std::size_t oversized_ = 0;
  std::size_t sent_bytes_ = 0;
  std::size_t delivered_bytes_ = 0;
};

}  // namespace icd::wire

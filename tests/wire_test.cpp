// Tests for icd::wire: framed message serialization and the simulated
// lossy channel.
#include <gtest/gtest.h>

#include <vector>

#include "util/buffer.hpp"
#include "wire/channel.hpp"
#include "wire/message.hpp"

namespace icd::wire {
namespace {

TEST(WireMessage, HelloRoundTrip) {
  const Hello hello{1234, 0xdeadbeefULL, 567};
  const auto frame = encode_frame(hello);
  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(std::holds_alternative<Hello>(decoded));
  EXPECT_EQ(std::get<Hello>(decoded), hello);
}

TEST(WireMessage, RequestRoundTrip) {
  const Request request{987654};
  const auto decoded = decode_frame(encode_frame(request));
  ASSERT_TRUE(std::holds_alternative<Request>(decoded));
  EXPECT_EQ(std::get<Request>(decoded), request);
}

TEST(WireMessage, RequestUpdateRoundTrip) {
  for (const std::uint64_t remaining : {std::uint64_t{0}, std::uint64_t{17},
                                        std::uint64_t{1} << 40}) {
    const RequestUpdate update{remaining};
    const auto decoded = decode_frame(encode_frame(update));
    ASSERT_TRUE(std::holds_alternative<RequestUpdate>(decoded));
    EXPECT_EQ(std::get<RequestUpdate>(decoded), update);
  }
}

TEST(WireMessage, EncodedSymbolRoundTrip) {
  EncodedSymbolMessage message;
  message.symbol.id = 42;
  message.symbol.payload = {1, 2, 3, 4, 5};
  const auto decoded = decode_frame(encode_frame(message));
  ASSERT_TRUE(std::holds_alternative<EncodedSymbolMessage>(decoded));
  EXPECT_EQ(std::get<EncodedSymbolMessage>(decoded), message);
}

TEST(WireMessage, RecodedSymbolRoundTrip) {
  RecodedSymbolMessage message;
  message.symbol.constituents = {10, 20, 30};
  message.symbol.payload = {9, 8};
  const auto decoded = decode_frame(encode_frame(message));
  ASSERT_TRUE(std::holds_alternative<RecodedSymbolMessage>(decoded));
  EXPECT_EQ(std::get<RecodedSymbolMessage>(decoded), message);
}

TEST(WireMessage, SketchRoundTrip) {
  sketch::MinwiseSketch sketch(1 << 20, 32);
  sketch.update_all({1, 2, 3, 99});
  const auto decoded = decode_frame(encode_frame(SketchMessage{sketch}));
  ASSERT_TRUE(std::holds_alternative<SketchMessage>(decoded));
  EXPECT_EQ(std::get<SketchMessage>(decoded).sketch.minima(),
            sketch.minima());
}

TEST(WireMessage, BloomSummaryRoundTrip) {
  auto filter = filter::BloomFilter::with_bits_per_element(100, 8.0);
  for (std::uint64_t i = 0; i < 100; ++i) filter.insert(i * 7);
  const auto decoded =
      decode_frame(encode_frame(BloomSummaryMessage{filter}));
  ASSERT_TRUE(std::holds_alternative<BloomSummaryMessage>(decoded));
  const auto& restored = std::get<BloomSummaryMessage>(decoded).filter;
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(restored.contains(i * 7));
  }
}

TEST(WireMessage, ArtSummaryRoundTrip) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 300; ++i) keys.push_back(i * 1337);
  const art::ReconciliationTree tree(keys);
  const auto summary = art::ArtSummary::build(tree, 4.0, 4.0);
  const auto decoded = decode_frame(encode_frame(ArtSummaryMessage{summary}));
  ASSERT_TRUE(std::holds_alternative<ArtSummaryMessage>(decoded));
  EXPECT_EQ(std::get<ArtSummaryMessage>(decoded).summary.total_bits(),
            summary.total_bits());
}

TEST(WireMessage, TypeTagsAreStable) {
  EXPECT_EQ(message_type(Hello{}), MessageType::kHello);
  EXPECT_EQ(message_type(Request{}), MessageType::kRequest);
  EXPECT_EQ(message_type(EncodedSymbolMessage{}),
            MessageType::kEncodedSymbol);
  EXPECT_EQ(message_type(RecodedSymbolMessage{}),
            MessageType::kRecodedSymbol);
}

TEST(WireMessage, RejectsMalformedFrames) {
  auto frame = encode_frame(Hello{1, 2, 3});
  // Bad magic.
  auto bad = frame;
  bad[0] ^= 0xff;
  EXPECT_THROW(decode_frame(bad), std::invalid_argument);
  // Bad version.
  bad = frame;
  bad[2] = 99;
  EXPECT_THROW(decode_frame(bad), std::invalid_argument);
  // Unknown type.
  bad = frame;
  bad[3] = 200;
  EXPECT_THROW(decode_frame(bad), std::invalid_argument);
  // Truncation.
  bad = frame;
  bad.pop_back();
  EXPECT_THROW(decode_frame(bad), std::invalid_argument);
  // Trailing garbage.
  bad = frame;
  bad.push_back(0);
  EXPECT_THROW(decode_frame(bad), std::invalid_argument);
}

TEST(WireMessage, StreamBatchesAndSplits) {
  std::vector<Message> messages;
  messages.emplace_back(Hello{10, 20, 30});
  messages.emplace_back(Request{5});
  EncodedSymbolMessage symbol;
  symbol.symbol.id = 7;
  symbol.symbol.payload = {0xaa};
  messages.emplace_back(symbol);
  const auto bytes = encode_stream(messages);
  const auto decoded = decode_stream(bytes);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(std::get<Hello>(decoded[0]), (Hello{10, 20, 30}));
  EXPECT_EQ(std::get<Request>(decoded[1]), (Request{5}));
  EXPECT_EQ(std::get<EncodedSymbolMessage>(decoded[2]), symbol);
}

TEST(LossyChannel, DeliversInOrderWithoutLoss) {
  LossyChannel channel(ChannelConfig{});
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(channel.send_message(Request{i}));
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(channel.pending());
    EXPECT_EQ(std::get<Request>(channel.receive_message()).symbols_desired,
              i);
  }
  EXPECT_FALSE(channel.pending());
  EXPECT_EQ(channel.dropped(), 0u);
}

TEST(LossyChannel, DropsAtConfiguredRate) {
  ChannelConfig config;
  config.loss_rate = 0.3;
  config.seed = 7;
  LossyChannel channel(config);
  constexpr std::size_t kFrames = 10000;
  for (std::size_t i = 0; i < kFrames; ++i) {
    channel.send_message(Request{i});
  }
  EXPECT_NEAR(static_cast<double>(channel.dropped()) / kFrames, 0.3, 0.03);
  std::size_t delivered = 0;
  while (channel.pending()) {
    // An empty receive releases the in-flight frame (one-hop residency);
    // only non-empty results are deliveries.
    if (!channel.receive().empty()) ++delivered;
  }
  EXPECT_EQ(delivered + channel.dropped(), kFrames);
}

TEST(LossyChannel, RejectsOversizedFrames) {
  ChannelConfig config;
  config.mtu = 16;
  LossyChannel channel(config);
  EXPECT_FALSE(channel.send(std::vector<std::uint8_t>(17, 0)));
  EXPECT_TRUE(channel.send(std::vector<std::uint8_t>(16, 0)));
  EXPECT_EQ(channel.oversized(), 1u);
}

TEST(LossyChannel, ReordersButLosesNothing) {
  ChannelConfig config;
  config.reorder_rate = 0.5;
  config.seed = 9;
  LossyChannel channel(config);
  constexpr std::uint64_t kFrames = 1000;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    channel.send_message(Request{i});
  }
  std::vector<bool> seen(kFrames, false);
  std::size_t out_of_order = 0;
  std::uint64_t previous = 0;
  bool first = true;
  while (channel.pending()) {
    const auto v =
        std::get<Request>(channel.receive_message()).symbols_desired;
    seen[v] = true;
    if (!first && v < previous) ++out_of_order;
    previous = v;
    first = false;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
  EXPECT_GT(out_of_order, 0u);
}

TEST(LossyChannel, ReceiveOnEmptyIsEmptyAndMessageThrows) {
  LossyChannel channel(ChannelConfig{});
  EXPECT_TRUE(channel.receive().empty());
  EXPECT_THROW(channel.receive_message(), std::logic_error);
}

// --- Property-style robustness: malformed inputs must throw, never UB ----

std::vector<Message> sample_messages() {
  std::vector<Message> messages;
  messages.emplace_back(Hello{1234, 0xdeadbeefULL, 567});
  messages.emplace_back(Request{987654});
  EncodedSymbolMessage encoded;
  encoded.symbol.id = 42;
  encoded.symbol.payload = {1, 2, 3, 4, 5, 6, 7};
  messages.emplace_back(encoded);
  RecodedSymbolMessage recoded;
  recoded.symbol.constituents = {10, 20, 30, 40};
  recoded.symbol.payload = {9, 8, 7};
  messages.emplace_back(recoded);
  sketch::MinwiseSketch sketch(1 << 20, 16);
  sketch.update_all({1, 2, 3, 99});
  messages.emplace_back(SketchMessage{sketch});
  auto filter = filter::BloomFilter::with_bits_per_element(64, 8.0);
  for (std::uint64_t i = 0; i < 64; ++i) filter.insert(i * 7);
  messages.emplace_back(BloomSummaryMessage{filter});
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 100; ++i) keys.push_back(i * 1337);
  messages.emplace_back(ArtSummaryMessage{
      art::ArtSummary::build(art::ReconciliationTree(keys), 4.0, 4.0)});
  messages.emplace_back(Fragment{7, 0, 2, {1, 2, 3}});
  messages.emplace_back(RequestUpdate{12});
  return messages;
}

TEST(WireProperty, HugeRecodedDegreeIsRejectedWithoutAllocating) {
  // A corrupt RecodedSymbol frame can claim any degree in its varint; the
  // decoder must reject it like a truncation instead of reserving a
  // multi-gigabyte constituent vector first.
  for (const std::uint64_t degree :
       {std::uint64_t{1} << 61, std::uint64_t{1} << 35,
        std::uint64_t{1000}}) {
    util::ByteWriter payload;
    payload.varint(degree);  // claims far more constituents than follow
    util::ByteWriter frame;
    frame.u16(kMagic);
    frame.u8(kVersion);
    frame.u8(static_cast<std::uint8_t>(MessageType::kRecodedSymbol));
    frame.varint(payload.bytes().size());
    frame.raw(payload.bytes());
    EXPECT_THROW(decode_frame(frame.bytes()), std::invalid_argument)
        << "degree " << degree;
  }
}

TEST(WireProperty, HugeSummaryCountsAreRejectedWithoutAllocating) {
  // Same class of corruption as the recoded-degree case, for the
  // size-prefixed summary deserializers: claimed element counts far
  // beyond the payload must be rejected, not allocated.
  const auto frame_of = [](MessageType type,
                           const std::vector<std::uint8_t>& blob) {
    util::ByteWriter payload;
    payload.varint(blob.size());
    payload.raw(blob);
    util::ByteWriter frame;
    frame.u16(kMagic);
    frame.u8(kVersion);
    frame.u8(static_cast<std::uint8_t>(type));
    frame.varint(payload.bytes().size());
    frame.raw(payload.bytes());
    return frame.bytes();
  };

  util::ByteWriter sketch_blob;  // universe, seed, then an absurd count
  sketch_blob.u64(1ull << 20);
  sketch_blob.u64(42);
  sketch_blob.varint(std::uint64_t{1} << 40);
  EXPECT_THROW(decode_frame(frame_of(MessageType::kSketch,
                                     sketch_blob.bytes())),
               std::invalid_argument);

  util::ByteWriter bloom_blob;  // an absurd bit count, then the rest
  bloom_blob.varint(std::uint64_t{1} << 40);
  bloom_blob.varint(8);
  bloom_blob.u64(42);
  bloom_blob.varint(100);
  EXPECT_THROW(decode_frame(frame_of(MessageType::kBloomSummary,
                                     bloom_blob.bytes())),
               std::invalid_argument);
}

TEST(WireProperty, EveryTruncationOfEveryFrameIsRejected) {
  for (const Message& message : sample_messages()) {
    const auto frame = encode_frame(message);
    for (std::size_t keep = 0; keep < frame.size(); ++keep) {
      std::vector<std::uint8_t> prefix(frame.begin(),
                                       frame.begin() + keep);
      EXPECT_THROW(decode_frame(prefix), std::invalid_argument)
          << "type " << static_cast<int>(message_type(message))
          << " truncated to " << keep << " of " << frame.size();
    }
  }
}

TEST(WireProperty, TrailingBytesAfterAnyFrameAreRejected) {
  util::Xoshiro256 rng(0x7a11);
  for (const Message& message : sample_messages()) {
    for (std::size_t extra = 1; extra <= 4; ++extra) {
      auto frame = encode_frame(message);
      for (std::size_t i = 0; i < extra; ++i) {
        frame.push_back(static_cast<std::uint8_t>(rng()));
      }
      EXPECT_THROW(decode_frame(frame), std::invalid_argument);
    }
  }
}

TEST(WireProperty, CorruptedMagicIsAlwaysRejected) {
  for (const Message& message : sample_messages()) {
    const auto frame = encode_frame(message);
    for (int bit = 0; bit < 16; ++bit) {
      auto bad = frame;
      bad[static_cast<std::size_t>(bit / 8)] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_THROW(decode_frame(bad), std::invalid_argument);
    }
  }
}

TEST(WireProperty, RandomSingleByteCorruptionNeverCrashes) {
  util::Xoshiro256 rng(0xc0881);
  const auto messages = sample_messages();
  for (int trial = 0; trial < 2000; ++trial) {
    auto frame = encode_frame(messages[trial % messages.size()]);
    const std::size_t pos = rng.next_below(frame.size());
    frame[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    // Either the corruption is detected or it produced a different but
    // well-formed message; both are acceptable, crashing is not.
    try {
      (void)decode_frame(frame);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(WireProperty, RandomGarbageNeverCrashesDecoders) {
  util::Xoshiro256 rng(0x6a5ba6e);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(96));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    try {
      (void)decode_frame(bytes);
    } catch (const std::invalid_argument&) {
    }
    try {
      (void)decode_stream(bytes);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(WireProperty, TruncatedStreamsRejectOrYieldAPrefix) {
  const auto messages = sample_messages();
  const auto bytes = encode_stream(messages);
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + keep);
    try {
      const auto decoded = decode_stream(prefix);
      // A cut on a frame boundary yields exactly the leading messages.
      EXPECT_LT(decoded.size(), messages.size());
      for (std::size_t i = 0; i < decoded.size(); ++i) {
        EXPECT_EQ(message_type(decoded[i]), message_type(messages[i]));
      }
    } catch (const std::invalid_argument&) {
      // A cut inside a frame must be detected.
    }
  }
}

}  // namespace
}  // namespace icd::wire

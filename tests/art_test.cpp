// Tests for icd::art: reconciliation tree construction and the
// Bloom-filter-summarized approximate difference search of Section 5.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "art/art_summary.hpp"
#include "art/reconciliation_tree.hpp"
#include "util/random.hpp"

namespace icd::art {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng());
  return keys;
}

TEST(ReconciliationTree, EmptyTree) {
  const ReconciliationTree tree({});
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.element_count(), 0u);
  EXPECT_EQ(tree.depth(), 0u);
}

TEST(ReconciliationTree, SingleElement) {
  const ReconciliationTree tree({42});
  EXPECT_EQ(tree.element_count(), 1u);
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_EQ(tree.depth(), 0u);
  EXPECT_EQ(tree.leaf_values().size(), 1u);
  EXPECT_EQ(tree.internal_values().size(), 0u);
}

TEST(ReconciliationTree, CollapsedSizeIs2nMinus1) {
  // "The tree can be collapsed ... leaving only O(|S_A|) nodes": a binary
  // tree with n leaves where every internal node branches has exactly
  // 2n - 1 nodes.
  for (const std::size_t n : {2u, 10u, 100u, 1000u}) {
    const ReconciliationTree tree(random_keys(n, n));
    EXPECT_EQ(tree.element_count(), n);
    EXPECT_EQ(tree.nodes().size(), 2 * n - 1);
    EXPECT_EQ(tree.leaf_values().size(), n);
    EXPECT_EQ(tree.internal_values().size(), n - 1);
  }
}

TEST(ReconciliationTree, DepthIsLogarithmic) {
  // Position hashing balances the tree: depth O(log n) w.h.p.
  const std::size_t n = 4096;
  const ReconciliationTree tree(random_keys(n, 7));
  // log2(4096) = 12; allow generous slack for hash-induced imbalance.
  EXPECT_LE(tree.depth(), 40u);
  EXPECT_GE(tree.depth(), 12u);
}

TEST(ReconciliationTree, DuplicateKeysIgnored) {
  const ReconciliationTree tree({5, 5, 5, 9});
  EXPECT_EQ(tree.element_count(), 2u);
}

TEST(ReconciliationTree, RootValueIsXorOfAllLeafValues) {
  const auto keys = random_keys(257, 8);
  const ReconciliationTree tree(keys);
  std::uint64_t expected = 0;
  for (const auto key : keys) expected ^= tree.value_hash(key);
  EXPECT_EQ(tree.nodes()[static_cast<std::size_t>(tree.root())].value,
            expected);
}

TEST(ReconciliationTree, InternalCountsAreConsistent) {
  const auto keys = random_keys(500, 9);
  const ReconciliationTree tree(keys);
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf()) {
      EXPECT_EQ(node.count, 1u);
    } else {
      const auto& l = tree.nodes()[static_cast<std::size_t>(node.left)];
      const auto& r = tree.nodes()[static_cast<std::size_t>(node.right)];
      EXPECT_EQ(node.count, l.count + r.count);
      EXPECT_EQ(node.value, l.value ^ r.value);
    }
  }
}

TEST(ReconciliationTree, SameSetsSameSeedGiveSameStructure) {
  auto keys = random_keys(300, 10);
  const ReconciliationTree a(keys);
  std::reverse(keys.begin(), keys.end());
  const ReconciliationTree b(keys);
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  // Construction is order-independent (sorted by position hash).
  const auto& ra = a.nodes()[static_cast<std::size_t>(a.root())];
  const auto& rb = b.nodes()[static_cast<std::size_t>(b.root())];
  EXPECT_EQ(ra.value, rb.value);
  EXPECT_EQ(ra.count, rb.count);
}

TEST(ArtSummary, IdenticalSetsFindNoDifferences) {
  const auto keys = random_keys(1000, 11);
  const ReconciliationTree local(keys), remote(keys);
  const auto summary = ArtSummary::build(remote, 4.0, 4.0);
  for (int correction = 0; correction <= 5; ++correction) {
    EXPECT_TRUE(find_local_differences(local, summary, correction).empty());
  }
}

TEST(ArtSummary, EveryReportedDifferenceIsReal) {
  // Bloom filters have no false negatives, so a leaf miss is proof of
  // absence: reported differences are never wrong.
  auto remote_keys = random_keys(2000, 12);
  auto local_keys = remote_keys;
  const auto extra = random_keys(100, 13);
  local_keys.insert(local_keys.end(), extra.begin(), extra.end());

  const ReconciliationTree local(local_keys), remote(remote_keys);
  const auto summary = ArtSummary::build(remote, 4.0, 4.0);
  const std::set<std::uint64_t> truth(extra.begin(), extra.end());
  for (int correction = 0; correction <= 5; ++correction) {
    for (const auto key :
         find_local_differences(local, summary, correction)) {
      EXPECT_TRUE(truth.contains(key));
    }
  }
}

TEST(ArtSummary, NegativeCorrectionThrows) {
  const ReconciliationTree t(random_keys(10, 14));
  const auto summary = ArtSummary::build(t, 4.0, 4.0);
  EXPECT_THROW(find_local_differences(t, summary, -1), std::invalid_argument);
}

/// Accuracy sweep mirroring Table 4(b): fraction of a 100-element
/// difference found, by bits/element and correction level.
struct ArtAccuracyPoint {
  double total_bits_per_element;
  int correction;
  double min_accuracy;  // conservative lower bound on expected accuracy
  double max_accuracy;  // and an upper bound for low-budget points
};

class ArtAccuracy : public ::testing::TestWithParam<ArtAccuracyPoint> {};

TEST_P(ArtAccuracy, TracksTable4b) {
  const auto [bits, correction, lo, hi] = GetParam();
  const std::size_t n = 5000, d = 100;
  double found_total = 0;
  constexpr int kTrials = 3;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto remote_keys = random_keys(n, 20 + trial);
    auto local_keys = remote_keys;
    const auto extra = random_keys(d, 50 + trial);
    local_keys.insert(local_keys.end(), extra.begin(), extra.end());
    const ReconciliationTree local(local_keys), remote(remote_keys);
    const auto summary = ArtSummary::build(remote, bits / 2, bits / 2);
    found_total += static_cast<double>(
        find_local_differences(local, summary, correction).size());
  }
  const double accuracy = found_total / (kTrials * d);
  EXPECT_GE(accuracy, lo);
  EXPECT_LE(accuracy, hi);
}

INSTANTIATE_TEST_SUITE_P(
    Table4bShape, ArtAccuracy,
    ::testing::Values(
        // At 8 bits/element accuracy climbs steeply with correction,
        // reaching ~0.9 at correction 5 (paper: 0.9234).
        ArtAccuracyPoint{8.0, 0, 0.0, 0.7},
        ArtAccuracyPoint{8.0, 2, 0.3, 1.0},
        ArtAccuracyPoint{8.0, 5, 0.7, 1.0},
        // At 2 bits/element even correction 5 finds only a minority
        // (paper: 0.2677).
        ArtAccuracyPoint{2.0, 5, 0.0, 0.6},
        // Mid budget.
        ArtAccuracyPoint{4.0, 5, 0.2, 0.9}));

TEST(ArtSummary, AccuracyMonotoneInCorrectionLevel) {
  const std::size_t n = 4000, d = 100;
  auto remote_keys = random_keys(n, 30);
  auto local_keys = remote_keys;
  const auto extra = random_keys(d, 31);
  local_keys.insert(local_keys.end(), extra.begin(), extra.end());
  const ReconciliationTree local(local_keys), remote(remote_keys);
  const auto summary = ArtSummary::build(remote, 4.0, 4.0);
  std::size_t previous = 0;
  for (int correction = 0; correction <= 5; ++correction) {
    const auto found =
        find_local_differences(local, summary, correction).size();
    EXPECT_GE(found, previous);
    previous = found;
  }
}

TEST(ArtSummary, ZeroLeafBudgetFindsNothing) {
  // A disabled leaf filter answers "present" to everything, so no leaf can
  // ever be reported missing — the x = 0 endpoint of Figure 4(a).
  auto remote_keys = random_keys(1000, 32);
  auto local_keys = remote_keys;
  const auto extra = random_keys(50, 33);
  local_keys.insert(local_keys.end(), extra.begin(), extra.end());
  const ReconciliationTree local(local_keys), remote(remote_keys);
  const auto summary = ArtSummary::build(remote, 0.0, 8.0);
  EXPECT_TRUE(find_local_differences(local, summary, 5).empty());
}

TEST(ArtSummary, ZeroInternalBudgetNeedsCorrection) {
  // A disabled internal filter matches at every internal node; with
  // correction 0 the search prunes at the root, with a large correction it
  // degenerates to checking every leaf (slow but accurate).
  auto remote_keys = random_keys(1000, 34);
  auto local_keys = remote_keys;
  const auto extra = random_keys(50, 35);
  local_keys.insert(local_keys.end(), extra.begin(), extra.end());
  const ReconciliationTree local(local_keys), remote(remote_keys);
  const auto summary = ArtSummary::build(remote, 8.0, 0.0);
  EXPECT_TRUE(find_local_differences(local, summary, 0).empty());
  const auto found = find_local_differences(local, summary, 1000);
  EXPECT_GE(found.size(), 45u);  // limited only by leaf filter fp (8 bits)
}

TEST(ArtSummary, TotalBitsMatchBudget) {
  const auto keys = random_keys(1000, 36);
  const ReconciliationTree tree(keys);
  const auto summary = ArtSummary::build(tree, 4.0, 4.0);
  // ~8 bits/element total (leaf filter sized on n, internal on n too).
  EXPECT_NEAR(static_cast<double>(summary.total_bits()), 8.0 * 1000, 200.0);
}

TEST(ArtSummary, SerializationRoundTrip) {
  auto remote_keys = random_keys(500, 37);
  auto local_keys = remote_keys;
  const auto extra = random_keys(20, 38);
  local_keys.insert(local_keys.end(), extra.begin(), extra.end());
  const ReconciliationTree local(local_keys), remote(remote_keys);
  const auto summary = ArtSummary::build(remote, 4.0, 4.0);
  const auto restored = ArtSummary::deserialize(summary.serialize());
  EXPECT_EQ(restored.element_count(), summary.element_count());
  EXPECT_EQ(restored.total_bits(), summary.total_bits());
  // Same search results through the wire.
  for (int correction : {0, 3, 5}) {
    EXPECT_EQ(find_local_differences(local, restored, correction),
              find_local_differences(local, summary, correction));
  }
}

TEST(ArtSummary, SummaryIsCompact) {
  // "a gigabyte of content will typically require a summary on the order of
  // 10KB in size" — i.e. O(n) bits. At 10,000 elements and 8 bits/element
  // the summary is ~10 KB.
  const auto keys = random_keys(10000, 39);
  const ReconciliationTree tree(keys);
  const auto summary = ArtSummary::build(tree, 4.0, 4.0);
  EXPECT_LE(summary.serialize().size(), 12 * 1024u);
}

}  // namespace
}  // namespace icd::art

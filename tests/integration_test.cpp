// End-to-end integration: the complete informed-delivery protocol running
// over wire frames through lossy channels — the closest this repository
// gets to the paper's prototype deployment.
//
// Receiver and sender are full-fidelity Peers. All control and data
// traffic is serialized into wire::Message frames and carried by
// wire::LossyChannel; the sender side drives itself purely from what
// arrives on its control channel (Hello, sketch, Bloom summary, request).
#include <gtest/gtest.h>

#include <vector>

#include "core/origin.hpp"
#include "core/peer.hpp"
#include "reconcile/set_difference.hpp"
#include "util/random.hpp"
#include "wire/channel.hpp"
#include "wire/message.hpp"

namespace icd {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

struct ProtocolWorld {
  static constexpr std::size_t kBlocks = 300;
  static constexpr std::size_t kBlockSize = 16;

  ProtocolWorld()
      : content(random_content(kBlocks * kBlockSize, 99)),
        origin(content, kBlockSize,
               codec::DegreeDistribution::robust_soliton(kBlocks), 4242),
        sender("sender", origin.parameters(),
               codec::DegreeDistribution::robust_soliton(kBlocks)),
        receiver("receiver", origin.parameters(),
                 codec::DegreeDistribution::robust_soliton(kBlocks)) {}

  std::vector<std::uint8_t> content;
  core::OriginServer origin;
  core::Peer sender;
  core::Peer receiver;
};

/// Runs the protocol with the given data-channel loss rate; returns the
/// number of data frames sent. The control channel is lossless (in a
/// deployment it would be TCP; data symbols ride the lossy path).
std::size_t run_protocol(ProtocolWorld& world, double data_loss) {
  // Working sets: sender 240 symbols, receiver a different 180 — together
  // enough to decode (need ~321).
  for (int i = 0; i < 240; ++i) world.sender.receive_encoded(world.origin.next());
  for (int i = 0; i < 180; ++i) {
    world.receiver.receive_encoded(world.origin.next());
  }

  wire::LossyChannel control(wire::ChannelConfig{});
  wire::ChannelConfig data_config;
  data_config.loss_rate = data_loss;
  data_config.seed = 777;
  wire::LossyChannel data(data_config);

  // --- Receiver side: handshake frames ---------------------------------
  control.send_message(wire::Hello{
      world.receiver.parameters().block_count,
      world.receiver.parameters().session_seed,
      world.receiver.symbol_count()});
  control.send_message(wire::SketchMessage{world.receiver.sketch()});
  control.send_message(
      wire::BloomSummaryMessage{world.receiver.bloom_summary(8.0)});
  control.send_message(wire::Request{200});

  // --- Sender side: consume control, build its serving state ------------
  const auto hello = std::get<wire::Hello>(control.receive_message());
  EXPECT_EQ(hello.block_count, world.sender.parameters().block_count);
  const auto peer_sketch =
      std::get<wire::SketchMessage>(control.receive_message()).sketch;
  const auto peer_bloom =
      std::get<wire::BloomSummaryMessage>(control.receive_message()).filter;
  const auto request = std::get<wire::Request>(control.receive_message());
  EXPECT_TRUE(control.pending() == false);

  const double resemblance =
      sketch::MinwiseSketch::resemblance(world.sender.sketch(), peer_sketch);
  EXPECT_GE(resemblance, 0.0);

  // Filter the sender's working set by the receiver's Bloom summary and
  // restrict the recoding domain to the requested size.
  auto domain =
      reconcile::bloom_set_difference(world.sender.symbol_ids(), peer_bloom);
  util::Xoshiro256 rng(31337);
  if (domain.size() > request.symbols_desired) {
    util::shuffle(domain, rng);
    domain.resize(request.symbols_desired);
  }
  const auto dist =
      codec::DegreeDistribution::robust_soliton(
          std::max<std::size_t>(domain.size(), 2))
          .truncated(codec::kDefaultRecodeDegreeLimit);

  // --- Data plane: recoded symbols as frames through the lossy channel --
  std::size_t frames_sent = 0;
  const std::size_t frame_cap = 6000;
  while (!world.receiver.has_content() && frames_sent < frame_cap) {
    const auto symbol =
        world.sender.recode_from(domain, dist.sample(rng), rng);
    EXPECT_TRUE(data.send_message(wire::RecodedSymbolMessage{symbol}));
    ++frames_sent;
    while (data.pending()) {
      const auto message = data.receive_message();
      world.receiver.receive_recoded(
          std::get<wire::RecodedSymbolMessage>(message).symbol);
    }
  }
  return frames_sent;
}

TEST(ProtocolIntegration, LosslessTransferDecodes) {
  ProtocolWorld world;
  const auto frames = run_protocol(world, 0.0);
  ASSERT_TRUE(world.receiver.has_content());
  EXPECT_EQ(world.receiver.content(world.content.size()), world.content);
  EXPECT_LT(frames, 1000u);
}

TEST(ProtocolIntegration, SurvivesHeavyDataLoss) {
  ProtocolWorld world;
  const auto frames = run_protocol(world, 0.35);
  ASSERT_TRUE(world.receiver.has_content());
  EXPECT_EQ(world.receiver.content(world.content.size()), world.content);
  // Roughly 1/(1-loss) more frames than the lossless run; sanity-bound it.
  EXPECT_LT(frames, 3000u);
}

TEST(ProtocolIntegration, SymbolFramesFitTheMtu) {
  // Every data frame (recoded symbol header + payload) must fit a 1500-byte
  // MTU at the paper's degree limit: 50 * 8-byte ids + payload.
  ProtocolWorld world;
  for (int i = 0; i < 100; ++i) world.sender.receive_encoded(world.origin.next());
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto symbol = world.sender.recode(50, rng);
    const auto frame =
        wire::encode_frame(wire::RecodedSymbolMessage{symbol});
    EXPECT_LE(frame.size(), 1500u);
  }
}

TEST(ProtocolIntegration, ControlHandshakeFitsFourPackets) {
  // Sketch (1 KB) + Bloom summary (~8 bits/elt) + hello + request must stay
  // within the handful-of-packets budget the paper advertises.
  ProtocolWorld world;
  for (int i = 0; i < 180; ++i) {
    world.receiver.receive_encoded(world.origin.next());
  }
  std::vector<wire::Message> handshake;
  handshake.emplace_back(wire::Hello{world.receiver.parameters().block_count,
                                     world.receiver.parameters().session_seed,
                                     world.receiver.symbol_count()});
  handshake.emplace_back(wire::SketchMessage{world.receiver.sketch()});
  handshake.emplace_back(
      wire::BloomSummaryMessage{world.receiver.bloom_summary(8.0)});
  handshake.emplace_back(wire::Request{200});
  const auto bytes = wire::encode_stream(handshake);
  EXPECT_LE(bytes.size(), 4 * 1024u);
  // And the stream parses back intact.
  EXPECT_EQ(wire::decode_stream(bytes).size(), 4u);
}

}  // namespace
}  // namespace icd

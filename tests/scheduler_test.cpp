// Simulated-time scheduling: the LossyChannel virtual clock (RTT, jitter
// distributions, multi-hop residency, per-hop token-bucket rate limits),
// the EventLoop (time, kind, key) queue and its global clock, closed-loop
// flow control (Request re-issue stops senders at satisfaction), the
// shards=1 scheduler-vs-legacy bit-for-bit gate, and the
// jumping-vs-lockstep trajectory equality gates under timed, lossy,
// reordering links.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/delivery.hpp"
#include "core/endpoint.hpp"
#include "core/event_loop.hpp"
#include "core/origin.hpp"
#include "core/sharded_delivery.hpp"
#include "util/random.hpp"
#include "wire/channel.hpp"
#include "wire/transport.hpp"

namespace icd {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

std::vector<std::uint8_t> tagged_frame(std::uint16_t tag,
                                       std::size_t size = 32) {
  std::vector<std::uint8_t> frame(size, 0);
  frame[0] = static_cast<std::uint8_t>(tag);
  frame[1] = static_cast<std::uint8_t>(tag >> 8);
  return frame;
}

std::uint16_t frame_tag(const std::vector<std::uint8_t>& frame) {
  return static_cast<std::uint16_t>(frame[0] |
                                    (static_cast<std::uint16_t>(frame[1])
                                     << 8));
}

// --- EventLoop --------------------------------------------------------------

TEST(EventLoop, PopsInTimeKindKeyOrder) {
  core::EventLoop loop;
  loop.schedule(5, core::EventKind::kService, 2);
  loop.schedule(3, core::EventKind::kService, 9);
  loop.schedule(5, core::EventKind::kService, 1);
  loop.schedule(3, core::EventKind::kService, 4);
  // Equal (time, key) pairs order by kind: refresh before origin feed
  // before link events — the intra-tick execution order.
  loop.schedule(3, core::EventKind::kRefresh, 9);
  loop.schedule(3, core::EventKind::kOriginFeed, 9);

  std::vector<std::pair<core::EventKind, std::uint64_t>> order;
  while (auto event = loop.pop_due(10)) {
    order.emplace_back(event->kind, event->key);
  }
  const std::vector<std::pair<core::EventKind, std::uint64_t>> expected{
      {core::EventKind::kRefresh, 9},    {core::EventKind::kOriginFeed, 9},
      {core::EventKind::kService, 4},    {core::EventKind::kService, 9},
      {core::EventKind::kService, 1},    {core::EventKind::kService, 2}};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(loop.events_processed(), expected.size());
}

TEST(EventLoop, PopDueLeavesFutureEventsQueued) {
  core::EventLoop loop;
  loop.schedule(7, core::EventKind::kService, 1);
  loop.schedule(3, core::EventKind::kService, 2);
  auto due = loop.pop_due(4);
  ASSERT_TRUE(due.has_value());
  EXPECT_EQ(due->key, 2u);
  EXPECT_FALSE(loop.pop_due(4).has_value());  // key 1 due at 7
  ASSERT_TRUE(loop.peek().has_value());
  EXPECT_EQ(loop.peek()->at, 7u);
  due = loop.pop_due(7);
  ASSERT_TRUE(due.has_value());
  EXPECT_EQ(due->key, 1u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, VirtualTimeIsMonotoneUnderRandomOps) {
  // Property test: under arbitrary interleavings of schedule / pop /
  // advance / skip, the global clock never moves backwards, due pops come
  // out in nondecreasing (time, kind, key) order within a drain, and
  // skip_to accounts exactly the ticks it jumped.
  util::Xoshiro256 rng(0xfeed);
  core::EventLoop loop;
  std::uint64_t last_now = 0;
  std::uint64_t expected_skipped = 0;
  for (int step = 0; step < 2000; ++step) {
    const auto op = rng.next_below(4);
    if (op == 0) {
      loop.schedule(loop.now() + rng.next_below(50),
                    static_cast<core::EventKind>(rng.next_below(7)),
                    rng.next_below(8));
    } else if (op == 1) {
      loop.advance_to(loop.now() + rng.next_below(3));
    } else if (op == 2) {
      const std::uint64_t target = loop.now() + rng.next_below(20);
      if (target > loop.now()) expected_skipped += target - loop.now();
      loop.skip_to(target);
    } else {
      std::uint64_t last_at = 0;
      core::Event last_event{};
      bool first = true;
      while (auto event = loop.pop_due(loop.now())) {
        EXPECT_LE(event->at, loop.now());
        EXPECT_GE(event->at, last_at);
        if (!first && event->at == last_event.at) {
          EXPECT_TRUE(last_event.kind < event->kind ||
                      (last_event.kind == event->kind &&
                       last_event.key <= event->key));
        }
        last_at = event->at;
        last_event = *event;
        first = false;
      }
    }
    EXPECT_GE(loop.now(), last_now) << "clock moved backwards";
    last_now = loop.now();
  }
  EXPECT_EQ(loop.ticks_skipped(), expected_skipped);
}

// --- TimedFrameQueue sort invariant -----------------------------------------

TEST(TimedFrameQueue, ReorderSwapKeepsQueueSortedAndNextArrivalTrue) {
  wire::TimedFrameQueue queue;
  queue.insert({10, 0, tagged_frame(0)}, false);
  queue.insert({12, 1, tagged_frame(1)}, false);
  // The swap exchanges arrivals with the latest-scheduled frame (seq 1,
  // arrival 12): frame 1 now arrives at 9 and must surface at the front,
  // not stay buried behind frame 0.
  queue.insert({9, 2, tagged_frame(2)}, true);
  ASSERT_EQ(queue.next_arrival(), std::optional<std::uint64_t>{9});
  auto first = queue.pop_due(9);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(frame_tag(*first), 1u);
  EXPECT_EQ(queue.next_arrival(), std::optional<std::uint64_t>{10});
  EXPECT_FALSE(queue.pop_due(9).has_value());
  EXPECT_EQ(frame_tag(*queue.pop_due(10)), 0u);
  EXPECT_EQ(frame_tag(*queue.pop_due(12)), 2u);  // took arrival 12 in swap
  EXPECT_TRUE(queue.empty());
}

// --- Virtual clock: propagation delay, hops, jitter -------------------------

TEST(TimedChannel, PropagationDelayHoldsFramesUntilDue) {
  wire::ChannelConfig config;
  config.delay_ticks = 5;
  config.seed = 1;
  wire::LossyChannel channel(config);
  ASSERT_TRUE(channel.timed());
  ASSERT_TRUE(channel.send(tagged_frame(42)));

  for (std::uint64_t t = 0; t < 5; ++t) {
    channel.advance_to(t);
    EXPECT_TRUE(channel.receive().empty()) << "tick " << t;
    EXPECT_TRUE(channel.pending());
  }
  channel.advance_to(5);
  const auto frame = channel.receive();
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame_tag(frame), 42u);
  EXPECT_FALSE(channel.pending());
  EXPECT_EQ(channel.next_arrival_at(), std::nullopt);
}

TEST(TimedChannel, MultiHopResidencyMultipliesDelay) {
  wire::ChannelConfig config;
  config.delay_ticks = 2;
  config.hops = 3;
  config.seed = 2;
  wire::LossyChannel channel(config);
  ASSERT_TRUE(channel.send(tagged_frame(7)));
  ASSERT_EQ(channel.next_arrival_at(), std::optional<std::uint64_t>{6});
  channel.advance_to(5);
  EXPECT_TRUE(channel.receive().empty());
  channel.advance_to(6);
  EXPECT_FALSE(channel.receive().empty());
}

TEST(TimedChannel, JitterSpreadsArrivalsWithinPerHopBound) {
  wire::ChannelConfig config;
  config.delay_ticks = 3;
  config.jitter_ticks = 6;
  config.seed = 3;
  wire::LossyChannel channel(config);
  constexpr std::size_t kFrames = 300;
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(channel.send(tagged_frame(static_cast<std::uint16_t>(i))));
  }
  // All sent at t = 0: arrivals must land in [delay, delay + jitter], and
  // a 0..6 uniform draw over 300 frames must actually spread (>= 4 of the
  // 7 possible ticks occupied — loose enough to never flake).
  std::size_t delivered = 0;
  std::set<std::uint64_t> occupied_ticks;
  for (std::uint64_t t = 0; t <= 9; ++t) {
    channel.advance_to(t);
    std::size_t at_tick = 0;
    while (true) {
      const auto frame = channel.receive();
      if (frame.empty()) break;
      ++at_tick;
    }
    if (at_tick > 0) {
      EXPECT_GE(t, 3u) << "arrival before the propagation delay";
      occupied_ticks.insert(t);
    }
    delivered += at_tick;
  }
  EXPECT_EQ(delivered, kFrames);
  EXPECT_GE(occupied_ticks.size(), 4u);
}

TEST(TimedChannel, JitterReordersSendOrder) {
  wire::ChannelConfig config;
  config.delay_ticks = 1;
  config.jitter_ticks = 8;
  config.seed = 4;
  wire::LossyChannel channel(config);
  constexpr std::size_t kFrames = 200;
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(channel.send(tagged_frame(static_cast<std::uint16_t>(i))));
  }
  channel.advance_to(100);
  std::vector<std::uint16_t> order;
  while (channel.pending()) order.push_back(frame_tag(channel.receive()));
  ASSERT_EQ(order.size(), kFrames);
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 0u) << "independent jitter draws must reorder";
  // Everything still arrives exactly once.
  std::vector<std::uint16_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < kFrames; ++i) EXPECT_EQ(sorted[i], i);
}

// --- Token bucket -----------------------------------------------------------

TEST(TimedChannel, TokenBucketConservesRate) {
  wire::ChannelConfig config;
  config.rate_bytes_per_tick = 100.0;
  config.burst_bytes = 500;
  config.seed = 5;
  wire::LossyChannel channel(config);
  // Saturate: offer 5x the link rate every tick for 200 ticks.
  constexpr std::uint64_t kTicks = 200;
  std::size_t delivered_bytes = 0;
  for (std::uint64_t t = 0; t < kTicks; ++t) {
    channel.advance_to(t);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(channel.send(tagged_frame(0, /*size=*/100)));
    }
    while (true) {
      const auto frame = channel.receive();
      if (frame.empty()) break;
      delivered_bytes += frame.size();
    }
  }
  // Conservation: arrivals by tick T never exceed rate * T + burst...
  EXPECT_LE(delivered_bytes, 100 * (kTicks - 1) + 500);
  // ...and a saturated link runs at its full rate (loose floor).
  EXPECT_GE(delivered_bytes, 100 * (kTicks - 1) - 500);
  EXPECT_GT(channel.throttled(), 0u);
}

TEST(TimedChannel, SendReadyAtTracksBucketFill) {
  wire::ChannelConfig config;
  config.rate_bytes_per_tick = 100.0;
  config.burst_bytes = 1000;
  config.seed = 6;
  wire::LossyChannel channel(config);
  EXPECT_EQ(channel.send_ready_at(1000), 0u);  // full bucket
  ASSERT_TRUE(channel.send(tagged_frame(0, 1000)));  // drains it
  // 600 more bytes need 6 ticks of refill.
  EXPECT_EQ(channel.send_ready_at(600), 6u);
  channel.advance_to(6);
  EXPECT_EQ(channel.send_ready_at(600), 6u);
}

TEST(TimedChannel, SendReadyAtIsReachableForFramesLargerThanBurst) {
  wire::ChannelConfig config;
  config.rate_bytes_per_tick = 800.0;
  config.burst_bytes = 512;
  config.seed = 8;
  wire::LossyChannel channel(config);
  ASSERT_TRUE(channel.send(tagged_frame(0, 512)));  // drain the bucket
  // Probing with a frame bigger than the bucket must name a time that
  // satisfies itself once reached (the pacer departs such frames on a
  // full bucket, taking debt) — not a horizon that recedes forever.
  const std::uint64_t ready = channel.send_ready_at(1088);
  channel.advance_to(ready);
  EXPECT_EQ(channel.send_ready_at(1088), ready);
  ASSERT_TRUE(channel.send(tagged_frame(1, 1024)));
}

TEST(TimedChannel, PerHopRateLimitConservesEachHop) {
  // A 3-hop path at rate R meters *every* hop: arrivals by tick T never
  // exceed R*T + burst (the bottleneck is any one hop), and a saturated
  // path still sustains R end to end — hops x rate compose instead of the
  // old single path-level bucket.
  wire::ChannelConfig config;
  config.rate_bytes_per_tick = 100.0;
  config.burst_bytes = 300;
  config.hops = 3;
  config.delay_ticks = 1;
  config.seed = 9;
  wire::LossyChannel channel(config);
  constexpr std::uint64_t kTicks = 400;
  std::size_t delivered_bytes = 0;
  for (std::uint64_t t = 0; t < kTicks; ++t) {
    channel.advance_to(t);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(channel.send(tagged_frame(0, /*size=*/100)));
    }
    while (true) {
      const auto frame = channel.receive();
      if (frame.empty()) break;
      delivered_bytes += frame.size();
    }
  }
  // Conservation at the last hop: rate * elapsed + one bucket of burst.
  EXPECT_LE(delivered_bytes, 100 * (kTicks - 1) + 300);
  // A saturated multi-hop path still runs at the per-hop rate (loose
  // floor: propagation occupies the first hops * delay ticks).
  EXPECT_GE(delivered_bytes, 100 * (kTicks - 1) - 3 * 300);
  EXPECT_GT(channel.throttled(), 0u);
}

TEST(TimedChannel, MultiHopPathMatchesSingleHopThroughput) {
  // Composition: tripling the hop count changes latency, not steady-state
  // throughput — every hop meters the same R, so the path still carries R.
  const auto run = [](std::uint64_t hops) {
    wire::ChannelConfig config;
    config.rate_bytes_per_tick = 50.0;
    config.burst_bytes = 200;
    config.hops = hops;
    config.delay_ticks = 2;
    config.seed = 10;
    wire::LossyChannel channel(config);
    std::size_t delivered = 0;
    for (std::uint64_t t = 0; t < 600; ++t) {
      channel.advance_to(t);
      for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(channel.send(tagged_frame(0, /*size=*/100)));
      }
      while (true) {
        const auto frame = channel.receive();
        if (frame.empty()) break;
        delivered += frame.size();
      }
    }
    return delivered;
  };
  const std::size_t one_hop = run(1);
  const std::size_t three_hops = run(3);
  EXPECT_GT(one_hop, 0u);
  // Same rate either way, minus the extra hops' pipeline fill.
  EXPECT_NEAR(static_cast<double>(three_hops), static_cast<double>(one_hop),
              3 * 200.0 + 2 * 2 * 50.0);
}

TEST(TimedChannel, FlushCollapsesArrivalsForTeardown) {
  wire::ChannelConfig config;
  config.delay_ticks = 50;
  config.seed = 7;
  wire::LossyChannel channel(config);
  ASSERT_TRUE(channel.send(tagged_frame(1)));
  ASSERT_TRUE(channel.send(tagged_frame(2)));
  EXPECT_TRUE(channel.receive().empty());
  channel.flush();
  EXPECT_EQ(frame_tag(channel.receive()), 1u);
  EXPECT_EQ(frame_tag(channel.receive()), 2u);
}

// --- Flow control: Request re-issue stops senders ---------------------------

struct EndpointFixture {
  static constexpr std::size_t kBlocks = 200;
  static constexpr std::size_t kBlockSize = 24;

  EndpointFixture()
      : content(random_content(kBlocks * kBlockSize, 99)),
        origin(content, kBlockSize,
               codec::DegreeDistribution::robust_soliton(kBlocks), 555) {}

  core::Peer make_peer(const std::string& name, std::size_t preload) {
    core::Peer peer(name, origin.parameters(),
                    codec::DegreeDistribution::robust_soliton(kBlocks));
    for (std::size_t i = 0; i < preload; ++i) {
      peer.receive_encoded(origin.next());
    }
    return peer;
  }

  std::vector<std::uint8_t> content;
  core::OriginServer origin;
};

TEST(FlowControl, SenderStopsAtRequestSatisfaction) {
  EndpointFixture fixture;
  core::Peer sender_peer = fixture.make_peer("sender", 260);
  core::Peer receiver_peer = fixture.make_peer("receiver", 0);

  core::SessionOptions options;
  options.strategy = overlay::Strategy::kRandom;
  options.flow_control = true;
  options.flow_update_symbols = 4;
  options.requested_symbols = 40;

  wire::Pipe pipe(1024);
  core::SenderEndpoint sender(sender_peer, options, pipe.a());
  core::ReceiverEndpoint receiver(receiver_peer, options, pipe.b());
  receiver.start();

  std::vector<std::uint64_t> remaining_seen;
  std::size_t rounds = 0;
  for (; rounds < 2000 && !sender.satisfied(); ++rounds) {
    sender.tick();
    sender.send_symbol();
    receiver.tick();
    if (auto remaining = sender.receiver_remaining()) {
      if (remaining_seen.empty() || remaining_seen.back() != *remaining) {
        remaining_seen.push_back(*remaining);
      }
    }
  }
  ASSERT_TRUE(sender.satisfied()) << "no stop after " << rounds << " rounds";
  EXPECT_TRUE(receiver.satisfied());
  EXPECT_GE(receiver.new_encoded_symbols(), options.requested_symbols);

  // The re-issued counts decrement monotonically down to the zero stop.
  ASSERT_GE(remaining_seen.size(), 2u);
  for (std::size_t i = 1; i < remaining_seen.size(); ++i) {
    EXPECT_LT(remaining_seen[i], remaining_seen[i - 1]);
  }
  EXPECT_EQ(remaining_seen.back(), 0u);

  // Provably stopped: further driving sends no further symbols.
  const std::size_t sent_at_stop = sender.symbols_sent();
  for (int i = 0; i < 50; ++i) {
    sender.tick();
    EXPECT_FALSE(sender.send_symbol());
    receiver.tick();
  }
  EXPECT_EQ(sender.symbols_sent(), sent_at_stop);
}

TEST(FlowControl, StopSurvivesLossOnTimedLinks) {
  EndpointFixture fixture;
  core::Peer sender_peer = fixture.make_peer("sender", 260);
  core::Peer receiver_peer = fixture.make_peer("receiver", 0);

  core::SessionOptions options;
  options.strategy = overlay::Strategy::kRandom;
  options.flow_control = true;
  options.flow_update_symbols = 4;
  options.requested_symbols = 30;
  options.handshake_retry_ticks = 16;

  wire::ChannelConfig link;
  link.loss_rate = 0.15;
  link.delay_ticks = 3;
  link.jitter_ticks = 2;
  link.rate_bytes_per_tick = 2000.0;
  link.seed = 77;
  wire::ChannelLink channel(link);
  core::SenderEndpoint sender(sender_peer, options, channel.a());
  core::ReceiverEndpoint receiver(receiver_peer, options, channel.b());
  receiver.start();

  std::size_t t = 0;
  for (; t < 5000 && !sender.satisfied(); ++t) {
    channel.advance_to(t);
    sender.tick();
    sender.send_symbol();
    receiver.tick();
  }
  // The stop is re-issued while in-flight symbols keep landing, so even at
  // 15% loss the sender hears it.
  ASSERT_TRUE(sender.satisfied()) << "no stop after " << t << " ticks";
  EXPECT_GE(receiver.new_encoded_symbols(), options.requested_symbols);
}

// --- Scheduler-driven engines: determinism gate -----------------------------

core::DeliveryOptions timed_options() {
  core::DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 29;
  options.refresh_interval = 40;
  options.flow_control = true;
  options.link.loss_rate = 0.06;
  options.link.reorder_rate = 0.05;
  options.link.mtu = 600;
  options.link.delay_ticks = 2;
  options.link.jitter_ticks = 1;
  options.link.rate_bytes_per_tick = 1800.0;
  return options;
}

template <typename Service>
std::vector<std::size_t> drive(Service& service, std::size_t peers,
                               std::size_t max_ticks) {
  std::vector<std::size_t> completion(peers, 0);
  for (std::size_t t = 0; t < max_ticks; ++t) {
    service.tick();
    bool all = true;
    for (std::size_t p = 0; p < peers; ++p) {
      if (completion[p] == 0 && service.peer_complete(p)) {
        completion[p] = service.ticks();
      }
      all = all && completion[p] != 0;
    }
    if (all) break;
  }
  return completion;
}

TEST(SchedulerEngine, Shards1MatchesLegacyUnderTimedLossyLinks) {
  const auto content = random_content(64 * 60, 31);
  const std::size_t peers = 5;

  core::ContentDeliveryService legacy(content, timed_options());
  core::ShardedDelivery sharded(content, timed_options(),
                                core::ShardOptions{/*shards=*/1});
  for (std::size_t p = 0; p < peers; ++p) {
    legacy.add_peer("p" + std::to_string(p), p < 2);
    sharded.add_peer("p" + std::to_string(p), p < 2);
  }

  const auto legacy_completion = drive(legacy, peers, 12000);
  const auto sharded_completion = drive(sharded, peers, 12000);
  for (std::size_t p = 0; p < peers; ++p) {
    ASSERT_NE(legacy_completion[p], 0u) << "legacy peer " << p << " stuck";
  }
  EXPECT_EQ(legacy_completion, sharded_completion);

  const auto legacy_totals = legacy.link_totals();
  const auto sharded_totals = sharded.link_totals();
  EXPECT_EQ(legacy_totals.control_bytes, sharded_totals.control_bytes);
  EXPECT_EQ(legacy_totals.control_frames, sharded_totals.control_frames);
  EXPECT_EQ(legacy_totals.data_bytes, sharded_totals.data_bytes);
  EXPECT_EQ(legacy_totals.data_frames, sharded_totals.data_frames);
  for (std::size_t p = 0; p < peers; ++p) {
    EXPECT_EQ(legacy.peer_content(p), sharded.peer_content(p));
  }
}

TEST(SchedulerEngine, RateLimitedAsymmetricSwarmCompletesMultiShard) {
  auto options = timed_options();
  options.flow_control = true;
  // Asymmetric per-edge shaping: odd edges are slow, high-RTT paths.
  options.link_config = [](std::size_t sender,
                           std::size_t receiver) -> wire::ChannelConfig {
    wire::ChannelConfig config;
    config.mtu = 600;
    config.loss_rate = 0.05;
    config.delay_ticks = ((sender + receiver) % 2 == 0) ? 1 : 6;
    config.jitter_ticks = 2;
    config.rate_bytes_per_tick =
        ((sender + receiver) % 2 == 0) ? 2400.0 : 900.0;
    return config;
  };
  const auto content = random_content(64 * 50, 32);
  const std::size_t peers = 8;
  core::ShardedDelivery service(content, options,
                                core::ShardOptions{/*shards=*/4});
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("p" + std::to_string(p), p < 2);
  }
  ASSERT_TRUE(service.run(20000));
  for (std::size_t p = 0; p < peers; ++p) {
    EXPECT_EQ(service.peer_content(p), content);
  }
}

TEST(SchedulerEngine, FrameHintLargerThanBurstDoesNotStarveDownloads) {
  // block_size 1024 makes the send-credit probe's frame hint exceed the
  // default bucket (max(mtu, rate) = 1024): the probe must still grant
  // credit or every download on this link config would stall forever.
  core::DeliveryOptions options;
  options.block_size = 1024;
  options.session_seed = 35;
  options.refresh_interval = 60;
  options.link.mtu = 1024;
  options.link.delay_ticks = 1;
  options.link.rate_bytes_per_tick = 700.0;
  const auto content = random_content(1024 * 20, 36);
  const std::size_t peers = 3;
  core::ContentDeliveryService service(content, options);
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("p" + std::to_string(p), p < 1);
  }
  ASSERT_TRUE(service.run(30000));
  for (std::size_t p = 0; p < peers; ++p) {
    EXPECT_EQ(service.peer_content(p), content);
  }
}

// --- Event loop vs lockstep: trajectory equality gates -----------------------

/// Timing knobs chosen so empty spans actually exist (high-ish RTT, paced
/// links) with delay, jitter, rate, loss and reorder all on at once.
core::DeliveryOptions jumpy_options(overlay::Strategy strategy) {
  core::DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 41;
  options.refresh_interval = 60;
  options.flow_control = true;
  options.strategy = strategy;
  options.handshake_retry_ticks = 24;
  options.link.loss_rate = 0.06;
  options.link.reorder_rate = 0.05;
  options.link.mtu = 600;
  options.link.delay_ticks = 6;
  options.link.jitter_ticks = 2;
  options.link.rate_bytes_per_tick = 250.0;
  return options;
}

/// Drives the engine tick by tick — the PR 4 lockstep loop, no jumping.
template <typename Service>
void drive_lockstep(Service& service, std::size_t max_ticks) {
  for (std::size_t t = 0; t < max_ticks; ++t) {
    service.tick();
    bool all = true;
    for (std::size_t p = 0; p < service.peer_count(); ++p) {
      all = all && service.peer_complete(p);
    }
    if (all) return;
  }
}

template <typename Service>
void add_peers(Service& service, std::size_t peers) {
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("p" + std::to_string(p), p < 2);
  }
}

template <typename A, typename B>
void expect_same_trajectory(A& lockstep, B& jumped, std::size_t peers) {
  for (std::size_t p = 0; p < peers; ++p) {
    ASSERT_NE(lockstep.peer_completion_tick(p), 0u) << "peer " << p;
    EXPECT_EQ(lockstep.peer_completion_tick(p), jumped.peer_completion_tick(p))
        << "peer " << p;
    EXPECT_EQ(lockstep.peer_content(p), jumped.peer_content(p)) << "peer " << p;
  }
  const auto lockstep_totals = lockstep.link_totals();
  const auto jumped_totals = jumped.link_totals();
  EXPECT_EQ(lockstep_totals.control_bytes, jumped_totals.control_bytes);
  EXPECT_EQ(lockstep_totals.control_frames, jumped_totals.control_frames);
  EXPECT_EQ(lockstep_totals.data_bytes, jumped_totals.data_bytes);
  EXPECT_EQ(lockstep_totals.data_frames, jumped_totals.data_frames);
}

TEST(EventLoopEngine, JumpedRunMatchesLockstepForEveryStrategy) {
  const auto content = random_content(64 * 40, 43);
  const std::size_t peers = 4;
  const std::vector<overlay::Strategy> strategies{
      overlay::Strategy::kRandom, overlay::Strategy::kRandomBloom,
      overlay::Strategy::kRecode, overlay::Strategy::kRecodeBloom,
      overlay::Strategy::kRecodeMinwise};
  std::uint64_t total_skipped = 0;
  for (const auto strategy : strategies) {
    core::ContentDeliveryService lockstep(content, jumpy_options(strategy));
    core::ContentDeliveryService jumped(content, jumpy_options(strategy));
    add_peers(lockstep, peers);
    add_peers(jumped, peers);
    drive_lockstep(lockstep, 30000);
    EXPECT_TRUE(jumped.run(30000));
    expect_same_trajectory(lockstep, jumped, peers);
    EXPECT_EQ(lockstep.ticks_skipped(), 0u);
    total_skipped += jumped.ticks_skipped();
  }
  // The jump mechanism must have engaged somewhere across the strategies
  // (origin-fed peers pin early ticks; the paced tail is where spans
  // open up).
  EXPECT_GT(total_skipped, 0u);
}

TEST(EventLoopEngine, JumpedRunMatchesLockstepSharded1And4) {
  const auto content = random_content(64 * 40, 44);
  const std::size_t peers = 8;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const auto options = jumpy_options(overlay::Strategy::kRecodeBloom);
    core::ShardedDelivery lockstep(content, options,
                                   core::ShardOptions{shards});
    core::ShardedDelivery jumped(content, options,
                                 core::ShardOptions{shards});
    add_peers(lockstep, peers);
    add_peers(jumped, peers);
    drive_lockstep(lockstep, 30000);
    EXPECT_TRUE(jumped.run(30000)) << shards << " shards";
    expect_same_trajectory(lockstep, jumped, peers);
  }
}

// --- Fault-enabled equality: the contract survives churn --------------------

/// Timed, lossy, paced links plus a full fault schedule: a crash/restart,
/// a stall window, a flash-crowd join, and a link blackout — the scenario
/// every engine and driver must reproduce tick-for-tick.
core::DeliveryOptions faulty_options() {
  auto options = jumpy_options(overlay::Strategy::kRecodeBloom);
  auto plan = std::make_shared<core::FaultPlan>();
  plan->crashes.push_back({120, 3});
  plan->restarts.push_back({300, 3});
  plan->stalls.push_back({150, 250, 2});
  plan->joins.push_back({200, 1, false});
  plan->blackouts.push_back({80, 160, 0, 1});
  options.faults = std::move(plan);
  options.liveness_timeout_ticks = 30;
  options.handshake_backoff_factor = 2;
  options.handshake_backoff_cap_ticks = 64;
  options.max_handshake_retries = 6;
  options.suspect_ttl_ticks = 60;
  return options;
}

/// Lockstep driver that keeps ticking until every peer (including late
/// joiners) is complete and every scheduled fault has fired.
template <typename Service>
void drive_lockstep_past_faults(Service& service, std::size_t max_ticks) {
  for (std::size_t t = 0; t < max_ticks; ++t) {
    service.tick();
    if (service.ticks() <= 300) continue;  // the last scheduled fault
    bool all = true;
    for (std::size_t p = 0; p < service.peer_count(); ++p) {
      all = all && service.peer_complete(p);
    }
    if (all) return;
  }
}

TEST(EventLoopEngine, JumpedRunMatchesLockstepWithFaultsEnabled) {
  // The event-loop jump must land exactly on every fault boundary
  // (kPeerFault planning events) — a jump that overshot a crash tick or a
  // blackout edge would diverge from the lockstep trajectory immediately.
  const auto content = random_content(64 * 40, 45);
  core::ContentDeliveryService lockstep(content, faulty_options());
  core::ContentDeliveryService jumped(content, faulty_options());
  add_peers(lockstep, 5);
  add_peers(jumped, 5);
  drive_lockstep_past_faults(lockstep, 30000);
  EXPECT_TRUE(jumped.run(30000));
  ASSERT_EQ(lockstep.peer_count(), jumped.peer_count());
  expect_same_trajectory(lockstep, jumped, lockstep.peer_count());
  EXPECT_GT(jumped.ticks_skipped(), 0u) << "the jump never engaged";
}

TEST(SchedulerEngine, Shards1MatchesLegacyWithFaultsEnabled) {
  const auto content = random_content(64 * 40, 46);
  core::ContentDeliveryService legacy(content, faulty_options());
  core::ShardedDelivery sharded(content, faulty_options(),
                                core::ShardOptions{/*shards=*/1});
  add_peers(legacy, 5);
  add_peers(sharded, 5);
  drive_lockstep_past_faults(legacy, 30000);
  EXPECT_TRUE(sharded.run(30000));
  ASSERT_EQ(legacy.peer_count(), sharded.peer_count());
  expect_same_trajectory(legacy, sharded, legacy.peer_count());
}

TEST(EventLoopEngine, ShardedJumpMatchesLockstepWithFaultsEnabled) {
  const auto content = random_content(64 * 40, 47);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    core::ShardedDelivery lockstep(content, faulty_options(),
                                   core::ShardOptions{shards});
    core::ShardedDelivery jumped(content, faulty_options(),
                                 core::ShardOptions{shards});
    add_peers(lockstep, 6);
    add_peers(jumped, 6);
    drive_lockstep_past_faults(lockstep, 30000);
    EXPECT_TRUE(jumped.run(30000)) << shards << " shards";
    ASSERT_EQ(lockstep.peer_count(), jumped.peer_count());
    expect_same_trajectory(lockstep, jumped, lockstep.peer_count());
  }
}

TEST(SchedulerEngine, FlowControlAloneKeepsLegacyTrajectory) {
  // Flow control changes when senders *stop*, not what they send: on
  // perfect untimed links a session stopped early only trims redundant
  // tail symbols, and completion must not regress vs a generous tick cap.
  core::DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 33;
  options.refresh_interval = 25;
  options.flow_control = true;
  const auto content = random_content(64 * 60, 34);
  const std::size_t peers = 5;
  core::ContentDeliveryService with_fc(content, options);
  options.flow_control = false;
  core::ContentDeliveryService without_fc(content, options);
  for (std::size_t p = 0; p < peers; ++p) {
    with_fc.add_peer("p" + std::to_string(p), p < 2);
    without_fc.add_peer("p" + std::to_string(p), p < 2);
  }
  const auto with_completion = drive(with_fc, peers, 8000);
  const auto without_completion = drive(without_fc, peers, 8000);
  for (std::size_t p = 0; p < peers; ++p) {
    ASSERT_NE(with_completion[p], 0u);
    ASSERT_NE(without_completion[p], 0u);
  }
  // Stopped senders send no more than streaming ones.
  EXPECT_LE(with_fc.link_totals().data_frames,
            without_fc.link_totals().data_frames);
}

}  // namespace
}  // namespace icd

// Tests for the zero-allocation symbol fast path: the word-wise XOR kernel
// against its scalar reference, BufferPool recycling and hygiene, pooled
// transport buffers (aliasing / reuse-after-release), the channel's
// one-hop queue residency, and the steady-state allocation guarantee of
// the endpoint send path.
//
// This binary replaces global operator new/delete with counting versions;
// keep it free of death tests and threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "codec/block_source.hpp"
#include "codec/inactivation.hpp"
#include "codec/symbol.hpp"
#include "core/endpoint.hpp"
#include "core/origin.hpp"
#include "core/peer.hpp"
#include "core/session.hpp"
#include "util/random.hpp"
#include "wire/buffer_pool.hpp"
#include "wire/channel.hpp"
#include "wire/transport.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
// Payload-copy accounting: allocations at least g_large_threshold bytes
// count separately, so tests can budget "one payload-sized copy per
// symbol" without noise from small container nodes.
std::atomic<std::size_t> g_large_allocations{0};
std::atomic<std::size_t> g_large_threshold{SIZE_MAX};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size >= g_large_threshold.load(std::memory_order_relaxed)) {
    g_large_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size >= g_large_threshold.load(std::memory_order_relaxed)) {
    g_large_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  const auto alignment = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = ((size ? size : 1) + alignment - 1) /
                              alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace icd {
namespace {

// --- Word-wise XOR kernel ---------------------------------------------------

/// Byte-at-a-time ground truth for xor_bytes.
void xor_bytes_scalar(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

TEST(XorKernel, MatchesScalarReferenceIncludingOddTails) {
  util::Xoshiro256 rng(0xfa57);
  // Every length from 0 through a few words + every tail remainder, plus a
  // large buffer; word-wise and scalar must agree bit-for-bit.
  for (std::size_t n = 0; n <= 40; ++n) {
    std::vector<std::uint8_t> a(n), b(n);
    for (auto& v : a) v = static_cast<std::uint8_t>(rng());
    for (auto& v : b) v = static_cast<std::uint8_t>(rng());
    auto expected = a;
    xor_bytes_scalar(expected.data(), b.data(), n);
    codec::xor_bytes(a.data(), b.data(), n);
    EXPECT_EQ(a, expected) << "length " << n;
  }
  // The widened kernel consumes 32-byte blocks before the word and byte
  // tails: hit every boundary (block edge, block+word, block+word+bytes)
  // and odd tails at scale.
  for (const std::size_t n :
       {31u, 32u, 33u, 39u, 40u, 41u, 63u, 64u, 65u, 95u, 96u, 97u, 127u,
        128u, 129u, 255u, 256u, 257u, 1400u, 4097u}) {
    std::vector<std::uint8_t> a(n), b(n);
    for (auto& v : a) v = static_cast<std::uint8_t>(rng());
    for (auto& v : b) v = static_cast<std::uint8_t>(rng());
    auto expected = a;
    xor_bytes_scalar(expected.data(), b.data(), n);
    codec::xor_bytes(a.data(), b.data(), n);
    EXPECT_EQ(a, expected) << "length " << n;
  }
}

TEST(XorKernel, XorIntoEmptyOperandSemantics) {
  // Empty source: no-op. Empty destination: copy. Mismatch: throws.
  std::vector<std::uint8_t> dst{1, 2, 3};
  codec::xor_into(dst, std::span<const std::uint8_t>{});
  EXPECT_EQ(dst, (std::vector<std::uint8_t>{1, 2, 3}));

  std::vector<std::uint8_t> empty;
  const std::vector<std::uint8_t> src{7, 8, 9};
  codec::xor_into(empty, std::span<const std::uint8_t>(src));
  EXPECT_EQ(empty, src);

  std::vector<std::uint8_t> mismatched{1};
  EXPECT_THROW(
      codec::xor_into(mismatched, std::span<const std::uint8_t>(src)),
      std::invalid_argument);
}

TEST(XorKernel, SelfCancellation) {
  std::vector<std::uint8_t> a(129);
  util::Xoshiro256 rng(2);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng());
  auto b = a;
  codec::xor_into(a, b);
  EXPECT_TRUE(std::all_of(a.begin(), a.end(),
                          [](std::uint8_t v) { return v == 0; }));
}

// --- BufferPool -------------------------------------------------------------

TEST(BufferPool, RecyclesWithFullHitRateAfterWarmup) {
  wire::BufferPool pool;
  // Warmup: one buffer enters circulation.
  auto buffer = pool.acquire();
  buffer.resize(512);
  pool.release(std::move(buffer));

  const std::size_t acquires_before = pool.stats().acquires;
  const std::size_t hits_before = pool.stats().hits;
  for (int i = 0; i < 100; ++i) {
    auto b = pool.acquire();
    EXPECT_TRUE(b.empty());
    EXPECT_GE(b.capacity(), 512u);  // the recycled storage
    b.resize(256);
    pool.release(std::move(b));
  }
  EXPECT_EQ(pool.stats().acquires - acquires_before, 100u);
  EXPECT_EQ(pool.stats().hits - hits_before, 100u);  // 100% hit rate
}

TEST(BufferPool, ReleasedBuffersComeBackCleared) {
  wire::BufferPool pool;
  auto buffer = pool.acquire();
  buffer.assign(64, 0xee);
  pool.release(std::move(buffer));
  const auto recycled = pool.acquire();
  // Reuse-after-release hygiene: no stale bytes from the previous frame.
  EXPECT_TRUE(recycled.empty());
}

TEST(BufferPool, DistinctOutstandingBuffersNeverAlias) {
  wire::BufferPool pool;
  auto a = pool.acquire();
  auto b = pool.acquire();
  a.assign(32, 0x11);
  b.assign(32, 0x22);
  EXPECT_NE(a.data(), b.data());
  EXPECT_TRUE(std::all_of(a.begin(), a.end(),
                          [](std::uint8_t v) { return v == 0x11; }));
  pool.release(std::move(a));
  pool.release(std::move(b));
  EXPECT_EQ(pool.pooled(), 2u);
}

TEST(BufferPool, BoundsRetainedBuffers) {
  wire::BufferPool pool;
  std::vector<std::vector<std::uint8_t>> outstanding;
  for (std::size_t i = 0; i < wire::BufferPool::kMaxPooled + 10; ++i) {
    outstanding.push_back(pool.acquire());
  }
  for (auto& b : outstanding) pool.release(std::move(b));
  EXPECT_EQ(pool.pooled(), wire::BufferPool::kMaxPooled);
}

// --- Pooled transport buffers: reuse across frames --------------------------

TEST(Transport, PooledBufferReuseNeverLeaksAcrossFrames) {
  // Shrinking payloads across recycled buffers: any stale-byte leak from a
  // longer previous frame would corrupt the shorter next frame.
  wire::Pipe pipe(2048);
  util::Xoshiro256 rng(77);
  for (std::size_t round = 0; round < 50; ++round) {
    const std::size_t size = 1 + (997 * (50 - round)) % 1024;
    std::vector<std::uint8_t> payload(size);
    for (auto& v : payload) v = static_cast<std::uint8_t>(rng());
    ASSERT_TRUE(pipe.a().send(codec::EncodedSymbolView{round, payload}));
    auto received = pipe.b().receive_frame();
    ASSERT_TRUE(received.has_value());
    const auto* view = std::get_if<codec::EncodedSymbolView>(&*received);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->id, round);
    ASSERT_EQ(view->payload.size(), payload.size());
    EXPECT_TRUE(std::equal(view->payload.begin(), view->payload.end(),
                           payload.begin()));
  }
  // Steady state: every buffer came from the pool after the first cycle.
  EXPECT_GT(pipe.a().pool().stats().hits, 40u);
}

TEST(Transport, ViewsAreInvalidatedOnlyByTheNextReceive) {
  wire::Pipe pipe(2048);
  const std::vector<std::uint8_t> p1(100, 0xaa);
  const std::vector<std::uint8_t> p2(100, 0xbb);
  ASSERT_TRUE(pipe.a().send(codec::EncodedSymbolView{1, p1}));
  ASSERT_TRUE(pipe.a().send(codec::EncodedSymbolView{2, p2}));

  auto first = pipe.b().receive_frame();
  ASSERT_TRUE(first.has_value());
  const auto view1 = std::get<codec::EncodedSymbolView>(*first);
  // Borrowed data is intact until the next receive call...
  EXPECT_EQ(view1.payload[0], 0xaa);

  auto second = pipe.b().receive_frame();
  ASSERT_TRUE(second.has_value());
  const auto view2 = std::get<codec::EncodedSymbolView>(*second);
  EXPECT_EQ(view2.id, 2u);
  EXPECT_EQ(view2.payload[0], 0xbb);
  // ...and the single-copy rule means consumers must have copied view1 by
  // now (its storage has been recycled; view1 must not be dereferenced).
}

TEST(Transport, RecodedViewRoundTripsThroughPool) {
  wire::Pipe pipe(2048);
  const std::vector<std::uint64_t> constituents{5, 9, 123456789};
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(
        pipe.a().send(codec::RecodedSymbolView{constituents, payload}));
    auto received = pipe.b().receive_frame();
    ASSERT_TRUE(received.has_value());
    const auto* view = std::get_if<codec::RecodedSymbolView>(&*received);
    ASSERT_NE(view, nullptr);
    ASSERT_EQ(view->degree(), constituents.size());
    EXPECT_TRUE(std::equal(view->constituents.begin(),
                           view->constituents.end(), constituents.begin()));
    EXPECT_TRUE(std::equal(view->payload.begin(), view->payload.end(),
                           payload.begin()));
  }
}

TEST(Transport, ViewSendMatchesMessageSendByteForByte) {
  // The fast-path encoders must be wire-identical to the Message path.
  wire::Pipe view_pipe(2048);
  wire::Pipe message_pipe(2048);
  std::vector<std::uint8_t> view_frame, message_frame;
  view_pipe.a().set_frame_observer(
      [&](const std::vector<std::uint8_t>& f, bool) { view_frame = f; });
  message_pipe.a().set_frame_observer(
      [&](const std::vector<std::uint8_t>& f, bool) { message_frame = f; });

  const codec::EncodedSymbol encoded{42, {9, 8, 7}};
  view_pipe.a().send(codec::EncodedSymbolView(encoded));
  message_pipe.a().send(wire::EncodedSymbolMessage{encoded});
  EXPECT_EQ(view_frame, message_frame);

  const codec::RecodedSymbol recoded{{1, 2, 3}, {6, 6, 6, 6}};
  view_pipe.a().send(codec::RecodedSymbolView(recoded));
  message_pipe.a().send(wire::RecodedSymbolMessage{recoded});
  EXPECT_EQ(view_frame, message_frame);
}

TEST(Transport, FragmentedSymbolsStillReachTheReceiver) {
  // Symbols larger than the link MTU arrive fragment-reassembled as owning
  // messages, not views; the receiver must feed them to the decoder too.
  constexpr std::size_t kBlocks = 40;
  constexpr std::size_t kBlockSize = 256;  // frame > MTU below
  util::Xoshiro256 content_rng(11);
  std::vector<std::uint8_t> content(kBlocks * kBlockSize);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(content_rng());
  const auto dist = codec::DegreeDistribution::robust_soliton(kBlocks);
  core::OriginServer origin(content, kBlockSize, dist, 31);
  core::Peer sender_peer("sender", origin.parameters(), dist);
  core::Peer receiver_peer("receiver", origin.parameters(), dist);
  for (int i = 0; i < 120; ++i) sender_peer.receive_encoded(origin.next());

  wire::Pipe pipe(/*mtu=*/128);
  core::SessionOptions options;
  options.strategy = overlay::Strategy::kRecode;
  core::SenderEndpoint sender(sender_peer, options, pipe.a());
  core::ReceiverEndpoint receiver(receiver_peer, options, pipe.b());
  receiver.start();
  for (int i = 0; i < 64 && !receiver.transfer_started(); ++i) {
    sender.tick();
    receiver.tick();
  }
  ASSERT_TRUE(sender.transfer_active());

  for (int i = 0; i < 400 && !receiver.complete(); ++i) {
    sender.send_symbol();
    receiver.tick();
  }
  EXPECT_GT(receiver.symbols_received(), 0u);
  EXPECT_TRUE(receiver.complete());
  EXPECT_EQ(receiver_peer.content(content.size()), content);
}

// --- One-hop queue residency ------------------------------------------------

TEST(LossyChannel, OneHopMinimumResidency) {
  wire::LossyChannel channel(wire::ChannelConfig{});
  ASSERT_TRUE(channel.send_message(wire::Request{1}));
  EXPECT_TRUE(channel.pending());
  // First drain: the frame is still in flight; the empty receive advances
  // the clock.
  EXPECT_TRUE(channel.receive().empty());
  // Second drain: delivered.
  EXPECT_FALSE(channel.receive().empty());
  EXPECT_FALSE(channel.pending());
}

TEST(LossyChannel, FlushReleasesInFlightFrame) {
  wire::LossyChannel channel(wire::ChannelConfig{});
  ASSERT_TRUE(channel.send_message(wire::Request{7}));
  channel.flush();
  const auto frame = channel.receive();
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(std::get<wire::Request>(wire::decode_frame(frame)).symbols_desired,
            7u);
}

TEST(LossyChannel, ReorderBitesForDrainEveryTickDrivers) {
  // The workaround this replaces: drivers had to skip alternate drains for
  // reorder_rate to matter. With one-hop residency, a driver that fully
  // drains after every single send still observes reordering.
  wire::ChannelConfig config;
  config.reorder_rate = 0.5;
  config.seed = 1234;
  wire::LossyChannel channel(config);

  std::vector<std::uint64_t> delivered;
  constexpr std::uint64_t kFrames = 400;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(channel.send_message(wire::Request{i}));
    while (true) {  // drain everything deliverable, every tick
      const auto frame = channel.receive();
      if (frame.empty()) break;
      delivered.push_back(
          std::get<wire::Request>(wire::decode_frame(frame)).symbols_desired);
    }
  }
  channel.flush();
  while (channel.pending()) {
    const auto frame = channel.receive();
    if (frame.empty()) continue;
    delivered.push_back(
        std::get<wire::Request>(wire::decode_frame(frame)).symbols_desired);
  }

  ASSERT_EQ(delivered.size(), kFrames);  // reordered, never lost
  std::size_t out_of_order = 0;
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    if (delivered[i] < delivered[i - 1]) ++out_of_order;
  }
  EXPECT_GT(out_of_order, kFrames / 10);
}

// --- Steady-state allocation guarantee --------------------------------------

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

class SendPathAllocations
    : public ::testing::TestWithParam<overlay::Strategy> {};

TEST_P(SendPathAllocations, SteadyStateSendsAreAllocationFree) {
  constexpr std::size_t kBlocks = 200;
  constexpr std::size_t kBlockSize = 64;
  const auto content = random_content(kBlocks * kBlockSize, 5);
  const auto dist = codec::DegreeDistribution::robust_soliton(kBlocks);
  core::OriginServer origin(content, kBlockSize, dist, 777);
  core::Peer sender_peer("sender", origin.parameters(), dist);
  core::Peer receiver_peer("receiver", origin.parameters(), dist);
  for (int i = 0; i < 260; ++i) sender_peer.receive_encoded(origin.next());
  for (int i = 0; i < 80; ++i) receiver_peer.receive_encoded(origin.next());

  wire::Pipe pipe(core::kSessionPipeMtu);
  core::SessionOptions options;
  options.strategy = GetParam();
  core::SenderEndpoint sender(sender_peer, options, pipe.a());
  core::ReceiverEndpoint receiver(receiver_peer, options, pipe.b());
  receiver.start();
  for (int i = 0; i < 16 && !receiver.transfer_started(); ++i) {
    sender.tick();
    receiver.tick();
  }
  ASSERT_TRUE(sender.transfer_active());

  // Warmup: let every scratch vector, pool buffer and queue slot reach its
  // steady-state capacity.
  for (int i = 0; i < 300; ++i) {
    sender.send_symbol();
    receiver.tick();
  }

  // Measured phase: the send path must not allocate at all, and every
  // transport buffer must come from the pool (hit rate == 100%).
  const auto& pool_stats = pipe.a().pool().stats();
  const std::size_t acquires_before = pool_stats.acquires;
  const std::size_t hits_before = pool_stats.hits;
  std::size_t send_allocations = 0;
  constexpr int kMeasured = 300;
  for (int i = 0; i < kMeasured; ++i) {
    const std::size_t before = g_allocations.load(std::memory_order_relaxed);
    ASSERT_TRUE(sender.send_symbol());
    send_allocations +=
        g_allocations.load(std::memory_order_relaxed) - before;
    receiver.tick();  // receive side owns the budgeted single copy
  }
  EXPECT_EQ(send_allocations, 0u) << overlay::strategy_name(GetParam());
  EXPECT_EQ(pool_stats.acquires - acquires_before,
            static_cast<std::size_t>(kMeasured));
  EXPECT_EQ(pool_stats.hits - hits_before, pool_stats.acquires - acquires_before)
      << "pool hit rate below 100% after warmup";
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SendPathAllocations,
                         ::testing::ValuesIn(overlay::kAllStrategies));

// --- Inactivation decoder payload copies ------------------------------------

TEST(DecoderAllocations, InactivationAddSymbolCopiesPayloadOnce) {
  // The residual elimination state reads the peeler's own equation plane,
  // so add_symbol must copy the payload exactly once (into the peeler's
  // pooled storage) — not a second time into solver-private equation
  // copies. Budget: at most one payload-sized allocation per symbol, plus
  // tiny slack for geometric container growth crossing the threshold; the
  // old duplicate-storage path needed two per symbol.
  const std::uint32_t kBlocks = 32;
  const std::size_t kBlockSize = 4096;
  util::Xoshiro256 rng(0x51);
  std::vector<std::uint8_t> content(kBlocks * kBlockSize);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  const codec::BlockSource source(content, kBlockSize);
  const auto dist = codec::DegreeDistribution::robust_soliton(kBlocks);
  codec::Encoder encoder(source, dist, 0x52);
  codec::InactivationDecoder decoder(encoder.parameters(), dist);

  // Warm the decoder and pre-generate the measured symbols so encoder
  // allocations don't pollute the budget.
  for (std::uint32_t i = 0; i < kBlocks / 2; ++i) {
    decoder.add_symbol(encoder.next());
  }
  constexpr std::size_t kMeasured = 24;
  std::vector<codec::EncodedSymbol> symbols;
  symbols.reserve(kMeasured);
  for (std::size_t i = 0; i < kMeasured; ++i) symbols.push_back(encoder.next());

  g_large_allocations.store(0, std::memory_order_relaxed);
  g_large_threshold.store(kBlockSize, std::memory_order_relaxed);
  for (const auto& symbol : symbols) decoder.add_symbol(symbol);
  g_large_threshold.store(SIZE_MAX, std::memory_order_relaxed);

  EXPECT_LE(g_large_allocations.load(std::memory_order_relaxed),
            kMeasured + 2)
      << "payload copied more than once per add_symbol";
}

}  // namespace
}  // namespace icd

// Sharded delivery engine: determinism contract (shards = 1 is bit-for-bit
// the legacy ContentDeliveryService), multi-shard swarm correctness (run
// under TSAN in CI), SPSC ring and cross-shard link plumbing, and the
// per-tick control-frame batching layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/delivery.hpp"
#include "core/sharded_delivery.hpp"
#include "overlay/simulator.hpp"
#include "util/random.hpp"
#include "util/spsc.hpp"
#include "wire/shard_link.hpp"
#include "wire/transport.hpp"

namespace icd {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& byte : content) byte = static_cast<std::uint8_t>(rng());
  return content;
}

core::DeliveryOptions small_options() {
  core::DeliveryOptions options;
  options.block_size = 64;
  options.session_seed = 13;
  options.refresh_interval = 25;
  return options;
}

/// Drives a service tick by tick, recording the tick at which each peer
/// completed, until all complete or max_ticks pass.
template <typename Service>
std::vector<std::size_t> drive(Service& service, std::size_t peers,
                               std::size_t max_ticks) {
  std::vector<std::size_t> completion(peers, 0);
  for (std::size_t t = 0; t < max_ticks; ++t) {
    service.tick();
    bool all = true;
    for (std::size_t p = 0; p < peers; ++p) {
      if (completion[p] == 0 && service.peer_complete(p)) {
        completion[p] = service.ticks();
      }
      all = all && completion[p] != 0;
    }
    if (all) break;
  }
  return completion;
}

// --- SPSC ring --------------------------------------------------------------

TEST(SpscRing, CrossThreadFifoDeliversEverythingInOrder) {
  util::SpscRing<std::vector<std::uint8_t>> ring(64);
  constexpr std::size_t kItems = 20000;
  std::vector<std::size_t> seen;
  seen.reserve(kItems);
  std::jthread consumer([&] {
    while (seen.size() < kItems) {
      if (auto item = ring.try_pop()) {
        seen.push_back((*item)[0] | (std::size_t{(*item)[1]} << 8));
      }
    }
  });
  for (std::size_t i = 0; i < kItems; ++i) {
    std::vector<std::uint8_t> item{static_cast<std::uint8_t>(i),
                                   static_cast<std::uint8_t>(i >> 8)};
    while (!ring.try_push(item)) {
    }
  }
  consumer.join();
  ASSERT_EQ(seen.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[i], i & 0xffff) << "position " << i;
    if (seen[i] != (i & 0xffff)) break;
  }
}

TEST(SpscRing, RejectsWhenFullWithoutLosingTheValue) {
  util::SpscRing<std::vector<std::uint8_t>> ring(8);
  std::vector<std::uint8_t> item{42};
  for (std::size_t i = 0; i < ring.capacity(); ++i) {
    std::vector<std::uint8_t> filler{1};
    ASSERT_TRUE(ring.try_push(filler));
  }
  EXPECT_FALSE(ring.try_push(item));
  EXPECT_EQ(item, (std::vector<std::uint8_t>{42}));  // untouched
}

// --- ShardLink --------------------------------------------------------------

TEST(ShardLink, CarriesFramesBothWaysAndRecyclesBuffers) {
  wire::ChannelConfig config;
  config.mtu = 1500;
  wire::ShardLink link(config);

  // a -> b and b -> a, single-threaded (coordinator role on both ends).
  // The last frame sent stays in flight for one hop (LossyChannel's event
  // clock, emulated producer-side): the owner's next advance releases it.
  ASSERT_TRUE(link.a().send(wire::Request{7}));
  ASSERT_TRUE(link.b().send(wire::Request{9}));
  EXPECT_FALSE(link.b().receive().has_value());
  link.advance_a_to(1);
  link.advance_b_to(1);
  auto at_b = link.b().receive();
  ASSERT_TRUE(at_b.has_value());
  EXPECT_EQ(std::get<wire::Request>(*at_b).symbols_desired, 7u);
  auto at_a = link.a().receive();
  ASSERT_TRUE(at_a.has_value());
  EXPECT_EQ(std::get<wire::Request>(*at_a).symbols_desired, 9u);

  // Steady state: buffers must recycle through the rings — after warmup a
  // burst of sends allocates nothing new from the pools. Each send
  // displaces its predecessor out of flight and onto the ring.
  ASSERT_TRUE(link.a().send(wire::Request{1000}));
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(link.a().send(wire::Request{static_cast<std::uint64_t>(
        round)}));
    ASSERT_TRUE(link.b().receive().has_value());
  }
  EXPECT_EQ(link.overflow_drops(), 0u);
}

TEST(ShardLink, AppliesBernoulliLossSenderSide) {
  wire::ChannelConfig config;
  config.mtu = 1500;
  config.loss_rate = 0.5;
  config.seed = 99;
  wire::ShardLink link(config);
  std::size_t delivered = 0;
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(link.a().send(wire::Request{1}));
    if (link.b().receive().has_value()) ++delivered;
  }
  // ~50% loss; generous bounds.
  EXPECT_GT(delivered, 100u);
  EXPECT_LT(delivered, 300u);
  // Lost frames still count as sent (handed to the link), like a channel.
  EXPECT_EQ(link.a().stats().frames_sent, 400u);
}

// --- Determinism: shards = 1 vs the legacy engine ---------------------------

TEST(ShardedDelivery, Shards1MatchesLegacyServiceBitForBit) {
  const auto content = random_content(64 * 100, 21);
  const std::size_t peers = 6;

  core::ContentDeliveryService legacy(content, small_options());
  legacy.add_mirror();
  core::ShardedDelivery sharded(content, small_options(),
                                core::ShardOptions{/*shards=*/1});
  sharded.add_mirror();
  for (std::size_t p = 0; p < peers; ++p) {
    legacy.add_peer("p" + std::to_string(p), p < 2);
    sharded.add_peer("p" + std::to_string(p), p < 2);
  }

  const auto legacy_completion = drive(legacy, peers, 5000);
  const auto sharded_completion = drive(sharded, peers, 5000);

  // Per-peer completion ticks — the full order, not just the set.
  EXPECT_EQ(legacy_completion, sharded_completion);
  // Byte accounting, cumulative across refresh teardowns.
  const auto legacy_totals = legacy.link_totals();
  const auto sharded_totals = sharded.link_totals();
  EXPECT_EQ(legacy_totals.control_bytes, sharded_totals.control_bytes);
  EXPECT_EQ(legacy_totals.control_frames, sharded_totals.control_frames);
  EXPECT_EQ(legacy_totals.data_bytes, sharded_totals.data_bytes);
  EXPECT_EQ(legacy_totals.data_frames, sharded_totals.data_frames);
  // Reconstructed bytes.
  for (std::size_t p = 0; p < peers; ++p) {
    ASSERT_TRUE(legacy.peer_complete(p));
    ASSERT_TRUE(sharded.peer_complete(p));
    EXPECT_EQ(legacy.peer_content(p), sharded.peer_content(p));
    EXPECT_EQ(sharded.peer(p).symbol_count(), legacy.peer(p).symbol_count());
  }
}

TEST(ShardedDelivery, Shards1MatchesLegacyUnderLossAndReorder) {
  auto options = small_options();
  options.link.loss_rate = 0.08;
  options.link.reorder_rate = 0.1;
  options.link.mtu = 600;
  const auto content = random_content(64 * 60, 22);
  const std::size_t peers = 5;

  core::ContentDeliveryService legacy(content, options);
  core::ShardedDelivery sharded(content, options,
                                core::ShardOptions{/*shards=*/1});
  for (std::size_t p = 0; p < peers; ++p) {
    legacy.add_peer("p" + std::to_string(p), p < 2);
    sharded.add_peer("p" + std::to_string(p), p < 2);
  }
  EXPECT_EQ(drive(legacy, peers, 8000), drive(sharded, peers, 8000));
  EXPECT_EQ(legacy.link_totals().data_bytes, sharded.link_totals().data_bytes);
  EXPECT_EQ(legacy.link_totals().control_bytes,
            sharded.link_totals().control_bytes);
}

// --- Multi-shard swarms (TSAN target) ---------------------------------------

TEST(ShardedDelivery, FourShardSwarmDeliversEverywhere) {
  const auto content = random_content(64 * 80, 23);
  const std::size_t peers = 12;
  core::ShardedDelivery service(content, small_options(),
                                core::ShardOptions{/*shards=*/4});
  service.add_mirror();
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("p" + std::to_string(p), p < 3);
  }
  ASSERT_TRUE(service.run(8000));
  for (std::size_t p = 0; p < peers; ++p) {
    EXPECT_TRUE(service.peer_complete(p));
    EXPECT_EQ(service.peer_content(p), content);
  }
}

TEST(ShardedDelivery, FourShardRunsAreDeterministic) {
  const auto content = random_content(64 * 60, 24);
  const std::size_t peers = 9;
  auto run_once = [&](std::vector<std::size_t>& completion,
                      core::ShardedDelivery::LinkTotals& totals) {
    core::ShardedDelivery service(content, small_options(),
                                  core::ShardOptions{/*shards=*/4});
    for (std::size_t p = 0; p < peers; ++p) {
      service.add_peer("p" + std::to_string(p), p < 3);
    }
    completion = drive(service, peers, 8000);
    totals = service.link_totals();
  };
  std::vector<std::size_t> first_completion, second_completion;
  core::ShardedDelivery::LinkTotals first_totals, second_totals;
  run_once(first_completion, first_totals);
  run_once(second_completion, second_totals);
  EXPECT_EQ(first_completion, second_completion);
  EXPECT_EQ(first_totals.control_bytes, second_totals.control_bytes);
  EXPECT_EQ(first_totals.data_bytes, second_totals.data_bytes);
  EXPECT_EQ(first_totals.data_frames, second_totals.data_frames);
}

TEST(ShardedDelivery, FourShardSwarmSurvivesLossyCrossLinks) {
  auto options = small_options();
  options.link.loss_rate = 0.1;
  const auto content = random_content(64 * 50, 25);
  const std::size_t peers = 8;
  core::ShardedDelivery service(content, options,
                                core::ShardOptions{/*shards=*/4});
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("p" + std::to_string(p), p < 2);
  }
  ASSERT_TRUE(service.run(10000));
  for (std::size_t p = 0; p < peers; ++p) {
    EXPECT_EQ(service.peer_content(p), content);
  }
}

// --- Per-tick control-frame batching ----------------------------------------

TEST(Batching, TrainPreservesMessagesOrderAndBytes) {
  wire::Pipe plain(1500);
  wire::Pipe batched(1500);
  batched.a().set_batch_budget(1400);

  const std::vector<wire::Message> bundle = {
      wire::Hello{100, 7, 42}, wire::Request{64}, wire::Request{65}};
  for (const auto& m : bundle) {
    ASSERT_TRUE(plain.a().send(m));
    ASSERT_TRUE(batched.a().send(m));
  }
  ASSERT_TRUE(batched.a().flush_batch());

  // Same wire bytes, fewer datagrams.
  EXPECT_EQ(batched.a().stats().control_bytes_sent,
            plain.a().stats().control_bytes_sent);
  EXPECT_EQ(plain.a().stats().control_frames_sent, 3u);
  EXPECT_EQ(batched.a().stats().control_frames_sent, 1u);

  // The receiver slices the train back into the same messages, in order.
  for (const auto& m : bundle) {
    auto received = batched.b().receive();
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(wire::message_type(*received), wire::message_type(m));
  }
  EXPECT_FALSE(batched.b().receive().has_value());
}

TEST(Batching, SplitsTrainsAtBudget) {
  wire::Pipe pipe(1500);
  pipe.a().set_batch_budget(40);  // Request frames are ~9 bytes
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pipe.a().send(wire::Request{static_cast<std::uint64_t>(i)}));
  }
  ASSERT_TRUE(pipe.a().flush_batch());
  // Request frames are 6 bytes, so a 40-byte budget holds 6 per train:
  // 10 frames split into exactly 2 datagrams.
  EXPECT_EQ(pipe.a().stats().control_frames_sent, 2u);
  for (int i = 0; i < 10; ++i) {
    auto received = pipe.b().receive();
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(std::get<wire::Request>(*received).symbols_desired,
              static_cast<std::uint64_t>(i));
  }
}

TEST(Batching, DataSendFlushesPendingControlFirst) {
  wire::Pipe pipe(1500);
  pipe.a().set_batch_budget(1400);
  ASSERT_TRUE(pipe.a().send(wire::Request{5}));
  const std::vector<std::uint8_t> payload(64, 0xab);
  ASSERT_TRUE(pipe.a().send(codec::EncodedSymbolView{11, payload}));

  // Control departs before the symbol that followed it.
  auto first = pipe.b().receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(std::holds_alternative<wire::Request>(*first));
  auto second = pipe.b().receive();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(std::holds_alternative<wire::EncodedSymbolMessage>(*second));
}

TEST(Batching, ShardedDeliveryWithBatchingMatchesUnbatchedTrajectory) {
  // On perfect links, batching changes datagram count but neither bytes
  // nor protocol behavior: same completion ticks, same control bytes,
  // fewer control frames.
  const auto content = random_content(64 * 60, 26);
  const std::size_t peers = 5;
  core::ShardedDelivery plain(content, small_options(),
                              core::ShardOptions{/*shards=*/1});
  core::ShardedDelivery batched(
      content, small_options(),
      core::ShardOptions{/*shards=*/1, /*batch_budget=*/4096});
  for (std::size_t p = 0; p < peers; ++p) {
    plain.add_peer("p" + std::to_string(p), p < 2);
    batched.add_peer("p" + std::to_string(p), p < 2);
  }
  EXPECT_EQ(drive(plain, peers, 6000), drive(batched, peers, 6000));
  const auto plain_totals = plain.link_totals();
  const auto batched_totals = batched.link_totals();
  EXPECT_EQ(batched_totals.control_bytes, plain_totals.control_bytes);
  EXPECT_EQ(batched_totals.data_bytes, plain_totals.data_bytes);
  EXPECT_LT(batched_totals.control_frames, plain_totals.control_frames);
  for (std::size_t p = 0; p < peers; ++p) {
    EXPECT_EQ(batched.peer_content(p), content);
  }
}

TEST(Batching, FourShardsWithBatchingDeliversEverywhere) {
  const auto content = random_content(64 * 50, 27);
  const std::size_t peers = 8;
  core::ShardedDelivery service(
      content, small_options(),
      core::ShardOptions{/*shards=*/4, /*batch_budget=*/2048});
  for (std::size_t p = 0; p < peers; ++p) {
    service.add_peer("p" + std::to_string(p), p < 2);
  }
  ASSERT_TRUE(service.run(8000));
  for (std::size_t p = 0; p < peers; ++p) {
    EXPECT_EQ(service.peer_content(p), content);
  }
}

TEST(Batching, OverlaySimulatorChargesCoalescedControlPackets) {
  // SimConfig::batch_budget in the count-only simulator: same delivery
  // trajectory (the data plane is untouched), fewer control packets (the
  // per-connection setup blobs pay packetization once per train).
  overlay::AdaptiveOverlayConfig config;
  config.base.n = 200;
  config.base.seed = 404;
  config.peer_count = 8;
  config.origin_fanout = 2;
  config.max_rounds = 30000;
  const auto plain = overlay::run_adaptive_overlay(config);
  config.base.batch_budget = 4096;
  const auto batched = overlay::run_adaptive_overlay(config);
  EXPECT_EQ(plain.completion_round, batched.completion_round);
  EXPECT_EQ(plain.transmissions, batched.transmissions);
  EXPECT_LT(batched.control_packets, plain.control_packets);
}

// --- BufferPool shard-local ownership ---------------------------------------

#if defined(__SANITIZE_THREAD__)
#define ICD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ICD_TSAN 1
#endif
#endif

// Death tests fork, which TSAN dislikes; the abort path is still exercised
// by the non-death handoff test below.
#if defined(ICD_POOL_OWNER_CHECKS) && !defined(ICD_TSAN)
TEST(BufferPoolOwnerDeathTest, CrossThreadUseAbortsLoudly) {
  EXPECT_DEATH(
      {
        wire::BufferPool pool;
        pool.release(pool.acquire());  // binds to this thread
        std::thread offender([&pool] { (void)pool.acquire(); });
        offender.join();
      },
      "non-owner thread");
}
#endif

#if defined(ICD_POOL_OWNER_CHECKS)
TEST(BufferPoolOwner, ReleaseOwnerAllowsHandoff) {
  wire::BufferPool pool;
  pool.release(pool.acquire());  // bind here
  pool.debug_release_owner();
  std::thread other([&pool] {
    pool.release(pool.acquire());  // rebinds to the worker: must not die
  });
  other.join();
  pool.debug_release_owner();
  pool.release(pool.acquire());  // and back
  SUCCEED();
}
#endif

}  // namespace
}  // namespace icd
